"""``repro.api`` facade tests: frozen results, shared cache, batch."""

import dataclasses

import pytest

from repro import api
from repro.service.compiler import CompilationService

LOOP = """\
%! x(*,1) y(*,1) n(1)
x = (1:8)';
n = 8;
for i=1:n
  y(i) = 2*x(i);
end
"""


@pytest.fixture
def service():
    """An isolated service so tests never share the process default."""
    return CompilationService()


class TestVectorize:
    def test_success(self, service):
        out = api.vectorize(LOOP, service=service)
        assert out.ok and out.error is None
        assert "y(1:n) = 2*x(1:n);" in out.vectorized
        assert out.report_summary
        assert out.stats["statements_vectorized"] == 1

    def test_results_are_frozen(self, service):
        out = api.vectorize(LOOP, service=service)
        with pytest.raises(dataclasses.FrozenInstanceError):
            out.ok = False

    def test_failure_is_a_value_not_an_exception(self, service):
        out = api.vectorize("for i=1:n\n  oops((\nend\n", service=service)
        assert not out.ok
        assert out.error.type == "ParseError"
        assert "ParseError" in str(out.error)

    def test_repeat_hits_the_cache(self, service):
        first = api.vectorize(LOOP, service=service)
        second = api.vectorize(LOOP, service=service)
        assert not first.cached and second.cached
        assert first.cache_key == second.cache_key

    def test_options_pin_matlab_backend(self, service):
        opts = api.options(backend="numpy", simplify=True)
        out = api.vectorize(LOOP, options=opts, service=service)
        assert out.ok and out.python is None       # backend repinned

    def test_unknown_option_raises(self):
        with pytest.raises(TypeError):
            api.options(bogus=True)


class TestTranslate:
    def test_returns_python(self, service):
        out = api.translate(LOOP, service=service)
        assert out.ok
        assert "def mprogram" in out.python

    def test_translate_and_vectorize_have_distinct_keys(self, service):
        a = api.vectorize(LOOP, service=service)
        b = api.translate(LOOP, service=service)
        assert a.cache_key != b.cache_key


class TestLint:
    def test_diagnostics_are_data(self, service):
        report = api.lint("y = z + 1;\n", service=service)
        assert report.errors == 1 and not report.ok
        assert report.diagnostics[0]["code"]
        assert "error(s)" in report.render()

    def test_clean_source(self, service):
        report = api.lint("x = 1;\ny = x;\n", service=service)
        assert report.ok and report.clean

    def test_lint_caches(self, service):
        api.lint(LOOP, service=service)
        assert api.lint(LOOP, service=service).cached


class TestAudit:
    def test_passing_audit(self, service):
        report = api.audit(LOOP, service=service)
        assert report.ok and report.error is None
        assert report.vectorized_stmts == 1

    def test_compile_error_reported(self, service):
        report = api.audit("for i=1:n\n  oops((\nend\n", service=service)
        assert not report.ok
        assert report.error is not None


class TestCompileMany:
    def test_batch_in_input_order_with_isolation(self):
        outcomes = api.compile_many([
            ("good.m", LOOP),
            ("bad.m", "for i=1:n\n  oops((\nend\n"),
            ("also-good.m", "x = 1;\n"),
        ])
        assert [o.name for o in outcomes] \
            == ["good.m", "bad.m", "also-good.m"]
        assert outcomes[0].ok and not outcomes[1].ok and outcomes[2].ok
        assert outcomes[1].error.type == "ParseError"

    def test_to_dict_round_trips(self):
        (outcome,) = api.compile_many([("a.m", LOOP)])
        payload = outcome.to_dict()
        assert payload["ok"] and payload["name"] == "a.m"
        assert payload["error"] is None


class TestFanout:
    def test_keyed_results(self, service):
        report = api.fanout(LOOP, backends=["vectorize", "lint"],
                            service=service)
        assert report.ok
        assert set(report.results) == {"vectorize", "lint"}
        assert report["vectorize"]["ok"]
        assert report.statuses["vectorize"] == 200


class TestDefaultService:
    def test_default_service_is_shared_and_resettable(self):
        first = api.default_service()
        assert api.default_service() is first
        api.reset_default_service()
        assert api.default_service() is not first

    def test_package_reexports(self):
        import repro

        assert repro.api is api
        assert repro.CompileOutcome is api.CompileOutcome
