"""Annotation parsing and the engine's whole-program inference summary."""

import pytest

from repro.dims.abstract import Dim
from repro.dims.context import ShapeEnv
from repro.errors import AnnotationError
from repro.mlang.annotations import parse_annotation, parse_annotations
from repro.shapes import infer_shapes
from repro.mlang.parser import parse


class TestAnnotations:
    def test_paper_example(self):
        env = parse_annotation("i(1) a(1,*) b(*,1) A(*,*)", ShapeEnv())
        assert env.get("i") == Dim.scalar()
        assert env.get("a") == Dim.row()
        assert env.get("b") == Dim.col()
        assert env.get("A") == Dim.matrix()

    def test_single_star(self):
        env = parse_annotation("h(*)", ShapeEnv())
        assert env.get("h") == Dim.parse("(*)")

    def test_multiple_annotations(self):
        env = parse_annotations(["a(1,*)", "b(*,1)"])
        assert "a" in env and "b" in env

    def test_later_overrides(self):
        env = parse_annotations(["a(1,*)", "a(*,1)"])
        assert env.get("a") == Dim.col()

    def test_bad_annotation(self):
        with pytest.raises(AnnotationError):
            parse_annotation("a(1,%)", ShapeEnv())

    def test_leftover_text_rejected(self):
        with pytest.raises(AnnotationError):
            parse_annotation("a(1,*) garbage", ShapeEnv())

    def test_empty_annotation_ok(self):
        env = parse_annotation("", ShapeEnv())
        assert not env.shapes


def infer(source: str) -> ShapeEnv:
    return infer_shapes(parse(source))


class TestInference:
    def test_scalar_assignment(self):
        env = infer("x = 3;")
        assert env.get("x") == Dim.scalar()

    def test_range_assignment(self):
        env = infer("v = 1:10;")
        assert env.get("v") == Dim.row()

    def test_zeros(self):
        env = infer("A = zeros(5, 5);\nr = zeros(1, 5);\nc = zeros(5, 1);")
        assert env.get("A") == Dim.matrix()
        assert env.get("r") == Dim.row()
        assert env.get("c") == Dim.col()

    def test_propagation_through_arithmetic(self):
        env = infer("v = 1:10;\nw = 2*v + 1;")
        assert env.get("w") == Dim.row()

    def test_transpose_flips(self):
        env = infer("v = (1:10)';")
        assert env.get("v") == Dim((Dim.col()[0], Dim.col()[1]))

    def test_fig3_preamble(self):
        env = infer("""
%! im(*,*)
h = hist(im(:), 0:255);
heq = 255*cumsum(h(:))/sum(h(:));
""")
        assert env.get("h") == Dim.row()
        # h(:) is a column, so cumsum preserves the column shape.
        assert env.get("heq") == Dim.col()

    def test_annotations_frozen(self):
        env = infer("""
%! v(*,1)
v = 1:10;
""")
        # The annotation wins over the (contradicting) inference.
        assert env.get("v") == Dim.col()

    def test_loop_write_one_subscript_is_row(self):
        env = infer("for i=1:10\n a(i) = i;\nend")
        assert env.get("a") == Dim.row()

    def test_loop_write_two_subscripts_is_matrix(self):
        env = infer("for i=1:3\n for j=1:4\n  A(i,j) = i+j;\n end\nend")
        assert env.get("A") == Dim.matrix()

    def test_loop_var_is_scalar_inside(self):
        env = infer("for i=1:10\n x = i + 1;\nend")
        assert env.get("x") == Dim.scalar()

    def test_unknown_rhs_leaves_name_undefined(self):
        env = infer("x = mystery_fn(3);")
        assert env.get("x") is None

    def test_if_branches_scanned(self):
        env = infer("n = 1;\nif n > 0\n v = 1:10;\nend")
        assert env.get("v") == Dim.row()

    def test_size_call(self):
        env = infer("%! A(*,*)\nm = size(A, 1);")
        assert env.get("m") == Dim.scalar()

    def test_existing_array_not_demoted_by_indexed_write(self):
        env = infer("%! b(*,1)\nfor i=1:10\n b(i) = i;\nend")
        assert env.get("b") == Dim.col()


class TestMultiOutputInference:
    def test_size_outputs_scalar(self):
        env = infer("%! A(*,*)\n[m, n] = size(A);")
        assert env.get("m") == Dim.scalar()
        assert env.get("n") == Dim.scalar()

    def test_size_enables_downstream_vectorization(self):
        from repro import vectorize_source

        result = vectorize_source("""
%! A(*,*) y(*,1) x(*,1)
[m, n] = size(A);
for i=1:m
  y(i) = x(i)*n;
end
""")
        assert "for " not in result.source

    def test_max_outputs_scalar(self):
        env = infer("%! v(1,*)\n[m, idx] = max(v);")
        assert env.get("m") == Dim.scalar()
        assert env.get("idx") == Dim.scalar()

    def test_sort_outputs_keep_shape(self):
        env = infer("%! v(1,*)\n[s, order] = sort(v);")
        assert env.get("s") == Dim.row()
        assert env.get("order") == Dim.row()
