"""Join-point conservatism of the flow-sensitive shape engine.

When control-flow paths disagree about a variable's dims, the meet
widens to CONFLICT and the engine *withholds* the shape rather than
guessing: the vectorizer then leaves dependent loops sequential and
the linter stays silent about that variable (it cannot prove a
conflict).  When the paths agree, the joined shape flows through and
both consumers act on it — including across ``while`` back edges,
where the solver must reach a fixed point.
"""

from repro.mlang.parser import parse
from repro.shapes import analyze_program, infer_shapes
from repro.staticcheck import lint_source
from repro.vectorizer.driver import vectorize_source

CONFLICTING_IF = """\
c = 1;
if c > 0
  v = zeros(1, 4);
else
  v = zeros(4, 1);
end
z = zeros(1, 4);
for i=1:4
  z(i) = v(i);
end
"""

AGREEING_IF = """\
c = 1;
if c > 0
  v = zeros(1, 4);
else
  v = zeros(1, 9);
end
z = zeros(1, 4);
for i=1:4
  z(i) = v(i) + 1;
end
"""


class TestIfJoin:
    def test_conflicting_branches_withhold_the_shape(self):
        env = infer_shapes(parse(CONFLICTING_IF))
        assert env.get("v") is None
        assert str(env.get("z")) == "(1,*)"

    def test_conflicting_branches_keep_loop_sequential(self):
        result = vectorize_source(CONFLICTING_IF)
        assert result.report.vectorized_loops == 0
        reasons = [r for loop in result.report.loops
                   for o in loop.outcomes for r in o.reasons]
        assert any("no shape information for 'v'" in r for r in reasons)

    def test_conflicting_branches_do_not_lint_error(self):
        # Conservative widening means no *claim* about v — the linter
        # must not fabricate an E30x it cannot prove.
        assert not lint_source(CONFLICTING_IF)

    def test_agreeing_branches_join_and_vectorize(self):
        env = infer_shapes(parse(AGREEING_IF))
        assert str(env.get("v")) == "(1,*)"
        result = vectorize_source(AGREEING_IF)
        assert result.report.vectorized_loops == 1

    def test_one_sided_if_keeps_the_entry_shape_optimistically(self):
        # v defined only in the then-branch: the meet with the fall-
        # through path keeps the one known shape (the lattice is
        # optimistic for one-sided names).
        source = (
            "c = 1;\n"
            "if c > 0\n"
            "  v = zeros(1, 4);\n"
            "end\n"
        )
        env = infer_shapes(parse(source))
        assert str(env.get("v")) == "(1,*)"

    def test_join_with_known_shapes_still_lints_downstream(self):
        # Both branches agree on a column: the joined shape is *used*
        # by the linter, which proves the pointwise conflict with the
        # row w after the join.
        source = (
            "c = 1;\n"
            "if c > 0\n"
            "  v = zeros(4, 1);\n"
            "else\n"
            "  v = ones(4, 1);\n"
            "end\n"
            "w = zeros(1, 4);\n"
            "q = v + w;\n"
        )
        diagnostics = lint_source(source)
        assert [(d.code, d.line) for d in diagnostics] == [("E301", 8)]


class TestWhileFixedPoint:
    CONFLICTING_WHILE = """\
x = zeros(1, 4);
k = 1;
while k < 3
  x = zeros(4, 1);
  k = k + 1;
end
y = zeros(1, 4);
for i=1:4
  y(i) = x(i);
end
"""

    PRESERVING_WHILE = """\
x = zeros(1, 4);
k = 1;
while k < 3
  x = x + 1;
  k = k + 1;
end
y = zeros(1, 4);
for i=1:4
  y(i) = x(i);
end
"""

    def test_reshaping_body_conflicts_at_exit(self):
        # The back edge meets (1,*) from entry with (*,1) from the
        # body: the solver reaches its fixed point with x CONFLICT,
        # which the engine withholds.
        env = infer_shapes(parse(self.CONFLICTING_WHILE))
        assert env.get("x") is None
        assert vectorize_source(
            self.CONFLICTING_WHILE).report.vectorized_loops == 0

    def test_shape_preserving_body_converges_to_the_shape(self):
        env = infer_shapes(parse(self.PRESERVING_WHILE))
        assert str(env.get("x")) == "(1,*)"
        assert vectorize_source(
            self.PRESERVING_WHILE).report.vectorized_loops == 1

    def test_linter_uses_post_while_shape(self):
        # x keeps (*,1) through the loop, so the indexed assignment of
        # the provably non-scalar x after it is an E303.
        source = (
            "c = 1;\n"
            "k = 1;\n"
            "v = zeros(4, 1);\n"
            "while k < 3\n"
            "  v = v .* 2;\n"
            "  k = k + 1;\n"
            "end\n"
            "z = zeros(4, 1);\n"
            "z(2) = v;\n"
        )
        diagnostics = lint_source(source)
        assert [(d.code, d.line) for d in diagnostics] == [("E303", 9)]


class TestPerStatementEnvs:
    def test_env_at_sees_facts_at_the_loop_not_at_exit(self):
        # v is a row at the first loop and a column at the second:
        # the per-statement environments must differ even though the
        # whole-program exit env only has the final shape.
        source = (
            "v = zeros(1, 4);\n"
            "a = zeros(1, 4);\n"
            "for i=1:4\n"
            "  a(i) = v(i);\n"
            "end\n"
            "v = zeros(4, 1);\n"
            "b = zeros(1, 4);\n"
            "for i=1:4\n"
            "  b(i) = v(i);\n"
            "end\n"
        )
        program = parse(source)
        shapes = analyze_program(program)
        loops = [stmt for stmt in program.body
                 if type(stmt).__name__ == "For"]
        first = shapes.env_at(loops[0])
        second = shapes.env_at(loops[1])
        assert str(first.get("v")) == "(1,*)"
        assert str(second.get("v")) == "(*,1)"
        result = vectorize_source(source)
        assert result.report.vectorized_loops == 2
