"""Interprocedural summaries: params → result dims per ``function``.

The engine summarizes each program-defined function once per argument
signature, so shapes flow through direct calls (``w = f(x)``) without
per-call-site annotations.  These tests pin the summary mechanics —
memoization, arity checks, the recursion guard, multi-output binding —
and the end-to-end payoff: a loop fed by a call's result vectorizes in
a program with no annotations at all.
"""

from repro.dims.abstract import Dim, ONE, STAR
from repro.mlang.parser import parse
from repro.shapes import FunctionSummaries, infer_shapes
from repro.staticcheck import lint_source
from repro.staticcheck.cfg import program_scopes
from repro.vectorizer.driver import vectorize_source

ROW = Dim((ONE, STAR))
COL = Dim((STAR, ONE))
SCALAR = Dim((ONE,))


def summaries_for(source: str) -> FunctionSummaries:
    scopes = program_scopes(parse(source))
    functions = frozenset(s.name for s in scopes if s.kind == "function")
    return FunctionSummaries(scopes, functions)


class TestResultDims:
    SCALEADD = """\
function y = scaleadd(x, c)
y = x .* c + 1;
end
"""

    def test_row_in_row_out(self):
        summaries = summaries_for(self.SCALEADD)
        assert summaries.defines("scaleadd")
        assert summaries.result_dims("scaleadd", (ROW, SCALAR)) == (ROW,)

    def test_signature_sensitivity(self):
        # The same function summarized at a different argument shape
        # yields the matching result shape — summaries are per
        # signature, not per function.
        summaries = summaries_for(self.SCALEADD)
        assert summaries.result_dims("scaleadd", (COL, SCALAR)) == (COL,)
        assert summaries.result_dims("scaleadd", (ROW, SCALAR)) == (ROW,)

    def test_arity_mismatch_is_unknown(self):
        summaries = summaries_for(self.SCALEADD)
        assert summaries.result_dims("scaleadd", (ROW,)) is None

    def test_unknown_function_is_unknown(self):
        summaries = summaries_for(self.SCALEADD)
        assert summaries.result_dims("nosuch", (ROW,)) is None

    def test_memoization(self):
        summaries = summaries_for(self.SCALEADD)
        summaries.result_dims("scaleadd", (ROW, SCALAR))
        assert ("scaleadd", (ROW, SCALAR)) in summaries._memo

    def test_multi_output(self):
        source = (
            "function [s, p] = both(a, b)\n"
            "s = a + b;\n"
            "p = a .* b;\n"
            "end\n"
        )
        summaries = summaries_for(source)
        assert summaries.result_dims("both", (ROW, ROW)) == (ROW, ROW)

    def test_recursion_guard_returns_unknown(self):
        source = (
            "function y = f(x)\n"
            "y = f(x);\n"
            "end\n"
        )
        summaries = summaries_for(source)
        # The self-referential signature must terminate with "unknown"
        # for the output, not diverge.
        assert summaries.result_dims("f", (ROW,)) == (None,)

    def test_parameter_reassignment_is_tracked(self):
        # Parameters are bound, not frozen: the body may reshape one.
        source = (
            "function y = reshaped(x)\n"
            "x = zeros(4, 1);\n"
            "y = x;\n"
            "end\n"
        )
        summaries = summaries_for(source)
        assert summaries.result_dims("reshaped", (ROW,)) == (COL,)


class TestEndToEnd:
    ANNOTATION_FREE = """\
function y = scaleadd(x, c)
y = x .* c + 1;
end
n = 8;
x = linspace(0, 7, 8);
w = scaleadd(x, 0.5);
z = zeros(1, 8);
for i=1:n
  z(i) = w(i) + x(i);
end
"""

    def test_call_result_shape_reaches_the_loop(self):
        env = infer_shapes(parse(self.ANNOTATION_FREE))
        assert str(env.get("w")) == "(1,*)"

    def test_loop_vectorizes_without_any_annotations(self):
        assert "%!" not in self.ANNOTATION_FREE
        result = vectorize_source(self.ANNOTATION_FREE)
        assert result.report.vectorized_loops == 1
        assert "for " not in result.source

    def test_program_lints_clean(self):
        # The function name must be recognized as a function, not an
        # undefined variable (no E101), and the shapes all check out.
        assert not lint_source(self.ANNOTATION_FREE)

    def test_multi_output_call_binds_both_shapes(self):
        source = (
            "function [s, p] = both(a, b)\n"
            "s = a + b;\n"
            "p = a .* b;\n"
            "end\n"
            "u = linspace(0, 1, 5);\n"
            "v = linspace(1, 2, 5);\n"
            "[s, p] = both(u, v);\n"
        )
        env = infer_shapes(parse(source))
        assert str(env.get("s")) == "(1,*)"
        assert str(env.get("p")) == "(1,*)"
