"""Tests for the dimension abstraction (§2.1): symbols, Dim algebra."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.dims.abstract import (
    Dim,
    ONE,
    RSym,
    STAR,
    compatible,
    equal,
    fmax,
    is_r,
)
from repro.errors import DimError

RI = RSym("i")
RJ = RSym("j")


class TestSymbols:
    def test_atoms_distinct(self):
        assert ONE is not STAR

    def test_rsym_equality(self):
        assert RSym("i") == RSym("i")
        assert RSym("i") != RSym("j")

    def test_rsym_serial_distinguishes_loops(self):
        # Two loops reusing index name 'i' must not be conflated.
        assert RSym("i", 1) != RSym("i", 2)

    def test_is_r(self):
        assert is_r(RI)
        assert not is_r(ONE) and not is_r(STAR)

    def test_repr(self):
        assert str(ONE) == "1" and str(STAR) == "*"
        assert str(RI) == "r_i"


class TestFmax:
    def test_paper_examples(self):
        assert fmax(ONE, STAR) is STAR
        assert fmax(STAR, ONE) is STAR
        assert fmax(ONE, ONE) is ONE
        assert fmax(ONE, RI) == RI
        assert fmax(RI, ONE) == RI

    def test_r_vs_star_undefined(self):
        assert fmax(RI, STAR) is None

    def test_distinct_r_undefined(self):
        assert fmax(RI, RJ) is None

    def test_same_r(self):
        assert fmax(RI, RI) == RI

    def test_empty(self):
        assert fmax() is ONE


class TestDimConstruction:
    def test_scalar(self):
        assert Dim.scalar().syms == (ONE,)

    def test_row_col_matrix(self):
        assert Dim.row().syms == (ONE, STAR)
        assert Dim.col().syms == (STAR, ONE)
        assert Dim.matrix().syms == (STAR, STAR)

    def test_parse(self):
        assert Dim.parse("(1,*)") == Dim.row()
        assert Dim.parse("(*,1)") == Dim.col()
        assert Dim.parse("(1)") == Dim.scalar()
        assert Dim.parse("*,*") == Dim.matrix()
        assert Dim.parse("(*)") == Dim((STAR,))

    def test_parse_rejects_garbage(self):
        with pytest.raises(DimError):
            Dim.parse("(1,%)")
        with pytest.raises(DimError):
            Dim.parse("()")

    def test_invalid_symbol(self):
        with pytest.raises(DimError):
            Dim(("x",))

    def test_empty_is_scalar(self):
        assert Dim(()) == Dim.scalar()

    def test_hash_and_eq(self):
        assert Dim((RI, ONE)) == Dim((RI, ONE))
        assert hash(Dim((RI, ONE))) == hash(Dim((RI, ONE)))

    def test_repr(self):
        assert repr(Dim((ONE, RI))) == "(1,r_i)"


class TestReduceReverse:
    def test_reduce_drops_trailing_ones(self):
        assert Dim((STAR, ONE)).reduce() == Dim((STAR,))
        assert Dim((STAR, STAR, ONE)).reduce() == Dim((STAR, STAR))

    def test_reduce_keeps_leading_ones(self):
        assert Dim((ONE, STAR)).reduce() == Dim((ONE, STAR))

    def test_reduce_scalar(self):
        assert Dim((ONE, ONE)).reduce() == Dim((ONE,))

    def test_reduce_idempotent(self):
        d = Dim((RI, ONE, ONE))
        assert d.reduce().reduce() == d.reduce()

    def test_reverse_row_col(self):
        assert Dim.row().reverse() == Dim.col()
        assert Dim.col().reverse() == Dim.row()

    def test_reverse_pads_rank_one(self):
        # A reduced column (r_i) flips to a row (1, r_i).
        assert Dim((RI,)).reverse() == Dim((ONE, RI))

    def test_reverse_scalar(self):
        assert Dim.scalar().reverse() == Dim((ONE, ONE))

    def test_pad(self):
        assert Dim((STAR,)).pad(2) == Dim((STAR, ONE))
        assert Dim((STAR, STAR)).pad(2) == Dim((STAR, STAR))


class TestPredicates:
    def test_is_scalar(self):
        assert Dim((ONE, ONE)).is_scalar
        assert not Dim((ONE, RI)).is_scalar

    def test_is_matrix(self):
        assert Dim((STAR, STAR)).is_matrix
        assert Dim((RI, RJ)).is_matrix
        assert not Dim((ONE, STAR)).is_matrix

    def test_is_vector(self):
        assert Dim((ONE, STAR)).is_vector
        assert Dim((RI, ONE)).is_vector
        assert not Dim((ONE, ONE)).is_vector

    def test_is_row_col(self):
        assert Dim((ONE, STAR)).is_row and not Dim((ONE, STAR)).is_col
        assert Dim((STAR, ONE)).is_col and not Dim((STAR, ONE)).is_row
        assert Dim((RI,)).is_col

    def test_r_syms(self):
        assert Dim((RI, RJ)).r_syms() == frozenset({RI, RJ})
        assert Dim.matrix().r_syms() == frozenset()

    def test_has_duplicate_r(self):
        assert Dim((RI, RI)).has_duplicate_r()
        assert not Dim((RI, RJ)).has_duplicate_r()
        assert not Dim((STAR, STAR)).has_duplicate_r()

    def test_unvectorized(self):
        assert Dim((RI, RJ)).unvectorized() == Dim.scalar()
        assert Dim((RI, STAR)).unvectorized() == Dim((ONE, STAR))

    def test_axis_of(self):
        assert Dim((RI, RJ)).axis_of(RJ) == 1
        assert Dim((RI, RI)).axis_of(RI) is None
        assert Dim((STAR, STAR)).axis_of(RI) is None

    def test_replace_axis(self):
        assert Dim((RI, RJ)).replace_axis(0, ONE) == Dim((ONE, RJ))


class TestCompatibility:
    def test_reduced_equality(self):
        assert compatible(Dim((STAR, ONE)), Dim((STAR,)))
        assert compatible(Dim((ONE, ONE)), Dim((ONE,)))

    def test_row_col_incompatible(self):
        assert not compatible(Dim.row(), Dim.col())

    def test_r_incompatible_with_star(self):
        """The paper: although r_i is similar to *, they are NOT
        compatible."""
        assert not compatible(Dim((ONE, RI)), Dim((ONE, STAR)))

    def test_distinct_r_incompatible(self):
        """§2.2: r_i ≢ r_j even when loop bounds coincide."""
        assert not compatible(Dim((RI, RJ)), Dim((RJ, RI)))

    def test_strict_equality(self):
        assert equal(Dim((STAR, ONE)), Dim((STAR, ONE)))
        assert not equal(Dim((STAR, ONE)), Dim((STAR,)))


_syms = st.sampled_from([ONE, STAR, RSym("i"), RSym("j"), RSym("k")])
_dims = st.lists(_syms, min_size=1, max_size=4).map(Dim)


@settings(max_examples=200, deadline=None)
@given(_dims)
def test_reduce_idempotent_property(d):
    assert d.reduce().reduce() == d.reduce()


@settings(max_examples=200, deadline=None)
@given(_dims)
def test_reverse_involutive_on_rank2(d):
    padded = d.pad(2)
    if len(padded) == 2:
        assert padded.reverse().reverse() == padded


@settings(max_examples=200, deadline=None)
@given(_dims, _dims)
def test_compatibility_symmetric(a, b):
    assert compatible(a, b) == compatible(b, a)


@settings(max_examples=200, deadline=None)
@given(_dims)
def test_compatibility_reflexive(d):
    assert compatible(d, d)


@settings(max_examples=200, deadline=None)
@given(_dims, _dims, _dims)
def test_compatibility_transitive(a, b, c):
    if compatible(a, b) and compatible(b, c):
        assert compatible(a, c)


@settings(max_examples=200, deadline=None)
@given(_dims)
def test_unvectorized_has_no_r(d):
    assert not d.unvectorized().r_syms()
