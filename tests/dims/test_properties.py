"""Hypothesis property tests for the §2.1 dimension-abstraction lattice.

The unit tests in this directory pin down the paper's worked examples;
these properties assert the *algebra* holds over the whole abstract
domain: every symbol tuple built from ``{1, *, r_i}``, not just the
shapes that appear in the corpus.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dims.abstract import (
    ONE,
    STAR,
    Dim,
    RSym,
    compatible,
    fmax,
    is_r,
)
from repro.dims.vectorized import (
    COLON,
    assignment_compatible,
    collapse,
    dim_of_subscript,
    dim_of_transpose,
    pointwise_result,
)

syms = st.one_of(
    st.just(ONE),
    st.just(STAR),
    st.builds(RSym, st.sampled_from("ijk"), st.integers(0, 2)),
)
atom_syms = st.sampled_from([ONE, STAR])

dims = st.builds(Dim, st.lists(syms, min_size=1, max_size=4))
atom_dims = st.builds(Dim, st.lists(atom_syms, min_size=1, max_size=4))
subscripts = st.one_of(st.just(COLON), dims)

ALL_DEFAULTS = settings(max_examples=200, deadline=None)


# -- compatibility relation ------------------------------------------------

@ALL_DEFAULTS
@given(dims)
def test_compatible_reflexive(d):
    assert compatible(d, d)


@ALL_DEFAULTS
@given(dims, dims)
def test_compatible_symmetric(a, b):
    assert compatible(a, b) == compatible(b, a)


@ALL_DEFAULTS
@given(dims, dims, dims)
def test_compatible_transitive(a, b, c):
    if compatible(a, b) and compatible(b, c):
        assert compatible(a, c)


@ALL_DEFAULTS
@given(dims, st.integers(1, 5))
def test_padding_never_changes_compatibility(d, rank):
    assert compatible(d, d.pad(rank))


# -- freduce / freverse / pad --------------------------------------------

@ALL_DEFAULTS
@given(dims)
def test_reduce_idempotent(d):
    assert d.reduce().reduce() == d.reduce()


@ALL_DEFAULTS
@given(dims)
def test_reduce_drops_only_trailing_ones(d):
    reduced = d.reduce()
    assert d.syms[: len(reduced.syms)] == reduced.syms
    assert all(s is ONE for s in d.syms[len(reduced.syms):])


@ALL_DEFAULTS
@given(dims)
def test_reverse_involutive_up_to_rank2_padding(d):
    # freverse pads to rank 2 before flipping, so a double flip is the
    # identity on the rank-2-padded dimensionality.
    assert d.reverse().reverse() == d.pad(2)


@ALL_DEFAULTS
@given(dims)
def test_transpose_preserves_symbol_multiset(d):
    before = sorted(map(str, d.pad(2).syms))
    after = sorted(map(str, dim_of_transpose(d).syms))
    assert before == after


@ALL_DEFAULTS
@given(dims, st.integers(1, 5))
def test_reduce_of_pad_is_reduce(d, rank):
    assert d.pad(rank).reduce() == d.reduce()


# -- fmax ------------------------------------------------------------------

@ALL_DEFAULTS
@given(syms, syms)
def test_fmax_commutative(a, b):
    assert fmax(a, b) == fmax(b, a)


@ALL_DEFAULTS
@given(syms)
def test_fmax_one_is_identity(s):
    assert fmax(ONE, s) is s
    assert fmax(s, ONE) is s


@ALL_DEFAULTS
@given(syms)
def test_fmax_idempotent(s):
    assert fmax(s, s) is s


@ALL_DEFAULTS
@given(st.lists(syms, min_size=1, max_size=5))
def test_fmax_result_is_an_input_or_none(symbols):
    result = fmax(*symbols)
    assert result is None or result in symbols


@ALL_DEFAULTS
@given(st.lists(syms, min_size=1, max_size=5))
def test_fmax_none_iff_two_distinct_non_ones(symbols):
    distinct = {str(s) for s in symbols if s is not ONE}
    assert (fmax(*symbols) is None) == (len(distinct) > 1)


@ALL_DEFAULTS
@given(dims)
def test_collapse_is_fmax_over_entries(d):
    assert collapse(d) == fmax(*d.syms)


# -- Table 1 rules close over the abstraction ------------------------------

def _well_formed(d):
    assert isinstance(d, Dim)
    assert all(s is ONE or s is STAR or is_r(s) for s in d.syms)


@ALL_DEFAULTS
@given(dims, st.lists(subscripts, min_size=0, max_size=3))
def test_dim_of_subscript_closed(base, args):
    result = dim_of_subscript(base, args)
    if result is not None:
        _well_formed(result)


@ALL_DEFAULTS
@given(dims, dims)
def test_pointwise_result_closed_and_compatible(a, b):
    result = pointwise_result(a, b)
    if result is not None:
        _well_formed(result)
        # The result never invents extents: it is one of the operands.
        assert result == a or result == b


@ALL_DEFAULTS
@given(dims, dims)
def test_pointwise_result_symmetric_up_to_compat(a, b):
    ab = pointwise_result(a, b)
    ba = pointwise_result(b, a)
    assert (ab is None) == (ba is None)
    if ab is not None:
        assert compatible(ab, ba)


@ALL_DEFAULTS
@given(dims)
def test_pointwise_with_self_is_self(d):
    assert pointwise_result(d, d) == d


@ALL_DEFAULTS
@given(dims, dims)
def test_assignment_accepts_compatible_or_scalar_rhs(lhs, rhs):
    assert assignment_compatible(lhs, rhs) == (
        rhs.is_scalar or compatible(lhs, rhs))


# -- unvectorized / r bookkeeping -----------------------------------------

@ALL_DEFAULTS
@given(dims)
def test_unvectorized_erases_all_r_symbols(d):
    assert not d.unvectorized().r_syms()


@ALL_DEFAULTS
@given(dims)
def test_r_syms_sound(d):
    rs = d.r_syms()
    assert all(is_r(s) for s in rs)
    assert rs == frozenset(s for s in d.syms if is_r(s))


# -- annotation syntax round trip -----------------------------------------

@ALL_DEFAULTS
@given(atom_dims)
def test_parse_repr_round_trip_for_annotation_dims(d):
    # r symbols are not expressible in `%!` annotations, so the round
    # trip is only required over {1,*} tuples.
    assert Dim.parse(repr(d)) == d
