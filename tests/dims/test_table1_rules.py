"""Table 1 reproduction: the rules for vectorized dimensionalities.

Each test corresponds to one row of Table 1 (or a worked example from
§2 of the paper).  The rules are exercised both through the pure
functions in :mod:`repro.dims.vectorized` and through the checker's
expression traversal.
"""

import pytest

from repro.dims.abstract import Dim, ONE, RSym, STAR
from repro.dims.context import ShapeEnv
from repro.dims.vectorized import (
    COLON,
    collapse,
    dim_of_colon_expr,
    dim_of_ident,
    dim_of_matrix_literal,
    dim_of_scalar,
    dim_of_signed,
    dim_of_subscript,
    dim_of_transpose,
    assignment_compatible,
    pointwise_result,
)
from repro.mlang.parser import parse_expr
from repro.vectorizer.checker import CheckFailure, DimChecker
from repro.vectorizer.loop_info import LoopHeader
from repro.mlang.ast_nodes import num

RI = RSym("i")
RJ = RSym("j")


def checker(shapes: dict[str, str], loops: list[str],
            sequential=()) -> DimChecker:
    from repro.patterns.builtin import default_database

    env = ShapeEnv({name: Dim.parse(dims) for name, dims in shapes.items()})
    headers = [LoopHeader(var, num(10), RSym(var)) for var in loops]
    return DimChecker(env, headers, sequential_vars=sequential,
                      db=default_database())


def vdim(expr: str, shapes: dict[str, str], loops: list[str],
         sequential=()) -> Dim:
    chk = checker(shapes, loops, sequential)
    return chk.check_expr(parse_expr(expr)).dim


class TestTable1Rows:
    def test_scalar_constant(self):
        assert dim_of_scalar() == Dim.scalar()
        assert vdim("3", {}, ["i"]) == Dim.scalar()

    def test_loop_index_identifier(self):
        """dimi(i) = (1, r_i) when i is the loop index."""
        d = vdim("i", {}, ["i"])
        assert len(d) == 2 and d[0] is ONE and d[1] == RSym("i")

    def test_other_identifier_keeps_declared_dims(self):
        assert vdim("v", {"v": "(*,1)"}, ["i"]) == Dim.col()

    def test_colon_expression_is_row(self):
        assert dim_of_colon_expr() == Dim.row()
        assert vdim("1:3:20", {}, ["i"]) == Dim.row()

    def test_signed_expression(self):
        assert dim_of_signed(Dim((RI, ONE))) == Dim((RI, ONE))
        assert vdim("-v", {"v": "(*,1)"}, ["i"]) == Dim.col()

    def test_transposed_expression(self):
        assert dim_of_transpose(Dim((ONE, RI))) == Dim((RI, ONE))
        assert vdim("v'", {"v": "(*,1)"}, ["i"]) == Dim((ONE, STAR))


class TestSubscriptRule:
    def test_paper_example_column_vector(self):
        """dim(A) = (*,1)  ⇒  dimi(A(i)) = (r_i, 1)."""
        d = vdim("A(i)", {"A": "(*,1)"}, ["i"])
        assert d == Dim((RSym("i"), ONE))

    def test_row_vector_orientation(self):
        d = vdim("a(i)", {"a": "(1,*)"}, ["i"])
        assert d == Dim((ONE, RSym("i")))

    def test_matrix_single_subscript_takes_subscript_shape(self):
        """isMatrix(M) ⇒ dimi(M(e)) = dimi(e)."""
        d = vdim("A(i)", {"A": "(*,*)"}, ["i"])
        assert d == Dim((ONE, RSym("i")))

    def test_vector_indexed_by_matrix_expr(self):
        """isMatrix(e1) ⇒ result has e1's dims (Fig. 3's heq lookup)."""
        d = vdim("heq(im(i,j)+1)", {"heq": "(1,*)", "im": "(*,*)"},
                 ["i", "j"])
        assert d == Dim((RSym("i"), RSym("j")))

    def test_two_subscripts_fmax(self):
        d = vdim("M(i, j)", {"M": "(*,*)"}, ["i", "j"])
        assert d == Dim((RSym("i"), RSym("j")))

    def test_two_subscripts_with_scalar(self):
        d = vdim("M(i, h)", {"M": "(*,*)", "h": "(1)"}, ["i"])
        assert d == Dim((RSym("i"), ONE))

    def test_two_subscripts_with_colon(self):
        d = vdim("M(i, :)", {"M": "(*,*)"}, ["i"])
        assert d == Dim((RSym("i"), STAR))

    def test_colon_then_index(self):
        d = vdim("M(:, i)", {"M": "(*,*)"}, ["i"])
        assert d == Dim((STAR, RSym("i")))

    def test_lone_colon_flattens_to_column(self):
        d = vdim("M(:)", {"M": "(*,*)"}, [])
        assert d == Dim((STAR, ONE))

    def test_subscript_affine_in_index(self):
        d = vdim("a(2*i-1)", {"a": "(1,*)"}, ["i"])
        assert d == Dim((ONE, RSym("i")))

    def test_scalar_subscript_gives_scalar(self):
        assert vdim("a(3)", {"a": "(1,*)"}, []) == Dim.scalar()

    def test_mixed_extent_subscript_via_outer_broadcast(self):
        """A subscript mixing r_i and r_j is handled by the (extension)
        outer-broadcast pattern: a(i+j) gathers a repmat-built matrix."""
        d = vdim("a(i+j)", {"a": "(1,*)"}, ["i", "j"])
        assert d.r_syms() == {RSym("i"), RSym("j")}

    def test_mixed_extents_rejected_without_patterns(self):
        from repro.vectorizer.checker import CheckOptions

        chk = checker({"a": "(1,*)"}, ["i", "j"])
        chk.options = CheckOptions(patterns=False)
        with pytest.raises(CheckFailure):
            chk.check_expr(parse_expr("a(i+j)"))

    def test_pure_function_rule(self):
        assert dim_of_subscript(Dim.col(), [Dim((ONE, RI))]) == Dim((RI, ONE))
        assert dim_of_subscript(Dim.matrix(),
                                [Dim((ONE, RI)), Dim((ONE, RJ))]) \
            == Dim((RI, RJ))
        assert dim_of_subscript(Dim.matrix(), [COLON, Dim((ONE, RI))]) \
            == Dim((STAR, RI))
        # k==1 with isMatrix(M) or isMatrix(e1): the access takes the
        # subscript's shape (this is how Fig. 3's heq(im+1) works).
        assert dim_of_subscript(Dim.matrix(), [Dim((RI, RJ))]) \
            == Dim((RI, RJ))
        assert dim_of_subscript(Dim.col(), [Dim((RI, RJ))]) \
            == Dim((RI, RJ))
        # Multi-subscript access with a mixed-extent subscript is vetoed.
        assert dim_of_subscript(Dim.matrix(),
                                [Dim((RI, RJ)), Dim((ONE, RJ))]) is None


class TestCollapse:
    def test_collapse_examples(self):
        assert collapse(Dim((ONE, RI))) == RI
        assert collapse(Dim((ONE, STAR))) is STAR
        assert collapse(Dim((ONE, ONE))) is ONE
        assert collapse(Dim((RI, RJ))) is None
        assert collapse(Dim((RI, STAR))) is None


class TestMatrixLiteralRule:
    def test_row_of_scalars(self):
        assert dim_of_matrix_literal([3], [Dim.scalar()] * 3) == Dim.row()

    def test_column_of_scalars(self):
        assert dim_of_matrix_literal([1, 1], [Dim.scalar()] * 2) \
            == Dim.col()

    def test_single_element(self):
        assert dim_of_matrix_literal([1], [Dim.scalar()]) \
            == Dim((ONE, ONE))

    def test_bracketed_expression(self):
        assert dim_of_matrix_literal([1], [Dim.row()]) == Dim.row()

    def test_non_scalar_elements_rejected(self):
        assert dim_of_matrix_literal([2], [Dim.row(), Dim.row()]) is None


class TestCompatRules:
    def test_assignment_scalar_rhs_always_ok(self):
        assert assignment_compatible(Dim((RI, RJ)), Dim.scalar())

    def test_assignment_compatible_dims(self):
        assert assignment_compatible(Dim((RI, ONE)), Dim((RI,)))

    def test_assignment_incompatible(self):
        assert not assignment_compatible(Dim((ONE, RI)), Dim((RI, ONE)))

    def test_pointwise_rule1(self):
        assert pointwise_result(Dim((RI, RJ)), Dim((RI, RJ))) \
            == Dim((RI, RJ))

    def test_pointwise_scalar_left(self):
        assert pointwise_result(Dim.scalar(), Dim((RI, ONE))) \
            == Dim((RI, ONE))

    def test_pointwise_scalar_right(self):
        assert pointwise_result(Dim((ONE, RI)), Dim.scalar()) \
            == Dim((ONE, RI))

    def test_pointwise_incompatible(self):
        assert pointwise_result(Dim((ONE, RI)), Dim((RI, ONE))) is None
        assert pointwise_result(Dim((RI, RJ)), Dim((RJ, RI))) is None


class TestSemanticDisambiguation:
    """§2's motivating example: x(i) = y(i,h)*z(h,i) means different
    things depending on whether h is a scalar or a vector."""

    def test_h_scalar_pointwise(self):
        chk = checker({"x": "(1,*)", "y": "(*,*)", "z": "(*,*)",
                       "h": "(1)"}, ["i"])
        v = chk.check_expr(parse_expr("y(i,h)*z(h,i)"))
        # Scalar·scalar per iteration → promoted to '.*' with a transpose.
        from repro.mlang.printer import expr_to_source

        text = expr_to_source(v.expr)
        assert ".*" in text and "'" in text
        assert v.dim.r_syms() == {RSym("i")}

    def test_h_vector_dot_product(self):
        chk = checker({"x": "(1,*)", "y": "(*,*)", "z": "(*,*)",
                       "h": "(*,1)"}, ["i"])
        v = chk.check_expr(parse_expr("y(i,h)*z(h,i)"))
        from repro.mlang.printer import expr_to_source

        assert "sum(" in expr_to_source(v.expr)
        assert v.dim == Dim((ONE, RSym("i")))
