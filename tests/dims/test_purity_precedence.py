"""IMPURE_FUNCTIONS / SHAPE_BUILTINS overlap: impurity always wins.

``rand``/``randn`` have signature-determined result shapes and
``disp``/``fprintf``/``error`` are recognized statement forms, so all
five live in SHAPE_BUILTINS *and* IMPURE_FUNCTIONS.  The tables answer
different questions — "can the lattice type this call?" vs. "may the
vectorizer reorder it?" — and every legality decision must consult
impurity first.  These tests pin that precedence for each consumer:
the vectorizer's call rule, scalar-temp substitution, the dead-store
analysis, and the autofixer built on it.
"""

import pytest

from repro.dims.context import (
    IMPURE_FUNCTIONS,
    KNOWN_FUNCTIONS,
    SHAPE_BUILTINS,
)
from repro.staticcheck import fix_source, lint_source
from repro.vectorizer.driver import Vectorizer

#: The names deliberately present in both tables.
OVERLAP = frozenset("rand randn disp fprintf error".split())


def test_overlap_is_exactly_the_documented_set():
    assert IMPURE_FUNCTIONS & SHAPE_BUILTINS == OVERLAP


def test_every_impure_shape_builtin_is_still_known():
    # Being impure must not hide a name from the analyses' function
    # tables — calls still parse and type, they just never vectorize.
    assert OVERLAP <= KNOWN_FUNCTIONS


@pytest.mark.parametrize("call", ["rand(1, 1)", "randn(1, 1)"])
def test_impure_value_call_vetoes_vectorization(call):
    # rand's result shape is perfectly typeable — SHAPE_BUILTINS says
    # (1,1) here — yet hoisting it out of the loop would evaluate it
    # once instead of n times.  The loop must stay sequential.
    source = (
        "%! x(1,*) y(1,*) n(1)\n"
        "for i = 1:n\n"
        f"  y(i) = x(i) + {call};\n"
        "end\n"
    )
    result = Vectorizer().vectorize_source(source)
    assert result.report.vectorized_loops == 0
    reasons = [reason for loop in result.report.loops
               for outcome in loop.outcomes
               for reason in outcome.reasons]
    assert any("impure" in reason for reason in reasons), reasons


@pytest.mark.parametrize("stmt", ["disp(x(i));", "fprintf(x(i));"])
def test_impure_statement_call_vetoes_vectorization(stmt):
    source = (
        "%! x(1,*) n(1)\n"
        "for i = 1:n\n"
        f"  {stmt}\n"
        "end\n"
    )
    result = Vectorizer().vectorize_source(source)
    assert result.report.vectorized_loops == 0


def test_pure_control_still_vectorizes():
    # Control for the veto tests above: the same loop without the
    # impure call vectorizes fine.
    source = (
        "%! x(1,*) y(1,*) n(1)\n"
        "for i = 1:n\n"
        "  y(i) = x(i) + 1;\n"
        "end\n"
    )
    result = Vectorizer().vectorize_source(source)
    assert result.report.vectorized_loops == 1


def test_impure_store_is_not_a_dead_store():
    # `x = rand(...)` overwritten before use: deleting it would drop a
    # draw from the RNG stream, so W201 must not fire and the fixer
    # must leave the program alone.
    source = "x = rand(1, 3);\nx = zeros(1, 3);\ny = x;\n"
    assert not [d for d in lint_source(source) if d.code == "W201"]
    result = fix_source(source)
    assert result.source == source
    assert not result.changed


def test_pure_twin_is_a_dead_store():
    # Identical program with a pure initializer: now the store *is*
    # dead, proving the previous test exercised impurity, not some
    # other guard.
    source = "x = ones(1, 3);\nx = zeros(1, 3);\ny = x;\n"
    assert [d.code for d in lint_source(source)] == ["W201"]


def test_scalar_temp_substitution_blocks_impure_rhs():
    # A scalar temp holding an impure value must not be forwarded into
    # a later statement (substitution would reorder the call past the
    # loop boundary).  The loop still vectorizes, but t stays put.
    source = (
        "%! x(1,*) y(1,*) n(1) t(1)\n"
        "t = rand(1, 1);\n"
        "for i = 1:n\n"
        "  y(i) = x(i) * t;\n"
        "end\n"
    )
    result = Vectorizer(scalar_temps=True).vectorize_source(source)
    assert "t = rand(1, 1);" in result.source
    assert result.report.vectorized_loops == 1
