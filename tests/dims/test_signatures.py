"""Tests for builtin result-shape signatures."""

from repro.dims.abstract import Dim, ONE, STAR
from repro.dims.signatures import builtin_result_dim
from repro.mlang.ast_nodes import num
from repro.mlang.parser import parse_expr


def sig(name, arg_dims, args=None):
    dims = [Dim.parse(d) for d in arg_dims]
    exprs = [parse_expr(a) for a in args] if args else [None] * len(dims)
    return builtin_result_dim(name, dims, exprs)


class TestShapeQueries:
    def test_size_one_arg_row(self):
        assert sig("size", ["(*,*)"], ["A"]) == Dim.row()

    def test_size_two_args_scalar(self):
        assert sig("size", ["(*,*)", "(1)"], ["A", "1"]) == Dim.scalar()

    def test_numel_length(self):
        assert sig("numel", ["(*,*)"], ["A"]) == Dim.scalar()
        assert sig("length", ["(1,*)"], ["a"]) == Dim.scalar()


class TestConstructors:
    def test_zeros_square(self):
        assert sig("zeros", ["(1)"], ["n"]) == Dim.matrix()

    def test_zeros_explicit(self):
        assert sig("zeros", ["(1)", "(1)"], ["m", "n"]) == Dim.matrix()

    def test_zeros_row(self):
        assert sig("zeros", ["(1)", "(1)"], ["1", "n"]) == Dim.row()

    def test_zeros_col(self):
        assert sig("zeros", ["(1)", "(1)"], ["n", "1"]) == Dim.col()

    def test_zeros_one_by_one(self):
        assert sig("zeros", ["(1)"], ["1"]) == Dim.scalar().pad(2)

    def test_linspace(self):
        assert sig("linspace", ["(1)", "(1)", "(1)"],
                   ["0", "1", "n"]) == Dim.row()

    def test_eye(self):
        assert sig("eye", ["(1)"], ["n"]) == Dim.matrix()


class TestReductions:
    def test_sum_column(self):
        assert sig("sum", ["(*,1)"], ["v"]) == Dim.scalar()

    def test_sum_row(self):
        assert sig("sum", ["(1,*)"], ["v"]) == Dim.scalar()

    def test_sum_matrix_collapses_rows(self):
        assert sig("sum", ["(*,*)"], ["A"]) == Dim((ONE, STAR))

    def test_sum_with_dim1(self):
        assert sig("sum", ["(*,*)", "(1)"], ["A", "1"]) == Dim((ONE, STAR))

    def test_sum_with_dim2(self):
        assert sig("sum", ["(*,*)", "(1)"], ["A", "2"]) == Dim((STAR, ONE))

    def test_cumsum_preserves(self):
        assert sig("cumsum", ["(*,1)"], ["v"]) == Dim.col()

    def test_min_single(self):
        assert sig("min", ["(*,1)"], ["v"]) == Dim.scalar()

    def test_min_pairwise(self):
        assert sig("min", ["(*,1)", "(*,1)"], ["a", "b"]) == Dim.col()

    def test_min_pairwise_scalar(self):
        assert sig("min", ["(*,1)", "(1)"], ["a", "0"]) == Dim.col()


class TestStructured:
    def test_repmat_tile(self):
        assert sig("repmat", ["(*,1)", "(1)", "(1)"],
                   ["c", "1", "n"]) == Dim((STAR, STAR))

    def test_repmat_keep_rows(self):
        assert sig("repmat", ["(1,*)", "(1)", "(1)"],
                   ["r", "1", "2"]) == Dim((ONE, STAR))

    def test_diag_of_matrix_is_column(self):
        assert sig("diag", ["(*,*)"], ["A"]) == Dim.col()

    def test_diag_of_vector_is_matrix(self):
        assert sig("diag", ["(*,1)"], ["v"]) == Dim.matrix()

    def test_hist_is_row(self):
        assert sig("hist", ["(*,1)", "(1,*)"], ["x", "c"]) == Dim.row()

    def test_transpose(self):
        assert sig("transpose", ["(*,1)"], ["v"]) == Dim((ONE, STAR))

    def test_unknown_builtin(self):
        assert sig("frobnicate", ["(1)"], ["x"]) is None

    def test_reshape_literal_dims(self):
        assert sig("reshape", ["(*,*)", "(1)", "(1)"],
                   ["A", "1", "n"]) == Dim.row()
