"""Error-hierarchy tests: typing, positions, catchability."""

import pytest

from repro.errors import (
    AnnotationError,
    DependenceError,
    DimError,
    LexError,
    MatlabRuntimeError,
    ParseError,
    PatternError,
    ReproError,
    ShapeError,
    SourceError,
    TranslateError,
    VectorizeError,
)


class TestHierarchy:
    @pytest.mark.parametrize("cls", [
        SourceError, LexError, ParseError, AnnotationError, ShapeError,
        DimError, PatternError, DependenceError, VectorizeError,
        MatlabRuntimeError, TranslateError,
    ])
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    def test_source_errors_carry_position(self):
        error = ParseError("bad token", 3, 7)
        assert error.line == 3 and error.column == 7
        assert "3:7" in str(error)

    def test_source_error_without_position(self):
        error = LexError("oops")
        assert str(error) == "oops"

    def test_lexer_raises_catchable(self):
        from repro.mlang.lexer import tokenize

        with pytest.raises(ReproError):
            tokenize("`")

    def test_parser_raises_catchable(self):
        from repro.mlang.parser import parse

        with pytest.raises(ReproError):
            parse("for i=1:3")

    def test_runtime_raises_catchable(self):
        from repro import run_source

        with pytest.raises(ReproError):
            run_source("x = [1, 2] + [1; 2];")

    def test_annotation_raises_catchable(self):
        from repro import vectorize_source

        with pytest.raises(AnnotationError):
            vectorize_source("%! broken annotation !!\nx = 1;")

    def test_translate_raises_catchable(self):
        from repro.translate.numpy_backend import translate_source

        with pytest.raises(TranslateError):
            translate_source("x = what_is_this(1);")

    def test_parse_error_message_mentions_token(self):
        from repro.mlang.parser import parse

        with pytest.raises(ParseError) as info:
            parse("x = ;")
        assert "expected an expression" in str(info.value)
