"""Golden-file tests: the vectorized output of every corpus program is
snapshotted under ``tests/golden/`` and must not drift silently.

Regenerate after an intentional codegen change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden.py -q

then review the diff like any other code change.
"""

import os
from pathlib import Path

import pytest

from repro.vectorizer.driver import vectorize_source

CORPUS = Path(__file__).resolve().parent.parent / "examples" / "corpus"
GOLDEN = Path(__file__).resolve().parent / "golden"
UPDATE = bool(os.environ.get("REPRO_UPDATE_GOLDEN"))

FILES = sorted(CORPUS.glob("*.m"))


def _vectorized(path: Path) -> str:
    return vectorize_source(path.read_text()).source


def test_corpus_present():
    assert FILES, f"no corpus programs found under {CORPUS}"


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_vectorized_output_matches_golden(path):
    actual = _vectorized(path)
    golden_path = GOLDEN / f"{path.stem}.golden"
    if UPDATE:
        GOLDEN.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(actual)
        return
    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path}; regenerate with "
        "REPRO_UPDATE_GOLDEN=1")
    expected = golden_path.read_text()
    assert actual == expected, (
        f"vectorized output of {path.name} drifted from its golden "
        f"snapshot; if intentional, regenerate with REPRO_UPDATE_GOLDEN=1")


def test_no_stale_goldens():
    """Every snapshot corresponds to a live corpus program."""
    stems = {p.stem for p in FILES}
    stale = [g.name for g in GOLDEN.glob("*.golden") if g.stem not in stems]
    assert not stale, f"stale golden files without corpus programs: {stale}"
