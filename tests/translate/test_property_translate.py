"""Property: the transpiler agrees with the interpreter on random
loop programs (the DESIGN.md "transpiler soundness" invariant)."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.mlang.parser import parse
from repro.runtime.interp import Interpreter
from repro.runtime.values import values_equal
from repro.translate.numpy_backend import compile_source

N = 5

HEADER = "%! c1(*,1) r1(1,*) M1(*,*) s(1)\n"

LEAVES = ["c1(i)", "r1(i)", "M1(i,2)", "M1(2,i)", "s", "3", "i"]
OPS = st.sampled_from(["+", "-", ".*", "*"])


def _exprs(depth):
    leaf = st.sampled_from(LEAVES)
    if depth == 0:
        return leaf
    sub = _exprs(depth - 1)
    return st.one_of(
        leaf,
        st.builds(lambda a, op, b: f"({a}{op}{b})", sub, OPS, sub),
        st.builds(lambda a: f"sqrt(abs({a}))", leaf),
        st.builds(lambda a: f"({a})'", leaf),
    )


_targets = st.sampled_from(["o1(i)", "o2(i)", "M1(i,1)", "s"])


@st.composite
def programs(draw):
    statements = draw(st.lists(
        st.builds(lambda t, e: f"  {t} = {e};", _targets, _exprs(2)),
        min_size=1, max_size=4))
    conditional = draw(st.booleans())
    body = "\n".join(statements)
    prog = f"{HEADER}o1 = zeros(1, {N});\no2 = zeros(1, {N});\n"
    prog += f"for i=1:{N}\n{body}\nend\n"
    if conditional:
        prog += "if s > 0\n  o1 = o1*2;\nend\n"
    prog += "total = sum(o1) + sum(o2);\n"
    return prog


def _workspace(seed):
    rng = np.random.default_rng(seed)
    return {
        "c1": np.asfortranarray(rng.random((N, 1)) + 0.5),
        "r1": np.asfortranarray(rng.random((1, N)) + 0.5),
        "M1": np.asfortranarray(rng.random((N, N)) + 0.5),
        "s": 0.75,
    }


@settings(max_examples=100, deadline=None)
@given(programs())
def test_transpiler_matches_interpreter(source):
    env_keys = ("c1", "r1", "M1", "s")
    try:
        interpreted = Interpreter(seed=0).run(parse(source),
                                              env=_workspace(7))
        interp_error = None
    except Exception as error:  # MATLAB-level error (shape mismatch etc.)
        interpreted, interp_error = None, error

    fn = compile_source(source, extra_variables=env_keys)
    try:
        translated = fn(env=_workspace(7), seed=0)
        translate_error = None
    except Exception as error:
        translated, translate_error = None, error

    # Both fail (same MATLAB-level error) or both succeed identically.
    if interp_error is not None or translate_error is not None:
        assert interp_error is not None and translate_error is not None, (
            f"divergent failure for:\n{source}\n"
            f"interp: {interp_error!r}\ntranslate: {translate_error!r}")
        return
    assert set(interpreted) == set(translated)
    for name in interpreted:
        assert values_equal(interpreted[name], translated[name]), (
            f"variable {name!r} diverged for:\n{source}")
