"""Transpiler tests: generated-code structure plus full corpus equivalence
against the reference interpreter."""

import numpy as np
import pytest

from repro import vectorize_source
from repro.bench.harness import _copy_env
from repro.bench.workloads import WORKLOADS
from repro.errors import TranslateError
from repro.mlang.parser import parse
from repro.runtime.interp import Interpreter
from repro.runtime.values import values_equal
from repro.translate.numpy_backend import (
    compile_source,
    translate_source,
)


def run_python(source, env=None, seed=0, extra=()):
    return compile_source(source, extra_variables=extra)(
        env=env or {}, seed=seed)


class TestGeneratedStructure:
    def test_entry_point_and_variables(self):
        unit = translate_source("x = 1;\ny = x + 2;")
        assert unit.entry_point == "mprogram"
        assert set(unit.variables) == {"x", "y"}

    def test_builtin_resolved_as_call(self):
        unit = translate_source("s = sum([1, 2, 3]);")
        assert "_b['sum']" in unit.python_source

    def test_assigned_name_shadows_builtin(self):
        unit = translate_source("sum = 3;\nx = sum + 1;")
        assert "_b['sum']" not in unit.python_source

    def test_annotated_input_is_variable(self):
        unit = translate_source("%! data(*,1)\nx = data(2);")
        assert "v_data" in unit.python_source

    def test_unresolved_name_raises(self):
        with pytest.raises(TranslateError):
            translate_source("x = mystery(3);")

    def test_extra_variables_resolve(self):
        unit = translate_source("x = mystery(3);",
                                extra_variables=["mystery"])
        assert "index_read" in unit.python_source


class TestExecution:
    def test_scalar_program(self):
        out = run_python("x = 2 + 3;")
        assert out["x"] == 5.0

    def test_loop_program(self):
        out = run_python("s = 0;\nfor i=1:10\n s = s + i;\nend")
        assert out["s"] == 55.0

    def test_while_break_continue(self):
        out = run_python("""
s = 0;
k = 0;
while 1
  k = k + 1;
  if k > 10
    break;
  end
  if mod(k, 2) == 0
    continue;
  end
  s = s + k;
end
""")
        assert out["s"] == 25.0

    def test_indexing_and_growth(self):
        out = run_python("a(4) = 2;\nb = a(end);")
        assert out["b"] == 2.0

    def test_matrix_and_end(self):
        out = run_python("A = [1, 2; 3, 4];\nx = A(end, 1);")
        assert out["x"] == 3.0

    def test_colon_subscript(self):
        out = run_python("A = [1, 2; 3, 4];\nc = A(:, 2);")
        assert np.array_equal(np.asarray(out["c"]).ravel(), [2, 4])

    def test_functions(self):
        out = run_python("""
function y = twice(x)
y = 2*x;
end
r = twice(21);
""")
        assert out["r"] == 42.0

    def test_multi_output_function(self):
        out = run_python("""
function [a, b] = swap(x, y)
a = y;
b = x;
end
[u, v] = swap(1, 2);
""")
        assert out["u"] == 2.0 and out["v"] == 1.0

    def test_multi_output_size(self):
        out = run_python("A = zeros(2, 5);\n[m, n] = size(A);")
        assert out["m"] == 2.0 and out["n"] == 5.0

    def test_return_script_level(self):
        out = run_python("x = 1;\nreturn;\nx = 2;")
        assert out["x"] == 1.0

    def test_rand_seeded(self):
        a = run_python("x = rand(2, 2);", seed=11)["x"]
        b = run_python("x = rand(2, 2);", seed=11)["x"]
        assert np.array_equal(a, b)

    def test_no_broadcast_semantics_preserved(self):
        from repro.errors import MatlabRuntimeError

        with pytest.raises(MatlabRuntimeError):
            run_python("z = [1, 2] + [1; 2];")

    def test_for_over_matrix_columns(self):
        out = run_python(
            "c = 0;\nA = [1, 2; 3, 4];\nfor col=A\n c = c + sum(col);\nend")
        assert out["c"] == 10.0


LOOP_INDICES = {"i", "j", "k", "l"}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_corpus_transpiled_equivalence(name):
    """numpy_exec(translate(p)) == interpret(p) on the whole corpus."""
    workload = WORKLOADS[name]
    source = workload.source()
    env = workload.env(scale="tiny", seed=5)

    interpreted = Interpreter(seed=0).run(parse(source),
                                          env=_copy_env(env))
    translated = compile_source(source,
                                extra_variables=env.keys())(
        env=_copy_env(env), seed=0)
    for key in set(interpreted) - LOOP_INDICES:
        assert key in translated
        assert values_equal(interpreted[key], translated[key]), key


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_corpus_vectorized_then_transpiled(name):
    """The full pipeline: vectorize MATLAB, then compile the vectorized
    program to Python — outputs must still match the loop original."""
    workload = WORKLOADS[name]
    source = workload.source()
    vect = vectorize_source(source)
    env = workload.env(scale="tiny", seed=21)

    interpreted = Interpreter(seed=0).run(parse(source),
                                          env=_copy_env(env))
    translated = compile_source(vect.source,
                                extra_variables=env.keys())(
        env=_copy_env(env), seed=0)
    for output in workload.outputs:
        assert values_equal(interpreted[output], translated[output])
