"""Driver-level tests: recursion into rejected structures, report
contents, annotation/shape plumbing, idempotence."""

import pytest

from repro import ShapeEnv, Vectorizer, vectorize_source
from repro.dims.abstract import Dim


def compact(text):
    return "".join(text.split())


class TestRecursiveProcessing:
    def test_inner_loop_of_rejected_outer(self):
        """The outer loop has an if; its inner clean loop still
        vectorizes (outer index becomes a sequential scalar)."""
        out = vectorize_source("""
%! A(*,*) x(*,1) total(1) n(1) m(1)
for i=1:n
  if x(i) > 0
    total = total + 1;
  end
  for j=1:m
    A(i,j) = x(j)'*2;
  end
end
""").source
        assert "if " in out
        assert compact("A(i,1:m)=x(1:m)'*2;") in compact(out)

    def test_loop_inside_while(self):
        out = vectorize_source("""
%! y(*,1) x(*,1) n(1) k(1)
k = 0;
while k < 3
  for i=1:n
    y(i) = x(i)*2;
  end
  k = k + 1;
end
""").source
        assert compact("y(1:n)=x(1:n)*2;") in compact(out)
        assert "while" in out

    def test_loop_inside_if_branch(self):
        out = vectorize_source("""
%! y(*,1) x(*,1) n(1) flag(1)
if flag
  for i=1:n
    y(i) = x(i)+1;
  end
else
  y = x;
end
""").source
        assert compact("y(1:n)=x(1:n)+1;") in compact(out)

    def test_two_sibling_loops_reported_separately(self):
        result = vectorize_source("""
%! a(1,*) b(1,*) n(1)
for i=1:n
  a(i) = i;
end
for i=1:n
  b(i) = a(i)*2;
end
""")
        assert len(result.report.loops) == 2
        assert all(l.status == "vectorized" for l in result.report.loops)


class TestIdempotence:
    @pytest.mark.parametrize("name", ["histeq", "dot-products",
                                      "triangular-update"])
    def test_vectorizing_twice_is_stable(self, name):
        """Running the vectorizer over its own output changes nothing."""
        from repro.bench.workloads import WORKLOADS

        once = vectorize_source(WORKLOADS[name].source()).source
        twice = vectorize_source(once).source
        assert compact(once) == compact(twice)


class TestShapePlumbing:
    def test_external_shapes_argument(self):
        env = ShapeEnv({"q": Dim.col(), "w": Dim.col(), "n": Dim.scalar()})
        result = Vectorizer().vectorize_source("""
for i=1:n
  w(i) = q(i)*2;
end
""", shapes=env)
        assert "for " not in result.source

    def test_missing_shapes_block_vectorization(self):
        result = vectorize_source("""
for i=1:n
  w(i) = q(i)*2;
end
""")
        assert "for " in result.source
        assert "no shape information" in (
            result.report.loops[0].outcomes[0].reasons[-1])

    def test_annotation_after_loop_is_still_seen(self):
        # annotations are collected program-wide, not positionally
        result = vectorize_source("""
for i=1:n
  w(i) = q(i)*2;
end
%! q(*,1) w(*,1) n(1)
""")
        assert "for " not in result.source


class TestReportShape:
    def test_summary_text(self):
        result = vectorize_source("""
%! a(1,*) A(*,*) b(1,*) n(1)
for i=1:n
  a(i) = A(i,i)*b(i);
end
""")
        summary = result.report.summary()
        assert "vectorized" in summary
        assert "diagonal-access" in summary

    def test_no_loops(self):
        result = vectorize_source("x = 1;\n")
        assert result.report.summary() == "no loops found"
        assert result.report.vectorized_loops == 0

    def test_source_round_trips_through_parse(self):
        from repro.mlang.parser import parse

        result = vectorize_source("""
%! a(1,*) n(1)
for i=1:n
  a(i) = i*i;
end
""")
        assert parse(result.source) == result.program
