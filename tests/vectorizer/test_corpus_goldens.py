"""Golden snapshots: the exact vectorizer output for every corpus program.

These pin the generated source (whitespace-normalized) so that any
change to the checker, patterns, normalization, or printer that alters
output is visible in review.  Semantic equivalence is covered
separately by tests/integration; these are regression tripwires.
"""

import pytest

from repro import vectorize_source
from repro.bench.workloads import WORKLOADS

GOLDENS = {
    "scale-shift": "y(1:n)=2*x(1:n)+1;",
    "saxpy": "z(1:n)=a*x(1:n)+y(1:n);",
    "row-col-add": "z(1:n)=x(1:n)+y(1:n)';",
    "transpose-add": "A(1:m,1:n)=(B(1:n,1:m)+C(1:m,1:n)')';",
    "dot-products": "a(1:n)=sum(X(1:n,:)'.*Y(:,1:n),1);",
    "column-broadcast": "A(1:m,1:n)=B(1:m,1:n)+repmat(C(1:m),1,n);",
    "column-scale":
        "A(:,1:n)=B(:,1:n).*repmat(c(1:n)',size(B(:,1:n),1),1);",
    "diagonal-scale": "a(1:n)=A((1:n)+size(A,1)*((1:n)-1)).*b(1:n);",
    "histeq":
        "im2(1:size(im,1),1:size(im,2))="
        "heq(im(1:size(im,1),1:size(im,2))+1);",
    "matvec": "y(1:n)=y(1:n)+A(1:n,1:m)*x(1:m);",
    "running-sum": "s=s+x(1:n)'*x(1:n);",
    "normalize-rows": "B(1:m,1:n)=A(1:m,1:n).*repmat(w(1:m),1,n);",
    "outer-product":
        "P(1:m,1:n)=repmat(u(1:m),1,n).*repmat(v(1:n),m,1);",
    "power-series": "y(1:n)=exp(-x(1:n).^2/2)+cos(x(1:n))*0.25;",
    "threshold":
        "bw(1:size(im,1),1:size(im,2))=im(1:size(im,1),1:size(im,2))>t;",
    "triangular-update":
        "X(i,1:p)=X(i,1:p)-L(i,1:i-1)*X(1:i-1,1:p);",
    "quadratic-form": "phi(k)=phi(k)+(a(1:N,1:N)'*x_se(1:N))'*f(1:N);",
    "quad-nest":
        "y(1:n)=y(1:n)+(x(1:n)'*(A(1:n,1:n)*"
        "(B(1:n,1:n)'*C(1:n,1:n)))')';",
    "clamp": "y(1:n)=min(max(x(1:n),lo),hi);",
    "fir-filter":
        "y(1:size(x,1)-taps+1)=y(1:size(x,1)-taps+1)+"
        "(h(1:taps)'*x(repmat(1:size(x,1)-taps+1,taps,1)"
        "+repmat((1:taps)',1,size(x,1)-taps+1)-1))';",
}

#: Workloads whose output keeps a loop; golden is a fragment that must
#: appear plus the loop header that must survive.
PARTIAL_GOLDENS = {
    "convolution": ("out(1:size(im,1)-2,1:size(im,2)-2)=", "for di"),
    "jacobi": ("U((1:size(U,1)-2)+1,(1:size(U,2)-2)+1)=0.25*",
               "for t"),
    "mixed": ("b((1:n-1)+1)=x((1:n-1)+1)*3;", "for i"),
    "recurrence": ("a(i)=a(i-1)*1.1+1;", "for i"),
}


def compact(text: str) -> str:
    return "".join(text.split())


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_fully_vectorized_golden(name):
    out = vectorize_source(WORKLOADS[name].source()).source
    assert GOLDENS[name] in compact(out), out
    assert "for " not in out, out


@pytest.mark.parametrize("name", sorted(PARTIAL_GOLDENS))
def test_partial_golden(name):
    fragment, loop_header = PARTIAL_GOLDENS[name]
    out = vectorize_source(WORKLOADS[name].source()).source
    assert compact(fragment) in compact(out), out
    assert loop_header in out, out


def test_composite_golden():
    out = compact(vectorize_source(WORKLOADS["composite"].source()).source)
    assert compact(
        "B(2*(1:15),1)=(D(2*(1:15)+size(D,1)*(2*(1:15)-1))"
        ".*A(2*(1:15)+size(A,1)*(2*(1:15)-1))"
        "+sum(C(2*(1:15),:)'.*D(:,2*(1:15)),1))';") in out
    assert compact(
        "A(2*(1:15),2*(1:15)+1)=B(2*(1:15),ind)*C(ind,2*(1:15)+1)"
        "+D(2*(1:15)+1,2*(1:15))'-repmat(a(2*(2*(1:15))-1)',1,15);") in out
