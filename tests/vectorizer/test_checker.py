"""Dimension-checker tests: compatibility, transposes, promotion,
reductions, product planning, ablation switches."""

import pytest

from repro.dims.abstract import Dim, ONE, RSym, STAR
from repro.dims.context import ShapeEnv
from repro.mlang.ast_nodes import num
from repro.mlang.parser import parse_expr, parse_stmt
from repro.mlang.printer import expr_to_source, to_source
from repro.patterns.builtin import default_database
from repro.vectorizer.checker import (
    CheckFailure,
    CheckOptions,
    DimChecker,
    flatten_additive,
    flatten_star,
    is_additive_reduction,
    rebuild_additive,
)
from repro.vectorizer.loop_info import LoopHeader


def make_checker(shapes, loops, sequential=(), options=None, counts=None):
    env = ShapeEnv({k: Dim.parse(v) for k, v in shapes.items()})
    headers = []
    for k, var in enumerate(loops):
        count = parse_expr(counts[k]) if counts else num(10)
        headers.append(LoopHeader(var, count, RSym(var)))
    return DimChecker(env, headers, sequential_vars=sequential,
                      db=default_database(), options=options)


def checked_source(stmt_src, shapes, loops, **kw):
    chk = make_checker(shapes, loops, **kw)
    checked = chk.check_assign(parse_stmt(stmt_src))
    return to_source(checked.template).strip()


class TestFlatteners:
    def test_flatten_additive(self):
        terms = flatten_additive(parse_expr("a - b + c - d"))
        assert [(s, expr_to_source(e)) for s, e in terms] == [
            (1, "a"), (-1, "b"), (1, "c"), (-1, "d")]

    def test_flatten_additive_unary(self):
        terms = flatten_additive(parse_expr("-a + b"))
        assert terms[0][0] == -1

    def test_rebuild_round_trip(self):
        expr = parse_expr("a-b+c")
        assert rebuild_additive(flatten_additive(expr)) == expr

    def test_flatten_star(self):
        factors = flatten_star(parse_expr("a*b*c"))
        assert [expr_to_source(f) for f in factors] == ["a", "b", "c"]

    def test_flatten_star_respects_parens(self):
        factors = flatten_star(parse_expr("a*(b*c)"))
        assert len(factors) == 2

    def test_is_additive_reduction(self):
        assert is_additive_reduction(parse_stmt("s = s + x(i);"))
        assert is_additive_reduction(parse_stmt("s = s - x(i);"))
        assert is_additive_reduction(parse_stmt("s = x(i) + s;"))
        assert not is_additive_reduction(parse_stmt("s = -s + x(i);"))
        assert not is_additive_reduction(parse_stmt("s = 2*s + x(i);"))
        assert not is_additive_reduction(parse_stmt("s = x(i);"))


class TestAssignments:
    def test_simple_pointwise(self):
        out = checked_source("z(i) = x(i)+y(i);",
                             {"x": "(*,1)", "y": "(*,1)", "z": "(*,1)"},
                             ["i"])
        assert out == "z(i) = x(i)+y(i);"

    def test_transpose_on_rhs_operand(self):
        out = checked_source("z(i) = x(i)+y(i);",
                             {"x": "(*,1)", "y": "(1,*)", "z": "(*,1)"},
                             ["i"])
        assert out == "z(i) = x(i)+y(i)';"

    def test_transpose_of_whole_rhs(self):
        out = checked_source("z(i) = x(i)+y(i);",
                             {"x": "(1,*)", "y": "(1,*)", "z": "(*,1)"},
                             ["i"])
        assert out == "z(i) = (x(i)+y(i))';"

    def test_scalar_rhs_broadcast(self):
        out = checked_source("A(i, j) = 0;", {"A": "(*,*)"}, ["i", "j"])
        assert out == "A(i, j) = 0;"

    def test_incompatible_fails(self):
        with pytest.raises(CheckFailure):
            checked_source("z(i) = x(i)+Y(i, :);",
                           {"x": "(*,1)", "Y": "(*,*)", "z": "(*,1)"},
                           ["i"])

    def test_unknown_rhs_variable_fails(self):
        with pytest.raises(CheckFailure):
            checked_source("z(i) = q(i);", {"z": "(*,1)"}, ["i"])

    def test_unknown_write_target_assumed_row(self):
        out = checked_source("fresh(i) = x(i);",
                             {"x": "(1,*)"}, ["i"])
        assert out == "fresh(i) = x(i);"

    def test_write_to_loop_index_fails(self):
        with pytest.raises(CheckFailure):
            checked_source("i = x(i);", {"x": "(1,*)"}, ["i"])

    def test_promotion_power(self):
        out = checked_source("y(i) = x(i)^2;",
                             {"x": "(*,1)", "y": "(*,1)"}, ["i"])
        assert out == "y(i) = x(i).^2;"

    def test_promotion_division(self):
        out = checked_source("y(i) = x(i)/w(i);",
                             {"x": "(*,1)", "w": "(*,1)", "y": "(*,1)"},
                             ["i"])
        assert out == "y(i) = x(i)./w(i);"

    def test_pointwise_function(self):
        out = checked_source("y(i) = cos(x(i));",
                             {"x": "(*,1)", "y": "(*,1)"}, ["i"])
        assert out == "y(i) = cos(x(i));"

    def test_nonpointwise_function_fails(self):
        with pytest.raises(CheckFailure):
            checked_source("y(i) = sum(X(i, :));",
                           {"X": "(*,*)", "y": "(*,1)"}, ["i"])

    def test_loop_invariant_call_ok(self):
        out = checked_source("y(i) = x(i)*size(X, 1);",
                             {"x": "(*,1)", "y": "(*,1)", "X": "(*,*)"},
                             ["i"])
        assert out == "y(i) = x(i)*size(X, 1);"

    def test_range_with_loop_var_fails(self):
        with pytest.raises(CheckFailure):
            checked_source("y(i) = sum(x(1:i));",
                           {"x": "(*,1)", "y": "(*,1)"}, ["i"])

    def test_sequential_outer_var_is_scalar(self):
        out = checked_source("X(k, j) = L(k, j)*2;",
                             {"X": "(*,*)", "L": "(*,*)"}, ["j"],
                             sequential=("k",))
        assert out == "X(k, j) = L(k, j)*2;"


class TestReductions:
    def test_scalar_accumulator(self):
        out = checked_source("s = s + x(i);",
                             {"s": "(1)", "x": "(*,1)"}, ["i"])
        assert out == "s = s+sum(x(i), 1);"

    def test_row_accumulator_gamma_axis2(self):
        out = checked_source("a(i) = a(i) + B(i, j);",
                             {"a": "(*,1)", "B": "(*,*)"}, ["i", "j"])
        assert out == "a(i) = a(i)+sum(B(i, j), 2);"

    def test_subtracting_accumulation(self):
        out = checked_source("s = s - x(i);",
                             {"s": "(1)", "x": "(*,1)"}, ["i"])
        assert out == "s = s-sum(x(i), 1);"

    def test_tripcount_for_invariant_term(self):
        # s = s + c with c loop-invariant: Γ multiplies by the trip count.
        out = checked_source("s = s + c;", {"s": "(1)", "c": "(1)"},
                             ["i"], counts=["n"])
        assert out == "s = s+n*c;"

    def test_mixed_invariant_and_varying(self):
        # Scalar c folds into the pointwise sum: Σ(x_i + c) as one sum.
        out = checked_source("s = s + x(i) + c;",
                             {"s": "(1)", "x": "(*,1)", "c": "(1)"},
                             ["i"], counts=["n"])
        assert out == "s = s+sum(x(i)+c, 1);"

    def test_gamma_tripcount_for_invariant_beside_reduced(self):
        # E = A(i,k)*x(k) + c: the matmul reduces k, so Γ must lift the
        # invariant c by the trip count before the '+'.
        out = checked_source("y(i) = y(i) + A(i, k)*x(k) + c;",
                             {"y": "(*,1)", "A": "(*,*)", "x": "(*,1)",
                              "c": "(1)"},
                             ["i", "k"], counts=["n", "m"])
        assert "m*c" in out

    def test_matmul_reduction(self):
        out = checked_source("y(i) = y(i) + A(i, k)*x(k);",
                             {"y": "(*,1)", "A": "(*,*)", "x": "(*,1)"},
                             ["i", "k"])
        assert out == "y(i) = y(i)+A(i, k)*x(k);"

    def test_matmul_reduction_with_transpose(self):
        out = checked_source("y(i) = y(i) + A(k, i)*x(k);",
                             {"y": "(*,1)", "A": "(*,*)", "x": "(*,1)"},
                             ["i", "k"])
        assert out == "y(i) = y(i)+A(k, i)'*x(k);"

    def test_non_reduction_form_fails(self):
        with pytest.raises(CheckFailure):
            checked_source("s = x(i);", {"s": "(1)", "x": "(*,1)"}, ["i"])

    def test_degenerate_reduction_fails(self):
        with pytest.raises(CheckFailure):
            checked_source("s = s;", {"s": "(1)"}, ["i"])

    def test_double_reduction(self):
        out = checked_source("s = s + A(i, j);",
                             {"s": "(1)", "A": "(*,*)"}, ["i", "j"])
        assert out.count("sum(") == 2

    def test_reduction_disabled_option(self):
        with pytest.raises(CheckFailure):
            checked_source("s = s + x(i);", {"s": "(1)", "x": "(*,1)"},
                           ["i"], options=CheckOptions(reductions=False))

    def test_power_of_reduced_value_rejected(self):
        # s = s + (A(i,k)*x(k))^2 must not reduce inside the power.
        with pytest.raises(CheckFailure):
            checked_source("s = s + (A(i, k)*x(k))^2;",
                           {"s": "(*,1)", "A": "(*,*)", "x": "(*,1)"},
                           ["k"], sequential=("i",))


class TestProductPlanning:
    SHAPES = {"y": "(*,1)", "x": "(*,1)", "A": "(*,*)", "B": "(*,*)",
              "C": "(*,*)", "phi": "(*,1)", "a": "(*,*)",
              "x_se": "(*,1)", "f": "(*,1)"}

    def test_menon2_chain(self):
        out = checked_source("phi(k) = phi(k)+a(i,j)*x_se(i)*f(j);",
                             self.SHAPES, ["i", "j"], sequential=("k",))
        assert "'" in out  # needs a transposed operand

    def test_menon3_quadruple(self):
        out = checked_source(
            "y(i) = y(i)+x(j)*A(i,k)*B(l,k)*C(l,j);",
            self.SHAPES, ["i", "j", "k", "l"])
        assert out.startswith("y(i) = y(i)+")

    def test_regroup_disabled_fails_menon3(self):
        with pytest.raises(CheckFailure):
            checked_source(
                "y(i) = y(i)+x(j)*A(i,k)*B(l,k)*C(l,j);",
                self.SHAPES, ["i", "j", "k", "l"],
                options=CheckOptions(product_regroup=False))

    def test_chain_too_long(self):
        options = CheckOptions(max_chain=2)
        with pytest.raises(CheckFailure):
            checked_source("y(i) = y(i)+x(j)*A(i,k)*B(l,k)*C(l,j);",
                           self.SHAPES, ["i", "j", "k", "l"],
                           options=options)


class TestAblationSwitches:
    def test_transposes_disabled(self):
        with pytest.raises(CheckFailure):
            checked_source("z(i) = x(i)+y(i);",
                           {"x": "(*,1)", "y": "(1,*)", "z": "(*,1)"},
                           ["i"], options=CheckOptions(transposes=False))

    def test_patterns_disabled_diag(self):
        with pytest.raises(CheckFailure):
            checked_source("a(i) = A(i, i);",
                           {"a": "(1,*)", "A": "(*,*)"}, ["i"],
                           options=CheckOptions(patterns=False))

    def test_promotion_disabled(self):
        with pytest.raises(CheckFailure):
            checked_source("y(i) = x(i)^2;",
                           {"x": "(*,1)", "y": "(*,1)"}, ["i"],
                           options=CheckOptions(promotion=False))


class TestPatternsInChecker:
    def test_diag_on_lhs(self):
        out = checked_source("A(i, i) = b(i);",
                             {"A": "(*,*)", "b": "(1,*)"}, ["i"])
        assert out == "A(i+size(A, 1)*(i-1)) = b(i);"

    def test_broadcast_needs_tripcount(self):
        out = checked_source("A(i, j) = B(i, j)+C(i);",
                             {"A": "(*,*)", "B": "(*,*)", "C": "(*,1)"},
                             ["i", "j"], counts=["m", "n"])
        assert "repmat(C(i), 1, n)" in out

    def test_used_patterns_reported(self):
        chk = make_checker({"a": "(1,*)", "A": "(*,*)", "b": "(1,*)"},
                           ["i"])
        checked = chk.check_assign(parse_stmt("a(i) = A(i,i)*b(i);"))
        assert checked.used_patterns == ["diagonal-access"]

    def test_speculative_patterns_not_reported(self):
        chk = make_checker({"X": "(*,*)", "L": "(*,*)"},
                           ["k", "j"], sequential=("i",))
        checked = chk.check_assign(
            parse_stmt("X(i,k) = X(i,k)-L(i,j)*X(j,k);"))
        assert checked.used_patterns == []
        assert checked.is_reduction
