"""Golden reproduction tests for every worked example in the paper.

Comparisons normalize whitespace (the printer inserts spaces after
commas; the paper does not).  Where our output differs from the paper's
in an algebraically equivalent way, the test pins *our* form and a
comment records the equivalence — EXPERIMENTS.md discusses each case.
"""

import pytest

from repro import vectorize_source


def compact(text: str) -> str:
    return "".join(text.split())


def vectorized(source: str) -> str:
    return vectorize_source(source).source


class TestSection2:
    def test_transpose_insertion(self):
        """§2.2's worked example, including the outer transpose of the
        whole right-hand side."""
        out = vectorized("""
%! A(*,*) B(*,*) C(*,*) m(1) n(1)
for i=1:m
  for j=1:n
    A(i,j)=B(j,i)+C(i,j);
  end
end
""")
        assert compact("A(1:m,1:n)=(B(1:n,1:m)+C(1:m,1:n)')';") in \
            compact(out)

    def test_ri_not_rj_even_with_equal_bounds(self):
        """§2.2: with m == n the transpose must STILL be inserted —
        r_i ≢ r_j."""
        out = vectorized("""
%! A(*,*) B(*,*) n(1)
for i=1:n
  for j=1:n
    A(i,j)=B(j,i);
  end
end
""")
        assert "'" in out

    def test_scalar_h_pointwise(self):
        out = vectorized("""
%! x(1,*) y(*,*) z(*,*) h(1) n(1)
for i=1:n
  x(i)=y(i,h)*z(h,i);
end
""")
        # Paper prints x(1:n)=y(1:n,h).*(z(h,1:n)'), a column — which
        # cannot be assigned to the row x; we transpose the whole RHS.
        assert compact("x(1:n)=(y(1:n,h).*z(h,1:n)')';") in compact(out)

    def test_vector_h_dot_product(self):
        out = vectorized("""
%! x(1,*) y(*,*) z(*,*) h(*,1) n(1)
for i=1:n
  x(i)=y(i,h)*z(h,i);
end
""")
        # The paper suggests y(1:n,h)*z(h,1:n), which is an n×n product;
        # the sum form computes exactly the per-i dot products.
        assert compact("x(1:n)=sum(y(1:n,h)'.*z(h,1:n),1);") in compact(out)


class TestTable2:
    def test_pattern1_dot_product(self):
        out = vectorized("""
%! a(1,*) X(*,*) Y(*,*) n(1)
for i=1:n,
  a(i)=X(i,:)*Y(:,i);
end
""")
        # Paper: a(1:n)=sum(X(1:n,:)'.*Y(:,1:n)); we make the column-sum
        # axis explicit.
        assert compact("a(1:n)=sum(X(1:n,:)'.*Y(:,1:n),1);") in compact(out)

    def test_pattern2_repmat(self):
        out = vectorized("""
%! A(*,*) B(*,*) C(*,1) m(1) n(1)
for i=1:m
  for j=1:n
    A(i,j)=B(i,j)+C(i);
  end
end
""")
        # Paper: repmat(C(1:m),1,size(1:n,2)); our trip count prints as n.
        assert compact("A(1:m,1:n)=B(1:m,1:n)+repmat(C(1:m),1,n);") in \
            compact(out)

    def test_pattern3_diagonal(self):
        out = vectorized("""
%! a(1,*) A(*,*) b(1,*) n(1)
for i=1:n
  a(i)=A(i,i)*b(i);
end
""")
        assert compact("a(1:n)=A((1:n)+size(A,1)*((1:n)-1)).*b(1:n);") in \
            compact(out)


class TestFigure3:
    SOURCE = """
%! im(*,*) im2(*,*) heq(1,*) h(1,*)
h=hist(im(:),0:255);
heq=255*cumsum(h(:))/sum(h(:));
for i=1:size(im,1),
  for j=1:size(im,2),
    im2(i,j)=heq(im(i,j)+1);
  end
end
"""

    def test_histogram_equalization(self):
        out = vectorized(self.SOURCE)
        expected = ("im2(1:size(im,1),1:size(im,2))="
                    "heq(im(1:size(im,1),1:size(im,2))+1);")
        assert compact(expected) in compact(out)

    def test_preamble_untouched(self):
        out = vectorized(self.SOURCE)
        assert "hist(im(:), 0:255)" in out
        assert "cumsum" in out

    def test_no_loops_remain(self):
        assert "for " not in vectorized(self.SOURCE)


class TestFigure4:
    SOURCE = """
%! A(*,*) B(*,*) C(*,*) D(*,*) h(*) a(1,*) ind(1,*)
ind=1:750;
for i=2:2:1500,
  B(i,1)=D(i,i)*A(i,i)+C(i,:)*D(:,i);
  for j=3:2:1501,
    A(i,j)=B(i,ind)*C(ind,j)+D(j,i)'-a(2*i-1);
  end
end
"""

    def test_both_statements_vectorized(self):
        out = vectorized(self.SOURCE)
        assert "for " not in out

    def test_loop_normalization_forms(self):
        out = vectorized(self.SOURCE)
        assert "2*(1:750)" in compact(out)
        assert "2*(1:750)+1" in compact(out)

    def test_statement1_diagonals_and_dot(self):
        out = compact(vectorized(self.SOURCE))
        # Paper (modulo where the transpose is applied — we transpose the
        # whole sum, the paper transposes each addend):
        expected = compact("""
B(2*(1:750),1)=(D(2*(1:750)+size(D,1)*(2*(1:750)-1))
.*A(2*(1:750)+size(A,1)*(2*(1:750)-1))
+sum(C(2*(1:750),:)'.*D(:,2*(1:750)),1))';
""")
        assert expected in out

    def test_statement2_matmul_and_repmat(self):
        out = compact(vectorized(self.SOURCE))
        expected = compact("""
A(2*(1:750),2*(1:750)+1)=B(2*(1:750),ind)*C(ind,2*(1:750)+1)
+D(2*(1:750)+1,2*(1:750))'-repmat(a(2*(2*(1:750))-1)',1,750);
""")
        assert expected in out

    def test_statement_order_preserved(self):
        out = vectorized(self.SOURCE)
        assert out.index("B(2*(1:750), 1)") < out.index("A(2*(1:750), 2*")


class TestFigure5Menon:
    def test_example1_triangular_update(self):
        out = vectorized("""
%! X(*,*) L(*,*) i(1) p(1)
for k=1:p,
  for j=1:(i-1),
    X(i,k)=X(i,k)-L(i,j)*X(j,k);
  end
end
""")
        assert compact("X(i,1:p)=X(i,1:p)-L(i,1:i-1)*X(1:i-1,1:p);") in \
            compact(out)

    def test_example2_quadratic_form(self):
        out = vectorized("""
%! phi(*,1) a(*,*) x_se(*,1) f(*,1) k(1) N(1)
for i=1:N,for j=1:N
  phi(k)=phi(k)+a(i,j)*x_se(i)*f(j);
end end
""")
        # Paper: phi(k)+sum(a'*x_se.*f,1).  Ours reduces r_j through a
        # second matmul instead of sum(·,1) — algebraically identical:
        # (a'x)'f = Σ_j (a'x)_j f_j.
        assert compact("phi(k)=phi(k)+(a(1:N,1:N)'*x_se(1:N))'*f(1:N);") \
            in compact(out)

    def test_example3_quadruple_nest(self):
        out = vectorized("""
%! y(*,1) x(*,1) A(*,*) B(*,*) C(*,*) n(1)
for i=1:n,for j=1:n,for k=1:n,for l=1:n
  y(i)=y(i)+x(j)*A(i,k)*B(l,k)*C(l,j);
end end end end
""")
        # Paper: y+x'*(A*B'*C)'.  Our planner groups A*(B'*C) — the same
        # product — and transposes the whole term for the column target.
        out_c = compact(out)
        assert "for" not in out_c
        assert compact("y(1:n)=y(1:n)+") in out_c
        assert "x(1:n)'*" in out_c

    def test_all_examples_fully_vectorized(self):
        for src in [
            "%! X(*,*) L(*,*) i(1) p(1)\nfor k=1:p\nfor j=1:(i-1)\n"
            "X(i,k)=X(i,k)-L(i,j)*X(j,k);\nend\nend",
        ]:
            assert "for " not in vectorized(src)


class TestNegativeCases:
    def test_loop_carried_recurrence_stays(self):
        out = vectorized("""
%! a(1,*) n(1)
for i=2:n
  a(i)=a(i-1)+1;
end
""")
        assert "for " in out

    def test_conditional_rejected(self):
        source = """
%! a(1,*) n(1)
for i=1:n
  if a(i) > 0
    a(i) = 0;
  end
end
"""
        result = vectorize_source(source)
        assert "for " in result.source
        assert result.report.loops[0].status == "rejected"

    def test_index_write_rejected(self):
        result = vectorize_source("""
%! a(1,*) n(1)
for i=1:n
  i = i + 1;
  a(i) = 0;
end
""")
        assert result.report.loops[0].status == "rejected"

    def test_while_loop_not_a_candidate(self):
        result = vectorize_source("""
%! a(1,*) n(1)
k = 1;
while k < n
  a(k) = k;
  k = k + 1;
end
""")
        assert "while" in result.source

    def test_unvectorizable_kept_byte_identical(self):
        source = """%! a(1,*) n(1)
for i = 2:n
  a(i) = a(i-1)+1;
end
"""
        result = vectorize_source(source)
        assert source.strip() in result.source.strip()
