"""Property: the simplification passes preserve runtime semantics.

Random expressions over a fixed workspace are evaluated before and
after ``fold_constants`` + ``simplify_transposes``; the results must be
identical (or both raise the same class of MATLAB error).
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.errors import MatlabRuntimeError
from repro.mlang.parser import parse_expr
from repro.runtime.interp import Interpreter
from repro.runtime.values import values_equal
from repro.vectorizer.simplify import fold_constants, simplify_transposes

_LEAVES = st.sampled_from(["r", "c", "M", "N", "s", "2", "0", "1"])
_OPS = st.sampled_from(["+", "-", ".*", "*", "./"])


def _exprs(depth):
    leaf = _LEAVES
    if depth == 0:
        return leaf
    sub = _exprs(depth - 1)
    return st.one_of(
        leaf,
        st.builds(lambda a, op, b: f"({a}{op}{b})", sub, _OPS, sub),
        st.builds(lambda a: f"({a})'", sub),
        st.builds(lambda a: f"(-({a}))", sub),
    )


def _workspace():
    rng = np.random.default_rng(23)
    return {
        "r": np.asfortranarray(rng.random((1, 4)) + 0.5),
        "c": np.asfortranarray(rng.random((4, 1)) + 0.5),
        "M": np.asfortranarray(rng.random((4, 4)) + 0.5),
        "N": np.asfortranarray(rng.random((4, 4)) + 0.5),
        "s": 1.5,
    }


def _evaluate(tree):
    interp = Interpreter(seed=0)
    try:
        return ("ok", interp.eval(tree, _workspace()))
    except MatlabRuntimeError:
        return ("error", None)


@settings(max_examples=250, deadline=None)
@given(_exprs(3))
def test_simplify_preserves_value(source):
    tree = parse_expr(source)
    simplified = simplify_transposes(fold_constants(tree))
    before = _evaluate(tree)
    after = _evaluate(simplified)
    assert before[0] == after[0], source
    if before[0] == "ok":
        assert values_equal(before[1], after[1]), source
