"""Regression tests for soundness guards beyond the paper's text."""

import numpy as np
import pytest

from repro import run_source, vectorize_source
from repro.runtime.values import values_equal


class TestImpureFunctions:
    def test_rand_call_not_hoisted(self):
        """rand(1) per iteration must not become one rand(1) for all."""
        out = vectorize_source("""
%! x(*,1) n(1)
for i=1:n
  x(i) = rand(1) + 1;
end
""")
        assert "for " in out.source

    def test_randn_not_hoisted(self):
        out = vectorize_source("""
%! x(*,1) n(1)
for i=1:n
  x(i) = 2*randn(1, 1);
end
""")
        assert "for " in out.source

    def test_pure_call_still_hoistable(self):
        out = vectorize_source("""
%! x(*,1) y(*,1) A(*,*) n(1)
for i=1:n
  y(i) = x(i)*size(A, 1);
end
""")
        assert "for " not in out.source

    def test_loop_with_disp_left_alone(self):
        out = vectorize_source("""
%! x(*,1) n(1)
for i=1:n
  disp(x(i));
end
""")
        assert "for " in out.source


class TestNonlinearReductionGuards:
    def test_power_of_matmul_reduction_not_pushed_through(self):
        """Σ_k (A(i,k)x(k))² ≠ (Σ_k A(i,k)x(k))² — must stay sequential
        (over k) rather than reduce inside the power."""
        source = """
%! s(*,1) A(*,*) x(*,1) n(1) m(1)
for i=1:n
  for k=1:m
    s(i) = s(i) + (A(i,k)*x(k))^2;
  end
end
"""
        result = vectorize_source(source)
        rng = np.random.default_rng(0)
        env = {
            "s": np.asfortranarray(np.zeros((4, 1))),
            "A": np.asfortranarray(rng.random((4, 3))),
            "x": np.asfortranarray(rng.random((3, 1))),
            "n": 4.0,
            "m": 3.0,
        }
        base = run_source(source, env=dict(env))
        vect = run_source(result.source, env=dict(env))
        assert values_equal(base["s"], vect["s"])

    def test_division_by_reduced_value_rejected(self):
        """Σ_k (a_i / b_k) ≠ a_i / Σ_k b_k."""
        source = """
%! s(*,1) a(*,1) b(*,1) n(1) m(1)
for i=1:n
  for k=1:m
    s(i) = s(i) + a(i)/b(k);
  end
end
"""
        result = vectorize_source(source)
        rng = np.random.default_rng(1)
        env = {
            "s": np.asfortranarray(np.zeros((4, 1))),
            "a": np.asfortranarray(rng.random((4, 1))),
            "b": np.asfortranarray(rng.random((3, 1)) + 1.0),
            "n": 4.0,
            "m": 3.0,
        }
        base = run_source(source, env=dict(env))
        vect = run_source(result.source, env=dict(env))
        assert values_equal(base["s"], vect["s"])

    def test_same_var_reduced_twice_rejected(self):
        """(Σ_k a_k)·(Σ_k b_k) ≠ Σ_k a_k b_k — disjoint-ρ requirement."""
        source = """
%! s(1) a(*,1) b(*,1) A(*,*) m(1)
for k=1:m
  s = s + (A(1,k)*a(k))*(A(2,k)*b(k));
end
"""
        result = vectorize_source(source)
        rng = np.random.default_rng(2)
        env = {
            "s": 0.0,
            "a": np.asfortranarray(rng.random((3, 1))),
            "b": np.asfortranarray(rng.random((3, 1))),
            "A": np.asfortranarray(rng.random((2, 3))),
            "m": 3.0,
        }
        base = run_source(source, env=dict(env))
        vect = run_source(result.source, env=dict(env))
        assert values_equal(base["s"], vect["s"])


class TestOrderingGuards:
    def test_anti_dependence_statement_order(self):
        """c reads the OLD b: the vectorized statements must keep c's
        read before b's write."""
        source = """
%! a(1,*) b(1,*) c(1,*) n(1)
b = 1:6;
for i=1:6
  c(i) = b(i)+1;
  b(i) = a(i)*2;
end
"""
        result = vectorize_source(source)
        rng = np.random.default_rng(3)
        env = {"a": np.asfortranarray(rng.random((1, 6)))}
        base = run_source(source, env=dict(env))
        vect = run_source(result.source, env=dict(env))
        assert values_equal(base["c"], vect["c"])
        assert values_equal(base["b"], vect["b"])

    def test_flow_into_later_loop(self):
        """A vectorized first loop must still feed a second loop."""
        source = """
%! x(1,*) y(1,*) z(1,*) n(1)
x = 1:5;
n = 5;
for i=1:n
  y(i) = x(i)*2;
end
for i=1:n
  z(i) = y(i)+1;
end
"""
        result = vectorize_source(source)
        base = run_source(source)
        vect = run_source(result.source)
        assert values_equal(base["z"], vect["z"])
        assert "for " not in result.source
