"""Scalar-temporary forward substitution tests."""

import numpy as np
import pytest

from repro import run_source, vectorize_source
from repro.runtime.values import values_equal
from repro.vectorizer.driver import Vectorizer


def compact(text):
    return "".join(text.split())


class TestSubstitution:
    def test_basic_temp_inlined(self):
        out = vectorize_source("""
%! x(*,1) y(*,1) c(1) n(1)
for i=1:n
  t = 2*x(i) + c;
  y(i) = t*t;
end
""")
        assert "for " not in out.source
        assert compact("y(1:n)=(2*x(1:n)+c).*(2*x(1:n)+c);") in \
            compact(out.source)

    def test_chained_temps(self):
        out = vectorize_source("""
%! x(*,1) y(*,1) n(1)
for i=1:n
  t = x(i) + 1;
  u = t*3;
  y(i) = u - t;
end
""")
        assert "for " not in out.source

    def test_live_after_loop_blocks(self):
        out = vectorize_source("""
%! x(*,1) y(*,1) n(1)
for i=1:n
  t = x(i) + 1;
  y(i) = t*2;
end
z = t;
""")
        assert "for " in out.source
        assert "t = " in out.source

    def test_rhs_reading_loop_written_array_blocks(self):
        # t's value depends on b(i), written in the same loop AFTER the
        # use in some orderings — conservative rule refuses.
        out = vectorize_source("""
%! b(1,*) y(1,*) x(1,*) n(1)
for i=1:n
  b(i) = x(i)*2;
  t = b(i) + 1;
  y(i) = t;
end
""")
        assert "t = " in out.source or "for " in out.source

    def test_impure_rhs_blocks(self):
        out = vectorize_source("""
%! y(*,1) n(1)
for i=1:n
  t = rand(1);
  y(i) = t*2;
end
""")
        assert "for " in out.source

    def test_double_definition_blocks(self):
        out = vectorize_source("""
%! x(*,1) y(*,1) n(1)
for i=1:n
  t = x(i);
  t = t + 1;
  y(i) = t;
end
""")
        assert "for " in out.source

    def test_use_before_def_blocks(self):
        # y(i) reads the PREVIOUS iteration's t: substitution would be
        # wrong, so the loop stays sequential.
        source = """
%! x(*,1) y(*,1) n(1)
t = 100;
for i=1:n
  y(i) = t;
  t = x(i);
end
"""
        out = vectorize_source(source)
        assert "for " in out.source

    def test_disabled_via_option(self):
        source = """
%! x(*,1) y(*,1) n(1)
for i=1:n
  t = x(i)*2;
  y(i) = t;
end
"""
        off = Vectorizer(scalar_temps=False).vectorize_source(source)
        assert "for " in off.source
        on = Vectorizer(scalar_temps=True).vectorize_source(source)
        assert "for " not in on.source

    def test_nested_loop_temp(self):
        out = vectorize_source("""
%! A(*,*) B(*,*) n(1) m(1)
for i=1:n
  for j=1:m
    t = B(i,j)*2;
    A(i,j) = t + 1;
  end
end
""")
        assert "for " not in out.source


class TestEquivalence:
    @pytest.mark.parametrize("source,outputs", [
        ("""
%! x(*,1) y(*,1) c(1) n(1)
for i=1:n
  t = 2*x(i) + c;
  y(i) = t*t;
end
""", ["y"]),
        ("""
%! x(*,1) y(*,1) n(1)
for i=1:n
  t = x(i) + 1;
  u = t*3;
  y(i) = u - t;
end
""", ["y"]),
        ("""
%! x(*,1) y(*,1) n(1)
t = 100;
for i=1:n
  y(i) = t;
  t = x(i);
end
z = t;
""", ["y", "z", "t"]),
    ])
    def test_matches_loop_semantics(self, source, outputs):
        result = vectorize_source(source)
        rng = np.random.default_rng(8)
        env = {
            "x": np.asfortranarray(rng.random((6, 1))),
            "y": np.asfortranarray(np.zeros((6, 1))),
            "c": 0.5,
            "n": 6.0,
        }
        base = run_source(source, env=dict(env))
        vect = run_source(result.source, env=dict(env))
        for name in outputs:
            assert values_equal(base[name], vect[name])
