"""Scale-broadcast patterns: per-iteration scalars across data extents.

These extend Table 2's broadcast row to accesses like ``B(:,j)*c(j)``
(column scaling) where one operand spans a data (``*``) dimension and
the other is a per-iteration scalar.
"""

import numpy as np
import pytest

from repro import run_source, vectorize_source
from repro.runtime.values import values_equal

RNG = np.random.default_rng(11)


def env_mats():
    return {
        "A": np.asfortranarray(np.zeros((4, 3))),
        "B": np.asfortranarray(RNG.random((4, 3))),
        "c": np.asfortranarray(RNG.random((3, 1))),
        "r": np.asfortranarray(RNG.random((4, 1))),
        "n": 3.0,
        "m": 4.0,
    }


def check(source, output="A"):
    result = vectorize_source(source)
    assert "for " not in result.source, result.source
    env = env_mats()

    def cp():
        return {k: (v.copy(order="F") if isinstance(v, np.ndarray) else v)
                for k, v in env.items()}

    base = run_source(source, env=cp())
    vect = run_source(result.source, env=cp())
    assert values_equal(base[output], vect[output]), result.source
    return result


class TestColumnScaling:
    def test_multiply(self):
        result = check("""
%! A(*,*) B(*,*) c(*,1) n(1)
for j=1:n
  A(:,j) = B(:,j)*c(j);
end
""")
        assert "repmat" in result.source

    def test_add_offset(self):
        check("""
%! A(*,*) B(*,*) c(*,1) n(1)
for j=1:n
  A(:,j) = B(:,j) + c(j);
end
""")

    def test_divide(self):
        check("""
%! A(*,*) B(*,*) c(*,1) n(1)
for j=1:n
  A(:,j) = B(:,j)/c(j);
end
""")

    def test_scalar_on_left(self):
        check("""
%! A(*,*) B(*,*) c(*,1) n(1)
for j=1:n
  A(:,j) = c(j)*B(:,j);
end
""")


class TestRowScaling:
    def test_multiply_rows(self):
        check("""
%! A(*,*) B(*,*) r(*,1) m(1)
for i=1:m
  A(i,:) = B(i,:)*r(i);
end
""")

    def test_subtract_row_offset(self):
        check("""
%! A(*,*) B(*,*) r(*,1) m(1)
for i=1:m
  A(i,:) = B(i,:) - r(i);
end
""")


class TestPatternAttribution:
    def test_reports_scale_pattern(self):
        result = check("""
%! A(*,*) B(*,*) c(*,1) n(1)
for j=1:n
  A(:,j) = B(:,j)*c(j);
end
""")
        used = result.report.loops[0].outcomes[0].patterns
        assert any(name.startswith("broadcast-scale") for name in used)
