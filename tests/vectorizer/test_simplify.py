"""Transpose-distribution tests (§2.2's "later optimization")."""

import numpy as np
import pytest

from repro import run_source, vectorize_source
from repro.mlang.parser import parse_expr, parse_stmt
from repro.mlang.printer import expr_to_source, to_source
from repro.runtime.values import values_equal
from repro.vectorizer.simplify import simplify_transposes, transpose_count


def simp(source: str) -> str:
    return expr_to_source(simplify_transposes(parse_expr(source)))


class TestRules:
    def test_involution(self):
        assert simp("(A')'") == "A"

    def test_triple(self):
        assert simp("((A')')'") == "A'"

    def test_literal_transpose(self):
        assert simp("(3)'") == "3"

    def test_distribute_over_add_when_cheaper(self):
        assert simp("(B+C')'") == "B'+C"

    def test_no_distribution_when_not_cheaper(self):
        assert simp("(B+C)'") == "(B+C)'"

    def test_distribute_elementwise(self):
        assert simp("(B'.*C')'") == "B.*C"

    def test_negation(self):
        assert simp("(-(A'))'") == "-A"

    def test_matmul_reversal_when_cheaper(self):
        assert simp("(A'*B)'") == "B'*A"

    def test_matmul_no_reversal_when_not_cheaper(self):
        assert simp("(A*B)'") == "(A*B)'"

    def test_nested_fixpoint(self):
        assert simp("((B+C')'+D')'") == "B+C'-D" or \
            simp("((B+C')'+D')'") == "(B'+C)'+D" or \
            transpose_count(simplify_transposes(
                parse_expr("((B+C')'+D')'"))) <= 2

    def test_count_never_increases(self):
        for source in ["(B+C)'", "(A*B)'", "A'+B", "(A'+B')'",
                       "((x')'+y)'", "(A.*B')'"]:
            tree = parse_expr(source)
            simplified = simplify_transposes(tree)
            assert transpose_count(simplified) <= transpose_count(tree)

    def test_untouched_tree_shared(self):
        tree = parse_expr("a+b")
        assert simplify_transposes(tree) is tree


class TestPaperExample:
    SOURCE = """
%! A(*,*) B(*,*) C(*,*) m(1) n(1)
for i=1:m
  for j=1:n
    A(i,j)=B(j,i)+C(i,j);
  end
end
"""

    def test_section22_simplified_form(self):
        """The exact simplification the paper names:
        (B'+C')' distributing to B'+C."""
        out = vectorize_source(self.SOURCE, simplify=True).source
        assert "".join(out.split()).endswith(
            "A(1:m,1:n)=B(1:n,1:m)'+C(1:m,1:n);")

    def test_plain_form_untouched_without_flag(self):
        out = vectorize_source(self.SOURCE).source
        assert "(B(1:n, 1:m)+C(1:m, 1:n)')'" in out

    def test_simplified_still_equivalent(self):
        rng = np.random.default_rng(0)
        env = {
            "B": np.asfortranarray(rng.random((5, 4))),
            "C": np.asfortranarray(rng.random((4, 5))),
            "m": 4.0,
            "n": 5.0,
        }
        base = run_source(self.SOURCE, env=dict(env))
        vect = run_source(vectorize_source(self.SOURCE,
                                           simplify=True).source,
                          env=dict(env))
        assert values_equal(base["A"], vect["A"])


class TestSimplifyOnCorpus:
    @pytest.mark.parametrize("name", ["composite", "quad-nest",
                                      "row-col-add", "dot-products"])
    def test_equivalence_preserved(self, name):
        from repro.bench.workloads import WORKLOADS
        from repro.bench.harness import _copy_env
        from repro.mlang.parser import parse
        from repro.runtime.interp import Interpreter

        workload = WORKLOADS[name]
        source = workload.source()
        result = vectorize_source(source, simplify=True)
        env = workload.env(scale="tiny", seed=17)
        base = Interpreter(seed=0).run(parse(source), env=_copy_env(env))
        vect = Interpreter(seed=0).run(result.program, env=_copy_env(env))
        for output in workload.outputs:
            assert values_equal(base[output], vect[output])


class TestConstantFolding:
    def _fold(self, source):
        from repro.mlang.parser import parse_expr
        from repro.mlang.printer import expr_to_source
        from repro.vectorizer.simplify import fold_constants

        return expr_to_source(fold_constants(parse_expr(source)))

    def test_literal_arithmetic(self):
        assert self._fold("2+3") == "5"
        assert self._fold("2*3-1") == "5"

    def test_additive_zero(self):
        assert self._fold("x+0") == "x"
        assert self._fold("0+x") == "x"
        assert self._fold("x-0") == "x"

    def test_unit_factor(self):
        assert self._fold("1*x") == "x"
        assert self._fold("x*1") == "x"
        assert self._fold("x/1") == "x"

    def test_literal_tail_merge(self):
        assert self._fold("(x+1)-1") == "x"
        assert self._fold("(x+1)+1") == "x+2"
        assert self._fold("(x-2)+1") == "x-1"

    def test_zero_times_matrix_not_folded(self):
        # 0*A is a zero MATRIX; folding to scalar 0 would change shapes.
        assert self._fold("0*A") == "0*A"

    def test_subscript_cleanup(self):
        assert self._fold("U((1:n)+1-1, j)") == "U(1:n, j)"

    def test_untouched_shared(self):
        from repro.mlang.parser import parse_expr
        from repro.vectorizer.simplify import fold_constants

        tree = parse_expr("a+b")
        assert fold_constants(tree) is tree
