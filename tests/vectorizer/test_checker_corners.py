"""Checker corner cases: constructs at the edge of the supported subset."""

import numpy as np
import pytest

from repro import run_source, vectorize_source
from repro.runtime.values import values_equal


def compact(text):
    return "".join(text.split())


def equivalent(source, env, outputs):
    result = vectorize_source(source)

    def cp():
        return {k: (v.copy(order="F") if isinstance(v, np.ndarray) else v)
                for k, v in env.items()}

    base = run_source(source, env=cp())
    vect = run_source(result.source, env=cp())
    for name in outputs:
        assert values_equal(base[name], vect[name]), result.source
    return result


RNG = np.random.default_rng(99)


class TestComparisonsAndLogic:
    def test_comparison_vectorizes(self):
        result = equivalent("""
%! y(*,1) x(*,1) n(1)
for i=1:n
  y(i) = x(i) > 0.5;
end
""", {"x": np.asfortranarray(RNG.random((6, 1))),
      "y": np.asfortranarray(np.zeros((6, 1))), "n": 6.0}, ["y"])
        assert "for " not in result.source

    def test_logical_and_vectorizes(self):
        result = equivalent("""
%! y(*,1) x(*,1) w(*,1) n(1)
for i=1:n
  y(i) = (x(i) > 0.2) & (w(i) < 0.8);
end
""", {"x": np.asfortranarray(RNG.random((6, 1))),
      "w": np.asfortranarray(RNG.random((6, 1))),
      "y": np.asfortranarray(np.zeros((6, 1))), "n": 6.0}, ["y"])
        assert "for " not in result.source

    def test_short_circuit_stays_sequential(self):
        result = vectorize_source("""
%! y(*,1) x(*,1) n(1)
for i=1:n
  y(i) = (x(i) > 0) && (x(i) < 1);
end
""")
        assert "for " in result.source


class TestMatrixLiteralsInLoops:
    def test_scalar_literal_row_ok_outside(self):
        # Matrix literals with loop-variant elements veto vectorization.
        result = vectorize_source("""
%! y(*,1) n(1)
for i=1:n
  y(i) = sum([i, 1]);
end
""")
        assert "for " in result.source

    def test_loop_invariant_literal_inside(self):
        result = equivalent("""
%! y(*,1) x(*,1) n(1)
for i=1:n
  y(i) = x(i)*max([2, 3]);
end
""", {"x": np.asfortranarray(RNG.random((5, 1))),
      "y": np.asfortranarray(np.zeros((5, 1))), "n": 5.0}, ["y"])
        assert "for " not in result.source


class TestSubscriptShapes:
    def test_end_in_loop_invariant_position(self):
        result = equivalent("""
%! y(*,1) x(*,1) n(1)
for i=1:n
  y(i) = x(i) + x(end);
end
""", {"x": np.asfortranarray(RNG.random((5, 1))),
      "y": np.asfortranarray(np.zeros((5, 1))), "n": 5.0}, ["y"])
        assert "for " not in result.source

    def test_reversed_access(self):
        result = equivalent("""
%! y(*,1) x(*,1) n(1)
for i=1:n
  y(i) = x(n+1-i);
end
""", {"x": np.asfortranarray(RNG.random((5, 1))),
      "y": np.asfortranarray(np.zeros((5, 1))), "n": 5.0}, ["y"])
        assert "for " not in result.source

    def test_gather_through_index_vector(self):
        result = equivalent("""
%! y(*,1) x(*,1) idx(*,1) n(1)
for i=1:n
  y(i) = x(idx(i));
end
""", {"x": np.asfortranarray(RNG.random((8, 1))),
      "idx": np.asfortranarray(
          np.array([[3.0], [1.0], [8.0], [2.0], [5.0]])),
      "y": np.asfortranarray(np.zeros((5, 1))), "n": 5.0}, ["y"])
        assert "for " not in result.source

    def test_strided_write(self):
        result = equivalent("""
%! y(1,*) x(1,*) n(1)
for i=1:n
  y(2*i) = x(i);
end
""", {"x": np.asfortranarray(RNG.random((1, 5))),
      "y": np.asfortranarray(np.zeros((1, 10))), "n": 5.0}, ["y"])
        assert "for " not in result.source

    def test_anti_diagonal(self):
        result = equivalent("""
%! a(1,*) A(*,*) n(1)
for i=1:n
  a(i) = A(i, n+1-i);
end
""", {"A": np.asfortranarray(RNG.random((5, 5))),
      "a": np.asfortranarray(np.zeros((1, 5))), "n": 5.0}, ["a"])
        assert "for " not in result.source
        assert "size(A, 1)" in result.source  # linear-index transform


class TestStringAndUnsupported:
    def test_string_in_loop_body_stays(self):
        result = vectorize_source("""
%! y(*,1) n(1)
for i=1:n
  y(i) = length('abc');
end
""")
        assert "for " in result.source

    def test_empty_loop_body(self):
        # A loop with no statements is degenerate but must not crash.
        result = vectorize_source("for i=1:10\nend\n")
        assert result.source.strip().startswith("for") or \
            result.source.strip() == ""

    def test_matrix_division_stays(self):
        result = vectorize_source("""
%! y(*,1) A(*,*) b(*,1) n(1)
for i=1:n
  y(i) = b(i)\\2;
end
""")
        # scalar-family backslash with per-iteration scalars promotes
        assert "for " not in result.source or ".\\" in result.source


class TestDeeperNests:
    def test_triple_nest_full(self):
        result = equivalent("""
%! T(*,*) A(*,*) B(*,*) n(1) m(1)
for i=1:n
  for j=1:m
    T(i,j) = A(i,j)*2 + B(j,i);
  end
end
""", {"A": np.asfortranarray(RNG.random((4, 3))),
      "B": np.asfortranarray(RNG.random((3, 4))),
      "T": np.asfortranarray(np.zeros((4, 3))),
      "n": 4.0, "m": 3.0}, ["T"])
        assert "for " not in result.source

    def test_reduction_nested_in_sequential(self):
        result = equivalent("""
%! s(*,1) X(*,*) n(1) m(1)
for i=1:n
  for k=1:m
    s(i) = s(i) + X(i,k)^2;
  end
end
""", {"X": np.asfortranarray(RNG.random((4, 3))),
      "s": np.asfortranarray(np.zeros((4, 1))),
      "n": 4.0, "m": 3.0}, ["s"])
        assert "for " not in result.source
