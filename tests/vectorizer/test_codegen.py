"""codegen_dim tests: loop distribution, partial vectorization, imperfect
nests, reduction rescue, sequential fallbacks, normalization."""

import pytest

from repro import vectorize_source
from repro.mlang.ast_nodes import For
from repro.mlang.parser import parse, parse_expr, parse_stmt
from repro.mlang.printer import to_source
from repro.vectorizer.checker import CheckOptions
from repro.vectorizer.loop_info import (
    extract_nest,
    fold_add,
    fold_mul,
    fold_sub,
    loop_rejection_reason,
    normalize_loop,
)


def compact(text):
    return "".join(text.split())


class TestNormalization:
    def _loop(self, source):
        stmt = parse_stmt(source)
        assert isinstance(stmt, For)
        return stmt

    def test_already_normalized(self):
        norm = normalize_loop(self._loop("for i=1:n\n a(i)=i;\nend"))
        assert to_source(norm.header.count).strip() == "n"
        assert to_source(norm.body[0]).strip() == "a(i) = i;"

    def test_stride_two(self):
        norm = normalize_loop(self._loop("for i=2:2:1500\n a(i)=i;\nend"))
        assert to_source(norm.header.count).strip() == "750"
        assert compact(to_source(norm.body[0])) == "a(2*i)=2*i;"

    def test_offset_start(self):
        norm = normalize_loop(self._loop("for i=3:7\n a(i)=0;\nend"))
        assert to_source(norm.header.count).strip() == "5"
        assert compact(to_source(norm.body[0])) == "a(i+2)=0;"

    def test_symbolic_start_unit_step(self):
        norm = normalize_loop(self._loop("for i=k:n\n a(i)=0;\nend"))
        assert compact(to_source(norm.header.count)) == "n-k+1"

    def test_descending(self):
        norm = normalize_loop(self._loop("for i=10:-1:1\n a(i)=0;\nend"))
        assert to_source(norm.header.count).strip() == "10"
        assert compact(to_source(norm.body[0])) == "a(-1*i+11)=0;"

    def test_vector_iteration_unsupported(self):
        assert normalize_loop(self._loop("for x=v\n a=x;\nend")) is None

    def test_fold_helpers(self):
        from repro.mlang.ast_nodes import num

        assert to_source(fold_add(num(2), num(3))).strip() == "5"
        assert to_source(fold_add(parse_expr("n"), num(0))).strip() == "n"
        assert to_source(fold_mul(num(1), parse_expr("n"))).strip() == "n"
        assert to_source(fold_sub(parse_expr("n"), num(0))).strip() == "n"
        assert compact(to_source(fold_add(parse_expr("n"), num(-2)))) \
            == "n-2"


class TestRejection:
    def test_if_rejected(self):
        loop = parse_stmt("for i=1:3\n if a\n x=1;\n end\nend")
        assert "control-flow" in loop_rejection_reason(loop)

    def test_break_rejected(self):
        loop = parse_stmt("for i=1:3\n break;\nend")
        assert loop_rejection_reason(loop)

    def test_index_write_rejected(self):
        loop = parse_stmt("for i=1:3\n i = 5;\nend")
        assert "index" in loop_rejection_reason(loop)

    def test_inner_index_write_rejected(self):
        loop = parse_stmt("for i=1:3\n for j=1:4\n i(j) = 5;\n end\nend")
        assert loop_rejection_reason(loop)

    def test_index_reuse_rejected(self):
        loop = parse_stmt("for i=1:3\n for i=1:4\n a(i)=0;\n end\nend")
        assert "reuses" in loop_rejection_reason(loop)

    def test_clean_loop_accepted(self):
        loop = parse_stmt("for i=1:3\n a(i) = 0;\nend")
        assert loop_rejection_reason(loop) is None


class TestNestExtraction:
    def test_perfect_nest(self):
        loop = parse_stmt("for i=1:3\nfor j=1:4\nA(i,j)=0;\nend\nend")
        nest = extract_nest(loop)
        assert len(nest.stmts) == 1
        assert [h.var for h in nest.stmts[0].headers] == ["i", "j"]

    def test_imperfect_nest(self):
        loop = parse_stmt(
            "for i=1:3\nb(i)=i;\nfor j=1:4\nA(i,j)=b(i);\nend\nend")
        nest = extract_nest(loop)
        assert [len(s.headers) for s in nest.stmts] == [1, 2]

    def test_shared_header_objects(self):
        loop = parse_stmt(
            "for i=1:3\nb(i)=i;\nc(i)=i;\nend")
        nest = extract_nest(loop)
        assert nest.stmts[0].headers[0] is nest.stmts[1].headers[0]


class TestDistribution:
    def test_statements_distribute(self):
        out = vectorize_source("""
%! a(1,*) b(1,*) c(1,*) n(1)
for i=1:n
  b(i) = a(i)*2;
  c(i) = b(i)+1;
end
""").source
        assert compact("b(1:n)=a(1:n)*2;") in compact(out)
        assert compact("c(1:n)=b(1:n)+1;") in compact(out)
        assert "for " not in out

    def test_topological_reordering(self):
        # c reads the NEW b of the same iteration even though b's
        # statement comes second?  No: b is assigned after c reads it, so
        # c must keep reading the OLD value — statements must NOT be
        # blindly reordered; the anti-dependence keeps c first.
        out = vectorize_source("""
%! a(1,*) b(1,*) c(1,*) n(1)
for i=1:n
  c(i) = b(i)+1;
  b(i) = a(i)*2;
end
""").source
        assert compact(out).index("c(1:n)") < compact(out).index("b(1:n)=")

    def test_partial_vectorization_mixed(self):
        """A recurrence shares the loop with a vectorizable statement:
        distribution leaves the recurrence in a loop and vectorizes the
        other statement."""
        result = vectorize_source("""
%! a(1,*) b(1,*) x(1,*) n(1)
for i=2:n
  a(i) = a(i-1)+1;
  b(i) = x(i)*2;
end
""")
        out = result.source
        assert "for " in out
        assert compact("b((1:n-1)+1)=x((1:n-1)+1)*2;") in compact(out)
        statuses = [o.vectorized for o in result.report.loops[0].outcomes]
        assert statuses.count(True) == 1

    def test_outer_sequential_inner_vector(self):
        """Recurrence carried by the outer loop only: codegen runs i
        sequentially and vectorizes j inside."""
        out = vectorize_source("""
%! A(*,*) n(1) m(1)
for i=2:n
  for j=1:m
    A(i,j) = A(i-1,j)+1;
  end
end
""").source
        assert compact("forj=1:m") not in compact(out)
        assert compact("A(i+1,1:m)=A(i+1-1,1:m)+1;") in compact(out) or \
            compact("A(i+1,1:m)=A(i,1:m)+1;") in compact(out)
        assert "for i" in out

    def test_inner_sequential_outer_not_vectorizable_alone(self):
        """Recurrence carried by the inner loop: the statement can still
        be pulled out of no loops at level 0 but the j loop must stay."""
        out = vectorize_source("""
%! A(*,*) n(1) m(1)
for i=1:n
  for j=2:m
    A(i,j) = A(i,j-1)+1;
  end
end
""").source
        assert "for " in out

    def test_two_statement_cycle_stays_sequential(self):
        out = vectorize_source("""
%! a(1,*) b(1,*) n(1)
for i=2:n
  a(i) = b(i-1)+1;
  b(i) = a(i-1)*2;
end
""").source
        assert out.count("for ") >= 1
        assert "1:n" not in out.replace("2:n", "")


class TestImperfectNest:
    def test_figure4_shape(self):
        result = vectorize_source("""
%! B(*,*) A(*,*) c(*,1) n(1) m(1)
for i=1:n
  B(i,1) = c(i)*2;
  for j=1:m
    A(i,j) = B(i,1)+j;
  end
end
""")
        out = result.source
        assert "for " not in out
        # statement 1 vectorizes over i; statement 2 over i and j.
        assert compact("B(1:n,1)=c(1:n)*2;") in compact(out)
        levels = [o.level for o in result.report.loops[0].outcomes]
        assert levels == [0, 0]


class TestReductionRescue:
    def test_scalar_sum(self):
        out = vectorize_source("""
%! s(1) x(*,1) n(1)
s = 0;
for i=1:n
  s = s + x(i);
end
""").source
        assert compact("s=s+sum(x(1:n),1);") in compact(out)

    def test_dot_product_reduction(self):
        out = vectorize_source("""
%! s(1) x(*,1) y(*,1) n(1)
s = 0;
for i=1:n
  s = s + x(i)*y(i);
end
""").source
        assert "for " not in out

    def test_matvec_reduction(self):
        out = vectorize_source("""
%! y(*,1) A(*,*) x(*,1) n(1) m(1)
for i=1:n
  for k=1:m
    y(i) = y(i) + A(i,k)*x(k);
  end
end
""").source
        assert compact("y(1:n)=y(1:n)+A(1:n,1:m)*x(1:m);") in compact(out)

    def test_true_recurrence_not_rescued(self):
        out = vectorize_source("""
%! a(1,*) n(1)
for i=2:n
  a(i) = a(i) + a(i-1);
end
""").source
        assert "for " in out

    def test_min_accumulator_not_rescued(self):
        # min-reduction is not additive; stays sequential.
        out = vectorize_source("""
%! s(1) x(*,1) n(1)
for i=1:n
  s = min(s, x(i));
end
""").source
        assert "for " in out


class TestOptionsThreading:
    def test_patterns_off_leaves_loop(self):
        source = """
%! a(1,*) A(*,*) b(1,*) n(1)
for i=1:n
  a(i)=A(i,i)*b(i);
end
"""
        on = vectorize_source(source)
        off = vectorize_source(source,
                               options=CheckOptions(patterns=False))
        assert "for " not in on.source
        assert "for " in off.source

    def test_transposes_off(self):
        source = """
%! A(*,*) B(*,*) C(*,*) m(1) n(1)
for i=1:m
  for j=1:n
    A(i,j)=B(j,i)+C(i,j);
  end
end
"""
        off = vectorize_source(source,
                               options=CheckOptions(transposes=False))
        assert "for " in off.source
