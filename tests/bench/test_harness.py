"""Tests for the benchmark harness itself (timing, tables, ablations)."""

import pytest

from repro.bench.harness import (
    ABLATIONS,
    Measurement,
    ablation_sweep,
    format_table,
    measure,
)
from repro.bench.workloads import WORKLOADS, all_workloads, find_corpus, workload


class TestWorkloadRegistry:
    def test_lookup(self):
        assert workload("histeq").experiment == "figure-3"

    def test_all_workloads_nonempty(self):
        assert len(all_workloads()) >= 20

    def test_every_workload_has_tiny_scale(self):
        for w in all_workloads():
            assert "tiny" in w.scales, w.name

    def test_env_deterministic(self):
        import numpy as np

        a = workload("matvec").env(scale="tiny", seed=3)
        b = workload("matvec").env(scale="tiny", seed=3)
        assert np.array_equal(a["A"], b["A"])

    def test_env_seed_sensitivity(self):
        import numpy as np

        a = workload("matvec").env(scale="tiny", seed=3)
        b = workload("matvec").env(scale="tiny", seed=4)
        assert not np.array_equal(a["A"], b["A"])

    def test_sources_parse(self):
        from repro.mlang.parser import parse

        for w in all_workloads():
            parse(w.source())

    def test_find_corpus(self):
        corpus = find_corpus()
        assert (corpus / "histeq.m").exists()


class TestMeasure:
    def test_measure_tiny(self):
        m = measure(workload("scale-shift"), scale="tiny", repeats=1)
        assert m.outputs_equal
        assert m.fully_vectorized
        assert m.input_time > 0 and m.vect_time > 0

    def test_measure_records_scale(self):
        m = measure(workload("scale-shift"), scale="tiny", repeats=1)
        assert m.scale == {"n": 17}

    def test_speedup_property(self):
        m = Measurement("x", {}, input_time=2.0, vect_time=0.5,
                        outputs_equal=True, fully_vectorized=True)
        assert m.speedup == 4.0

    def test_speedup_zero_division(self):
        m = Measurement("x", {}, input_time=2.0, vect_time=0.0,
                        outputs_equal=True, fully_vectorized=True)
        assert m.speedup == float("inf")

    def test_recurrence_not_fully_vectorized(self):
        m = measure(workload("recurrence"), scale="tiny", repeats=1)
        assert not m.fully_vectorized
        assert m.outputs_equal


class TestFormatTable:
    def test_columns_present(self):
        m = measure(workload("scale-shift"), scale="tiny", repeats=1)
        table = format_table([m], title="T")
        assert "input time" in table and "speedup" in table
        assert "scale-shift" in table and "n=17" in table
        assert table.splitlines()[0] == "T"

    def test_failure_flagged(self):
        m = Measurement("bad", {}, 1.0, 0.5, outputs_equal=False,
                        fully_vectorized=True)
        assert "NO" in format_table([m])


class TestAblations:
    def test_registry_keys(self):
        assert {"full", "no-patterns", "no-transposes",
                "no-reductions"} <= set(ABLATIONS)

    def test_sweep_shape(self):
        rows = ablation_sweep([workload("diagonal-scale")], scale="tiny",
                              repeats=1)
        assert len(rows) == len(ABLATIONS)
        by_variant = {r.variant: r for r in rows}
        assert by_variant["full"].vectorized
        assert not by_variant["no-patterns"].vectorized
