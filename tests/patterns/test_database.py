"""Pattern-database tests: templates, matching, registration, extensibility."""

import pytest

from repro.dims.abstract import Dim, ONE, RSym, STAR
from repro.errors import PatternError
from repro.mlang.ast_nodes import BinOp, Ident, call, num
from repro.patterns.base import (
    ANY_POINTWISE,
    BinopPattern,
    DimTemplate,
    PatVar,
    R1,
    R2,
    template,
)
from repro.patterns.builtin import (
    COL_BROADCAST_RHS,
    DIAGONAL_ACCESS,
    DOT_PRODUCT,
    default_database,
    poly_degree,
)
from repro.patterns.database import PatternDatabase

RI = RSym("i")
RJ = RSym("j")


class TestTemplates:
    def test_literal_match(self):
        t = template(ONE, STAR)
        assert t.match(Dim((ONE, STAR)), {}) == {}

    def test_literal_mismatch(self):
        t = template(ONE, STAR)
        assert t.match(Dim((STAR, ONE)), {}) is None

    def test_patvar_binds_r(self):
        t = template(R1, STAR)
        assert t.match(Dim((RI, STAR)), {}) == {R1: RI}

    def test_patvar_rejects_atom(self):
        t = template(R1, STAR)
        assert t.match(Dim((STAR, STAR)), {}) is None

    def test_same_patvar_must_repeat(self):
        t = template(R1, R1)
        assert t.match(Dim((RI, RI)), {}) == {R1: RI}
        assert t.match(Dim((RI, RJ)), {}) is None

    def test_distinct_patvars_distinct_syms(self):
        t = template(R1, R2)
        assert t.match(Dim((RI, RI)), {}) is None
        assert t.match(Dim((RI, RJ)), {}) == {R1: RI, R2: RJ}

    def test_reduction_normalizes(self):
        # A reduced column (r_i) matches the (R1, 1) template.
        t = template(R1, ONE)
        assert t.match(Dim((RI,)), {}) == {R1: RI}

    def test_existing_bindings_respected(self):
        t = template(R1)
        assert t.match(Dim((RJ,)), {R1: RI}) is None
        assert t.match(Dim((RI,)), {R1: RI}) == {R1: RI}

    def test_instantiate(self):
        t = template(ONE, R1)
        assert t.instantiate({R1: RI}) == Dim((ONE, RI))

    def test_instantiate_unbound_raises(self):
        with pytest.raises(PatternError):
            template(R1).instantiate({})

    def test_invalid_symbol_rejected(self):
        with pytest.raises(PatternError):
            DimTemplate(("x",))


class TestBinopPatternMatching:
    def test_dot_product_matches(self):
        bindings = DOT_PRODUCT.match("*", Dim((RI, STAR)), Dim((STAR, RI)))
        assert bindings == {R1: RI}

    def test_dot_product_rejects_wrong_operator(self):
        assert DOT_PRODUCT.match("+", Dim((RI, STAR)),
                                 Dim((STAR, RI))) is None

    def test_dot_product_rejects_mismatched_r(self):
        assert DOT_PRODUCT.match("*", Dim((RI, STAR)),
                                 Dim((STAR, RJ))) is None

    def test_any_pointwise_operator_class(self):
        for op in ("+", "-", ".*", "./"):
            assert COL_BROADCAST_RHS.match(op, Dim((RI, RJ)),
                                           Dim((RI, ONE))) is not None
        assert COL_BROADCAST_RHS.match("*", Dim((RI, RJ)),
                                       Dim((RI, ONE))) is None


class TestDatabase:
    def test_register_and_lookup_order(self):
        db = PatternDatabase()
        p1 = BinopPattern("first", "+", template(R1, R2), template(R1, ONE),
                          template(R1, R2), lambda n, b, c: n)
        p2 = BinopPattern("second", "+", template(R1, R2), template(R1, ONE),
                          template(R1, R2), lambda n, b, c: n)
        db.register(p1)
        db.register(p2)
        match = db.match_binop("+", Dim((RI, RJ)), Dim((RI, ONE)))
        assert match.pattern.name == "first"

    def test_duplicate_name_rejected(self):
        db = default_database()
        with pytest.raises(PatternError):
            db.register(DOT_PRODUCT)

    def test_unregister(self):
        db = default_database()
        before = db.names()
        db.unregister("dot-product")
        assert "dot-product" not in db.names()
        assert db.match_binop("*", Dim((RI, STAR)), Dim((STAR, RI))) is None
        db.register(DOT_PRODUCT)
        assert set(db.names()) == set(before)

    def test_unregister_unknown(self):
        with pytest.raises(PatternError):
            PatternDatabase().unregister("nope")

    def test_copy_is_independent(self):
        db = default_database()
        clone = db.copy()
        clone.unregister("dot-product")
        assert "dot-product" in db.names()

    def test_iteration_and_len(self):
        db = default_database()
        assert len(db) == len(list(db)) >= 6

    def test_out_dim_instantiation(self):
        db = default_database()
        match = db.match_binop("*", Dim((RI, STAR)), Dim((STAR, RI)))
        assert match.out_dim == Dim((ONE, RI))


class TestPolyDegree:
    @pytest.mark.parametrize("source,expected", [
        ("i", 1),
        ("3", 0),
        ("2*i", 1),
        ("2*i+1", 1),
        ("i*2-4", 1),
        ("n", 0),
        ("i*i", None),
        ("i^2", None),
        ("i/2", 1),
        ("2/i", None),
        ("size(A,1)*i", 1),      # loop-invariant coefficient is linear
        ("-i", 1),
    ])
    def test_degrees(self, source, expected):
        from repro.mlang.parser import parse_expr

        assert poly_degree(parse_expr(source), "i") == expected


class TestDiagonalTransform:
    def _ctx(self):
        class Ctx:
            def range_expr(self, sym):
                return call("colon", num(1), num(10))

            def tripcount_expr(self, sym):
                return num(10)

            def base_dim_of(self, expr):
                return Dim.matrix()

        return Ctx()

    def test_simple_diagonal(self):
        from repro.mlang.parser import parse_expr
        from repro.mlang.printer import expr_to_source

        node = parse_expr("A(i, i)")
        result = DIAGONAL_ACCESS.transform(node, {R1: RI}, self._ctx())
        assert expr_to_source(result) == "A(i+size(A, 1)*(i-1))"

    def test_affine_diagonal(self):
        from repro.mlang.parser import parse_expr
        from repro.mlang.printer import expr_to_source

        node = parse_expr("A(2*i, 2*i-1)")
        result = DIAGONAL_ACCESS.transform(node, {R1: RI}, self._ctx())
        assert "size(A, 1)" in expr_to_source(result)

    def test_nonaffine_declines(self):
        from repro.mlang.parser import parse_expr

        node = parse_expr("A(i*i, i)")
        assert DIAGONAL_ACCESS.transform(node, {R1: RI}, self._ctx()) is None


class TestUserExtensibility:
    def test_custom_pattern_end_to_end(self):
        """Register a user pattern (the paper's DLL story, Figure 2) and
        watch the vectorizer use it: an outer-product pattern spelled
        with an explicit transform."""
        from repro import vectorize_source
        from repro.mlang.ast_nodes import Transpose

        def refuse(node, bindings, ctx):  # pragma: no cover
            raise AssertionError("pattern should not fire for this test")

        db = default_database()
        db.register(BinopPattern(
            name="user-refuser",
            operator=".^",
            lhs=template(R1, R2, R1),   # deliberately unmatched rank-3
            rhs=template(ONE),
            out=template(ONE),
            transform=refuse,
        ))
        src = """
%! a(1,*) X(*,*) Y(*,*) n(1)
for i=1:n
  a(i)=X(i,:)*Y(:,i);
end
"""
        result = vectorize_source(src, db=db)
        assert "sum(" in result.source
