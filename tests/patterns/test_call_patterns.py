"""Tests for function-call patterns (the §7 extension)."""

import numpy as np
import pytest

from repro import run_source, vectorize_source
from repro.dims.abstract import Dim, ONE, RSym, STAR
from repro.mlang.ast_nodes import Apply, BinOp, Transpose, call, num
from repro.patterns.base import CallPattern, R1, template
from repro.patterns.builtin import default_database
from repro.patterns.database import PatternDatabase
from repro.runtime.values import values_equal

RI = RSym("i")


def row_norm_pattern():
    def transform(node, bindings, ctx):
        squared = BinOp(".^", Transpose(node.args[0]), num(2))
        return call("sqrt", call("sum", squared, num(1)))

    return CallPattern(
        name="row-norms",
        function="norm",
        args=(template(R1, STAR),),
        out=template(ONE, R1),
        transform=transform,
    )


class TestMatching:
    def test_matches_name_and_dims(self):
        p = row_norm_pattern()
        assert p.match("norm", [Dim((RI, STAR))]) == {R1: RI}

    def test_rejects_other_function(self):
        p = row_norm_pattern()
        assert p.match("sum", [Dim((RI, STAR))]) is None

    def test_rejects_arity_mismatch(self):
        p = row_norm_pattern()
        assert p.match("norm", [Dim((RI, STAR)), Dim.scalar()]) is None

    def test_rejects_dim_mismatch(self):
        p = row_norm_pattern()
        assert p.match("norm", [Dim((STAR, STAR))]) is None

    def test_database_match_call(self):
        db = PatternDatabase([row_norm_pattern()])
        node = call("norm", call("X", num(1)))

        class Ctx:
            pass

        match = db.match_call(node, "norm", [Dim((RI, STAR))], Ctx())
        assert match is not None
        assert match.out_dim == Dim((ONE, RI))


class TestEndToEnd:
    SOURCE = """
%! d(1,*) X(*,*) n(1)
for i=1:n
  d(i) = norm(X(i,:));
end
"""

    def test_stock_rejects(self):
        result = vectorize_source(self.SOURCE)
        assert "for " in result.source

    def test_with_pattern_vectorizes_and_is_equivalent(self):
        db = default_database()
        db.register(row_norm_pattern())
        result = vectorize_source(self.SOURCE, db=db)
        assert "for " not in result.source

        rng = np.random.default_rng(4)
        env = {"X": np.asfortranarray(rng.random((7, 3))), "n": 7.0}
        base = run_source(self.SOURCE, env=dict(env))
        vect = run_source(result.source, env=dict(env))
        assert values_equal(base["d"], vect["d"])

    def test_pattern_reported(self):
        db = default_database()
        db.register(row_norm_pattern())
        result = vectorize_source(self.SOURCE, db=db)
        outcome = result.report.loops[0].outcomes[0]
        assert "row-norms" in outcome.patterns
