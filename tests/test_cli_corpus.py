"""End-to-end: the mvec CLI over every corpus file (vectorize only)."""

import pytest

from repro.bench.workloads import find_corpus
from repro.cli import main

CORPUS_FILES = sorted(p.name for p in find_corpus().glob("*.m"))


@pytest.mark.parametrize("filename", CORPUS_FILES)
def test_mvec_on_corpus_file(filename, capsys):
    path = find_corpus() / filename
    assert main([str(path), "--report"]) == 0
    captured = capsys.readouterr()
    assert captured.out.strip()          # emitted some MATLAB
    assert "loop" in captured.err        # report mentions loops


@pytest.mark.parametrize("filename", ["histeq.m", "quad_nest.m"])
def test_mvec_simplify_flag(filename, capsys):
    path = find_corpus() / filename
    assert main([str(path), "--simplify"]) == 0
    assert capsys.readouterr().out.strip()
