"""Retry/backoff client tests, against fakes and a live async server."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service.aserver import AsyncServerThread
from repro.service.client import (
    ClientResponse,
    ServiceClient,
    ServiceUnavailable,
)

LOOP = """\
%! x(*,1) y(*,1) n(1)
x = (1:8)';
n = 8;
for i=1:n
  y(i) = 2*x(i);
end
"""


class ScriptedClient(ServiceClient):
    """A client whose HTTP layer replays a scripted exchange list."""

    def __init__(self, script, **kwargs):
        kwargs.setdefault("sleep", self.record_sleep)
        super().__init__(**kwargs)
        self.script = list(script)
        self.sleeps = []

    def record_sleep(self, seconds):
        self.sleeps.append(seconds)

    def _exchange(self, method, path, payload=None):
        outcome = self.script.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class TestRetryPolicy:
    def test_503_retried_honoring_retry_after(self):
        client = ScriptedClient([
            (503, {"ok": False, "error": {"type": "saturated",
                                          "message": "full"}},
             {"retry-after": "0.5"}),
            (200, {"ok": True, "result": {}}, {}),
        ])
        response = client.request("POST", "/v1/vectorize",
                                  {"source": "x=1;"})
        assert response.status == 200
        assert response.attempts == 2
        assert client.sleeps == [0.5]

    def test_504_retried_on_backoff_schedule(self):
        client = ScriptedClient([
            (504, {"ok": False, "error": {"type": "timeout",
                                          "message": "slow"}}, {}),
            (504, {"ok": False, "error": {"type": "timeout",
                                          "message": "slow"}}, {}),
            (200, {"ok": True}, {}),
        ], backoff=0.1)
        response = client.request("POST", "/v1/vectorize", {})
        assert response.attempts == 3
        assert client.sleeps == [0.1, 0.2]          # exponential

    def test_connection_errors_retried(self):
        client = ScriptedClient([
            ConnectionResetError("boom"),
            (200, {"ok": True}, {}),
        ])
        assert client.request("GET", "/v1/healthz").status == 200

    def test_retries_exhausted_raises_service_unavailable(self):
        responses = [(503, {"ok": False,
                            "error": {"type": "saturated",
                                      "message": "full"}},
                      {"retry-after": "0"})] * 4
        client = ScriptedClient(responses, max_retries=3)
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.request("POST", "/v1/vectorize", {})
        assert excinfo.value.status == 503

    def test_422_is_never_retried(self):
        client = ScriptedClient([
            (422, {"ok": False, "error": {"type": "ParseError",
                                          "message": "bad"}}, {}),
            (200, {"ok": True}, {}),                # must not be reached
        ])
        response = client.request("POST", "/v1/vectorize", {})
        assert response.status == 422
        assert response.attempts == 1
        assert len(client.script) == 1              # second never consumed
        assert client.sleeps == []

    def test_backoff_is_capped(self):
        client = ScriptedClient([], backoff=1.0, backoff_cap=2.0)
        assert client._backoff_delay(10) == 2.0


class TestAgainstLiveServer:
    @pytest.fixture
    def srv(self):
        with AsyncServerThread(
                executor=ThreadPoolExecutor(max_workers=4),
                max_concurrency=4, queue_depth=4) as handle:
            yield handle

    def test_vectorize_round_trip(self, srv):
        client = ServiceClient(host=srv.host, port=srv.port)
        response = client.vectorize(LOOP)
        assert response.ok
        assert "y(1:n) = 2*x(1:n);" in response.result["vectorized"]
        again = client.vectorize(LOOP)
        assert again.body["cache"]["cached"] is True

    def test_deprecated_flag_readable(self, srv):
        client = ServiceClient(host=srv.host, port=srv.port)
        response = client.request("POST", "/vectorize",
                                  {"source": LOOP})
        assert response.deprecated
        assert not client.healthz().deprecated

    def test_fanout_and_health(self, srv):
        client = ServiceClient(host=srv.host, port=srv.port)
        response = client.fanout(LOOP, backends=["vectorize", "lint"])
        assert response.ok
        assert set(response.result) == {"vectorize", "lint"}
        assert client.healthz().result["server"] == "async"

    def test_client_response_helpers(self):
        response = ClientResponse(200, {"ok": True, "result": 5},
                                  {"deprecation": "true"})
        assert response.ok and response.deprecated and response.result == 5
