"""``POST /lint`` and ``POST /audit``: HTTP, stdio, caching, metrics."""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.compiler import CompilationService
from repro.service.server import CompilationServer, serve_stdio

LOOP = """\
%! x(*,1) y(*,1) n(1)
x = (1:8)';
n = 8;
for i=1:n
  y(i) = 2*x(i);
end
"""

BROKEN = "n = 4;\nfor i = 1:n\n  y(i) = z(i) + 1;\nend\n"


@pytest.fixture
def server():
    server = CompilationServer(("127.0.0.1", 0), quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def url(server, path):
    host, port = server.server_address
    return f"http://{host}:{port}{path}"


def post(server, path, payload):
    data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url(server, path), data=data,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class TestLintEndpoint:
    def test_clean_source(self, server):
        status, body = post(server, "/lint", {"source": LOOP})
        assert status == 200 and body["ok"]
        assert body["diagnostics"] == []
        assert body["errors"] == 0

    def test_diagnostics_are_data_not_failures(self, server):
        status, body = post(server, "/lint", {"source": BROKEN})
        assert status == 200 and body["ok"]
        codes = {d["code"] for d in body["diagnostics"]}
        assert "E101" in codes
        assert body["errors"] >= 1

    def test_second_request_is_cached(self, server):
        _, first = post(server, "/lint", {"source": BROKEN})
        _, second = post(server, "/lint", {"source": BROKEN})
        assert not first.get("cached")
        assert second.get("cached")
        assert second["diagnostics"] == first["diagnostics"]

    def test_missing_source_is_400(self, server):
        status, body = post(server, "/lint", {"sauce": "x = 1;"})
        assert status == 400 and not body["ok"]

    def test_metrics_count_lint_requests(self, server):
        post(server, "/lint", {"source": BROKEN})
        service = server.service
        metrics = service.metrics.render_prometheus()
        assert "mvec_lint_requests_total" in metrics
        assert 'mvec_lint_diagnostics_total{severity="error"}' in metrics


class TestAuditEndpoint:
    def test_passing_audit(self, server):
        status, body = post(server, "/audit", {"source": LOOP})
        assert status == 200 and body["ok"]
        assert body["vectorized_stmts"] == 1

    def test_compile_error_is_422(self, server):
        status, body = post(server, "/audit", {"source": "for i =\n"})
        assert status == 422 and not body["ok"]

    def test_metrics_count_audit_verdicts(self, server):
        post(server, "/audit", {"source": LOOP})
        metrics = server.service.metrics.render_prometheus()
        assert 'mvec_audit_total{verdict="pass"}' in metrics


class TestStdio:
    def run_ops(self, lines):
        stdin = io.StringIO("".join(json.dumps(l) + "\n" for l in lines))
        stdout = io.StringIO()
        serve_stdio(CompilationService(), stdin=stdin, stdout=stdout)
        return [json.loads(line) for line in
                stdout.getvalue().splitlines()]

    def test_lint_op(self):
        (response,) = self.run_ops([{"op": "lint", "source": BROKEN}])
        assert response["ok"]
        assert any(d["code"] == "E101" for d in response["diagnostics"])

    def test_audit_op(self):
        (response,) = self.run_ops([{"op": "audit", "source": LOOP}])
        assert response["ok"]
        assert response["vectorized_stmts"] == 1
