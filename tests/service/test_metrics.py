"""Metrics layer: counters, histograms, JSON and Prometheus rendering."""

import math

import pytest

from repro.service.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        counter = Counter("requests_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("requests_total").inc(-1)

    def test_rejects_bad_names(self):
        with pytest.raises(ValueError):
            Counter("bad name")
        with pytest.raises(ValueError):
            Counter("1starts_with_digit")
        with pytest.raises(ValueError):
            Counter("")


class TestHistogram:
    def test_observations_land_in_buckets(self):
        hist = Histogram("latency_seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(5.605)
        assert hist.cumulative() == [1, 3, 4]    # +Inf bucket == count

    def test_prometheus_rendering_is_cumulative(self):
        hist = Histogram("latency_seconds", buckets=(0.01, 0.1),
                         labels={"stage": "parse"})
        hist.observe(0.005)
        hist.observe(0.05)
        lines = hist.render()
        assert 'latency_seconds_bucket{stage="parse",le="0.01"} 1' in lines
        assert 'latency_seconds_bucket{stage="parse",le="0.1"} 2' in lines
        assert 'latency_seconds_bucket{stage="parse",le="+Inf"} 2' in lines
        assert 'latency_seconds_count{stage="parse"} 2' in lines


class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        registry = MetricsRegistry()
        a1 = registry.counter("hits", tier="memory")
        a2 = registry.counter("hits", tier="memory")
        b = registry.counter("hits", tier="disk")
        assert a1 is a2 and a1 is not b

    def test_json_rendering_groups_series(self):
        registry = MetricsRegistry()
        registry.counter("hits", "Cache hits", tier="memory").inc(3)
        registry.counter("hits", "Cache hits", tier="disk").inc()
        payload = registry.to_json()
        assert payload["hits"]["kind"] == "counter"
        tiers = {tuple(s["labels"].items()): s["value"]
                 for s in payload["hits"]["series"]}
        assert tiers[(("tier", "memory"),)] == 3
        assert tiers[(("tier", "disk"),)] == 1

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("hits", "Cache hits", tier="memory").inc(2)
        registry.histogram("stage_seconds", "Stage latency",
                           buckets=(0.1, 1.0), stage="codegen").observe(0.5)
        text = registry.render_prometheus()
        assert "# HELP hits Cache hits" in text
        assert "# TYPE hits counter" in text
        assert 'hits{tier="memory"} 2' in text
        assert "# TYPE stage_seconds histogram" in text
        assert 'stage_seconds_bucket{stage="codegen",le="1"} 1' in text
        assert text.endswith("\n")
        # HELP/TYPE emitted once per family even with many series
        registry.counter("hits", "Cache hits", tier="disk").inc()
        assert registry.render_prometheus().count("# TYPE hits counter") == 1

    def test_infinity_formatting(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(math.inf,))
        hist.observe(3.0)
        assert 'le="+Inf"' in "\n".join(hist.render())
