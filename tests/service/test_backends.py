"""Backend registry, cache adapters, and synchronous fan-out tests."""

import pytest

from repro.service.backends import (
    DEFAULT_FANOUT,
    Backend,
    artifact_for,
    backend_names,
    failure_payload,
    fanout_sync,
    get_backend,
    payload_from_artifact,
    register_backend,
    resolve_backends,
    run_backend,
    status_for,
    unregister_backend,
)
from repro.service.compiler import CompilationService
from repro.service.fingerprint import CompileOptions, cache_key

LOOP = ("%! x(*,1) y(*,1) n(1)\n"
        "x = (1:8)';\n"
        "n = 8;\n"
        "for i = 1:n\n"
        "  y(i) = 2*x(i);\n"
        "end\n")


class TestRegistry:
    def test_defaults_registered(self):
        assert set(DEFAULT_FANOUT) <= set(backend_names())

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(get_backend("lint"))

    def test_register_and_unregister_custom(self):
        backend = Backend(name="echo-test", kind="custom",
                          runner=lambda s, o: {"ok": True, "echo": s},
                          cacheable=False)
        register_backend(backend)
        try:
            assert get_backend("echo-test") is backend
        finally:
            unregister_backend("echo-test")
        with pytest.raises(ValueError):
            get_backend("echo-test")

    def test_resolve_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError, match="duplicate"):
            resolve_backends(["lint", "lint"])
        with pytest.raises(ValueError):
            resolve_backends(["nope"])
        assert [b.name for b in resolve_backends(None)] \
            == list(DEFAULT_FANOUT)


class TestKeysAndOptions:
    def test_compile_backends_pin_their_pipeline_backend(self):
        options = CompileOptions()
        assert get_backend("translate").options_for(options).backend \
            == "numpy"
        assert get_backend("vectorize").options_for(options).backend \
            == "matlab"

    def test_compile_key_matches_service_key(self):
        backend = get_backend("vectorize")
        options = CompileOptions()
        assert backend.cache_key_for(LOOP, options, "f" * 16) \
            == cache_key(LOOP, backend.options_for(options), "f" * 16)

    def test_salted_kinds_get_distinct_namespaces(self):
        options = CompileOptions()
        lint_key = get_backend("lint").cache_key_for(LOOP, options)
        audit_key = get_backend("audit").cache_key_for(LOOP, options)
        compile_key = get_backend("vectorize").cache_key_for(LOOP, options)
        assert len({lint_key, audit_key, compile_key}) == 3


class TestRunBackend:
    def test_run_vectorize_returns_compile_payload(self):
        payload = run_backend("vectorize", LOOP,
                              CompileOptions().to_dict())
        assert payload["ok"]
        assert "y(1:n) = 2*x(1:n);" in payload["vectorized"]

    def test_crashing_runner_comes_back_as_failure_payload(self):
        backend = Backend(name="crash-test", kind="custom",
                          runner=lambda s, o: 1 / 0)
        register_backend(backend)
        try:
            payload = run_backend("crash-test", LOOP, {})
        finally:
            unregister_backend("crash-test")
        assert payload["ok"] is False
        assert payload["error"]["type"] == "ZeroDivisionError"


class TestArtifacts:
    def test_compile_artifact_round_trip(self):
        backend = get_backend("vectorize")
        payload = run_backend("vectorize", LOOP,
                              CompileOptions().to_dict())
        artifact = artifact_for(backend, payload)
        assert artifact["vectorized"] == payload["vectorized"]
        rebuilt = payload_from_artifact(backend, artifact, key="k")
        assert rebuilt["cached"] is True
        assert rebuilt["vectorized"] == payload["vectorized"]

    def test_failed_compile_is_not_cached(self):
        backend = get_backend("vectorize")
        payload = failure_payload(backend, "ParseError", "boom")
        assert artifact_for(backend, payload) is None

    def test_lint_artifact_satisfies_schema_and_round_trips(self):
        backend = get_backend("lint")
        payload = run_backend("lint", "x = 1;\nx = 2;\ny = x;\n", {})
        artifact = artifact_for(backend, payload)
        assert artifact["vectorized"] is None          # schema placeholder
        rebuilt = payload_from_artifact(backend, artifact)
        assert rebuilt["cached"] is True
        assert rebuilt["warnings"] == payload["warnings"]

    def test_non_cacheable_backend_yields_no_artifact(self):
        backend = Backend(name="x", kind="custom",
                          runner=lambda s, o: {"ok": True},
                          cacheable=False)
        assert artifact_for(backend, {"ok": True}) is None


class TestStatus:
    def test_lint_findings_are_200_but_crashes_are_422(self):
        lint = get_backend("lint")
        assert status_for(lint, {"errors": 3}) == 200
        assert status_for(lint, {"error": {"type": "x"}}) == 422

    def test_compile_failure_is_422(self):
        vec = get_backend("vectorize")
        assert status_for(vec, {"ok": False}) == 422
        assert status_for(vec, {"ok": True}) == 200


class TestFanoutSync:
    def test_default_fanout_runs_all_backends(self):
        service = CompilationService()
        outcome = fanout_sync(service, LOOP)
        assert set(outcome.results) == set(DEFAULT_FANOUT)
        status, payload = outcome.results["vectorize"]
        assert status == 200 and payload["ok"]

    def test_fanout_ok_reflects_any_failure(self):
        service = CompilationService()
        outcome = fanout_sync(service, "for i=1:n\n  oops((\nend\n",
                              backends=["vectorize", "lint"])
        assert not outcome.ok
        assert outcome.results["vectorize"][0] == 422
        assert outcome.results["lint"][0] == 200     # lint reports data

    def test_fanout_meters_each_backend(self):
        service = CompilationService()
        fanout_sync(service, LOOP, backends=["vectorize", "lint"])
        rendered = service.metrics.render_prometheus()
        assert 'mvec_backend_requests_total{backend="vectorize"}' \
            in rendered
        assert 'mvec_backend_requests_total{backend="lint"}' in rendered

    def test_fanout_compile_backends_share_the_service_cache(self):
        service = CompilationService()
        fanout_sync(service, LOOP, backends=["vectorize"])
        _status, payload = fanout_sync(
            service, LOOP, backends=["vectorize"]).results["vectorize"]
        assert payload["cached"] is True
