"""Cache tests: LRU order, disk round-trip, invalidation, concurrency,
and corrupted-entry recovery."""

import json
import threading

import pytest

from repro.service.cache import (
    CompilationCache,
    DiskCache,
    MemoryLRU,
)
from repro.service.fingerprint import (
    CompileOptions,
    cache_key,
    pipeline_fingerprint,
)


ARTIFACT = {"vectorized": "z(1:n) = x(1:n);\n", "python": None,
            "stats": {"loops": {"vectorized": 1}},
            "report_summary": "loop 'i' (line 1): vectorized"}


def entry(tag: str) -> dict:
    return {**ARTIFACT, "vectorized": f"% {tag}\n"}


# ---------------------------------------------------------------------------
# Keys and fingerprints
# ---------------------------------------------------------------------------


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key("x = 1;") == cache_key("x = 1;")

    def test_source_changes_key(self):
        assert cache_key("x = 1;") != cache_key("x = 2;")

    def test_options_change_key(self):
        assert cache_key("x = 1;", CompileOptions()) != \
            cache_key("x = 1;", CompileOptions(patterns=False))
        assert cache_key("x = 1;", CompileOptions(backend="matlab")) != \
            cache_key("x = 1;", CompileOptions(backend="numpy"))

    def test_fingerprint_changes_key(self):
        assert cache_key("x = 1;", fingerprint="aaaa") != \
            cache_key("x = 1;", fingerprint="bbbb")

    def test_fingerprint_is_stable_and_short(self):
        fp = pipeline_fingerprint()
        assert fp == pipeline_fingerprint()
        assert len(fp) == 16
        assert all(c in "0123456789abcdef" for c in fp)

    def test_options_reject_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            CompileOptions(backend="fortran")

    def test_options_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown option"):
            CompileOptions.from_dict({"patterns": False, "typo": 1})


# ---------------------------------------------------------------------------
# Memory LRU tier
# ---------------------------------------------------------------------------


class TestMemoryLRU:
    def test_eviction_is_least_recently_used(self):
        lru = MemoryLRU(capacity=3)
        for tag in ("a", "b", "c"):
            lru.put(tag, entry(tag))
        assert lru.get("a") is not None      # refresh 'a'
        lru.put("d", entry("d"))             # evicts 'b', not 'a'
        assert lru.keys() == ["c", "a", "d"]
        assert lru.get("b") is None
        assert lru.evictions == 1

    def test_put_refreshes_recency(self):
        lru = MemoryLRU(capacity=2)
        lru.put("a", entry("a"))
        lru.put("b", entry("b"))
        lru.put("a", entry("a2"))            # rewrite refreshes
        lru.put("c", entry("c"))             # evicts 'b'
        assert lru.get("b") is None
        assert lru.get("a")["vectorized"] == "% a2\n"

    def test_capacity_one(self):
        lru = MemoryLRU(capacity=1)
        lru.put("a", entry("a"))
        lru.put("b", entry("b"))
        assert len(lru) == 1 and "b" in lru

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            MemoryLRU(capacity=0)


# ---------------------------------------------------------------------------
# Disk tier
# ---------------------------------------------------------------------------


KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


class TestDiskCache:
    def test_round_trip(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.put(KEY, ARTIFACT, fingerprint="fp1")
        assert disk.get(KEY, "fp1") == ARTIFACT

    def test_sharded_layout(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.put(KEY, ARTIFACT, fingerprint="fp1")
        assert (tmp_path / KEY[:2] / f"{KEY}.json").exists()

    def test_miss_on_absent_key(self, tmp_path):
        assert DiskCache(tmp_path).get(OTHER, "fp1") is None

    def test_fingerprint_mismatch_drops_entry(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.put(KEY, ARTIFACT, fingerprint="old-pipeline")
        assert disk.get(KEY, "new-pipeline") is None
        # stale file was removed, a matching write works again
        assert not disk.path_for(KEY).exists()

    def test_corrupted_json_recovers(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.put(KEY, ARTIFACT, fingerprint="fp1")
        disk.path_for(KEY).write_text("{truncated", encoding="utf-8")
        assert disk.get(KEY, "fp1") is None
        assert not disk.path_for(KEY).exists()
        disk.put(KEY, ARTIFACT, fingerprint="fp1")   # recompile path
        assert disk.get(KEY, "fp1") == ARTIFACT

    def test_schema_invalid_entry_recovers(self, tmp_path):
        disk = DiskCache(tmp_path)
        path = disk.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"version": 1, "fingerprint": "fp1",
                                    "artifact": {"no_vectorized": True}}),
                        encoding="utf-8")
        assert disk.get(KEY, "fp1") is None

    def test_wrong_schema_version_dropped(self, tmp_path):
        disk = DiskCache(tmp_path)
        path = disk.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"version": 999, "fingerprint": "fp1",
                                    "artifact": ARTIFACT}),
                        encoding="utf-8")
        assert disk.get(KEY, "fp1") is None

    def test_concurrent_writers_never_corrupt(self, tmp_path):
        disk = DiskCache(tmp_path)
        errors = []

        def hammer(tag):
            try:
                for _ in range(50):
                    disk.put(KEY, entry(tag), fingerprint="fp1")
                    loaded = disk.get(KEY, "fp1")
                    # A concurrent writer may have won, but the entry
                    # must always parse and validate.
                    assert loaded is not None
                    assert loaded["vectorized"].startswith("% t")
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(f"t{i}",))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert disk.get(KEY, "fp1") is not None


# ---------------------------------------------------------------------------
# Two-tier composition
# ---------------------------------------------------------------------------


class TestCompilationCache:
    def test_memory_then_disk_then_miss(self, tmp_path):
        cache = CompilationCache(capacity=2, directory=tmp_path,
                                 fingerprint="fp1")
        cache.put(KEY, ARTIFACT)
        assert cache.get(KEY) == ARTIFACT
        assert cache.stats.memory_hits == 1

        # A fresh process (new cache object) hits the disk tier and
        # promotes into memory.
        fresh = CompilationCache(capacity=2, directory=tmp_path,
                                 fingerprint="fp1")
        assert fresh.get(KEY) == ARTIFACT
        assert fresh.stats.disk_hits == 1
        assert fresh.get(KEY) == ARTIFACT
        assert fresh.stats.memory_hits == 1

        assert fresh.get(OTHER) is None
        assert fresh.stats.misses == 1

    def test_pipeline_change_invalidates_disk(self, tmp_path):
        old = CompilationCache(directory=tmp_path, fingerprint="fp-old")
        old.put(KEY, ARTIFACT)
        new = CompilationCache(directory=tmp_path, fingerprint="fp-new")
        assert new.get(KEY) is None
        assert new.stats.dropped_stale == 1
        assert new.stats.misses == 1

    def test_memory_only_mode(self):
        cache = CompilationCache(capacity=4, fingerprint="fp1")
        cache.put(KEY, ARTIFACT)
        assert cache.get(KEY) == ARTIFACT
        assert cache.disk is None

    def test_hit_rate(self, tmp_path):
        cache = CompilationCache(directory=tmp_path, fingerprint="fp1")
        assert cache.stats.hit_rate == 0.0
        cache.put(KEY, ARTIFACT)
        cache.get(KEY)
        cache.get(OTHER)
        assert cache.stats.hit_rate == pytest.approx(0.5)
