"""Async front-end tests: v1 envelopes, concurrency, shedding, timeouts.

The server under test runs in a daemon-thread event loop
(:class:`AsyncServerThread`).  Concurrency tests inject a
``ThreadPoolExecutor`` and register an in-process ``sleep`` backend so
the pool's work is controllable without pickling across processes.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service.aserver import AsyncServerThread
from repro.service.backends import (
    Backend,
    register_backend,
    unregister_backend,
)
from repro.service.compiler import CompilationService
from repro.service.shardedcache import ShardedCache

LOOP = """\
%! x(*,1) y(*,1) n(1)
x = (1:8)';
n = 8;
for i=1:n
  y(i) = 2*x(i);
end
"""

ENVELOPE_FIELDS = {"ok", "result", "error", "diagnostics", "timings",
                   "cache"}


def http(method, host, port, path, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return (response.status, json.loads(response.read()),
                    dict(response.headers))
    except urllib.error.HTTPError as error:
        return (error.code, json.loads(error.read()),
                dict(error.headers))


@pytest.fixture
def srv():
    with AsyncServerThread(executor=ThreadPoolExecutor(max_workers=8),
                           max_concurrency=4, queue_depth=4,
                           request_timeout=30.0) as handle:
        yield handle


class TestV1Surface:
    def test_vectorize_envelope_and_cache_key(self, srv):
        status, body, _headers = http("POST", srv.host, srv.port,
                                      "/v1/vectorize", {"source": LOOP})
        assert status == 200
        assert set(body) == ENVELOPE_FIELDS
        assert body["ok"] and body["error"] is None
        assert "y(1:n) = 2*x(1:n);" in body["result"]["vectorized"]
        assert body["cache"]["cached"] is False
        assert len(body["cache"]["key"]) == 64
        assert "stages" in body["timings"]

        status, again, _headers = http("POST", srv.host, srv.port,
                                       "/v1/vectorize", {"source": LOOP})
        assert again["cache"]["cached"] is True
        assert again["cache"]["key"] == body["cache"]["key"]
        assert again["result"]["vectorized"] \
            == body["result"]["vectorized"]

    def test_translate_returns_python(self, srv):
        _s, body, _h = http("POST", srv.host, srv.port, "/v1/translate",
                            {"source": LOOP})
        assert body["ok"]
        assert "def mprogram" in body["result"]["python"]

    def test_lint_diagnostics_are_data(self, srv):
        _s, body, _h = http("POST", srv.host, srv.port, "/v1/lint",
                            {"source": "y = z + 1;\n"})
        assert body["ok"]
        assert body["result"]["errors"] >= 1
        assert body["diagnostics"]

    def test_audit_envelope(self, srv):
        status, body, _h = http("POST", srv.host, srv.port, "/v1/audit",
                                {"source": LOOP})
        assert status == 200 and body["ok"]
        assert body["result"]["vectorized_stmts"] == 1

    def test_compile_error_is_422_envelope(self, srv):
        status, body, _h = http("POST", srv.host, srv.port,
                                "/v1/vectorize",
                                {"source": "for i=1:n\n  oops((\nend\n"})
        assert status == 422
        assert not body["ok"]
        assert body["error"]["type"]
        assert body["result"] is None

    def test_bad_request_is_400_envelope(self, srv):
        status, body, _h = http("POST", srv.host, srv.port,
                                "/v1/vectorize", {"src": "typo"})
        assert status == 400 and not body["ok"]
        assert body["error"]["type"] == "request"

    def test_unknown_route_404(self, srv):
        status, body, _h = http("POST", srv.host, srv.port, "/v1/zap",
                                {"source": "x = 1;"})
        assert status == 404

    def test_healthz_reports_async_server(self, srv):
        status, body, _h = http("GET", srv.host, srv.port, "/v1/healthz")
        assert status == 200 and body["ok"]
        assert body["result"]["server"] == "async"
        assert "hit_rate" in body["cache"]

    def test_metrics_prometheus_and_json(self, srv):
        http("POST", srv.host, srv.port, "/v1/vectorize",
             {"source": LOOP})
        with urllib.request.urlopen(
                f"http://{srv.host}:{srv.port}/v1/metrics") as response:
            text = response.read().decode()
        assert "mvec_backend_requests_total" in text
        status, body, _h = http("GET", srv.host, srv.port,
                                "/v1/metrics?format=json")
        assert status == 200

    def test_fanout_keyed_result_map(self, srv):
        status, body, _h = http("POST", srv.host, srv.port, "/v1/fanout",
                                {"source": LOOP,
                                 "backends": ["vectorize", "lint"]})
        assert status == 200 and body["ok"]
        assert set(body["result"]) == {"vectorize", "lint"}
        assert body["result"]["vectorize"]["ok"]
        assert set(body["result"]["vectorize"]) == ENVELOPE_FIELDS

    def test_fanout_unknown_backend_400(self, srv):
        status, body, _h = http("POST", srv.host, srv.port, "/v1/fanout",
                                {"source": LOOP, "backends": ["zap"]})
        assert status == 400


class TestLegacyShims:
    def test_legacy_vectorize_shape_and_deprecation_headers(self, srv):
        status, body, headers = http("POST", srv.host, srv.port,
                                     "/vectorize", {"source": LOOP})
        assert status == 200
        assert body["ok"] and "vectorized" in body     # legacy flat shape
        assert "result" not in body
        assert headers["Deprecation"] == "true"
        assert 'rel="successor-version"' in headers["Link"]
        assert "/v1/vectorize" in headers["Link"]

    def test_legacy_lint_shape(self, srv):
        status, body, headers = http("POST", srv.host, srv.port, "/lint",
                                     {"source": "y = z + 1;\n"})
        assert status == 200 and body["ok"]
        assert "diagnostics" in body
        assert headers["Deprecation"] == "true"

    def test_legacy_healthz_and_metrics_deprecated(self, srv):
        status, body, headers = http("GET", srv.host, srv.port,
                                     "/healthz")
        assert status == 200 and body["ok"]
        assert "fingerprint" in body                   # legacy flat shape
        assert headers["Deprecation"] == "true"
        with urllib.request.urlopen(
                f"http://{srv.host}:{srv.port}/metrics") as response:
            assert response.headers["Deprecation"] == "true"


class SleepGate:
    """A custom backend whose runner blocks until released."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.concurrent = 0
        self.peak = 0
        self._lock = threading.Lock()

    def __call__(self, source, options):
        with self._lock:
            self.concurrent += 1
            self.peak = max(self.peak, self.concurrent)
        self.started.set()
        try:
            self.release.wait(timeout=30)
            return {"ok": True, "slept": True}
        finally:
            with self._lock:
                self.concurrent -= 1


@pytest.fixture
def gate():
    gate = SleepGate()
    register_backend(Backend(name="sleep-test", kind="custom",
                             runner=gate, cacheable=False))
    yield gate
    gate.release.set()
    unregister_backend("sleep-test")


def post_async(host, port, path, payload, results):
    try:
        results.append(http("POST", host, port, path, payload))
    except Exception as error:  # noqa: BLE001
        results.append(error)


class TestConcurrency:
    def test_sustains_four_concurrent_inflight_requests(self, gate):
        with AsyncServerThread(
                executor=ThreadPoolExecutor(max_workers=8),
                max_concurrency=4, queue_depth=4,
                request_timeout=30.0) as srv:
            results = []
            threads = [threading.Thread(
                target=post_async,
                args=(srv.host, srv.port, "/v1/fanout",
                      {"source": "x = 1;",
                       "backends": ["sleep-test"]}, results))
                for _ in range(4)]
            for thread in threads:
                thread.start()
            # Wait until all four are executing simultaneously.
            deadline = time.monotonic() + 10
            while gate.peak < 4 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert gate.peak >= 4
            assert srv.server.inflight >= 4
            gate.release.set()
            for thread in threads:
                thread.join(timeout=30)
            assert len(results) == 4
            assert all(status == 200 for status, _b, _h in results)

    def test_saturation_sheds_503_with_retry_after(self, gate):
        with AsyncServerThread(
                executor=ThreadPoolExecutor(max_workers=8),
                max_concurrency=2, queue_depth=1,
                request_timeout=30.0) as srv:
            results = []
            threads = [threading.Thread(
                target=post_async,
                args=(srv.host, srv.port, "/v1/fanout",
                      {"source": "x = 1;",
                       "backends": ["sleep-test"]}, results))
                for _ in range(3)]           # fills slots (2) + queue (1)
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 10
            while srv.server.inflight < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert srv.server.inflight == 3

            # The 4th request must be shed immediately, not queued.
            status, body, headers = http(
                "POST", srv.host, srv.port, "/v1/fanout",
                {"source": "x = 1;", "backends": ["sleep-test"]})
            assert status == 503
            assert body["error"]["type"] == "saturated"
            assert headers["Retry-After"] == "1"

            gate.release.set()
            for thread in threads:
                thread.join(timeout=30)
            assert all(status == 200 for status, _b, _h in results)

    def test_request_timeout_answers_504(self, gate):
        with AsyncServerThread(
                executor=ThreadPoolExecutor(max_workers=2),
                max_concurrency=2, queue_depth=2,
                request_timeout=0.2) as srv:
            status, body, _headers = http(
                "POST", srv.host, srv.port, "/v1/fanout",
                {"source": "x = 1;", "backends": ["sleep-test"]})
            assert status == 504
            assert body["error"]["type"] == "timeout"
            gate.release.set()

    def test_identical_concurrent_requests_converge_via_cache(self):
        service = CompilationService(cache=ShardedCache(shards=2))
        with AsyncServerThread(
                service=service,
                executor=ThreadPoolExecutor(max_workers=4),
                max_concurrency=4, queue_depth=8,
                request_timeout=30.0) as srv:
            results = []
            threads = [threading.Thread(
                target=post_async,
                args=(srv.host, srv.port, "/v1/vectorize",
                      {"source": LOOP}, results)) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert len(results) == 6
            outputs = {body["result"]["vectorized"]
                       for _s, body, _h in results}
            assert len(outputs) == 1
            # A follow-up request is a parent-cache hit.
            _s, body, _h = http("POST", srv.host, srv.port,
                                "/v1/vectorize", {"source": LOOP})
            assert body["cache"]["cached"] is True


class TestShardedServing:
    def test_sharded_cache_behind_async_server(self, tmp_path):
        service = CompilationService(
            cache=ShardedCache(shards=3, directory=tmp_path))
        with AsyncServerThread(
                service=service,
                executor=ThreadPoolExecutor(max_workers=4)) as srv:
            http("POST", srv.host, srv.port, "/v1/vectorize",
                 {"source": LOOP})
            _s, body, _h = http("POST", srv.host, srv.port,
                                "/v1/vectorize", {"source": LOOP})
            assert body["cache"]["cached"] is True
            _s, health, _h = http("GET", srv.host, srv.port,
                                  "/v1/healthz")
            assert len(health["cache"]["shards"]) == 3
