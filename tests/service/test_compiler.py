"""Compilation service and batch compiler tests."""

import time

import pytest

from repro.service import (
    CompilationCache,
    CompilationService,
    CompileOptions,
    WorkerFailure,
    compile_many,
    parallel_map,
)

LOOP = """\
%! x(*,1) y(*,1) n(1)
x = (1:8)';
n = 8;
for i=1:n
  y(i) = 2*x(i);
end
"""

BAD = "for i=1:n\n  oops((\nend\n"


class TestCompileOne:
    def test_vectorizes(self):
        result = CompilationService().compile(LOOP)
        assert result.ok and not result.cached
        assert "y(1:n) = 2*x(1:n);" in result.vectorized
        assert result.python is None
        assert result.stats["statements_vectorized"] == 1
        assert result.cache_key and len(result.cache_key) == 64

    def test_stage_timings_cover_pipeline(self):
        result = CompilationService().compile(LOOP)
        assert set(result.timings) == {"lex", "parse", "analyze", "codegen"}
        assert all(seconds >= 0 for seconds in result.timings.values())

    def test_numpy_backend_adds_translation(self):
        result = CompilationService().compile(
            LOOP, CompileOptions(backend="numpy"))
        assert result.ok
        assert "def mprogram" in result.python
        assert "translate" in result.timings

    def test_second_compile_is_cached(self):
        service = CompilationService()
        first = service.compile(LOOP)
        second = service.compile(LOOP)
        assert not first.cached and second.cached
        assert second.vectorized == first.vectorized
        assert service.cache.stats.memory_hits == 1

    def test_different_options_not_conflated(self):
        service = CompilationService()
        service.compile(LOOP)
        other = service.compile(LOOP, CompileOptions(patterns=False))
        assert not other.cached

    def test_error_is_structured_not_raised(self):
        result = CompilationService().compile(BAD, name="bad.m")
        assert not result.ok
        assert result.error.type == "ParseError"
        assert "expected" in result.error.message
        assert result.name == "bad.m"

    def test_errors_are_not_cached(self):
        service = CompilationService()
        service.compile(BAD)
        again = service.compile(BAD)
        assert not again.ok and not again.cached

    def test_metrics_instrumented(self):
        service = CompilationService()
        service.compile(LOOP)
        service.compile(LOOP)
        service.compile(BAD)
        metrics = service.metrics.to_json()
        requests = metrics["mvec_compile_requests_total"]["series"]
        assert sum(s["value"] for s in requests) == 3
        hits = metrics["mvec_cache_hits_total"]["series"]
        assert sum(s["value"] for s in hits) == 1
        stages = metrics["mvec_stage_seconds"]["series"]
        observed = {s["labels"]["stage"] for s in stages}
        assert {"lex", "parse", "analyze", "codegen"} <= observed

    def test_disk_cache_survives_service_restart(self, tmp_path):
        options = CompileOptions()
        first = CompilationService(
            CompilationCache(directory=tmp_path)).compile(LOOP, options)
        second_service = CompilationService(
            CompilationCache(directory=tmp_path))
        second = second_service.compile(LOOP, options)
        assert second.cached
        assert second.vectorized == first.vectorized
        assert second_service.cache.stats.disk_hits == 1


# ---------------------------------------------------------------------------
# parallel_map
# ---------------------------------------------------------------------------


def _square(x):
    return x * x


def _explode(x):
    if x == 3:
        raise ValueError(f"boom on {x}")
    return x


def _sleep(seconds):
    time.sleep(seconds)
    return seconds


class TestParallelMap:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_order_preserved(self, workers):
        assert parallel_map(_square, list(range(10)),
                            workers=workers) == [x * x for x in range(10)]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_error_isolation(self, workers):
        out = parallel_map(_explode, [1, 2, 3, 4], workers=workers)
        assert out[:2] == [1, 2] and out[3] == 4
        assert isinstance(out[2], WorkerFailure)
        assert out[2].type == "ValueError"
        assert "boom on 3" in out[2].message

    @pytest.mark.parametrize("workers", [1, 2])
    def test_timeout_is_per_item(self, workers):
        out = parallel_map(_sleep, [0.01, 5.0, 0.01],
                           workers=workers, timeout=0.3)
        assert out[0] == 0.01 and out[2] == 0.01
        assert isinstance(out[1], WorkerFailure)
        assert out[1].type == "timeout"

    def test_empty_input(self):
        assert parallel_map(_square, [], workers=4) == []


def _hang(seconds):
    # Sleeps in small slices so SIGALRM, if present, could interrupt;
    # the no-SIGALRM regression below removes that layer entirely.
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        time.sleep(0.01)
    return seconds


class TestWatchdogWithoutSignals:
    """Regression: per-item timeouts must hold on platforms without
    ``SIGALRM`` (Windows, some embedded CPythons).  We simulate one by
    deleting ``signal.setitimer`` before the pool forks, which disables
    the cooperative in-worker layer and leaves only the parent-side
    executor watchdog."""

    def test_timeout_enforced_by_parent_watchdog(self, monkeypatch):
        import signal as signal_module

        monkeypatch.delattr(signal_module, "setitimer")
        start = time.monotonic()
        out = parallel_map(_hang, [0.01, 30.0, 0.01],
                           workers=2, timeout=0.3)
        elapsed = time.monotonic() - start
        assert out[0] == 0.01 and out[2] == 0.01
        assert isinstance(out[1], WorkerFailure)
        assert out[1].type == "timeout"
        # The watchdog recycles the pool instead of waiting the full
        # 30 s sleep out; generous bound for slow CI.
        assert elapsed < 10

    def test_inline_path_without_signals_skips_the_bound(self,
                                                         monkeypatch):
        import signal as signal_module

        monkeypatch.delattr(signal_module, "setitimer")
        # workers=1 runs inline where no watchdog applies: the call
        # must still complete (unbounded) rather than crash.
        assert parallel_map(_sleep, [0.01], workers=1,
                            timeout=5.0) == [0.01]

    def test_compile_many_timeout_without_signals(self, monkeypatch,
                                                  tmp_path):
        import signal as signal_module

        from repro.service.compiler import compile_many

        monkeypatch.delattr(signal_module, "setitimer")
        results = compile_many(
            [("ok.m", "x = 1;\n"), ("ok2.m", "y = 2;\n")],
            workers=2, timeout=5.0)
        assert [r.ok for r in results] == [True, True]


# ---------------------------------------------------------------------------
# compile_many
# ---------------------------------------------------------------------------


def corpus_pairs():
    from pathlib import Path

    root = Path(__file__).resolve().parents[2] / "examples" / "corpus"
    return [(path.name, path.read_text(encoding="utf-8"))
            for path in sorted(root.glob("*.m"))]


class TestCompileMany:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_corpus_compiles_in_order(self, workers):
        pairs = corpus_pairs()
        assert len(pairs) == 41
        results = compile_many(pairs, workers=workers)
        assert [r.name for r in results] == [name for name, _ in pairs]
        assert all(r.ok for r in results)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_one_bad_file_never_kills_the_batch(self, workers):
        pairs = [("good1.m", LOOP), ("bad.m", BAD), ("good2.m", LOOP)]
        results = compile_many(pairs, workers=workers)
        assert [r.ok for r in results] == [True, False, True]
        assert results[1].error.type == "ParseError"

    def test_parallel_matches_sequential(self):
        pairs = corpus_pairs()[:8]
        sequential = compile_many(pairs, workers=1)
        parallel = compile_many(pairs, workers=4)
        for seq, par in zip(sequential, parallel):
            assert seq.vectorized == par.vectorized
            assert seq.cache_key == par.cache_key

    def test_shared_disk_cache(self, tmp_path):
        pairs = corpus_pairs()[:5]
        compile_many(pairs, workers=2, cache_dir=tmp_path)
        warmed = compile_many(pairs, workers=2, cache_dir=tmp_path)
        assert all(r.cached for r in warmed)
