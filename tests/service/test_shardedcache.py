"""Sharded-cache tests: routing, uniformity, rebalance, drop-in use."""

import hashlib
import threading

import pytest

from repro.service.cache import CompilationCache
from repro.service.compiler import CompilationService
from repro.service.fingerprint import CompileOptions, cache_key
from repro.service.shardedcache import ShardedCache


def keys(n):
    return [hashlib.sha256(f"key-{i}".encode()).hexdigest()
            for i in range(n)]


def artifact(i):
    return {"vectorized": f"x = {i};", "python": None,
            "stats": None, "report_summary": None}


class TestRouting:
    def test_routing_is_deterministic(self):
        a = ShardedCache(shards=4)
        b = ShardedCache(shards=4)
        for key in keys(200):
            assert a.shard_index(key) == b.shard_index(key)

    def test_distribution_is_roughly_uniform_over_1k_keys(self):
        cache = ShardedCache(shards=4)
        counts = cache.distribution(keys(2000))
        assert sum(counts) == 2000
        # Consistent hashing with 128 vnodes/shard: every shard should
        # land within a factor of ~2 of the 500-key ideal.
        assert min(counts) > 250
        assert max(counts) < 1000

    def test_single_shard_degenerates_to_plain_routing(self):
        cache = ShardedCache(shards=1)
        assert cache.distribution(keys(50)) == [50]

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            ShardedCache(shards=0)
        with pytest.raises(ValueError):
            ShardedCache(shards=2, vnodes=0)


class TestGetPut:
    def test_round_trip_and_stats(self):
        cache = ShardedCache(shards=3)
        ks = keys(100)
        for i, key in enumerate(ks):
            cache.put(key, artifact(i))
        for i, key in enumerate(ks):
            assert cache.get(key)["vectorized"] == f"x = {i};"
        assert cache.stats.memory_hits == 100
        assert cache.stats.misses == 0
        assert cache.stats.hit_rate == 1.0

    def test_stats_view_is_live(self):
        cache = ShardedCache(shards=2)
        stats = cache.stats
        before = stats.memory_hits
        cache.put(keys(1)[0], artifact(0))
        cache.get(keys(1)[0])
        assert stats.memory_hits == before + 1

    def test_stats_dict_carries_per_shard_breakdown(self):
        cache = ShardedCache(shards=2)
        payload = cache.stats.to_dict()
        assert len(payload["shards"]) == 2
        assert payload["shards"][0]["shard"] == 0

    def test_disk_tier_lands_in_shard_directories(self, tmp_path):
        cache = ShardedCache(shards=2, directory=tmp_path)
        for i, key in enumerate(keys(20)):
            cache.put(key, artifact(i))
        dirs = sorted(p.name for p in tmp_path.iterdir())
        assert dirs == ["shard-000", "shard-001"]


class TestResize:
    def test_grow_moves_only_a_fraction(self, tmp_path):
        cache = ShardedCache(shards=2, capacity=4096, directory=tmp_path)
        ks = keys(1000)
        for i, key in enumerate(ks):
            cache.put(key, artifact(i))
        report = cache.resize(4)
        assert report.shards_before == 2
        assert report.shards_after == 4
        # Consistent hashing: roughly half the keys move 2→4, never all.
        assert 0 < report.moved_memory < 900
        for i, key in enumerate(ks):
            assert cache.get(key)["vectorized"] == f"x = {i};"

    def test_shrink_keeps_every_entry(self, tmp_path):
        cache = ShardedCache(shards=4, capacity=4096, directory=tmp_path)
        ks = keys(300)
        for i, key in enumerate(ks):
            cache.put(key, artifact(i))
        report = cache.resize(2)
        assert report.shards_after == 2
        assert len(cache.shards) == 2
        for i, key in enumerate(ks):
            assert cache.get(key)["vectorized"] == f"x = {i};"

    def test_resize_to_same_count_is_a_noop(self):
        cache = ShardedCache(shards=3)
        report = cache.resize(3)
        assert report.moved == 0

    def test_moved_disk_files_follow(self, tmp_path):
        cache = ShardedCache(shards=2, capacity=4096, directory=tmp_path)
        for i, key in enumerate(keys(200)):
            cache.put(key, artifact(i))
        report = cache.resize(3)
        assert report.moved_disk == report.moved_memory
        assert (tmp_path / "shard-002").exists()

    def test_rebalance_after_layout_change_rehomes(self, tmp_path):
        # Simulate a directory written under a different layout: dump
        # entries straight into what shard 0 of a 2-shard cache reads.
        writer = CompilationCache(capacity=4096,
                                  directory=tmp_path / "shard-000")
        ks = keys(50)
        for i, key in enumerate(ks):
            writer.put(key, artifact(i))
        cache = ShardedCache(shards=2, capacity=4096, directory=tmp_path)
        report = cache.rebalance()
        assert report.moved_disk > 0
        for i, key in enumerate(ks):
            assert cache.get(key)["vectorized"] == f"x = {i};"

    def test_concurrent_puts_during_resize_survive(self):
        cache = ShardedCache(shards=2, capacity=8192)
        ks = keys(400)
        errors = []

        def writer(chunk):
            try:
                for i, key in enumerate(chunk):
                    cache.put(key, artifact(i))
                    cache.get(key)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=writer,
                                    args=(ks[i::4],)) for i in range(4)]
        for thread in threads:
            thread.start()
        cache.resize(5)
        cache.resize(3)
        for thread in threads:
            thread.join()
        assert not errors
        # After a final rebalance every key must be found at its home.
        cache.rebalance()
        hits = sum(1 for key in ks if cache.get(key) is not None)
        assert hits == len(ks)


class TestDropInWithService:
    def test_service_runs_unmodified_on_a_sharded_cache(self):
        service = CompilationService(cache=ShardedCache(shards=4))
        source = "for i = 1:8\n  y(i) = 2*x(i);\nend"
        first = service.compile(source)
        second = service.compile(source)
        assert not first.cached and second.cached
        assert service.cache.stats.memory_hits == 1
        tiers = {tuple(sorted(s.labels.items())): s.value
                 for s in service.metrics.samples("mvec_cache_hits_total")} \
            if hasattr(service.metrics, "samples") else None
        # The tiered hit metering (snapshot/compare) must see the live
        # aggregate view move — the memory-tier counter exists.
        rendered = service.metrics.render_prometheus()
        assert 'mvec_cache_hits_total{tier="memory"} 1' in rendered
        assert tiers is None or tiers

    def test_artifacts_identical_across_shard_counts(self, tmp_path):
        source = "for i = 1:8\n  y(i) = 2*x(i);\nend"
        options = CompileOptions()
        plain = CompilationService(
            cache=CompilationCache(directory=tmp_path / "plain"))
        sharded = CompilationService(
            cache=ShardedCache(shards=4, directory=tmp_path / "sharded"))
        a = plain.compile(source, options)
        b = sharded.compile(source, options)
        assert a.cache_key == b.cache_key == cache_key(
            source, options, plain.fingerprint)
        assert a.vectorized == b.vectorized
