"""The /v1 surface on the *threaded* server, and shim deprecation."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.compiler import CompilationService
from repro.service.server import CompilationServer, serve_stdio
from repro.service.shardedcache import ShardedCache
from repro.service.v1 import LEGACY_SUCCESSORS, deprecation_headers

LOOP = """\
%! x(*,1) y(*,1) n(1)
x = (1:8)';
n = 8;
for i=1:n
  y(i) = 2*x(i);
end
"""

ENVELOPE_FIELDS = {"ok", "result", "error", "diagnostics", "timings",
                   "cache"}


@pytest.fixture
def server():
    service = CompilationService(cache=ShardedCache(shards=2))
    server = CompilationServer(("127.0.0.1", 0), service, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def call(server, method, path, payload=None):
    host, port = server.server_address
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return (response.status, json.loads(response.read()),
                    dict(response.headers))
    except urllib.error.HTTPError as error:
        return (error.code, json.loads(error.read()),
                dict(error.headers))


class TestV1OnThreadedServer:
    def test_every_post_op_answers_the_envelope(self, server):
        for op in ("vectorize", "translate", "lint", "audit", "fanout"):
            status, body, _h = call(server, "POST", f"/v1/{op}",
                                    {"source": LOOP})
            assert status == 200, op
            assert set(body) == ENVELOPE_FIELDS, op
            assert body["ok"], op

    def test_vectorize_cache_flow(self, server):
        _s, first, _h = call(server, "POST", "/v1/vectorize",
                             {"source": LOOP})
        _s, second, _h = call(server, "POST", "/v1/vectorize",
                              {"source": LOOP})
        assert first["cache"]["cached"] is False
        assert second["cache"]["cached"] is True
        assert first["cache"]["key"] == second["cache"]["key"]

    def test_fanout_sub_envelopes(self, server):
        status, body, _h = call(server, "POST", "/v1/fanout",
                                {"source": LOOP,
                                 "backends": ["vectorize", "audit"]})
        assert status == 200
        assert set(body["result"]) == {"vectorize", "audit"}
        for sub in body["result"].values():
            assert set(sub) == ENVELOPE_FIELDS

    def test_fanout_failure_is_422_with_per_backend_detail(self, server):
        status, body, _h = call(server, "POST", "/v1/fanout",
                                {"source": "for i=1:n\n  oops((\nend\n",
                                 "backends": ["vectorize", "lint"]})
        assert status == 422 and not body["ok"]
        assert not body["result"]["vectorize"]["ok"]
        assert body["result"]["lint"]["ok"]

    def test_v1_healthz_and_metrics(self, server):
        status, body, headers = call(server, "GET", "/v1/healthz")
        assert status == 200 and body["ok"]
        assert body["result"]["server"] == "threaded"
        assert "shards" in body["cache"]
        assert "Deprecation" not in headers
        host, port = server.server_address
        with urllib.request.urlopen(
                f"http://{host}:{port}/v1/metrics") as response:
            assert b"mvec_http_requests_total" in response.read()
            assert "Deprecation" not in response.headers

    def test_v1_errors_use_the_envelope(self, server):
        status, body, _h = call(server, "POST", "/v1/vectorize",
                                {"nope": 1})
        assert status == 400
        assert set(body) == ENVELOPE_FIELDS
        assert body["error"]["type"] == "request"


class TestShims:
    def test_all_legacy_routes_emit_deprecation_and_successor(self,
                                                              server):
        host, port = server.server_address
        for path, successor in LEGACY_SUCCESSORS.items():
            if path == "/metrics":                 # Prometheus text body
                with urllib.request.urlopen(
                        f"http://{host}:{port}{path}") as response:
                    status = response.status
                    headers = dict(response.headers)
            elif path == "/healthz":
                status, _body, headers = call(server, "GET", path)
            else:
                status, _body, headers = call(server, "POST", path,
                                              {"source": LOOP})
            assert status == 200, path
            assert headers["Deprecation"] == "true", path
            assert successor in headers["Link"], path

    def test_legacy_shapes_unchanged(self, server):
        _s, body, _h = call(server, "POST", "/vectorize",
                            {"source": LOOP})
        assert body["ok"] and "vectorized" in body and "result" not in body
        _s, health, _h = call(server, "GET", "/healthz")
        assert "fingerprint" in health

    def test_legacy_errors_keep_flat_shape_with_headers(self, server):
        status, body, headers = call(server, "POST", "/vectorize",
                                     {"nope": 1})
        assert status == 400
        assert body == {"ok": False,
                        "error": {"type": "request",
                                  "message": "missing required string "
                                             "field 'source'"}}
        assert headers["Deprecation"] == "true"

    def test_deprecation_headers_helper(self):
        headers = dict(deprecation_headers("/vectorize"))
        assert headers["Deprecation"] == "true"
        assert "successor-version" in headers["Link"]


class TestStdioFanout:
    def test_stdio_fanout_op(self):
        import io

        stdin = io.StringIO(json.dumps(
            {"op": "fanout", "source": LOOP,
             "backends": ["vectorize", "lint"]}) + "\n")
        stdout = io.StringIO()
        assert serve_stdio(CompilationService(), stdin, stdout) == 0
        response = json.loads(stdout.getvalue())
        assert response["ok"]
        assert set(response["result"]) == {"vectorize", "lint"}
