"""HTTP and stdio front-end tests (real sockets, loopback only)."""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.compiler import CompilationService
from repro.service.server import CompilationServer, serve_stdio

LOOP = """\
%! x(*,1) y(*,1) n(1)
x = (1:8)';
n = 8;
for i=1:n
  y(i) = 2*x(i);
end
"""


@pytest.fixture
def server():
    server = CompilationServer(("127.0.0.1", 0), quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def url(server, path):
    host, port = server.server_address
    return f"http://{host}:{port}{path}"


def post(server, path, payload):
    data = (payload if isinstance(payload, bytes)
            else json.dumps(payload).encode("utf-8"))
    request = urllib.request.Request(
        url(server, path), data=data,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as response:
        return response.status, json.load(response)


def get(server, path):
    with urllib.request.urlopen(url(server, path)) as response:
        return response.status, response.read()


class TestHTTP:
    def test_vectorize_then_cache_hit(self, server):
        status, first = post(server, "/vectorize", {"source": LOOP})
        assert status == 200 and first["ok"] and not first["cached"]
        assert "y(1:n) = 2*x(1:n);" in first["vectorized"]

        status, second = post(server, "/vectorize", {"source": LOOP})
        assert status == 200 and second["cached"]
        assert second["vectorized"] == first["vectorized"]

    def test_vectorize_with_options(self, server):
        _, result = post(server, "/vectorize",
                         {"source": LOOP, "options": {"patterns": False}})
        assert result["ok"] and not result["cached"]

    def test_translate_forces_numpy_backend(self, server):
        status, result = post(server, "/translate", {"source": LOOP})
        assert status == 200 and result["ok"]
        assert result["python"] is not None
        assert "def mprogram" in result["python"]

    def test_compile_error_is_422(self, server):
        request = urllib.request.Request(
            url(server, "/vectorize"),
            data=json.dumps({"source": "for i=1:n\n  oops((\nend\n"}
                            ).encode())
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 422
        payload = json.load(excinfo.value)
        assert payload["ok"] is False
        assert payload["error"]["type"] == "ParseError"

    @pytest.mark.parametrize("body,fragment", [
        (b"{not json", "invalid JSON"),
        (b"[1, 2]", "must be a JSON object"),
        (json.dumps({"no_source": 1}).encode(), "source"),
        (json.dumps({"source": "x=1;",
                     "options": {"typo": True}}).encode(), "unknown"),
    ])
    def test_bad_requests_are_400(self, server, body, fragment):
        request = urllib.request.Request(url(server, "/vectorize"),
                                         data=body)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert fragment in json.load(excinfo.value)["error"]["message"]

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url(server, "/nope"))
        assert excinfo.value.code == 404

    def test_healthz(self, server):
        status, body = get(server, "/healthz")
        payload = json.loads(body)
        assert status == 200 and payload["ok"]
        assert payload["fingerprint"] == server.service.fingerprint
        assert "cache" in payload

    def test_metrics_prometheus_and_json(self, server):
        post(server, "/vectorize", {"source": LOOP})
        post(server, "/vectorize", {"source": LOOP})

        _, body = get(server, "/metrics")
        text = body.decode()
        assert "# TYPE mvec_stage_seconds histogram" in text
        assert 'mvec_stage_seconds_bucket{stage="codegen"' in text
        assert 'mvec_cache_hits_total{tier="memory"} 1' in text
        assert "mvec_cache_misses_total 1" in text
        assert 'mvec_http_requests_total{route="/vectorize",status="200"}' \
            in text

        _, body = get(server, "/metrics?format=json")
        payload = json.loads(body)
        assert payload["mvec_stage_seconds"]["kind"] == "histogram"
        stage_count = sum(s["count"] for s
                          in payload["mvec_stage_seconds"]["series"])
        assert stage_count > 0


class TestStdio:
    def run_lines(self, *requests):
        stdin = io.StringIO(
            "".join(json.dumps(request) + "\n" for request in requests))
        stdout = io.StringIO()
        assert serve_stdio(CompilationService(), stdin, stdout) == 0
        return [json.loads(line) for line in
                stdout.getvalue().splitlines()]

    def test_vectorize_and_cache_hit(self):
        first, second = self.run_lines(
            {"op": "vectorize", "source": LOOP},
            {"op": "vectorize", "source": LOOP})
        assert first["ok"] and not first["cached"]
        assert second["ok"] and second["cached"]
        assert "y(1:n) = 2*x(1:n);" in first["vectorized"]

    def test_translate_and_metrics_and_health(self):
        translate, health, metrics = self.run_lines(
            {"op": "translate", "source": LOOP},
            {"op": "health"},
            {"op": "metrics"})
        assert translate["ok"] and "def mprogram" in translate["python"]
        assert health["ok"] and "fingerprint" in health
        assert metrics["ok"]
        assert "mvec_stage_seconds" in metrics["metrics"]

    def test_default_op_is_vectorize(self):
        (only,) = self.run_lines({"source": LOOP})
        assert only["ok"] and "vectorized" in only

    def test_bad_lines_produce_error_objects(self):
        stdin = io.StringIO('{"op": "nope", "source": "x=1;"}\n'
                            "not json at all\n"
                            "\n"
                            '{"source": "x=1;"}\n')
        stdout = io.StringIO()
        serve_stdio(CompilationService(), stdin, stdout)
        lines = [json.loads(line) for line
                 in stdout.getvalue().splitlines()]
        assert len(lines) == 3                 # blank line skipped
        assert not lines[0]["ok"] and "unknown op" in \
            lines[0]["error"]["message"]
        assert not lines[1]["ok"]
        assert lines[2]["ok"]
