"""CLI tests for ``mvec``."""

import pytest

from repro.cli import main


@pytest.fixture
def sample(tmp_path):
    path = tmp_path / "loop.m"
    path.write_text("""
%! x(*,1) y(*,1) n(1)
x = (1:8)';
n = 8;
for i=1:n
  y(i) = 2*x(i);
end
""")
    return path


def test_vectorize_to_stdout(sample, capsys):
    assert main([str(sample)]) == 0
    out = capsys.readouterr().out
    assert "y(1:n) = 2*x(1:n);" in out
    assert "for " not in out


def test_output_file(sample, tmp_path, capsys):
    out_path = tmp_path / "vec.m"
    assert main([str(sample), "-o", str(out_path)]) == 0
    assert "y(1:n) = 2*x(1:n);" in out_path.read_text()


def test_report(sample, capsys):
    assert main([str(sample), "--report"]) == 0
    err = capsys.readouterr().err
    assert "vectorized" in err


def test_run_verifies(sample, capsys):
    assert main([str(sample), "--run"]) == 0
    err = capsys.readouterr().err
    assert "workspaces match" in err


def test_run_exits_nonzero_on_divergence(capsys):
    from repro.cli import _run_both

    original = "x = [1; 2];\nfor i = 1:2\n  z(i) = 2*x(i);\nend\n"
    wrong = "x = [1; 2];\nz = x;\n"  # lost the factor of 2
    assert _run_both(original, wrong, seed=0) == 1
    err = capsys.readouterr().err
    assert "diverge" in err
    assert "z" in err


def test_run_exits_nonzero_on_missing_output(capsys):
    from repro.cli import _run_both

    original = "x = [1; 2];\nfor i = 1:2\n  z(i) = 2*x(i);\nend\n"
    dropped = "x = [1; 2];\n"  # z never defined
    assert _run_both(original, dropped, seed=0) == 1
    err = capsys.readouterr().err
    assert "defined on one side only" in err


def test_run_ignores_loop_indices_and_temps(capsys):
    from repro.cli import _run_both

    # `i` and the forward-substituted scalar temp `t` are legitimately
    # absent from the vectorized workspace and must not diverge.
    original = ("x = [1, 2];\n"
                "for i = 1:2\n  t = 2*x(i);\n  z(i) = t;\nend\n")
    vectorized = "x = [1, 2];\nz = 2*x;\n"
    assert _run_both(original, vectorized, seed=0) == 0
    assert "workspaces match" in capsys.readouterr().err


def test_emit_python(sample, capsys):
    assert main([str(sample), "--emit-python"]) == 0
    out = capsys.readouterr().out
    assert "def mprogram" in out


def test_ablation_flag(sample, capsys):
    code_on = main([str(sample)])
    on = capsys.readouterr().out
    code_off = main([str(sample), "--no-promotion", "--no-transposes"])
    off = capsys.readouterr().out
    assert code_on == 0 and code_off == 0
    assert "for " not in on and "for " not in off  # promotion not needed here


def test_missing_file(capsys):
    assert main(["/nonexistent/file.m"]) == 2


def test_parse_error(tmp_path, capsys):
    bad = tmp_path / "bad.m"
    bad.write_text("for i=1:3\n x = ;\nend")
    assert main([str(bad)]) == 1
    assert "mvec:" in capsys.readouterr().err


def test_stdin(monkeypatch, capsys):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO("x = 1;\n"))
    assert main(["-"]) == 0
    assert "x = 1;" in capsys.readouterr().out


def test_stats(sample, capsys):
    assert main([str(sample), "--stats"]) == 0
    err = capsys.readouterr().err
    assert '"statements_vectorized": 1' in err


def test_report_stats_api():
    from repro import vectorize_source

    result = vectorize_source("""
%! a(1,*) x(1,*) A(*,*) b(1,*) n(1)
for i=1:n
  a(i) = A(i,i)*b(i);
end
for i=2:n
  x(i) = x(i-1);
end
""")
    stats = result.report.stats()
    assert stats["statements_total"] == 2
    assert stats["statements_vectorized"] == 1
    assert stats["patterns_used"].get("diagonal-access") == 1
    assert stats["loops"].get("vectorized") == 1
    assert stats["loops"].get("unchanged") == 1
    assert stats["failure_reasons"]


# ---------------------------------------------------------------------------
# Multi-file invocation and `mvec batch` / `mvec serve`
# ---------------------------------------------------------------------------


@pytest.fixture
def second(tmp_path):
    path = tmp_path / "sum.m"
    path.write_text("""
%! x(*,1) s(1) n(1)
x = (1:6)';
n = 6;
s = 0;
for i=1:n
  s = s + x(i);
end
""")
    return path


@pytest.fixture
def broken(tmp_path):
    path = tmp_path / "broken.m"
    path.write_text("for i=1:n\n  oops((\nend\n")
    return path


def test_multi_file_prints_headers(sample, second, capsys):
    assert main([str(sample), str(second)]) == 0
    out = capsys.readouterr().out
    assert "% ===== loop.m =====" in out
    assert "% ===== sum.m =====" in out
    assert out.index("loop.m") < out.index("sum.m")
    assert "y(1:n) = 2*x(1:n);" in out
    assert "s = s+sum(x(1:n), 1);" in out


def test_multi_file_bad_input_exits_nonzero(sample, broken, capsys):
    assert main([str(sample), str(broken)]) == 1
    captured = capsys.readouterr()
    assert "y(1:n) = 2*x(1:n);" in captured.out    # good file still emitted
    assert "broken.m" in captured.err


def test_multi_file_rejects_output_flag(sample, second, tmp_path, capsys):
    code = main([str(sample), str(second), "-o", str(tmp_path / "o.m")])
    assert code == 2
    assert "-o" in capsys.readouterr().err


def test_batch_writes_out_dir(sample, second, tmp_path, capsys):
    out_dir = tmp_path / "out"
    assert main(["batch", str(sample), str(second), "--workers", "1",
                 "--out-dir", str(out_dir), "--quiet"]) == 0
    assert "y(1:n) = 2*x(1:n);" in (out_dir / "loop.m").read_text()
    assert (out_dir / "sum.m").exists()


def test_batch_json_report(sample, broken, capsys):
    import json

    assert main(["batch", str(sample), str(broken), "--workers", "1",
                 "--json", "--quiet"]) == 1
    records = json.loads(capsys.readouterr().out)
    by_name = {record["name"]: record for record in records}
    assert by_name["loop.m"]["ok"]
    assert not by_name["broken.m"]["ok"]
    assert by_name["broken.m"]["error"]["type"] == "ParseError"


def test_batch_emit_python(sample, tmp_path, capsys):
    out_dir = tmp_path / "py"
    assert main(["batch", str(sample), "--workers", "1", "--emit-python",
                 "--out-dir", str(out_dir), "--quiet"]) == 0
    assert "def mprogram" in (out_dir / "loop.py").read_text()


def test_batch_cache_dir_warm_run(sample, second, tmp_path, capsys):
    cache = tmp_path / "cache"
    argv = ["batch", str(sample), str(second), "--workers", "1",
            "--cache-dir", str(cache)]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0
    assert "cached" in capsys.readouterr().err


def test_serve_stdio_round_trip(monkeypatch, capsys):
    import io
    import json

    source = ("%! x(*,1) y(*,1) n(1)\n"
              "x = (1:4)';\nn = 4;\n"
              "for i=1:n\n  y(i) = 3*x(i);\nend\n")
    lines = (json.dumps({"op": "vectorize", "source": source}) + "\n") * 2
    monkeypatch.setattr("sys.stdin", io.StringIO(lines))
    assert main(["serve", "--stdio"]) == 0
    replies = [json.loads(line) for line
               in capsys.readouterr().out.splitlines()]
    assert replies[0]["ok"] and not replies[0]["cached"]
    assert replies[1]["cached"]
    assert "y(1:n) = 3*x(1:n);" in replies[0]["vectorized"]


def test_serve_parser_accepts_async_and_shards():
    from repro.cli import build_serve_parser

    args = build_serve_parser().parse_args(
        ["--async", "--shards", "4", "--max-concurrency", "8",
         "--queue-depth", "2", "--request-timeout", "5"])
    assert args.use_async and args.shards == 4
    assert args.max_concurrency == 8 and args.queue_depth == 2
    assert args.request_timeout == 5.0


def test_client_vectorize_against_async_server(sample, capsys):
    import json
    from concurrent.futures import ThreadPoolExecutor

    from repro.service.aserver import AsyncServerThread

    with AsyncServerThread(
            executor=ThreadPoolExecutor(max_workers=2)) as srv:
        assert main(["client", "vectorize", str(sample),
                     "--host", srv.host, "--port", str(srv.port)]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"]
        assert "y(1:n) = 2*x(1:n);" in envelope["result"]["vectorized"]

        assert main(["client", "healthz",
                     "--host", srv.host, "--port", str(srv.port)]) == 0
        health = json.loads(capsys.readouterr().out)
        assert health["result"]["server"] == "async"


def test_client_unreachable_server_exits_three(sample, capsys):
    assert main(["client", "vectorize", str(sample),
                 "--port", "1", "--retries", "0"]) == 3
    assert "mvec client:" in capsys.readouterr().err


def test_client_needs_a_file_for_post_ops(capsys):
    with pytest.raises(SystemExit):
        main(["client", "vectorize"])
