"""Interpreter tests: statements, control flow, builtins, functions."""

import numpy as np
import pytest

from repro import run_source
from repro.errors import MatlabRuntimeError
from repro.runtime.values import as_array, shape_of


def run(source, **env):
    return run_source(source, env=dict(env) if env else None, seed=0)


class TestBasics:
    def test_assignment(self):
        assert run("x = 3;")["x"] == 3.0

    def test_arithmetic(self):
        env = run("x = 2 + 3*4 - 6/2;")
        assert env["x"] == 11.0

    def test_precedence_power(self):
        assert run("x = -2^2;")["x"] == -4.0

    def test_range_value(self):
        env = run("v = 1:5;")
        assert np.array_equal(as_array(env["v"]), [[1, 2, 3, 4, 5]])

    def test_range_step(self):
        env = run("v = 10:-2:5;")
        assert np.array_equal(as_array(env["v"]), [[10, 8, 6]])

    def test_empty_range(self):
        env = run("v = 1:0;")
        assert shape_of(env["v"]) == (1, 0)

    def test_matrix_literal(self):
        env = run("A = [1, 2; 3, 4];")
        assert np.array_equal(as_array(env["A"]), [[1, 2], [3, 4]])

    def test_matrix_concat_blocks(self):
        env = run("A = [1:3; 4:6];")
        assert shape_of(env["A"]) == (2, 3)

    def test_transpose(self):
        env = run("v = (1:3)';")
        assert shape_of(env["v"]) == (3, 1)

    def test_string(self):
        assert run("s = 'hi';")["s"] == "hi"

    def test_constants(self):
        env = run("p = pi; e1 = eps;")
        assert abs(env["p"] - np.pi) < 1e-12

    def test_ans_for_unsuppressed(self):
        assert run("1 + 1")["ans"] == 2.0

    def test_undefined_variable(self):
        with pytest.raises(MatlabRuntimeError):
            run("y = qqq + 1;")


class TestControlFlow:
    def test_for_accumulate(self):
        assert run("s=0;\nfor i=1:10\n s=s+i;\nend")["s"] == 55.0

    def test_for_step(self):
        env = run("c=0;\nfor i=1:2:9\n c=c+1;\nend")
        assert env["c"] == 5.0

    def test_for_over_row_vector(self):
        env = run("s=0;\nv=[2, 4, 6];\nfor x=v\n s=s+x;\nend")
        assert env["s"] == 12.0

    def test_for_over_matrix_columns(self):
        env = run("c=0;\nA=[1, 2; 3, 4];\nfor col=A\n c=c+sum(col);\nend")
        assert env["c"] == 10.0

    def test_while(self):
        env = run("k=0;\nwhile k < 5\n k = k + 1;\nend")
        assert env["k"] == 5.0

    def test_if_elseif_else(self):
        source = """
x = {};
if x > 0
  r = 1;
elseif x < 0
  r = -1;
else
  r = 0;
end
"""
        for value, expected in [(3.0, 1.0), (-2.0, -1.0), (0.0, 0.0)]:
            env = run(source.replace("{}", repr(value)))
            assert env["r"] == expected

    def test_break(self):
        env = run("s=0;\nfor i=1:10\n if i > 3\n break;\n end\n "
                  "s=s+i;\nend")
        assert env["s"] == 6.0

    def test_continue(self):
        env = run("s=0;\nfor i=1:10\n if mod(i,2) == 0\n continue;\n end\n"
                  " s=s+i;\nend")
        assert env["s"] == 25.0

    def test_short_circuit(self):
        env = run("x = 0;\nok = (x ~= 0) && (1/x > 1);\n")
        assert env["ok"] == 0.0


class TestIndexingInPrograms:
    def test_auto_grow(self):
        env = run("a(5) = 1;")
        assert shape_of(env["a"]) == (1, 5)

    def test_end_keyword(self):
        env = run("v = 10:10:50;\nx = v(end);\ny = v(end-1);")
        assert env["x"] == 50.0 and env["y"] == 40.0

    def test_end_per_dimension(self):
        env = run("A = [1, 2, 3; 4, 5, 6];\nx = A(end, end);")
        assert env["x"] == 6.0

    def test_end_linear(self):
        env = run("A = [1, 2; 3, 4];\nx = A(end);")
        assert env["x"] == 4.0

    def test_colon_assignment(self):
        env = run("A = zeros(2, 3);\nA(:, 2) = 7;")
        assert np.array_equal(as_array(env["A"])[:, 1], [7, 7])

    def test_row_assignment(self):
        env = run("A = zeros(2, 3);\nA(1, :) = 1:3;")
        assert np.array_equal(as_array(env["A"])[0], [1, 2, 3])

    def test_logical_style_mask_via_find(self):
        env = run("v = [3, 1, 4, 1, 5];\nidx = find(v > 2);\nw = v(idx);")
        assert np.array_equal(as_array(env["w"]), [[3, 4, 5]])


class TestBuiltins:
    def test_size(self):
        env = run("A = zeros(3, 4);\ns = size(A);\nr = size(A, 1);\n"
                  "c = size(A, 2);")
        assert np.array_equal(as_array(env["s"]), [[3, 4]])
        assert env["r"] == 3.0 and env["c"] == 4.0

    def test_multi_output_size(self):
        env = run("A = zeros(3, 4);\n[m, n] = size(A);")
        assert env["m"] == 3.0 and env["n"] == 4.0

    def test_sum_vector_and_matrix(self):
        env = run("a = sum([1, 2, 3]);\nb = sum([1, 2; 3, 4]);\n"
                  "c = sum([1, 2; 3, 4], 2);")
        assert env["a"] == 6.0
        assert np.array_equal(as_array(env["b"]), [[4, 6]])
        assert np.array_equal(as_array(env["c"]), [[3], [7]])

    def test_cumsum(self):
        env = run("v = cumsum([1, 2, 3]);")
        assert np.array_equal(as_array(env["v"]), [[1, 3, 6]])

    def test_repmat(self):
        env = run("A = repmat([1; 2], 1, 3);")
        assert shape_of(env["A"]) == (2, 3)

    def test_eye_diag(self):
        env = run("I = eye(3);\nd = diag(I);\nD = diag([1, 2]);")
        assert np.array_equal(as_array(env["d"]).ravel(), [1, 1, 1])
        assert as_array(env["D"])[1, 1] == 2.0

    def test_min_max(self):
        env = run("a = max([3, 1, 4]);\nb = min([3, 1, 4]);\n"
                  "c = max([1, 5], [4, 2]);")
        assert env["a"] == 4.0 and env["b"] == 1.0
        assert np.array_equal(as_array(env["c"]), [[4, 5]])

    def test_hist_centers(self):
        env = run("h = hist([0, 0, 1, 2, 2, 2], 0:2);")
        assert np.array_equal(as_array(env["h"]), [[2, 1, 3]])

    def test_hist_tails_absorbed(self):
        env = run("h = hist([-5, 0, 1, 99], 0:2);")
        assert np.array_equal(as_array(env["h"]), [[2, 1, 1]])

    def test_rand_seeded(self):
        a = run_source("x = rand(2, 2);", seed=7)["x"]
        b = run_source("x = rand(2, 2);", seed=7)["x"]
        assert np.array_equal(as_array(a), as_array(b))

    def test_reshape(self):
        env = run("A = reshape(1:6, 2, 3);")
        # Column-major fill.
        assert np.array_equal(as_array(env["A"]), [[1, 3, 5], [2, 4, 6]])

    def test_mod(self):
        env = run("m = mod([5, 6, 7], 3);")
        assert np.array_equal(as_array(env["m"]), [[2, 0, 1]])

    def test_error_builtin(self):
        with pytest.raises(MatlabRuntimeError):
            run("error('boom');")

    def test_norm_dot(self):
        env = run("n = norm([3, 4]);\nd = dot([1, 2], [3, 4]);")
        assert env["n"] == 5.0 and env["d"] == 11.0

    def test_uint8_clamps(self):
        env = run("x = uint8(300);\ny = uint8(-5);\nz = uint8(3.6);")
        assert env["x"] == 255.0 and env["y"] == 0.0 and env["z"] == 4.0


class TestFunctions:
    def test_single_output(self):
        env = run("function y = sq(x)\ny = x*x;\nend\nr = sq(5);")
        assert env["r"] == 25.0

    def test_multi_output(self):
        env = run("""
function [s, p] = both(a, b)
s = a + b;
p = a * b;
end
[u, v] = both(3, 4);
""")
        assert env["u"] == 7.0 and env["v"] == 12.0

    def test_function_scope_isolated(self):
        env = run("""
function y = f(x)
t = x + 1;
y = t;
end
t = 100;
r = f(1);
""")
        assert env["t"] == 100.0 and env["r"] == 2.0

    def test_recursion(self):
        env = run("""
function y = fact(n)
if n <= 1
  y = 1;
else
  y = n*fact(n - 1);
end
end
r = fact(5);
""")
        assert env["r"] == 120.0

    def test_return_statement(self):
        env = run("""
function y = f(x)
y = 1;
if x > 0
  return;
end
y = 2;
end
a = f(1);
b = f(-1);
""")
        assert env["a"] == 1.0 and env["b"] == 2.0


class TestSemanticFidelity:
    def test_no_broadcast_error_in_program(self):
        with pytest.raises(MatlabRuntimeError):
            run("z = [1, 2, 3] + [1; 2; 3];")

    def test_matmul_conformance_error(self):
        with pytest.raises(MatlabRuntimeError):
            run("C = [1, 2]*[3, 4];")

    def test_column_major_linear_order(self):
        env = run("A = [1, 2; 3, 4];\nv = A(:)';")
        assert np.array_equal(as_array(env["v"]), [[1, 3, 2, 4]])
