"""Edge-case coverage for every builtin family in the runtime."""

import numpy as np
import pytest

from repro import run_source
from repro.errors import MatlabRuntimeError
from repro.runtime.values import as_array, shape_of


def run(source):
    return run_source(source, seed=0)


class TestConstructors:
    def test_zeros_no_args(self):
        assert run("z = zeros();")["z"] == 0.0

    def test_zeros_size_vector(self):
        env = run("Z = zeros([2, 3]);")
        assert shape_of(env["Z"]) == (2, 3)

    def test_ones_square(self):
        env = run("O = ones(3);")
        assert shape_of(env["O"]) == (3, 3)

    def test_eye_rectangular(self):
        env = run("I = eye(2, 4);")
        assert shape_of(env["I"]) == (2, 4)
        assert as_array(env["I"])[1, 1] == 1.0
        assert as_array(env["I"])[0, 2] == 0.0

    def test_linspace_default_count(self):
        env = run("v = linspace(0, 1);")
        assert shape_of(env["v"]) == (1, 100)

    def test_linspace_explicit(self):
        env = run("v = linspace(0, 1, 5);")
        assert np.allclose(as_array(env["v"]),
                           [[0, 0.25, 0.5, 0.75, 1.0]])

    def test_repmat_single_count(self):
        env = run("R = repmat(5, 2);")
        assert shape_of(env["R"]) == (2, 2)

    def test_reshape_size_mismatch(self):
        with pytest.raises(MatlabRuntimeError):
            run("R = reshape(1:6, 4, 2);")


class TestReductionsEdge:
    def test_prod(self):
        assert run("p = prod([1, 2, 3, 4]);")["p"] == 24.0

    def test_prod_matrix_columns(self):
        env = run("p = prod([1, 2; 3, 4]);")
        assert np.array_equal(as_array(env["p"]), [[3, 8]])

    def test_mean_matrix(self):
        env = run("m = mean([1, 2; 3, 4]);")
        assert np.array_equal(as_array(env["m"]), [[2, 3]])

    def test_any_all_vectors(self):
        env = run("a = any([0, 0, 1]);\nb = all([1, 0, 1]);")
        assert env["a"] == 1.0 and env["b"] == 0.0

    def test_any_matrix_by_columns(self):
        env = run("a = any([0, 1; 0, 0]);")
        assert np.array_equal(as_array(env["a"]), [[0, 1]])

    def test_cumsum_matrix_default_axis(self):
        env = run("c = cumsum([1, 2; 3, 4]);")
        assert np.array_equal(as_array(env["c"]), [[1, 2], [4, 6]])

    def test_cumsum_axis2(self):
        env = run("c = cumsum([1, 2; 3, 4], 2);")
        assert np.array_equal(as_array(env["c"]), [[1, 3], [3, 7]])

    def test_cumprod(self):
        env = run("c = cumprod([1, 2, 3]);")
        assert np.array_equal(as_array(env["c"]), [[1, 2, 6]])

    def test_sum_bad_dim(self):
        with pytest.raises(MatlabRuntimeError):
            run("s = sum([1, 2], 3);")

    def test_min_max_pairwise_scalar_extension(self):
        env = run("a = max([1, 5, 3], 2);\nb = min(4, [1, 5, 3]);")
        assert np.array_equal(as_array(env["a"]), [[2, 5, 3]])
        assert np.array_equal(as_array(env["b"]), [[1, 4, 3]])


class TestStructural:
    def test_tril_triu(self):
        env = run("A = ones(3);\nL = tril(A);\nU = triu(A, 1);")
        assert as_array(env["L"])[0, 2] == 0.0
        assert as_array(env["U"])[0, 0] == 0.0
        assert as_array(env["U"])[0, 1] == 1.0

    def test_kron(self):
        env = run("K = kron([1, 2], [1; 1]);")
        assert shape_of(env["K"]) == (2, 2)
        assert np.array_equal(as_array(env["K"]), [[1, 2], [1, 2]])

    def test_diag_rectangular_matrix(self):
        env = run("d = diag([1, 2, 3; 4, 5, 6]);")
        assert np.array_equal(as_array(env["d"]).ravel(), [1, 5])

    def test_sort_matrix_by_columns(self):
        env = run("S = sort([3, 1; 1, 2]);")
        assert np.array_equal(as_array(env["S"]), [[1, 1], [3, 2]])

    def test_find_row_orientation(self):
        env = run("f = find([0, 3, 0, 7]);")
        assert shape_of(env["f"]) == (1, 2)

    def test_find_column_orientation(self):
        env = run("f = find([0; 3; 7]);")
        assert shape_of(env["f"]) == (2, 1)


class TestScalarQueries:
    def test_length_of_matrix_is_max_dim(self):
        assert run("l = length(zeros(3, 7));")["l"] == 7.0

    def test_length_of_empty(self):
        assert run("l = length(1:0);")["l"] == 0.0

    def test_isempty(self):
        env = run("a = isempty(1:0);\nb = isempty(5);")
        assert env["a"] == 1.0 and env["b"] == 0.0

    def test_numel(self):
        assert run("n = numel(zeros(3, 4));")["n"] == 12.0

    def test_norm_matrix_spectral(self):
        env = run("n = norm(eye(3));")
        assert abs(env["n"] - 1.0) < 1e-12

    def test_norm_vector_1norm(self):
        assert run("n = norm([3, -4], 1);")["n"] == 7.0

    def test_dot_mixed_orientations(self):
        assert run("d = dot([1, 2, 3], [1; 1; 1]);")["d"] == 6.0

    def test_dot_size_mismatch(self):
        with pytest.raises(MatlabRuntimeError):
            run("d = dot([1, 2], [1, 2, 3]);")


class TestHistogramFamily:
    def test_hist_scalar_bin_count(self):
        env = run("h = hist([0, 1, 2, 3], 2);")
        assert np.array_equal(as_array(env["h"]), [[2, 2]])

    def test_hist_default_ten_bins(self):
        env = run("h = hist(1:100);")
        assert shape_of(env["h"]) == (1, 10)
        assert as_array(env["h"]).sum() == 100.0

    def test_histc_edges(self):
        env = run("h = histc([1, 2, 2, 3], [1, 2, 3]);")
        assert np.array_equal(as_array(env["h"]), [[1, 2, 1]])


class TestPointwiseFamily:
    def test_trig_identity(self):
        env = run("x = 0.3;\nv = sin(x)^2 + cos(x)^2;")
        assert abs(env["v"] - 1.0) < 1e-12

    def test_rounding_family(self):
        env = run("a = floor(-1.5);\nb = ceil(-1.5);\nc = round(2.5);\n"
                  "d = fix(-1.7);")
        assert env["a"] == -2.0 and env["b"] == -1.0
        assert env["d"] == -1.0  # fix truncates toward zero

    def test_sign(self):
        env = run("s = sign([-3, 0, 9]);")
        assert np.array_equal(as_array(env["s"]), [[-1, 0, 1]])

    def test_mod_negative(self):
        assert run("m = mod(-1, 3);")["m"] == 2.0

    def test_rem_negative(self):
        assert run("r = rem(-1, 3);")["r"] == -1.0

    def test_isnan_isinf(self):
        env = run("a = isnan(0/0);\nb = isinf(1/0);\nc = isfinite(2);")
        assert env["a"] == 1.0 and env["b"] == 1.0 and env["c"] == 1.0

    def test_atan2(self):
        env = run("t = atan2(1, 1);")
        assert abs(env["t"] - np.pi / 4) < 1e-12


class TestErrorsAndIO:
    def test_error_with_message(self):
        with pytest.raises(MatlabRuntimeError, match="boom"):
            run("error('boom');")

    def test_fprintf_format(self, capsys):
        run("fprintf('v=%d\\n', 42);")
        assert "v=42" in capsys.readouterr().out

    def test_disp_array(self, capsys):
        run("disp([1, 2]);")
        assert capsys.readouterr().out.strip()
