"""Value-model tests: MATLAB-7 operator semantics and indexing."""

import numpy as np
import pytest

from repro.errors import MatlabRuntimeError
from repro.runtime import values as V


def arr(data):
    return np.asfortranarray(np.array(data, dtype=float))


class TestScalars:
    def test_is_scalar(self):
        assert V.is_scalar(3.0)
        assert V.is_scalar(arr([[5.0]]))
        assert not V.is_scalar(arr([[1.0, 2.0]]))

    def test_as_scalar(self):
        assert V.as_scalar(arr([[7.0]])) == 7.0
        with pytest.raises(MatlabRuntimeError):
            V.as_scalar(arr([[1.0, 2.0]]))

    def test_canonical_collapses(self):
        assert V.canonical(arr([[4.0]])) == 4.0
        assert isinstance(V.canonical(arr([[1.0, 2.0]])), np.ndarray)

    def test_shape_of(self):
        assert V.shape_of(3.0) == (1, 1)
        assert V.shape_of(arr([[1, 2], [3, 4]])) == (2, 2)
        assert V.shape_of("abc") == (1, 3)


class TestNoBroadcasting:
    """MATLAB 7 has no implicit broadcasting — the whole point of the
    vectorizer's repmat/transpose insertions."""

    def test_row_plus_column_errors(self):
        with pytest.raises(MatlabRuntimeError):
            V.add(arr([[1, 2, 3]]), arr([[1], [2], [3]]))

    def test_matrix_plus_column_errors(self):
        with pytest.raises(MatlabRuntimeError):
            V.add(arr([[1, 2], [3, 4]]), arr([[1], [2]]))

    def test_scalar_extension_allowed(self):
        out = V.add(arr([[1, 2]]), 10.0)
        assert np.array_equal(V.as_array(out), [[11, 12]])

    def test_equal_shapes_ok(self):
        out = V.elmul(arr([[1, 2]]), arr([[3, 4]]))
        assert np.array_equal(V.as_array(out), [[3, 8]])


class TestOperators:
    def test_matmul(self):
        out = V.matmul(arr([[1, 2]]), arr([[3], [4]]))
        assert out == 11.0

    def test_matmul_shape_check(self):
        with pytest.raises(MatlabRuntimeError):
            V.matmul(arr([[1, 2]]), arr([[3, 4]]))

    def test_matmul_scalar_scaling(self):
        out = V.matmul(2.0, arr([[1, 2]]))
        assert np.array_equal(V.as_array(out), [[2, 4]])

    def test_outer_product(self):
        out = V.matmul(arr([[1], [2]]), arr([[3, 4]]))
        assert np.array_equal(V.as_array(out), [[3, 4], [6, 8]])

    def test_rdivide_scalar(self):
        assert V.rdivide(6.0, 2.0) == 3.0

    def test_rdivide_matrix(self):
        b = arr([[2, 0], [0, 4]])
        out = V.rdivide(arr([[2, 4]]), b)
        assert np.allclose(V.as_array(out), [[1, 1]])

    def test_ldivide_solve(self):
        a = arr([[2, 0], [0, 4]])
        out = V.ldivide(a, arr([[2], [8]]))
        assert np.allclose(V.as_array(out), [[1], [2]])

    def test_mpower(self):
        assert V.mpower(2.0, 10.0) == 1024.0
        out = V.mpower(arr([[1, 1], [0, 1]]), 3.0)
        assert np.array_equal(V.as_array(out), [[1, 3], [0, 1]])

    def test_mpower_non_integer_matrix(self):
        with pytest.raises(MatlabRuntimeError):
            V.mpower(arr([[1, 0], [0, 1]]), 0.5)

    def test_transpose(self):
        out = V.transpose(arr([[1, 2, 3]]))
        assert V.shape_of(out) == (3, 1)
        assert V.transpose(5.0) == 5.0

    def test_compare_elementwise(self):
        out = V.compare("<", arr([[1, 5]]), arr([[3, 3]]))
        assert np.array_equal(V.as_array(out), [[1, 0]])

    def test_logical_ops(self):
        out = V.logical_and(arr([[1, 0]]), arr([[1, 1]]))
        assert np.array_equal(V.as_array(out), [[1, 0]])
        out = V.logical_or(arr([[1, 0]]), arr([[0, 0]]))
        assert np.array_equal(V.as_array(out), [[1, 0]])
        assert V.logical_not(0.0) == 1.0

    def test_is_truthy(self):
        assert V.is_truthy(1.0)
        assert not V.is_truthy(0.0)
        assert V.is_truthy(arr([[1, 2]]))
        assert not V.is_truthy(arr([[1, 0]]))
        assert not V.is_truthy(V.matrix(0, 0))


class TestIndexRead:
    def test_scalar_subscript(self):
        a = arr([[10, 20, 30]])
        assert V.index_read(a, [2.0]) == 20.0

    def test_linear_column_major(self):
        a = arr([[1, 3], [2, 4]])
        assert V.index_read(a, [2.0]) == 2.0
        assert V.index_read(a, [3.0]) == 3.0

    def test_vector_index_row_source(self):
        a = arr([[10, 20, 30]])
        out = V.index_read(a, [arr([[1, 3]])])
        assert V.shape_of(out) == (1, 2)

    def test_vector_index_column_source_keeps_orientation(self):
        a = arr([[10], [20], [30]])
        out = V.index_read(a, [arr([[1, 3]])])
        assert V.shape_of(out) == (2, 1)

    def test_matrix_index_takes_index_shape(self):
        a = arr([[10, 20, 30]])
        idx = arr([[1, 2], [3, 1]])
        out = V.index_read(a, [idx])
        assert V.shape_of(out) == (2, 2)

    def test_colon_flattens(self):
        a = arr([[1, 3], [2, 4]])
        out = V.index_read(a, [V.COLON])
        assert np.array_equal(V.as_array(out).ravel(), [1, 2, 3, 4])
        assert V.shape_of(out) == (4, 1)

    def test_two_subscripts(self):
        a = arr([[1, 2], [3, 4]])
        assert V.index_read(a, [2.0, 1.0]) == 3.0

    def test_row_slice(self):
        a = arr([[1, 2], [3, 4]])
        out = V.index_read(a, [1.0, V.COLON])
        assert np.array_equal(V.as_array(out), [[1, 2]])

    def test_range_rows(self):
        a = arr([[1, 2], [3, 4], [5, 6]])
        out = V.index_read(a, [arr([[2, 3]]), V.COLON])
        assert np.array_equal(V.as_array(out), [[3, 4], [5, 6]])

    def test_out_of_bounds(self):
        with pytest.raises(MatlabRuntimeError):
            V.index_read(arr([[1, 2]]), [5.0])

    def test_non_integer_subscript(self):
        with pytest.raises(MatlabRuntimeError):
            V.index_read(arr([[1, 2]]), [1.5])

    def test_zero_subscript(self):
        with pytest.raises(MatlabRuntimeError):
            V.index_read(arr([[1, 2]]), [0.0])


class TestIndexWrite:
    def test_simple_write(self):
        out = V.index_write(arr([[1, 2, 3]]), [2.0], 9.0)
        assert np.array_equal(V.as_array(out), [[1, 9, 3]])

    def test_auto_create_row(self):
        out = V.index_write(None, [3.0], 7.0)
        assert np.array_equal(V.as_array(out), [[0, 0, 7]])

    def test_grow_row(self):
        out = V.index_write(arr([[1, 2]]), [4.0], 9.0)
        assert np.array_equal(V.as_array(out), [[1, 2, 0, 9]])

    def test_grow_column(self):
        out = V.index_write(arr([[1], [2]]), [3.0], 9.0)
        assert V.shape_of(out) == (3, 1)

    def test_grow_matrix_2d(self):
        out = V.index_write(arr([[1]]), [2.0, 3.0], 9.0)
        assert V.shape_of(out) == (2, 3)
        assert V.index_read(out, [2.0, 3.0]) == 9.0

    def test_slice_write_block(self):
        base = V.matrix(3, 3)
        out = V.index_write(base, [arr([[1, 2]]), arr([[1, 2]])],
                            arr([[1, 2], [3, 4]]))
        assert V.index_read(out, [2.0, 2.0]) == 4.0

    def test_scalar_fill(self):
        out = V.index_write(V.matrix(2, 2), [V.COLON, 1.0], 5.0)
        assert np.array_equal(V.as_array(out)[:, 0], [5, 5])

    def test_vector_orientation_conform(self):
        # Writing a row into a column slice conforms when sizes match.
        out = V.index_write(V.matrix(3, 3), [V.COLON, 2.0],
                            arr([[1, 2, 3]]))
        assert np.array_equal(V.as_array(out)[:, 1], [1, 2, 3])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MatlabRuntimeError):
            V.index_write(V.matrix(3, 3),
                          [arr([[1, 2]]), arr([[1, 2]])],
                          arr([[1, 2, 3]]))

    def test_linear_write_into_matrix_in_bounds(self):
        out = V.index_write(arr([[1, 3], [2, 4]]), [4.0], 9.0)
        assert V.index_read(out, [2.0, 2.0]) == 9.0

    def test_linear_grow_matrix_rejected(self):
        with pytest.raises(MatlabRuntimeError):
            V.index_write(arr([[1, 2], [3, 4]]), [9.0], 1.0)

    def test_original_not_mutated(self):
        base = arr([[1, 2, 3]])
        V.index_write(base, [1.0], 9.0)
        assert base[0, 0] == 1.0


class TestValuesEqual:
    def test_scalars(self):
        assert V.values_equal(1.0, 1.0 + 1e-14)
        assert not V.values_equal(1.0, 2.0)

    def test_shape_sensitive(self):
        assert not V.values_equal(arr([[1, 2]]), arr([[1], [2]]))

    def test_nan_equal(self):
        assert V.values_equal(float("nan"), float("nan"))
