"""Multi-output builtins: [m,n]=size, [v,i]=max/min, [s,i]=sort."""

import numpy as np
import pytest

from repro import run_source
from repro.errors import MatlabRuntimeError
from repro.runtime.builtins import call_multi, make_builtins
from repro.runtime.values import as_array
from repro.translate.numpy_backend import compile_source


def both(source):
    """Run under the interpreter and the transpiler; results must agree."""
    interp = run_source(source, seed=0)
    compiled = compile_source(source)(env={}, seed=0)
    for key in interp:
        if isinstance(interp[key], np.ndarray):
            assert np.array_equal(as_array(interp[key]),
                                  as_array(compiled[key])), key
        else:
            assert interp[key] == compiled[key], key
    return interp


class TestMaxMin:
    def test_max_with_index(self):
        env = both("v = [3, 9, 4];\n[m, i] = max(v);")
        assert env["m"] == 9.0 and env["i"] == 2.0

    def test_min_with_index(self):
        env = both("v = [3, 9, 4];\n[m, i] = min(v);")
        assert env["m"] == 3.0 and env["i"] == 1.0

    def test_first_occurrence_wins(self):
        env = both("v = [7, 2, 2, 7];\n[m, i] = max(v);\n[l, j] = min(v);")
        assert env["i"] == 1.0 and env["j"] == 2.0

    def test_column_input(self):
        env = both("v = [3; 9; 4];\n[m, i] = max(v);")
        assert env["m"] == 9.0 and env["i"] == 2.0


class TestSort:
    def test_sort_with_order(self):
        env = both("v = [3, 1, 2];\n[s, i] = sort(v);")
        assert np.array_equal(as_array(env["s"]), [[1, 2, 3]])
        assert np.array_equal(as_array(env["i"]), [[2, 3, 1]])

    def test_sort_column_keeps_shape(self):
        env = both("v = [3; 1; 2];\n[s, i] = sort(v);")
        assert as_array(env["s"]).shape == (3, 1)

    def test_stable_order(self):
        env = both("v = [2, 1, 2];\n[s, i] = sort(v);")
        assert np.array_equal(as_array(env["i"]), [[2, 1, 3]])


class TestSize:
    def test_size_two_outputs(self):
        env = both("A = zeros(2, 7);\n[r, c] = size(A);")
        assert env["r"] == 2.0 and env["c"] == 7.0


class TestCallMultiHelper:
    def test_unknown_multi_returns_none(self):
        registry = make_builtins(np.random.default_rng(0))
        assert call_multi(registry, "cos", [1.0], 2) is None

    def test_single_output_returns_none(self):
        registry = make_builtins(np.random.default_rng(0))
        assert call_multi(registry, "max", [np.ones((1, 3))], 1) is None

    def test_sort_matrix_two_outputs_rejected(self):
        registry = make_builtins(np.random.default_rng(0))
        with pytest.raises(MatlabRuntimeError):
            call_multi(registry, "sort", [np.ones((2, 2))], 2)
