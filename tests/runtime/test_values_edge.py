"""Edge cases for :func:`repro.runtime.values.values_equal` and for the
interpreter's auto-growing/indexing semantics.

These pin the exact behaviors the differential-fuzzing oracle leans on:
``values_equal`` is the judge of every workspace comparison, and
auto-growing assignment is the trickiest interpreter path a generated
program can hit.
"""

import numpy as np
import pytest

from repro.errors import MatlabRuntimeError
from repro.runtime.interp import run_source
from repro.runtime.values import values_equal


def _col(*xs):
    return np.asfortranarray(np.array(xs, dtype=float).reshape(-1, 1))


def _row(*xs):
    return np.asfortranarray(np.array(xs, dtype=float).reshape(1, -1))


# -- values_equal ---------------------------------------------------------


class TestValuesEqual:
    def test_nan_equals_nan(self):
        assert values_equal(float("nan"), float("nan"))
        assert values_equal(_col(1.0, float("nan")), _col(1.0, float("nan")))

    def test_nan_not_equal_to_number(self):
        assert not values_equal(float("nan"), 0.0)

    def test_inf_handling(self):
        assert values_equal(float("inf"), float("inf"))
        assert not values_equal(float("inf"), float("-inf"))
        assert not values_equal(float("inf"), 1e300)

    def test_empty_matrices_equal(self):
        empty = np.zeros((0, 0), order="F")
        assert values_equal(empty, empty.copy())

    def test_empty_shapes_distinguished(self):
        assert not values_equal(np.zeros((0, 0), order="F"),
                                np.zeros((0, 3), order="F"))

    def test_scalar_equals_1x1_array(self):
        assert values_equal(3.0, np.full((1, 1), 3.0, order="F"))
        assert values_equal(np.full((1, 1), 3.0, order="F"), 3.0)

    def test_bool_scalar_equals_float(self):
        assert values_equal(True, 1.0)
        assert values_equal(False, 0.0)

    def test_row_and_column_differ(self):
        assert not values_equal(_row(1, 2, 3), _col(1, 2, 3))

    def test_shape_mismatch(self):
        assert not values_equal(_col(1, 2), _col(1, 2, 3))

    def test_within_tolerance(self):
        assert values_equal(1.0, 1.0 + 1e-13)
        assert not values_equal(1.0, 1.0 + 1e-6)

    def test_custom_tolerance(self):
        assert values_equal(1.0, 1.001, rtol=1e-2)
        assert not values_equal(1.0, 1.001, rtol=1e-6)

    def test_strings(self):
        assert values_equal("abc", "abc")
        assert not values_equal("abc", "abd")
        assert not values_equal("1", 1.0)


# -- auto-growing assignment ----------------------------------------------


class TestAutoGrow:
    def test_write_past_end_zero_fills(self):
        ws = run_source("x = [1, 2];\nx(5) = 7;\n")
        assert values_equal(ws["x"], _row(1, 2, 0, 0, 7))

    def test_append_via_end_plus_one(self):
        ws = run_source("x = [1; 2];\nx(end + 1) = 9;\n")
        assert values_equal(ws["x"], _col(1, 2, 9))

    def test_column_vector_grows_as_column(self):
        ws = run_source("x = [1; 2];\nx(4) = 5;\n")
        assert values_equal(ws["x"], _col(1, 2, 0, 5))

    def test_two_subscript_growth_preserves_block(self):
        ws = run_source("A = [1, 2; 3, 4];\nA(3, 3) = 9;\n")
        expected = np.zeros((3, 3), order="F")
        expected[:2, :2] = [[1, 2], [3, 4]]
        expected[2, 2] = 9
        assert values_equal(ws["A"], expected)

    def test_write_to_undefined_makes_row(self):
        ws = run_source("x(3) = 5;\n")
        assert values_equal(ws["x"], _row(0, 0, 5))

    def test_write_to_undefined_two_subscripts(self):
        ws = run_source("q(2, 3) = 5;\n")
        expected = np.zeros((2, 3), order="F")
        expected[1, 2] = 5
        assert values_equal(ws["q"], expected)

    def test_scalar_promoted_then_grown(self):
        ws = run_source("s = 4;\ns(3) = 1;\n")
        assert values_equal(ws["s"], _row(4, 0, 1))

    def test_linear_growth_on_matrix_errors(self):
        with pytest.raises(MatlabRuntimeError):
            run_source("A = [1, 2; 3, 4];\nA(9) = 1;\n")


# -- indexing reads --------------------------------------------------------


class TestIndexing:
    def test_linear_read_is_column_major(self):
        ws = run_source("A = [1, 2; 3, 4];\nv = A(2);\nw = A(3);\n")
        assert ws["v"] == 3.0
        assert ws["w"] == 2.0

    def test_colon_flattens_column_major(self):
        ws = run_source("A = [1, 2; 3, 4];\nv = A(:);\n")
        assert values_equal(ws["v"], _col(1, 3, 2, 4))

    def test_out_of_bounds_read_errors(self):
        with pytest.raises(MatlabRuntimeError):
            run_source("x = [1, 2];\ny = x(3);\n")

    def test_out_of_bounds_2d_read_errors(self):
        with pytest.raises(MatlabRuntimeError):
            run_source("A = [1, 2; 3, 4];\ny = A(3, 1);\n")

    def test_single_element_read_collapses_to_scalar(self):
        ws = run_source("A = [1, 2; 3, 4];\nv = A(1, 2);\n")
        assert isinstance(ws["v"], float)
        assert ws["v"] == 2.0

    def test_logical_mask_read_on_column(self):
        ws = run_source("x = [5; -1; 7];\ny = x(x > 0);\n")
        assert values_equal(ws["y"], _col(5, 7))

    def test_logical_mask_read_on_row(self):
        ws = run_source("x = [5, -1, 7];\ny = x(x > 0);\n")
        assert values_equal(ws["y"], _row(5, 7))

    def test_row_slice_of_matrix(self):
        ws = run_source("A = [1, 2; 3, 4];\nr = A(2, :);\nc = A(:, 1);\n")
        assert values_equal(ws["r"], _row(3, 4))
        assert values_equal(ws["c"], _col(1, 3))

    def test_non_integer_subscript_errors(self):
        with pytest.raises(MatlabRuntimeError):
            run_source("x = [1, 2];\ny = x(1.5);\n")

    def test_zero_subscript_errors(self):
        with pytest.raises(MatlabRuntimeError):
            run_source("x = [1, 2];\ny = x(0);\n")
