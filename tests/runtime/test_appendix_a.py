"""Appendix A conformance: every operator the paper's Table 4 lists.

One test per row of the paper's MATLAB quick-reference table, executed
through the runtime (both the description's semantics and the shapes).
"""

import numpy as np

from repro import run_source
from repro.runtime.values import as_array, shape_of


def run(source):
    return run_source(source, seed=0)


class TestTable4Rows:
    def test_size_with_dim(self):
        env = run("X = zeros(3, 5);\nr = size(X, 1);\nc = size(X, 2);")
        assert env["r"] == 3.0 and env["c"] == 5.0

    def test_size_vector(self):
        env = run("X = zeros(3, 5);\ns = size(X);")
        assert np.array_equal(as_array(env["s"]), [[3, 5]])

    def test_repmat_replication(self):
        env = run("X = [1, 2];\nR = repmat(X, [3, 2]);")
        assert shape_of(env["R"]) == (3, 4)
        assert np.array_equal(as_array(env["R"])[0], [1, 2, 1, 2])

    def test_eye(self):
        env = run("I = eye(3);")
        assert np.array_equal(as_array(env["I"]), np.eye(3))

    def test_ones(self):
        env = run("O = ones(2, 3);")
        assert np.all(as_array(env["O"]) == 1) and shape_of(env["O"]) == (2, 3)

    def test_zeros(self):
        env = run("Z = zeros(2, 3);")
        assert np.all(as_array(env["Z"]) == 0) and shape_of(env["Z"]) == (2, 3)

    def test_elementwise_operator_family(self):
        env = run("A = [1, 2; 3, 4];\nB = [5, 6; 7, 8];\n"
                  "P = A.*B;\nQ = A./B;\nS = A.^2;")
        assert as_array(env["P"])[0, 1] == 12.0   # A(1,2)*B(1,2)
        assert abs(as_array(env["Q"])[1, 0] - 3 / 7) < 1e-12
        assert as_array(env["S"])[1, 1] == 16.0

    def test_colon_with_increment(self):
        env = run("v = 1:3:10;")
        assert np.array_equal(as_array(env["v"]), [[1, 4, 7, 10]])

    def test_colon_default_increment(self):
        env = run("v = 2:5;")
        assert np.array_equal(as_array(env["v"]), [[2, 3, 4, 5]])

    def test_diag_of_matrix_extracts_column(self):
        env = run("X = [1, 2; 3, 4];\nd = diag(X);")
        assert shape_of(env["d"]) == (2, 1)
        assert np.array_equal(as_array(env["d"]).ravel(), [1, 4])

    def test_diag_of_vector_builds_matrix(self):
        env = run("D = diag([7, 8]);")
        assert np.array_equal(as_array(env["D"]), [[7, 0], [0, 8]])

    def test_colon_flattens_column_major(self):
        env = run("A = [1, 2; 3, 4];\nf = A(:);")
        assert shape_of(env["f"]) == (4, 1)
        assert np.array_equal(as_array(env["f"]).ravel(), [1, 3, 2, 4])

    def test_row_extraction(self):
        env = run("A = [1, 2; 3, 4];\nr = A(2, :);")
        assert np.array_equal(as_array(env["r"]), [[3, 4]])

    def test_transpose_operator(self):
        env = run("A = [1, 2; 3, 4];\nT = A';")
        assert np.array_equal(as_array(env["T"]), [[1, 3], [2, 4]])

    def test_scalars_are_1x1(self):
        """Appendix A: scalars are two-dimensional 1×1 objects."""
        env = run("x = 5;\ns = size(x);\nr = size(x, 1);")
        assert np.array_equal(as_array(env["s"]), [[1, 1]])
        assert env["r"] == 1.0
