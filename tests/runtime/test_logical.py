"""Logical (mask) arrays: comparison results, mask indexing, arithmetic."""

import numpy as np
import pytest

from repro import run_source
from repro.errors import MatlabRuntimeError
from repro.runtime.values import as_array, shape_of


def run(source, **env):
    return run_source(source, env=dict(env) if env else None, seed=0)


class TestLogicalCreation:
    def test_comparison_gives_logical(self):
        env = run("m = [1, 5, 2] > 2;")
        assert as_array(env["m"]).dtype == np.bool_

    def test_and_or_not_logical(self):
        env = run("a = ([1, 0, 1] & [1, 1, 0]);\n"
                  "b = ([1, 0, 0] | [0, 0, 1]);\n"
                  "c = ~[1, 0, 2];")
        assert as_array(env["a"]).dtype == np.bool_
        assert np.array_equal(as_array(env["b"]), [[True, False, True]])
        assert np.array_equal(as_array(env["c"]), [[False, True, False]])

    def test_scalar_comparison_is_float(self):
        env = run("x = 3 > 2;")
        assert env["x"] == 1.0


class TestMaskIndexing:
    def test_read_row_source(self):
        env = run("v = [3, 1, 4, 1, 5];\nw = v(v > 2);")
        assert np.array_equal(as_array(env["w"]), [[3, 4, 5]])
        assert shape_of(env["w"]) == (1, 3)

    def test_read_column_source(self):
        env = run("u = (1:5)';\nm = u(u >= 3);")
        assert shape_of(env["m"]) == (3, 1)

    def test_read_matrix_source_column_major(self):
        env = run("A = [1, 4; 3, 2];\nw = A(A > 1)';")
        # Column-major selection order: 3 (2,1), 4 (1,2), 2 (2,2).
        assert np.array_equal(as_array(env["w"]), [[3, 4, 2]])

    def test_write_with_mask(self):
        env = run("A = [1, 2; 3, 4];\nA(A > 2) = 0;")
        assert np.array_equal(as_array(env["A"]), [[1, 2], [0, 0]])

    def test_write_vector_through_mask(self):
        env = run("v = [1, 2, 3, 4];\nv(v > 2) = [30, 40];")
        assert np.array_equal(as_array(env["v"]), [[1, 2, 30, 40]])

    def test_mask_per_dimension(self):
        env = run("A = [1, 2; 3, 4];\nr = A([0, 1] > 0, :);")
        assert np.array_equal(as_array(env["r"]), [[3, 4]])

    def test_empty_selection(self):
        env = run("v = [1, 2];\nw = v(v > 99);")
        assert as_array(env["w"]).size == 0

    def test_mask_longer_than_extent_rejected(self):
        with pytest.raises(MatlabRuntimeError):
            run("v = [1, 2];\nw = v([1, 0, 1] > 0);")


class TestLogicalArithmetic:
    def test_masks_count_with_sum(self):
        env = run("c = sum([1, 5, 2, 7] > 2);")
        assert env["c"] == 2.0

    def test_mask_in_arithmetic_is_01(self):
        env = run("x = ([1, 5] > 2) * 10;")
        assert np.array_equal(as_array(env["x"]), [[0, 10]])

    def test_mask_plus_mask(self):
        env = run("x = ([1, 5] > 2) + ([5, 1] > 2);")
        assert np.array_equal(as_array(env["x"]), [[1, 1]])

    def test_negate_mask(self):
        env = run("x = -([1, 5] > 2);")
        assert np.array_equal(as_array(env["x"]), [[0, -1]])

    def test_find_on_mask(self):
        env = run("idx = find([5, 1, 7] > 2);")
        assert np.array_equal(as_array(env["idx"]).ravel(), [1, 3])

    def test_mean_of_mask(self):
        env = run("f = mean([1, 5, 2, 7] > 2);")
        assert env["f"] == 0.5


class TestVectorizedEquivalenceWithMasks:
    def test_threshold_workload_matches_looped(self):
        """The vectorized threshold writes a logical block into a double
        matrix; the loop writes scalar 0/1 — results must compare equal."""
        from repro import vectorize_source
        from repro.runtime.values import values_equal

        source = """
%! im(*,*) bw(*,*) t(1)
for i=1:size(im,1)
  for j=1:size(im,2)
    bw(i,j) = im(i,j) > t;
  end
end
"""
        result = vectorize_source(source)
        rng = np.random.default_rng(0)
        env = {"im": np.asfortranarray(np.floor(rng.random((6, 5)) * 10)),
               "bw": np.asfortranarray(np.zeros((6, 5))), "t": 5.0}
        base = run_source(source, env=dict(env))
        vect = run_source(result.source, env=dict(env))
        assert values_equal(base["bw"], vect["bw"])
