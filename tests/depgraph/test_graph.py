"""DDG construction, SCC computation, topological order, edge filtering."""

from repro.depgraph.graph import DependenceGraph, StmtNode
from repro.mlang.parser import parse_expr, parse_stmt


def build(statements, loop_vars=("i",), counts=None):
    nodes = []
    count_exprs = tuple(parse_expr(c) for c in counts) if counts else \
        tuple(parse_expr("n") for _ in loop_vars)
    for k, source in enumerate(statements):
        nodes.append(StmtNode(k, parse_stmt(source), tuple(loop_vars),
                              loop_counts=count_exprs))
    return DependenceGraph.build(nodes)


class TestEdges:
    def test_flow_dependence(self):
        g = build(["b(i) = a(i)*2;", "c(i) = b(i)+1;"])
        flows = [e for e in g.edges if e.kind == "flow" and e.var == "b"]
        assert flows and flows[0].src == 0 and flows[0].dst == 1

    def test_no_dependence_between_unrelated(self):
        g = build(["b(i) = a(i);", "d(i) = c(i);"])
        assert all(e.src == e.dst or e.var not in ("b", "d")
                   for e in g.edges if e.src != e.dst) or not [
            e for e in g.edges if e.src != e.dst]

    def test_anti_dependence(self):
        g = build(["b(i) = a(i+1);", "a(i) = 0;"])
        antis = [e for e in g.edges if e.kind == "anti" and e.var == "a"]
        assert antis

    def test_output_dependence(self):
        g = build(["a(i) = 1;", "a(i) = 2;"])
        outs = [e for e in g.edges if e.kind == "output"]
        assert outs

    def test_self_recurrence(self):
        g = build(["a(i) = a(i-1)+1;"])
        self_edges = g.self_edges(0)
        assert self_edges and all(e.carried_levels() == {0}
                                  for e in self_edges)

    def test_no_self_edge_same_iteration(self):
        g = build(["a(i) = a(i)+1;"])
        assert not g.self_edges(0)

    def test_scalar_accumulator_self_edges(self):
        g = build(["s = s + x(i);"])
        assert g.self_edges(0)

    def test_edge_ref_provenance(self):
        g = build(["s = s + x(i);"])
        edge = g.self_edges(0)[0]
        assert edge.src_ref is not None and edge.dst_ref is not None
        assert edge.src_ref.var == "s"


class TestSCC:
    def test_straight_line_order(self):
        g = build(["b(i) = a(i);", "c(i) = b(i);", "d(i) = c(i);"])
        sccs = g.sccs_topological()
        assert [s[0].index for s in sccs] == [0, 1, 2]

    def test_cycle_grouped(self):
        # a reads b from a previous iteration; b reads a: cross-iteration
        # cycle → one SCC.
        g = build(["a(i) = b(i-1);", "b(i) = a(i-1);"])
        sccs = g.sccs_topological()
        assert len(sccs) == 1 and len(sccs[0]) == 2

    def test_topological_respects_dependences(self):
        g = build(["c(i) = b(i);", "b(i) = a(i);"])
        # statement 1 defines b used by statement 0 in the same iteration?
        # No: textual order means statement 0 reads the OLD b (anti-dep).
        sccs = g.sccs_topological()
        assert len(sccs) == 2

    def test_independent_stmts_source_order(self):
        g = build(["x(i) = a(i);", "y(i) = b(i);", "z(i) = c(i);"])
        sccs = g.sccs_topological()
        assert [s[0].index for s in sccs] == [0, 1, 2]

    def test_many_statements_iterative_tarjan(self):
        stmts = [f"v{k}(i) = v{k - 1}(i);" for k in range(1, 120)]
        g = build(stmts)
        sccs = g.sccs_topological()
        assert len(sccs) == 119


class TestFiltering:
    def test_remove_carried_by_level(self):
        g = build(["A(i, j) = A(i-1, j)+1;"], loop_vars=("i", "j"))
        assert g.self_edges(0)
        filtered = g.remove_carried_by(0)
        assert not filtered.self_edges(0)

    def test_inner_carried_survives_outer_filter(self):
        g = build(["A(i, j) = A(i, j-1)+1;"], loop_vars=("i", "j"))
        filtered = g.remove_carried_by(0)
        assert filtered.self_edges(0)
        assert not filtered.remove_carried_by(1).self_edges(0)

    def test_subgraph(self):
        g = build(["b(i) = a(i);", "c(i) = b(i);", "d(i) = c(i);"])
        sub = g.subgraph([0, 1])
        assert len(sub.nodes) == 2
        assert all(e.src in (0, 1) and e.dst in (0, 1) for e in sub.edges)


class TestImperfectNests:
    def test_different_depth_statements(self):
        outer = StmtNode(0, parse_stmt("b(i) = c(i)*2;"), ("i",),
                         loop_counts=(parse_expr("n"),))
        inner = StmtNode(1, parse_stmt("A(i, j) = b(i)+j;"), ("i", "j"),
                         loop_counts=(parse_expr("n"), parse_expr("m")))
        g = DependenceGraph.build([outer, inner])
        flows = [e for e in g.edges if e.kind == "flow" and e.var == "b"]
        assert flows and flows[0].src == 0 and flows[0].dst == 1
        # Direction vectors span only the common prefix (i).
        assert all(len(v.directions) == 1 for v in flows[0].vectors)
