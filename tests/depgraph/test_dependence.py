"""Dependence-test unit tests: ZIV/SIV/GCD, range test, direction vectors."""

from repro.depgraph.dependence import (
    ALL_DIRECTIONS,
    DirectionVector,
    EQ,
    GT,
    LT,
    dependence_between,
)
from repro.depgraph.references import Ref, affine_form
from repro.mlang.parser import parse_expr


def ref(var, *subs, loop_vars=("i",), write=False):
    forms = tuple(affine_form(parse_expr(s), loop_vars) for s in subs)
    return Ref(var, forms, is_write=write)


def directions(source, sink, loop_vars=("i",), bounds=None):
    result = dependence_between(source, sink, list(loop_vars), bounds)
    return {v.directions for v in result.vectors}


class TestDirectionVector:
    def test_loop_independent(self):
        assert DirectionVector((EQ, EQ)).is_loop_independent
        assert not DirectionVector((EQ, LT)).is_loop_independent

    def test_leading_level(self):
        assert DirectionVector((EQ, LT)).leading_level() == 1
        assert DirectionVector((LT, EQ)).leading_level() == 0
        assert DirectionVector((EQ, EQ)).leading_level() is None

    def test_plausible(self):
        assert DirectionVector((LT, GT)).is_plausible
        assert not DirectionVector((GT, LT)).is_plausible
        assert DirectionVector((EQ, EQ)).is_plausible

    def test_reversed(self):
        assert DirectionVector((LT, EQ)).reversed() == \
            DirectionVector((GT, EQ))


class TestStrongSIV:
    def test_same_subscript_only_equal(self):
        d = directions(ref("a", "i", write=True), ref("a", "i"))
        assert d == {(EQ,)}

    def test_distance_one_forward(self):
        # write a(i), read a(i-1): value flows to the next iteration.
        d = directions(ref("a", "i", write=True), ref("a", "i-1"))
        assert d == {(LT,)}

    def test_distance_one_backward_implausible(self):
        # write a(i), read a(i+1): as source→sink this needs '>' — excluded.
        d = directions(ref("a", "i", write=True), ref("a", "i+1"))
        assert d == set()

    def test_scaled_distance(self):
        d = directions(ref("a", "2*i", write=True), ref("a", "2*i-4"))
        assert d == {(LT,)}

    def test_fractional_distance_independent(self):
        d = directions(ref("a", "2*i", write=True), ref("a", "2*i-1"))
        assert d == set()

    def test_symbolic_offset_cancels(self):
        d = directions(ref("a", "i+n", write=True), ref("a", "i+n"))
        assert d == {(EQ,)}

    def test_different_symbolic_unconstrained(self):
        d = directions(ref("a", "i+n", write=True), ref("a", "i+m"))
        assert d == {(LT,), (EQ,), (GT,)} - {(GT,)} | {(GT,)} - {(GT,)} \
            or d == {(LT,), (EQ,)}


class TestZIV:
    def test_distinct_constants_independent(self):
        d = directions(ref("a", "1", write=True), ref("a", "2"))
        assert d == set()

    def test_equal_constants_unconstrained(self):
        d = directions(ref("a", "3", write=True), ref("a", "3"))
        assert (LT,) in d and (EQ,) in d

    def test_distinct_symbolic_conservative(self):
        d = directions(ref("a", "n", write=True), ref("a", "m"))
        assert (LT,) in d


class TestGCD:
    def test_even_odd_independent(self):
        # a(2i) vs a(2j+1): 2x - 2y = 1 has no integer solution.
        d = directions(ref("a", "2*i", loop_vars=("i", "j"), write=True),
                       ref("a", "2*j+1", loop_vars=("i", "j")),
                       loop_vars=("i", "j"))
        assert d == set()

    def test_gcd_divides_assumes_dependence(self):
        d = directions(ref("a", "2*i", loop_vars=("i", "j"), write=True),
                       ref("a", "2*j", loop_vars=("i", "j")),
                       loop_vars=("i", "j"))
        assert d  # conservative: some vectors survive


class TestRangeTest:
    def _bounds(self, **counts):
        return {var: affine_form(parse_expr(expr), ())
                for var, expr in counts.items()}

    def test_triangular_independence(self):
        """write X(i,...) vs read X(j,...) under j = 1:(i-1)."""
        src = ref("X", "i", "k", loop_vars=("k", "j"), write=True)
        snk = ref("X", "j", "k", loop_vars=("k", "j"))
        bounds = {"j": affine_form(parse_expr("i-1"), ("k", "j")),
                  "k": affine_form(parse_expr("p"), ("k", "j"))}
        d = directions(src, snk, loop_vars=("k", "j"), bounds=bounds)
        assert d == set()

    def test_numeric_out_of_range(self):
        src = ref("a", "11", loop_vars=("i",), write=True)
        snk = ref("a", "i", loop_vars=("i",))
        bounds = {"i": affine_form(parse_expr("10"), ())}
        assert directions(src, snk, bounds=bounds) == set()

    def test_numeric_in_range_dependent(self):
        src = ref("a", "5", loop_vars=("i",), write=True)
        snk = ref("a", "i", loop_vars=("i",))
        bounds = {"i": affine_form(parse_expr("10"), ())}
        assert directions(src, snk, bounds=bounds) != set()

    def test_below_range(self):
        src = ref("a", "0", loop_vars=("i",), write=True)
        snk = ref("a", "i", loop_vars=("i",))
        assert directions(src, snk, bounds=self._bounds(i="10")) == set()

    def test_fractional_solution_independent(self):
        src = ref("a", "3", loop_vars=("i",), write=True)
        snk = ref("a", "2*i", loop_vars=("i",))
        assert directions(src, snk, bounds=self._bounds(i="10")) == set()


class TestScalars:
    def test_scalar_all_directions(self):
        d = directions(ref("s", write=True), ref("s"))
        assert (LT,) in d and (EQ,) in d

    def test_no_loops(self):
        result = dependence_between(ref("s", write=True), ref("s"), [])
        assert result.exists

    def test_rank_mismatch_conservative(self):
        d = directions(ref("a", "i", write=True),
                       ref("a", "i", "1"))
        assert (LT,) in d
