"""Tests for affine-subscript analysis and reference collection."""

from repro.depgraph.references import (
    AffineForm,
    affine_form,
    collect_refs,
)
from repro.mlang.parser import parse_expr, parse_stmt


def form(source, loop_vars=("i", "j")):
    return affine_form(parse_expr(source), loop_vars)


class TestAffineForms:
    def test_constant(self):
        f = form("5")
        assert f.exact and f.const == 5 and not f.coeffs

    def test_loop_var(self):
        f = form("i")
        assert f.coeff("i") == 1

    def test_affine_combination(self):
        f = form("2*i - 3")
        assert f.coeff("i") == 2 and f.const == -3

    def test_both_vars(self):
        f = form("i + 2*j + 1")
        assert f.coeff("i") == 1 and f.coeff("j") == 2 and f.const == 1

    def test_symbolic_residue(self):
        f = form("n - 1")
        assert f.exact and dict(f.symbolic) == {"n": 1.0} and f.const == -1

    def test_scaled_symbolic(self):
        f = form("2*n + i")
        assert dict(f.symbolic) == {"n": 2.0} and f.coeff("i") == 1

    def test_nonlinear_is_inexact(self):
        assert not form("i*i").exact

    def test_opaque_call_without_loopvars_exact(self):
        f = form("size(A, 1)")
        assert f.exact and f.symbolic

    def test_opaque_call_with_loopvar_inexact(self):
        assert not form("size(A, i)").exact

    def test_division_by_constant(self):
        f = form("i/2")
        assert f.coeff("i") == 0.5

    def test_negation(self):
        f = form("-i + 4")
        assert f.coeff("i") == -1 and f.const == 4

    def test_minus_and_scaled(self):
        a, b = form("2*i+1"), form("2*i")
        d = a.minus(b)
        assert d.is_pure_const and d.const == 1

    def test_symbolic_cancellation(self):
        a, b = form("n + i"), form("n")
        d = a.minus(b)
        assert not d.symbolic and d.coeff("i") == 1

    def test_same_symbolic(self):
        assert form("n+1").same_symbolic(form("n+5"))
        assert not form("n+1").same_symbolic(form("m+1"))

    def test_without_var(self):
        f = form("2*i + j").without_var("i")
        assert f.coeff("i") == 0 and f.coeff("j") == 1


class TestCollectRefs:
    def test_simple_assignment(self):
        refs = collect_refs(parse_stmt("a(i) = b(i) + c;"), ["i"])
        assert [w.var for w in refs.writes] == ["a"]
        read_vars = {r.var for r in refs.reads}
        assert {"b", "c", "i"} <= read_vars

    def test_lhs_subscript_reads(self):
        refs = collect_refs(parse_stmt("a(v(i)) = 0;"), ["i"])
        assert any(r.var == "v" for r in refs.reads)

    def test_scalar_write(self):
        refs = collect_refs(parse_stmt("s = s + x(i);"), ["i"])
        write = refs.writes[0]
        assert write.var == "s" and write.is_scalar_style
        assert any(r.var == "s" and r.is_scalar_style for r in refs.reads)

    def test_known_functions_not_refs(self):
        refs = collect_refs(parse_stmt("a(i) = cos(b(i));"), ["i"],
                            frozenset({"cos"}))
        assert all(r.var != "cos" for r in refs.reads)
        assert any(r.var == "b" for r in refs.reads)

    def test_function_args_still_read(self):
        refs = collect_refs(parse_stmt("a(i) = sum(B(i, :));"), ["i"],
                            frozenset({"sum"}))
        assert any(r.var == "B" for r in refs.reads)

    def test_subscript_forms_recorded(self):
        refs = collect_refs(parse_stmt("A(2*i, j+1) = 0;"), ["i", "j"])
        write = refs.writes[0]
        assert write.subs[0].coeff("i") == 2
        assert write.subs[1].const == 1

    def test_colon_subscript_is_inexact(self):
        refs = collect_refs(parse_stmt("A(i, :) = 0;"), ["i"])
        assert not refs.writes[0].subs[1].exact

    def test_refs_to(self):
        refs = collect_refs(parse_stmt("a(i) = a(i-1);"), ["i"])
        assert len(refs.refs_to("a", writes=True)) == 1
        assert len(refs.refs_to("a", writes=False)) == 1
