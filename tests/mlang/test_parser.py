"""Parser unit tests: precedence, statements, MATLAB quirks."""

import pytest

from repro.errors import ParseError
from repro.mlang.ast_nodes import (
    Apply,
    Assign,
    BinOp,
    Break,
    Colon,
    Continue,
    End,
    ExprStmt,
    For,
    FunctionDef,
    Global,
    Ident,
    If,
    Matrix,
    MultiAssign,
    Num,
    Range,
    Return,
    Str,
    Transpose,
    UnOp,
    While,
)
from repro.mlang.parser import parse, parse_expr, parse_stmt
from repro.mlang.printer import expr_to_source


def src(expr):
    return expr_to_source(parse_expr(expr))


class TestPrecedence:
    def test_mul_over_add(self):
        e = parse_expr("a+b*c")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.right, BinOp) and e.right.op == "*"

    def test_left_associativity(self):
        e = parse_expr("a-b-c")
        assert e.op == "-" and isinstance(e.left, BinOp)

    def test_power_over_unary(self):
        # -2^2 == -(2^2) in MATLAB
        e = parse_expr("-2^2")
        assert isinstance(e, UnOp) and e.op == "-"
        assert isinstance(e.operand, BinOp) and e.operand.op == "^"

    def test_power_left_assoc(self):
        # 2^3^2 == (2^3)^2 in MATLAB (unlike many languages)
        e = parse_expr("2^3^2")
        assert e.op == "^" and isinstance(e.left, BinOp)

    def test_unary_after_power(self):
        e = parse_expr("2^-3")
        assert e.op == "^" and isinstance(e.right, (UnOp, Num))

    def test_colon_below_add(self):
        e = parse_expr("1:n+1")
        assert isinstance(e, Range)
        assert isinstance(e.stop, BinOp)

    def test_colon_with_step(self):
        e = parse_expr("1:2:10")
        assert isinstance(e, Range)
        assert isinstance(e.step, Num) and e.step.value == 2

    def test_comparison_below_colon(self):
        e = parse_expr("a < 1:n")
        assert isinstance(e, BinOp) and e.op == "<"
        assert isinstance(e.right, Range)

    def test_and_or_precedence(self):
        e = parse_expr("a || b && c")
        assert e.op == "||"

    def test_elementwise_same_level_as_mul(self):
        e = parse_expr("a.*b*c")
        assert e.op == "*" and e.left.op == ".*"

    def test_parens(self):
        e = parse_expr("(a+b)*c")
        assert e.op == "*" and isinstance(e.left, BinOp)

    def test_signed_literal_folds(self):
        assert parse_expr("-3") == Num(-3.0)

    def test_signed_expr_not_folded(self):
        e = parse_expr("-a")
        assert isinstance(e, UnOp)


class TestPostfix:
    def test_transpose(self):
        e = parse_expr("A'")
        assert isinstance(e, Transpose) and e.conjugate

    def test_dot_transpose(self):
        e = parse_expr("A.'")
        assert isinstance(e, Transpose) and not e.conjugate

    def test_indexing(self):
        e = parse_expr("A(1, 2)")
        assert isinstance(e, Apply) and len(e.args) == 2

    def test_chained_indexing(self):
        e = parse_expr("f(1)(2)")
        assert isinstance(e, Apply) and isinstance(e.func, Apply)

    def test_transpose_of_index(self):
        e = parse_expr("A(1, :)'")
        assert isinstance(e, Transpose)

    def test_colon_subscript(self):
        e = parse_expr("A(:, 2)")
        assert isinstance(e.args[0], Colon)

    def test_lone_colon_subscript(self):
        e = parse_expr("A(:)")
        assert isinstance(e.args[0], Colon)

    def test_end_in_subscript(self):
        e = parse_expr("A(end)")
        assert isinstance(e.args[0], End)

    def test_end_arithmetic(self):
        e = parse_expr("A(end-1)")
        assert isinstance(e.args[0], BinOp)

    def test_end_outside_subscript_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("end + 1")

    def test_range_inside_subscript(self):
        e = parse_expr("A(1:n, j)")
        assert isinstance(e.args[0], Range)

    def test_empty_args(self):
        e = parse_expr("rand()")
        assert isinstance(e, Apply) and e.args == []


class TestMatrixLiterals:
    def test_row(self):
        e = parse_expr("[1, 2, 3]")
        assert isinstance(e, Matrix) and len(e.rows) == 1
        assert len(e.rows[0]) == 3

    def test_rows_semicolon(self):
        e = parse_expr("[1, 2; 3, 4]")
        assert len(e.rows) == 2

    def test_rows_newline(self):
        e = parse_expr("[1, 2\n 3, 4]")
        assert len(e.rows) == 2

    def test_space_separated(self):
        e = parse_expr("[1 2 3]")
        assert len(e.rows[0]) == 3

    def test_space_minus_two_elements(self):
        e = parse_expr("[1 -2]")
        assert len(e.rows[0]) == 2

    def test_space_minus_subtraction(self):
        e = parse_expr("[1 - 2]")
        assert len(e.rows[0]) == 1

    def test_tight_minus_subtraction(self):
        e = parse_expr("[1-2]")
        assert len(e.rows[0]) == 1

    def test_empty(self):
        e = parse_expr("[]")
        assert isinstance(e, Matrix) and e.rows == []

    def test_nested_range(self):
        e = parse_expr("[0:255]")
        assert isinstance(e.rows[0][0], Range)

    def test_expressions_inside(self):
        e = parse_expr("[a+b, c*d]")
        assert len(e.rows[0]) == 2


class TestStatements:
    def test_assignment(self):
        s = parse_stmt("x = 3;")
        assert isinstance(s, Assign) and s.suppress

    def test_unsuppressed(self):
        s = parse_stmt("x = 3")
        assert not s.suppress

    def test_indexed_assignment(self):
        s = parse_stmt("A(i, j) = 0;")
        assert isinstance(s.lhs, Apply)

    def test_expr_statement(self):
        s = parse_stmt("disp(x);")
        assert isinstance(s, ExprStmt)

    def test_multi_assign(self):
        s = parse_stmt("[m, n] = size(A);")
        assert isinstance(s, MultiAssign) and len(s.targets) == 2

    def test_invalid_target(self):
        with pytest.raises(ParseError):
            parse_stmt("3 = x;")

    def test_for_loop(self):
        s = parse_stmt("for i=1:10, x = i; end")
        assert isinstance(s, For) and s.var == "i"
        assert len(s.body) == 1

    def test_for_loop_multiline(self):
        s = parse_stmt("for i = 1:10\n  a(i) = i;\n  b(i) = i;\nend")
        assert len(s.body) == 2

    def test_nested_for(self):
        s = parse_stmt("for i=1:3\n for j=1:4\n A(i,j)=0;\n end\n end")
        assert isinstance(s.body[0], For)

    def test_while(self):
        s = parse_stmt("while x < 10\n x = x + 1;\nend")
        assert isinstance(s, While)

    def test_if(self):
        s = parse_stmt("if a > 0\n x = 1;\nend")
        assert isinstance(s, If) and len(s.tests) == 1

    def test_if_else(self):
        s = parse_stmt("if a\n x=1;\nelse\n x=2;\nend")
        assert len(s.orelse) == 1

    def test_if_elseif_chain(self):
        s = parse_stmt("if a\nx=1;\nelseif b\nx=2;\nelseif c\nx=3;\n"
                       "else\nx=4;\nend")
        assert len(s.tests) == 3 and len(s.orelse) == 1

    def test_break_continue_return(self):
        prog = parse("for i=1:3\nbreak;\ncontinue;\nreturn;\nend")
        body = prog.body[0].body
        assert isinstance(body[0], Break)
        assert isinstance(body[1], Continue)
        assert isinstance(body[2], Return)

    def test_global(self):
        s = parse_stmt("global a b c;")
        assert isinstance(s, Global) and s.names == ["a", "b", "c"]

    def test_annotation_statement(self):
        prog = parse("%! a(1,*)\nx = 1;")
        assert prog.annotations == ["a(1,*)"]

    def test_trailing_comma_statement(self):
        prog = parse("for i=1:10,\n x=i;\nend")
        assert isinstance(prog.body[0], For)

    def test_missing_end(self):
        with pytest.raises(ParseError):
            parse("for i=1:3\nx = i;")


class TestFunctions:
    def test_single_output(self):
        s = parse("function y = f(x)\ny = x + 1;\nend").body[0]
        assert isinstance(s, FunctionDef)
        assert s.outs == ["y"] and s.params == ["x"]

    def test_multi_output(self):
        s = parse("function [a, b] = f(x, y)\na = x;\nb = y;\nend").body[0]
        assert s.outs == ["a", "b"]

    def test_no_output(self):
        s = parse("function f(x)\ndisp(x);\nend").body[0]
        assert s.outs == [] and s.name == "f"

    def test_no_params(self):
        s = parse("function y = f()\ny = 1;\nend").body[0]
        assert s.params == []


class TestMatlabQuirks:
    def test_string_statement(self):
        s = parse_stmt("msg = 'hello world';")
        assert isinstance(s.rhs, Str)

    def test_semicolon_inside_subscript_invalid(self):
        with pytest.raises(ParseError):
            parse_expr("A(1; 2)")

    def test_comment_between_statements(self):
        prog = parse("a = 1; % first\nb = 2; % second\n")
        assert len(prog.body) == 2

    def test_parenthesized_for_range(self):
        s = parse_stmt("for (i = 1:10)\n x = i;\nend")
        assert isinstance(s, For)
