"""Lexer unit tests: token kinds, MATLAB quirks, error handling."""

import pytest

from repro.errors import LexError
from repro.mlang.lexer import tokenize
from repro.mlang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind != TokenKind.EOF]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != TokenKind.EOF]


class TestBasicTokens:
    def test_number_integer(self):
        toks = tokenize("42")
        assert toks[0].kind is TokenKind.NUMBER
        assert toks[0].text == "42"

    def test_number_decimal(self):
        assert texts("3.25") == ["3.25"]

    def test_number_leading_dot(self):
        assert texts(".5") == [".5"]

    def test_number_trailing_dot(self):
        assert texts("2.") == ["2."]

    def test_number_exponent(self):
        assert texts("1e3") == ["1e3"]

    def test_number_exponent_signed(self):
        assert texts("1.5e-3") == ["1.5e-3"]

    def test_number_exponent_plus(self):
        assert texts("2E+4") == ["2E+4"]

    def test_ident(self):
        toks = tokenize("foo_bar2")
        assert toks[0].kind is TokenKind.IDENT
        assert toks[0].text == "foo_bar2"

    def test_keyword(self):
        toks = tokenize("for")
        assert toks[0].kind is TokenKind.KEYWORD

    def test_keyword_prefix_is_ident(self):
        toks = tokenize("fortune")
        assert toks[0].kind is TokenKind.IDENT

    def test_eof_always_present(self):
        assert tokenize("")[-1].kind is TokenKind.EOF

    def test_positions(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        b = [t for t in toks if t.text == "b"][0]
        assert (b.line, b.column) == (2, 3)


class TestOperators:
    def test_elementwise_ops(self):
        assert texts("a.*b./c.^d") == ["a", ".*", "b", "./", "c", ".^", "d"]

    def test_number_dot_star_not_confused(self):
        # '2.*b' must lex as 2 .* b (MATLAB treats it as elementwise).
        assert texts("2.*b") == ["2", ".*", "b"]

    def test_comparisons(self):
        assert texts("a<=b~=c") == ["a", "<=", "b", "~=", "c"]

    def test_short_circuit(self):
        assert texts("a&&b||c") == ["a", "&&", "b", "||", "c"]

    def test_colon(self):
        assert texts("1:2:10") == ["1", ":", "2", ":", "10"]


class TestTransposeVsString:
    def test_transpose_after_ident(self):
        assert texts("A'") == ["A", "'"]

    def test_transpose_after_paren(self):
        assert texts("(a)'") == ["(", "a", ")", "'"]

    def test_transpose_after_bracket(self):
        assert texts("[1]'") == ["[", "1", "]", "'"]

    def test_transpose_after_number(self):
        assert texts("2'") == ["2", "'"]

    def test_double_transpose(self):
        assert texts("A''") == ["A", "'", "'"]

    def test_string_at_start(self):
        toks = tokenize("'hello'")
        assert toks[0].kind is TokenKind.STRING
        assert toks[0].text == "hello"

    def test_string_after_operator(self):
        toks = tokenize("a = 'x'")
        string = [t for t in toks if t.kind is TokenKind.STRING]
        assert string and string[0].text == "x"

    def test_string_escaped_quote(self):
        toks = tokenize("x = 'it''s'")
        string = [t for t in toks if t.kind is TokenKind.STRING][0]
        assert string.text == "it's"

    def test_string_after_comma(self):
        toks = tokenize("f(a, 'b')")
        assert any(t.kind is TokenKind.STRING for t in toks)

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("x = 'oops")

    def test_dot_transpose(self):
        assert texts("A.'") == ["A", ".'"]

    def test_transpose_after_end(self):
        toks = tokenize("a(end)'")
        assert toks[-2].is_op("'")


class TestCommentsAndContinuations:
    def test_comment_dropped(self):
        assert texts("a % comment here") == ["a"]

    def test_annotation_kept(self):
        toks = tokenize("%! a(1,*) b(*,1)")
        assert toks[0].kind is TokenKind.ANNOTATION
        assert toks[0].text == "a(1,*) b(*,1)"

    def test_continuation(self):
        assert texts("a + ...\n b") == ["a", "+", "b"]

    def test_continuation_with_comment(self):
        assert texts("a + ... trailing comment\n b") == ["a", "+", "b"]

    def test_separators(self):
        toks = tokenize("a;b,c\nd")
        kinds_ = [t.kind for t in toks]
        assert TokenKind.SEMI in kinds_
        assert TokenKind.COMMA in kinds_
        assert TokenKind.NEWLINE in kinds_

    def test_blank_lines_collapse(self):
        toks = tokenize("a\n\n\nb")
        newlines = [t for t in toks if t.kind is TokenKind.NEWLINE]
        assert len(newlines) == 1

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a ` b")


class TestSpaceFlags:
    def test_space_before(self):
        toks = tokenize("[1 -2]")
        minus = [t for t in toks if t.text == "-"][0]
        assert minus.space_before and not minus.space_after

    def test_space_both_sides(self):
        toks = tokenize("[1 - 2]")
        minus = [t for t in toks if t.text == "-"][0]
        assert minus.space_before and minus.space_after
