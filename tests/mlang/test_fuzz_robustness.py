"""Fuzz robustness: the front-end never crashes with anything but its
own typed errors, and parsing is deterministic."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.errors import LexError, ParseError
from repro.mlang.lexer import tokenize
from repro.mlang.parser import parse

_FRAGMENTS = st.sampled_from([
    "for", "end", "if", "else", "while", "function", "=", "==", "+",
    "-", "*", ".*", "'", "(", ")", "[", "]", ":", ";", ",", "\n",
    "a", "b2", "x_y", "1", "2.5", "1e3", "'str'", "%c", "%!a(1,*)",
    "...", "&&", "~", "end;", "A(i,j)", "1:10", " ",
])


@settings(max_examples=300, deadline=None)
@given(st.lists(_FRAGMENTS, min_size=0, max_size=25))
def test_parser_total_over_token_soup(fragments):
    source = " ".join(fragments)
    try:
        parse(source)
    except (LexError, ParseError):
        pass  # rejecting is fine; crashing is not


@settings(max_examples=300, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
               max_size=80))
def test_lexer_total_over_ascii(text):
    try:
        tokenize(text)
    except LexError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet="abij()=+*'1:;,\n ", max_size=60))
def test_parse_deterministic(text):
    def attempt():
        try:
            return ("ok", parse(text))
        except (LexError, ParseError) as error:
            return ("err", type(error).__name__)

    assert attempt() == attempt()


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet="abij()=+*'1:;,\n ", max_size=60))
def test_driver_never_crashes_on_parseable_input(text):
    from repro import vectorize_source
    from repro.errors import ReproError

    try:
        vectorize_source(text)
    except ReproError:
        pass
