"""Tests for the AST traversal/rewriting utilities."""

from repro.mlang.ast_nodes import (
    Apply,
    Assign,
    BinOp,
    For,
    Ident,
    Num,
    Program,
    Range,
)
from repro.mlang.parser import parse, parse_expr, parse_stmt
from repro.mlang.printer import expr_to_source, to_source
from repro.mlang.visitor import (
    Transformer,
    collect,
    copy_tree,
    substitute,
    substitute_idents,
)


class TestWalkChildren:
    def test_walk_preorder(self):
        tree = parse_expr("a+b*c")
        names = [n.name for n in tree.walk() if isinstance(n, Ident)]
        assert names == ["a", "b", "c"]

    def test_children_of_statement_lists(self):
        loop = parse_stmt("for i=1:3\n a(i)=1;\n b(i)=2;\nend")
        kids = list(loop.children())
        assert any(isinstance(k, Range) for k in kids)
        assert sum(isinstance(k, Assign) for k in kids) == 2

    def test_children_of_if_tuples(self):
        stmt = parse_stmt("if a\n x=1;\nelse\n x=2;\nend")
        kids = list(stmt.children())
        assert any(isinstance(k, Ident) for k in kids)
        assert sum(isinstance(k, Assign) for k in kids) == 2


class TestTransformer:
    def test_identity_shares_tree(self):
        tree = parse_expr("a+b*c")
        assert Transformer().visit(tree) is tree

    def test_targeted_rewrite(self):
        class Renamer(Transformer):
            def visit_Ident(self, node):
                return Ident(node.name.upper())

        out = Renamer().visit(parse_expr("a+b"))
        assert expr_to_source(out) == "A+B"

    def test_untouched_siblings_shared(self):
        tree = parse_expr("f(a, b+c)")

        class TouchB(Transformer):
            def visit_Ident(self, node):
                return Ident("z") if node.name == "b" else node

        out = TouchB().visit(tree)
        assert out is not tree
        assert out.args[0] is tree.args[0]  # 'a' subtree shared


class TestSubstitute:
    def test_by_identity(self):
        tree = parse_expr("a+a")
        first_a = tree.left
        out = substitute(tree, {id(first_a): Num(5.0)})
        assert expr_to_source(out) == "5+a"

    def test_replacement_not_revisited(self):
        tree = parse_expr("a")
        out = substitute(tree, {id(tree): BinOp("+", tree, Num(1.0))})
        assert expr_to_source(out) == "a+1"

    def test_substitute_idents(self):
        loop = parse_stmt("for i=1:3\n a(i) = i*2;\nend")
        out = substitute_idents(loop, {"i": parse_expr("2*k")})
        assert "2*k" in to_source(out)

    def test_substitute_idents_skips_others(self):
        tree = parse_expr("i+j")
        out = substitute_idents(tree, {"i": Num(1.0)})
        assert expr_to_source(out) == "1+j"


class TestCopyCollect:
    def test_copy_is_deep(self):
        tree = parse_expr("a+b")
        clone = copy_tree(tree)
        assert clone == tree and clone is not tree
        assert clone.left is not tree.left

    def test_collect(self):
        program = parse("for i=1:3\n a(i)=f(i);\nend")
        assert len(collect(program, Apply)) == 2
        assert len(collect(program, For)) == 1
