"""Printer tests, including the parse∘print round-trip property."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.mlang.ast_nodes import (
    Apply,
    Assign,
    BinOp,
    Colon,
    End,
    Expr,
    For,
    Ident,
    If,
    Matrix,
    Num,
    Range,
    Str,
    Transpose,
    UnOp,
)
from repro.mlang.parser import parse, parse_expr, parse_stmt
from repro.mlang.printer import expr_to_source, to_source


class TestExprPrinting:
    @pytest.mark.parametrize("source", [
        "a+b*c",
        "(a+b)*c",
        "a-b-c",
        "a-(b-c)",
        "-2^2",
        "(-2)^2",
        "2^-3",
        "a'",
        "A(1, 2)",
        "A(:, 1)",
        "A(:)",
        "A(end)",
        "A(end-1, :)",
        "1:10",
        "1:2:10",
        "(1:n)+1",
        "2*(1:750)",
        "A(1:n, :)'",
        "[1, 2; 3, 4]",
        "x&&y||z",
        "a<=b",
        "~a",
        "sum(X'.*Y, 1)",
        "repmat(C(1:m), 1, n)",
    ])
    def test_round_trip_source(self, source):
        tree = parse_expr(source)
        assert parse_expr(expr_to_source(tree)) == tree

    def test_minimal_parens_add_mul(self):
        assert expr_to_source(parse_expr("a+b*c")) == "a+b*c"

    def test_needed_parens_kept(self):
        assert expr_to_source(parse_expr("(a+b)*c")) == "(a+b)*c"

    def test_range_in_product_parenthesized(self):
        source = expr_to_source(parse_expr("2*(1:750)"))
        assert source == "2*(1:750)"

    def test_transpose_of_range(self):
        assert expr_to_source(parse_expr("(1:n)'")) == "(1:n)'"

    def test_string_quotes_escaped(self):
        assert expr_to_source(Str("it's")) == "'it''s'"

    def test_negative_number_as_power_base(self):
        tree = BinOp("^", Num(-2.0), Num(2.0))
        assert parse_expr(expr_to_source(tree)) == tree

    def test_number_raw_preserved(self):
        assert expr_to_source(parse_expr("1e3")) == "1e3"


class TestStatementPrinting:
    @pytest.mark.parametrize("source", [
        "x = 3;",
        "A(i, j) = 0;",
        "for i = 1:10\n  a(i) = i;\nend",
        "while x<10\n  x = x+1;\nend",
        "if a>0\n  x = 1;\nelse\n  x = 2;\nend",
        "[m, n] = size(A);",
    ])
    def test_statement_round_trip(self, source):
        tree = parse_stmt(source)
        assert parse_stmt(to_source(tree)) == tree

    def test_program_round_trip(self):
        source = """
%! A(*,*) b(*,1)
x = 1;
for i = 1:10
  for j = 1:5
    A(i, j) = b(i)*j;
  end
end
disp(x)
"""
        program = parse(source)
        assert parse(to_source(program)) == program

    def test_suppression_preserved(self):
        assert to_source(parse_stmt("x = 1")).rstrip().endswith("= 1")
        assert to_source(parse_stmt("x = 1;")).rstrip().endswith(";")

    def test_indentation(self):
        text = to_source(parse_stmt("for i = 1:2\n  x = i;\nend"))
        lines = text.splitlines()
        assert lines[1].startswith("  ")


# ---------------------------------------------------------------------------
# Property-based round trip over generated ASTs
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "x", "y", "A", "B", "foo"])
_numbers = st.integers(min_value=0, max_value=999).map(
    lambda n: Num(float(n)))


def _exprs(depth: int) -> st.SearchStrategy[Expr]:
    leaf = st.one_of(_numbers, _names.map(Ident))
    if depth <= 0:
        return leaf
    sub = _exprs(depth - 1)
    binops = st.sampled_from(
        ["+", "-", "*", ".*", "/", "./", "^", ".^", "<", "<=", "==",
         "&", "|"])
    return st.one_of(
        leaf,
        st.builds(BinOp, binops, sub, sub),
        st.builds(lambda e: UnOp("-", e),
                  sub.filter(lambda e: not isinstance(e, Num))),
        st.builds(lambda e: UnOp("~", e), sub),
        st.builds(Transpose, sub),
        st.builds(lambda a, b: Range(a, b), sub, sub),
        st.builds(lambda f, args: Apply(Ident(f), args),
                  _names, st.lists(sub, min_size=0, max_size=3)),
        st.builds(lambda rows: Matrix([rows]),
                  st.lists(sub, min_size=1, max_size=3)),
    )


@settings(max_examples=300, deadline=None)
@given(_exprs(3))
def test_print_parse_round_trip(tree):
    """parse(print(e)) == e for every printable expression."""
    printed = expr_to_source(tree)
    assert parse_expr(printed) == tree


@settings(max_examples=100, deadline=None)
@given(st.lists(
    st.builds(lambda n, e: Assign(Ident(n), e), _names, _exprs(2)),
    min_size=1, max_size=5))
def test_program_print_parse_round_trip(stmts):
    from repro.mlang.ast_nodes import Program

    program = Program(stmts)
    assert parse(to_source(program)) == program
