"""The ISSUE's headline acceptance: the inference corpus vectorizes
byte-identically with its ``%!`` annotations stripped.

Every ``inf_*.m`` corpus program is self-contained — inputs come from
literals, ``zeros``/``ones``/``eye``/``linspace``/colon ranges — so the
flow-sensitive engine can recover exactly the dims the annotation
declares.  Two stripping routes must both reproduce the annotated
golden:

* ``use_annotations=False`` (the ``mvec --no-annotations`` path):
  annotations are ignored for analysis but pass through to the output,
  so the result must equal the golden byte for byte;
* physically deleting the ``%!`` lines from the source: the result
  must equal the golden minus its ``%!`` lines.

Each compilation is additionally audited (independent dependence
re-derivation over the original loops).
"""

from pathlib import Path

import pytest

from repro.staticcheck import audit_source
from repro.vectorizer.driver import Vectorizer, vectorize_source

CORPUS = Path(__file__).resolve().parents[2] / "examples" / "corpus"
GOLDEN = Path(__file__).resolve().parents[1] / "golden"

FILES = sorted(CORPUS.glob("inf_*.m"))


def strip_annotations(source: str) -> str:
    return "".join(line for line in source.splitlines(keepends=True)
                   if not line.lstrip().startswith("%!"))


def test_corpus_is_large_enough():
    # The acceptance criterion: at least 15 programs vectorize
    # identically without annotations.
    assert len(FILES) >= 15, [p.name for p in FILES]


def test_interprocedural_program_present():
    # At least one program routes its shapes through a `function` call
    # with no annotations anywhere.
    interproc = (CORPUS / "inf_interproc.m").read_text()
    assert "function" in interproc and "%!" not in interproc


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_no_annotations_flag_matches_golden(path):
    golden = (GOLDEN / f"{path.stem}.golden").read_text()
    result = Vectorizer(use_annotations=False).vectorize_source(
        path.read_text())
    assert result.source == golden


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_stripped_source_matches_golden(path):
    golden = (GOLDEN / f"{path.stem}.golden").read_text()
    stripped = strip_annotations(path.read_text())
    result = vectorize_source(stripped)
    assert result.source == strip_annotations(golden)


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_fully_vectorized_without_annotations(path):
    stripped = strip_annotations(path.read_text())
    result = vectorize_source(stripped)
    assert result.report.vectorized_loops >= 1
    assert "for " not in result.source


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_annotation_free_compilation_audits_clean(path):
    stripped = strip_annotations(path.read_text())
    emitted = vectorize_source(stripped).source
    report = audit_source(stripped, emitted)
    assert report.ok, [d.message for d in report.diagnostics]
