"""End-to-end soundness: for every corpus program, the vectorized code
computes exactly what the loop code computed (§5's claim that the
dimensional analysis "was capable of vectorizing all the inputs for
which it was applicable" — and never miscompiles the rest)."""

import pytest

from repro import vectorize_source
from repro.bench.workloads import WORKLOADS, all_workloads
from repro.mlang.parser import parse
from repro.runtime.interp import Interpreter
from repro.runtime.values import values_equal
from repro.bench.harness import _copy_env

#: Workloads the vectorizer is expected to fully vectorize (no loops
#: left); the rest must be *safely* handled (left sequential or partial).
FULLY_VECTORIZED = {
    "scale-shift", "saxpy", "row-col-add", "transpose-add",
    "dot-products", "column-broadcast", "diagonal-scale", "histeq",
    "composite", "triangular-update", "quadratic-form", "quad-nest",
    "running-sum", "matvec", "threshold", "normalize-rows",
    "outer-product", "power-series", "column-scale", "clamp",
    "fir-filter",
    # Self-contained inference corpus: fully vectorized even with the
    # %! annotation line stripped (see test_annotation_free.py).
    "inf-saxpy", "inf-column-scale", "inf-power-series", "inf-dotprod",
    "inf-matvec", "inf-outer", "inf-threshold", "inf-reduction",
    "inf-clamp", "inf-broadcast", "inf-diagonal", "inf-strided",
    "inf-transpose-add", "inf-scale-shift", "inf-masked-sum",
    "inf-interproc",
}
SEQUENTIAL = {"recurrence"}
PARTIAL = {"mixed", "convolution", "jacobi"}


def run_program(program, env):
    return Interpreter(seed=0).run(program, env=_copy_env(env))


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_equivalence(name):
    workload = WORKLOADS[name]
    source = workload.source()
    result = vectorize_source(source)
    env = workload.env(scale="tiny", seed=99)

    base = run_program(parse(source), env)
    vect = run_program(result.program, env)
    for output in workload.outputs:
        assert values_equal(base[output], vect[output]), (
            f"{name}: output {output!r} diverged\n--- vectorized ---\n"
            f"{result.source}")


@pytest.mark.parametrize("name", sorted(FULLY_VECTORIZED))
def test_fully_vectorized(name):
    source = WORKLOADS[name].source()
    result = vectorize_source(source)
    assert "for " not in result.source, result.source


@pytest.mark.parametrize("name", sorted(SEQUENTIAL))
def test_sequential_untouched(name):
    source = WORKLOADS[name].source()
    result = vectorize_source(source)
    assert "for " in result.source


@pytest.mark.parametrize("name", sorted(PARTIAL))
def test_partial(name):
    source = WORKLOADS[name].source()
    result = vectorize_source(source)
    assert "for " in result.source
    assert result.report.statements_vectorized >= 1


def test_registry_covers_every_corpus_file():
    corpus = {w.filename for w in all_workloads()}
    from repro.bench.workloads import find_corpus

    on_disk = {p.name for p in find_corpus().glob("*.m")}
    assert corpus == on_disk


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_equivalence_at_second_scale(name):
    """Repeat equivalence at a different size to catch size-dependent
    bugs (e.g. transposes that only matter when m ≠ n)."""
    workload = WORKLOADS[name]
    if "default" not in workload.scales:
        pytest.skip("no second scale")
    source = workload.source()
    result = vectorize_source(source)
    env = workload.env(scale="default", seed=7)
    # Keep runtimes short: skip the big quadruple nest at full scale.
    if name in ("quad-nest", "composite"):
        env = workload.env(scale="tiny", seed=7)
    base = run_program(parse(source), env)
    vect = run_program(result.program, env)
    for output in workload.outputs:
        assert values_equal(base[output], vect[output])
