"""A checklist of the paper's testable claims, one test per claim.

Each test quotes the claim (abbreviated) and validates it end-to-end —
a readable audit trail connecting the paper's prose to this
implementation.
"""

import time

import numpy as np
import pytest

from repro import vectorize_source
from repro.bench.harness import _copy_env
from repro.bench.workloads import WORKLOADS
from repro.mlang.parser import parse
from repro.runtime.interp import Interpreter


def run(program, env):
    return Interpreter(seed=0).run(parse(program) if isinstance(program, str)
                                   else program, env=_copy_env(env))


class TestSection1Claims:
    def test_loops_replaced_by_array_form_speed_up_execution(self):
        """§1: "loops that can be vectorized are replaced by their
        equivalent array-based form, which speeds up execution most of
        the time"."""
        w = WORKLOADS["histeq"]
        source = w.source()
        result = vectorize_source(source)
        env = w.env(scale="default")

        start = time.perf_counter()
        run(source, env)
        loop_time = time.perf_counter() - start
        start = time.perf_counter()
        run(result.program, env)
        vect_time = time.perf_counter() - start
        assert vect_time < loop_time

    def test_loops_with_dependences_not_vectorized(self):
        """§1: "Some loops cannot be vectorized due to loop-carried
        dependencies"."""
        out = vectorize_source(WORKLOADS["recurrence"].source())
        assert "for " in out.source


class TestSection2Claims:
    def test_index_replacement_alone_would_be_wrong(self):
        """§2: naive index→range replacement "may introduce errors":
        without dimension checking (transposes off) the row+column loop
        must NOT be vectorized at all."""
        from repro.vectorizer.checker import CheckOptions

        source = WORKLOADS["row-col-add"].source()
        naive = vectorize_source(source,
                                 options=CheckOptions(transposes=False))
        assert "for " in naive.source  # refused rather than wrong
        full = vectorize_source(source)
        assert "for " not in full.source  # repaired with a transpose

    def test_compatibility_protects_semantics(self):
        """§2.1: "disallowing transformations whose bounds match but
        which are not equivalent" — r_i vs r_j with equal bounds."""
        out = vectorize_source("""
%! A(*,*) B(*,*) n(1)
for i=1:n
  for j=1:n
    A(i,j) = B(j,i);
  end
end
""")
        assert "'" in out.source  # the transpose survived equal bounds


class TestSection3Claims:
    def test_patterns_resolve_dimensionality_disagreements(self):
        """§3: pattern transforms rescue statements the pointwise rules
        reject (all three Table 2 rows vectorize)."""
        for name in ("dot-products", "column-broadcast", "diagonal-scale"):
            out = vectorize_source(WORKLOADS[name].source())
            assert "for " not in out.source, name

    def test_database_is_user_extensible(self):
        """§3: "Users may add their own patterns … as necessity
        demands"."""
        from repro import default_database
        from repro.patterns.base import BinopPattern, R1, template
        from repro.dims.abstract import ONE, STAR

        db = default_database()
        before = len(db)
        db.register(BinopPattern("user-x", ".^", template(R1, STAR),
                                 template(ONE), template(R1, STAR),
                                 lambda n, b, c: n))
        assert len(db) == before + 1
        db.unregister("user-x")
        assert len(db) == before

    def test_reduction_statements_vectorize(self):
        """§3.1: additive reductions vectorize via Γ / native matmul."""
        for name in ("running-sum", "matvec", "quadratic-form",
                     "quad-nest", "triangular-update"):
            out = vectorize_source(WORKLOADS[name].source())
            assert "for " not in out.source, name


class TestSection4And5Claims:
    def test_statements_pulled_out_of_as_many_loops_as_possible(self):
        """§3.2: statements vectorize at the deepest failing prefix —
        the convolution's pixel loops vectorize inside its kernel
        loops."""
        out = vectorize_source(WORKLOADS["convolution"].source())
        assert out.source.count("for ") == 2  # only di/dj remain

    def test_loops_with_conditionals_not_candidates(self):
        """§4: "Loops containing conditional statements … are not
        candidates"."""
        result = vectorize_source(
            "for i=1:3\n if x\n  y = 1;\n end\nend\n")
        assert result.report.loops[0].status == "rejected"

    def test_index_writing_loops_not_candidates(self):
        """§4: "or writing to their own index within the loop"."""
        result = vectorize_source(
            "%! a(1,*)\nfor i=1:3\n i = i+1;\n a(i) = 1;\nend\n")
        assert result.report.loops[0].status == "rejected"

    def test_all_applicable_inputs_vectorized(self):
        """§5: "The dimensional analysis approach was capable of
        vectorizing all the inputs for which it was applicable" — and
        never miscompiles the rest (full corpus, outputs equal)."""
        from repro.runtime.values import values_equal

        for w in WORKLOADS.values():
            source = w.source()
            result = vectorize_source(source)
            env = w.env(scale="tiny", seed=1)
            base = run(source, env)
            vect = run(result.program, env)
            for output in w.outputs:
                assert values_equal(base[output], vect[output]), w.name

    def test_speedup_grows_with_problem_size(self):
        """§5: "The speedup is dependent on the chosen problem size"."""
        w = WORKLOADS["quad-nest"]
        source = w.source()
        vect = vectorize_source(source).program
        speedups = []
        for n in (4, 8):
            env = w.make_env({"n": n}, np.random.default_rng(0))
            start = time.perf_counter()
            run(source, env)
            loop_time = time.perf_counter() - start
            start = time.perf_counter()
            run(vect, env)
            vect_time = time.perf_counter() - start
            speedups.append(loop_time / vect_time)
        assert speedups[1] > speedups[0]


class TestSection7Claims:
    def test_pointwise_function_statement(self):
        """§7: "Y(i,j)=cos(X(i,j)) would be correctly vectorized as
        Y(1:100,1:100)=cos(X(1:100,1:100))"."""
        out = vectorize_source("""
%! Y(*,*) X(*,*)
for i=1:100
  for j=1:100
    Y(i,j)=cos(X(i,j));
  end
end
""")
        assert "".join(out.source.split()).endswith(
            "Y(1:100,1:100)=cos(X(1:100,1:100));")
