"""Property-based vectorization soundness.

Strategy: generate random loop nests over a fixed workspace of arrays
whose shapes match the loop extents, vectorize, and check that the
interpreter produces identical workspaces for the original and the
transformed program.  Programs the vectorizer leaves untouched pass
trivially; the property's value is that every program it *does*
transform must stay observationally equal.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro import vectorize_source
from repro.mlang.parser import parse
from repro.runtime.interp import Interpreter
from repro.runtime.values import values_equal

N, M = 5, 4  # i runs 1:5, j runs 1:3 (inner), sizes chosen to differ

HEADER = "%! c1(*,1) c2(*,1) r1(1,*) r2(1,*) M1(*,*) M2(*,*) s(1) acc(1)\n"

#: Leaf expressions usable inside the i loop (shapes consistent with
#: vectorizing i over 1:5).
I_LEAVES = ["c1(i)", "c2(i)", "r1(i)", "M1(i,2)", "M1(2,i)", "s", "3",
            "M1(i,i)", "r2(2*i-1)"]
#: Leaves for the (i, j) nest.
IJ_LEAVES = ["M1(i,j)", "M2(j,i)", "c1(i)", "r1(j)", "s", "2", "M1(i,i)"]

_ops = st.sampled_from(["+", "-", ".*", "*"])


def _exprs(leaves, depth):
    leaf = st.sampled_from(leaves)
    if depth == 0:
        return leaf
    sub = _exprs(leaves, depth - 1)
    return st.one_of(
        leaf,
        st.builds(lambda a, op, b: f"({a}{op}{b})", sub, _ops, sub),
        st.builds(lambda a: f"cos({a})", leaf),
    )


_i_targets = st.sampled_from(["out1(i)", "out2(i)", "M1(i,3)"])
_ij_targets = st.sampled_from(["O1(i,j)", "O2(j,i)"])


@st.composite
def single_loop_programs(draw):
    statements = draw(st.lists(
        st.builds(lambda t, e: f"  {t} = {e};", _i_targets,
                  _exprs(I_LEAVES, 2)),
        min_size=1, max_size=3))
    reduction = draw(st.booleans())
    if reduction:
        statements.append(
            f"  acc = acc + {draw(_exprs(I_LEAVES, 1))};")
    body = "\n".join(statements)
    return f"{HEADER}for i=1:{N}\n{body}\nend\n"


@st.composite
def nested_loop_programs(draw):
    statements = draw(st.lists(
        st.builds(lambda t, e: f"    {t} = {e};", _ij_targets,
                  _exprs(IJ_LEAVES, 2)),
        min_size=1, max_size=2))
    body = "\n".join(statements)
    return (f"{HEADER}for i=1:{N}\n  for j=1:3\n{body}\n  end\nend\n")


def _workspace(seed: int) -> dict:
    rng = np.random.default_rng(seed)

    def F(*shape):
        return np.asfortranarray(rng.random(shape) + 0.5)

    return {
        "c1": F(N, 1), "c2": F(N, 1),
        "r1": F(1, N), "r2": F(1, 2 * N),
        "M1": F(N, N), "M2": F(N, N),
        "O1": F(N, N), "O2": F(N, N),
        "out1": F(1, N), "out2": F(1, N),
        "s": 1.25, "acc": 0.0,
    }


#: Loop index variables: a vectorized loop no longer defines them, and
#: normalization changes their residual value — an inherent (and
#: paper-shared) deviation, so they are excluded from comparison.
_LOOP_INDICES = {"i", "j"}


def _assert_equivalent(source: str) -> None:
    result = vectorize_source(source)
    env_a = _workspace(31337)
    env_b = _workspace(31337)
    base = Interpreter(seed=0).run(parse(source), env=env_a)
    vect = Interpreter(seed=0).run(result.program, env=env_b)
    assert set(base) - _LOOP_INDICES == set(vect) - _LOOP_INDICES
    for name in set(base) - _LOOP_INDICES:
        assert values_equal(base[name], vect[name]), (
            f"variable {name!r} diverged for program:\n{source}\n"
            f"--- vectorized ---\n{result.source}")


@settings(max_examples=120, deadline=None)
@given(single_loop_programs())
def test_single_loop_soundness(source):
    _assert_equivalent(source)


@settings(max_examples=80, deadline=None)
@given(nested_loop_programs())
def test_nested_loop_soundness(source):
    _assert_equivalent(source)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from([
    "  a2(i) = a2(i) + c1(i);",
    "  a2(i) = c1(i)*2;",
    "  a2(i) = a2(i-1)+1;",        # recurrence: must stay sequential
    "  acc = acc + c1(i)*c2(i);",
]), min_size=1, max_size=3, unique=True))
def test_mixed_vectorizable_and_recurrent(stmts):
    source = (HEADER + "%! a2(1,*)\na2 = zeros(1, " + str(N) + ");\n"
              "for i=2:" + str(N) + "\n" + "\n".join(stmts) + "\nend\n")
    _assert_equivalent(source)
