x = 1;
x = 2;
y = x + 1;
t = y;
t = y + 2;
