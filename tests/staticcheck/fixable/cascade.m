x = 1;
y = x + 2;
y = 9;
x = y;
z = x;
