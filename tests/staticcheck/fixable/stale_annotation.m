%! a(1,*) gone(*,1)
%! alsogone(1,1)
a = zeros(1, 4);
b = a + 1;
