function r = scaled(v)
t = v + 1;
r = v * 2;
end
q = scaled(3);
