"""IR verifier: well-formed ASTs pass, forged compiler bugs raise."""

from pathlib import Path

import pytest

from repro.errors import VerifyError
from repro.mlang.ast_nodes import (
    Annotation,
    Assign,
    BinOp,
    Colon,
    End,
    Ident,
    If,
    MultiAssign,
    Num,
)
from repro.mlang.parser import parse
from repro.staticcheck import verify_program, verify_stmts
from repro.vectorizer.driver import Vectorizer

CORPUS = Path(__file__).resolve().parents[2] / "examples" / "corpus"


@pytest.mark.parametrize("path", sorted(CORPUS.glob("*.m")),
                         ids=lambda p: p.stem)
def test_parsed_corpus_verifies_with_spans(path):
    verify_program(parse(path.read_text()), "parse", require_spans=True)


@pytest.mark.parametrize("path", sorted(CORPUS.glob("*.m")),
                         ids=lambda p: p.stem)
def test_full_pipeline_under_verify_flag(path):
    # --verify runs the verifier after parse, analyze, per-loop codegen,
    # and the final splice; any raise here is a compiler bug.
    Vectorizer(verify=True).vectorize_source(path.read_text())


def test_v001_missing_span_only_when_required():
    stmts = [Assign(Ident("x"), Num(1.0))]     # default (0,0) span
    verify_stmts(stmts, "codegen")             # later stages: fine
    with pytest.raises(VerifyError, match="V001"):
        verify_stmts(stmts, "parse", require_spans=True)


def test_v002_unknown_binary_operator():
    stmts = [Assign(Ident("x"), BinOp("<>", Num(1.0), Num(2.0)))]
    with pytest.raises(VerifyError, match="V002"):
        verify_stmts(stmts, "codegen")


def test_v002_bad_assignment_target():
    stmts = [Assign(Num(3.0), Num(1.0))]
    with pytest.raises(VerifyError, match="V002"):
        verify_stmts(stmts, "codegen")


def test_v002_multiassign_without_targets():
    stmts = [MultiAssign([], Ident("f"))]
    with pytest.raises(VerifyError, match="V002"):
        verify_stmts(stmts, "codegen")


def test_v002_if_without_branches():
    with pytest.raises(VerifyError, match="V002"):
        verify_stmts([If([], [])], "codegen")


def test_v003_colon_outside_subscript():
    stmts = [Assign(Ident("x"), Colon())]
    with pytest.raises(VerifyError, match="V003"):
        verify_stmts(stmts, "codegen")


def test_v003_end_outside_subscript():
    stmts = [Assign(Ident("x"), End())]
    with pytest.raises(VerifyError, match="V003"):
        verify_stmts(stmts, "codegen")


def test_colon_and_end_legal_inside_subscripts():
    # a(:, end - 1) — ':' in a direct arg slot, 'end' at any depth.
    verify_program(parse("b = a(:, end - 1);\n"), "parse",
                   require_spans=True)


def test_v004_rewritten_annotation():
    stmts = [Annotation("x(*,1) garbage!!")]
    with pytest.raises(VerifyError, match="V004"):
        verify_stmts(stmts, "codegen")


def test_stage_is_reported():
    with pytest.raises(VerifyError, match="codegen:loop@7"):
        verify_stmts([Assign(Ident(""), Num(1.0))], "codegen:loop@7")
