"""Before/after golden tests for ``mvec lint --fix``.

Every program under ``tests/staticcheck/fixable/`` is run through the
autofixer and must come out byte-identical to its
``tests/staticcheck/golden/<stem>.fixed.m`` snapshot.  Regenerate after
an intentional fixer change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/staticcheck/test_fixer.py -q

Beyond the snapshots, the fixer carries three structural guarantees
exercised here: it is idempotent, it never introduces new diagnostics,
and it leaves unparseable input untouched.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.staticcheck import fix_source, lint_source

FIXABLE = Path(__file__).resolve().parent / "fixable"
GOLDEN = Path(__file__).resolve().parent / "golden"
UPDATE = bool(os.environ.get("REPRO_UPDATE_GOLDEN"))

FILES = sorted(FIXABLE.glob("*.m"))


def test_fixable_corpus_present():
    assert FILES, f"no fixable programs found under {FIXABLE}"


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_fixed_output_matches_golden(path):
    golden = GOLDEN / f"{path.stem}.fixed.m"
    actual = fix_source(path.read_text()).source
    if UPDATE:
        golden.write_text(actual)
    assert golden.exists(), f"missing golden snapshot {golden}"
    assert actual == golden.read_text()


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_fix_is_idempotent(path):
    once = fix_source(path.read_text())
    twice = fix_source(once.source)
    assert twice.source == once.source
    assert not twice.changed


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_fix_never_adds_diagnostics(path):
    source = path.read_text()
    before = {(d.code, d.message) for d in lint_source(source)}
    after = lint_source(fix_source(source).source)
    assert not [d for d in after if (d.code, d.message) not in before]
    assert not [d for d in after if d.code == "W201"], \
        "every full-assignment dead store must be fixed"


def test_dead_store_fix_details():
    result = fix_source((FIXABLE / "dead_store.m").read_text())
    assert [(d.line, d.column) for d in result.removed_stores] == \
        [(1, 1), (4, 1)]
    assert result.passes == 1
    assert result.changed


def test_cascading_stores_need_two_passes():
    result = fix_source((FIXABLE / "cascade.m").read_text())
    assert result.passes == 2
    assert len(result.removed_stores) == 2


def test_stale_annotations_stripped():
    result = fix_source((FIXABLE / "stale_annotation.m").read_text())
    assert result.stripped_annotations == ["alsogone", "gone"]
    assert "gone" not in result.source
    # The emptied second annotation line is dropped entirely.
    assert result.source.count("%!") == 1


def test_clean_program_untouched():
    source = (FIXABLE / "clean.m").read_text()
    result = fix_source(source)
    assert result.source == source
    assert not result.changed
    assert result.summary() == "nothing to fix"


def test_unparseable_input_untouched():
    source = "x = = 1;\n"
    result = fix_source(source)
    assert result.source == source
    assert not result.changed


def test_shared_line_store_not_fixed():
    # Both statements live on one physical line: deleting the dead
    # store would also delete its live neighbour, so the fixer must
    # leave the line alone.
    source = "x = 1; y = 2;\nx = 3;\nz = x + y;\n"
    result = fix_source(source)
    assert result.source == source
    assert not result.removed_stores


def test_cli_fix_rewrites_file_in_place(tmp_path):
    target = tmp_path / "prog.m"
    target.write_text((FIXABLE / "dead_store.m").read_text())
    env = dict(os.environ)
    root = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = str(root / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", "--fix", str(target)],
        capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stderr
    assert target.read_text() == \
        (GOLDEN / "dead_store.fixed.m").read_text()
    assert "removed 2 dead store(s)" in proc.stderr


def test_cli_fix_stdin_prints_fixed_source():
    env = dict(os.environ)
    root = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = str(root / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", "--fix", "-"],
        input=(FIXABLE / "cascade.m").read_text(),
        capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout == (GOLDEN / "cascade.fixed.m").read_text()
