"""``mvec lint`` / ``mvec audit`` / ``mvec --verify`` CLI behavior."""

import json

import pytest

from repro.cli import main

CLEAN = """\
%! x(*,1) y(*,1) n(1)
x = (1:8)';
n = 8;
for i = 1:n
  y(i) = 2 .* x(i);
end
"""

BROKEN = """\
n = 4;
for i = 1:n
  y(i) = z(i) + 1;
end
x = 1;
x = 2;
q = x;
"""


@pytest.fixture
def clean(tmp_path):
    path = tmp_path / "clean.m"
    path.write_text(CLEAN)
    return path


@pytest.fixture
def broken(tmp_path):
    path = tmp_path / "broken.m"
    path.write_text(BROKEN)
    return path


class TestLint:
    def test_clean_file_exits_zero(self, clean, capsys):
        assert main(["lint", str(clean)]) == 0
        assert "clean" in capsys.readouterr().err

    def test_errors_exit_nonzero_with_spans(self, broken, capsys):
        assert main(["lint", str(broken)]) == 1
        out = capsys.readouterr().out
        assert "3:3: error[E101]" in out
        assert "5:1: warning[W201]" in out

    def test_warnings_alone_exit_zero(self, tmp_path):
        path = tmp_path / "warn.m"
        path.write_text("x = 1;\nx = 2;\ny = x;\n")
        assert main(["lint", str(path)]) == 0

    def test_json_output(self, broken, capsys):
        assert main(["lint", "--json", str(broken)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["errors"] == 1
        codes = {d["code"] for d in payload[0]["diagnostics"]}
        assert "E101" in codes and "W201" in codes

    def test_missing_file_exits_two(self):
        assert main(["lint", "/nonexistent/nope.m"]) == 2


class TestAudit:
    def test_clean_file_passes(self, clean, capsys):
        assert main(["audit", str(clean)]) == 0
        assert "pass" in capsys.readouterr().err

    def test_json_output(self, clean, capsys):
        assert main(["audit", "--json", str(clean)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["ok"] is True
        assert payload[0]["vectorized_stmts"] == 1

    def test_unparsable_file_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.m"
        path.write_text("for i =\n")
        assert main(["audit", str(path)]) == 1
        assert "compile error" in capsys.readouterr().err


class TestVerifyFlag:
    def test_verify_flag_accepted_and_output_unchanged(self, clean,
                                                       capsys):
        assert main([str(clean)]) == 0
        plain = capsys.readouterr().out
        assert main(["--verify", str(clean)]) == 0
        assert capsys.readouterr().out == plain
