%! a(*,1) b(1,*) s(1)
a = zeros(4, 1);
b = zeros(1, 5);
q = a .* b;
s = a;
a(1) = b;
