n = 4;
for i = 1:n
  y(i) = z(i) + 1;
end
if n > 2
  w = 1;
end
q = w + 1;
