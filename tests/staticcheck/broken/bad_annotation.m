%! x(*,1) oops!!
x = zeros(3, 1);
y = x + 1;
