n = 3;
for i = 1:n
  y(i) = i;
