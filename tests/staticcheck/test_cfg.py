"""CFG construction: block structure, loop/branch edges, scopes."""

from repro.mlang.parser import parse
from repro.staticcheck.cfg import assigned_names, build_cfg, program_scopes


def cfg_of(source: str):
    return build_cfg(parse(source).body)


def reachable(cfg) -> set[int]:
    seen, stack = set(), [cfg.entry]
    while stack:
        bid = stack.pop()
        if bid in seen:
            continue
        seen.add(bid)
        stack.extend(cfg.blocks[bid].succs)
    return seen


def test_straight_line_single_path():
    cfg = cfg_of("x = 1;\ny = x + 1;\n")
    units = cfg.units()
    assert [u.kind for u in units] == ["assign", "assign"]
    assert cfg.exit in reachable(cfg)


def _closure_succs(cfg, start: int) -> set[int]:
    seen, stack = set(), [start]
    while stack:
        bid = stack.pop()
        if bid in seen:
            continue
        seen.add(bid)
        stack.extend(cfg.blocks[bid].succs)
    return seen


def test_for_loop_header_has_body_and_exit_edges():
    cfg = cfg_of("for i = 1:3\n  y(i) = i;\nend\nz = 1;\n")
    headers = [b for b in cfg.blocks
               if any(u.kind == "for" for u in b.units)]
    assert len(headers) == 1
    header = headers[0]
    # Zero-trip exit and body entry are distinct successors; exactly
    # one successor loops back to the header (the body's back edge).
    assert len(header.succs) == 2
    back = [s for s in header.succs
            if header.id in _closure_succs(cfg, s)]
    assert len(back) == 1


def test_loop_body_carries_loop_var():
    cfg = cfg_of("for i = 1:3\n  y(i) = i;\nend\n")
    body_units = [u for u in cfg.units() if u.kind == "assign"]
    assert body_units and body_units[0].loop_vars == frozenset({"i"})


def test_if_branches_join():
    cfg = cfg_of("if x > 0\n  y = 1;\nelse\n  y = 2;\nend\nz = y;\n")
    kinds = [u.kind for u in cfg.units()]
    assert kinds.count("cond") == 1
    assert kinds.count("assign") == 3
    assert cfg.exit in reachable(cfg)


def test_break_leaves_unreachable_continuation():
    cfg = cfg_of("for i = 1:3\n  break;\n  y = 1;\nend\n")
    # The statement after `break` sits in a block with no predecessors.
    dead = [u for b in cfg.blocks if b.id not in reachable(cfg)
            for u in b.units]
    assert any(u.kind == "assign" for u in dead)


def test_program_scopes_split_functions():
    scopes = program_scopes(parse(
        "x = 1;\n"
        "function y = f(a)\n  y = a + 1;\nend\n"))
    assert [s.kind for s in scopes] == ["script", "function"]
    script, func = scopes
    assert script.name == "<script>"
    assert func.name == "f"
    assert func.params == ("a",) and func.outs == ("y",)
    # Function bodies are excluded from the script scope.
    assert len(script.body) == 1


def test_assigned_names_covers_loops_and_subscripts():
    names = assigned_names(parse(
        "for i = 1:3\n  y(i) = i;\nend\n[a, b] = size(y);\n").body)
    assert names == {"i", "y", "a", "b"}
