"""Worklist solver + concrete analyses over small hand-checked CFGs."""

from repro.mlang.parser import parse
from repro.shapes import (
    ShapePropagation,
    scope_annotations,
    scope_known_functions,
)
from repro.staticcheck.analyses import (
    Liveness,
    ReachingDefinitions,
    definite_assignment,
    maybe_assignment,
)
from repro.staticcheck.cfg import build_cfg, program_scopes
from repro.staticcheck.dataflow import solve


def cfg_of(source: str):
    return build_cfg(parse(source).body)


def names_at_exit(cfg, solution):
    value = solution.after[cfg.exit]
    if value is None:
        value = solution.before[cfg.exit]
    return value


def test_reaching_definitions_kill_and_gen():
    cfg = cfg_of("x = 1;\nx = 2;\ny = x;\n")
    sol = solve(cfg, ReachingDefinitions())
    reaching = sol.before[cfg.exit]
    x_sites = [site for name, site in reaching if name == "x"]
    # The second assignment killed the first: one reaching site for x.
    assert len(x_sites) == 1


def test_reaching_definitions_merge_at_join():
    cfg = cfg_of("if c > 0\n  x = 1;\nelse\n  x = 2;\nend\ny = x;\n")
    sol = solve(cfg, ReachingDefinitions(entry_names=frozenset({"c"})))
    reaching = sol.before[cfg.exit]
    x_sites = [site for name, site in reaching if name == "x"]
    assert len(x_sites) == 2            # both branch definitions survive


def test_partial_definitions_accumulate():
    cfg = cfg_of("y = zeros(3, 1);\ny(1) = 5;\n")
    sol = solve(cfg, ReachingDefinitions())
    reaching = sol.before[cfg.exit]
    y_sites = [site for name, site in reaching if name == "y"]
    # The subscripted write does not kill the zeros() definition.
    assert len(y_sites) == 2


def test_liveness_backward():
    cfg = cfg_of("x = 1;\ny = x + 1;\nz = y;\n")
    sol = solve(cfg, Liveness(known=frozenset(),
                              exit_live=frozenset({"z"})))
    entry_live = sol.after[cfg.entry]
    # Nothing is live before the first assignment.
    assert entry_live == frozenset()


def test_liveness_subscripted_write_reads_own_array():
    cfg = cfg_of("y(2) = 1;\n")
    sol = solve(cfg, Liveness(known=frozenset(),
                              exit_live=frozenset({"y"})))
    # y(2) = 1 updates y in place, so y is live *before* it too.
    assert "y" in sol.after[cfg.entry]


def test_definite_vs_maybe_assignment():
    cfg = cfg_of("if c > 0\n  x = 1;\nend\ny = 2;\n")
    entry = frozenset({"c"})
    definite = solve(cfg, definite_assignment(entry))
    maybe = solve(cfg, maybe_assignment(entry))
    at_exit_definite = names_at_exit(cfg, definite)
    at_exit_maybe = names_at_exit(cfg, maybe)
    assert "x" not in at_exit_definite      # one-armed if: not definite
    assert "x" in at_exit_maybe
    assert "y" in at_exit_definite


def test_unreachable_blocks_stay_top():
    cfg = cfg_of("for i = 1:3\n  break;\n  x = 1;\nend\n")
    sol = solve(cfg, ReachingDefinitions())
    dead = [b.id for b in cfg.blocks
            if not b.preds and b.id != cfg.entry]
    assert dead
    assert all(sol.before[bid] is None for bid in dead)


def test_shape_propagation_reaches_fixpoint_with_conflict():
    program = parse(
        "%! a(*,1) b(1,*)\n"
        "a = zeros(4, 1);\n"
        "b = zeros(1, 5);\n"
        "if c > 0\n  m = a;\nelse\n  m = b;\nend\n")
    scope = program_scopes(program)[0]
    annotated = scope_annotations(scope)
    known = scope_known_functions(scope)
    analysis = ShapePropagation(scope, annotated, known)
    sol = solve(scope.cfg, analysis)
    facts = sol.before[scope.cfg.exit]
    # m is (*,1) on one path and (1,*) on the other → conflict (not a
    # Dim), while a and b keep their annotated shapes.
    from repro.dims.abstract import Dim

    assert not isinstance(facts["m"], Dim)
    assert facts["a"] == Dim.parse("(*,1)")
