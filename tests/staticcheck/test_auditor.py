"""Vectorization-legality auditor: real pipeline output passes, forged
miscompilations are caught with the right code."""

from pathlib import Path

import pytest

from repro.staticcheck import audit_source
from repro.vectorizer.driver import Vectorizer, vectorize_source

CORPUS = Path(__file__).resolve().parents[2] / "examples" / "corpus"

RECURRENCE = """\
%! w(*,1) n(1)
w = zeros(8, 1);
w(1) = 1;
n = 8;
for i = 2:n
  w(i) = w(i-1) + 1;
end
"""

ORDERED = """\
%! x(*,1) y(*,1) n(1)
x = zeros(8, 1);
y = zeros(8, 1);
n = 8;
for i = 1:n
  x(i) = i + 1;
  y(i) = x(i) .* 2;
end
"""

SAXPY = """\
%! x(*,1) y(*,1) a(1) n(1)
x = zeros(8, 1);
y = zeros(8, 1);
a = 3;
n = 8;
for i = 1:n
  y(i) = y(i) + a .* x(i);
end
"""


def audit_codes(original: str, emitted: str) -> set[str]:
    result = audit_source(original, emitted)
    assert not result.ok
    return {d.code for d in result.diagnostics}


@pytest.mark.parametrize("path", sorted(CORPUS.glob("*.m")),
                         ids=lambda p: p.stem)
def test_real_pipeline_output_passes(path):
    source = path.read_text()
    result = audit_source(source, vectorize_source(source).source)
    assert result.ok, [d.render(path.name) for d in result.diagnostics]


@pytest.mark.parametrize("path", sorted(CORPUS.glob("*.m")),
                         ids=lambda p: p.stem)
def test_simplified_output_passes(path):
    source = path.read_text()
    emitted = Vectorizer(simplify=True).vectorize_source(source).source
    assert audit_source(source, emitted).ok


def test_recurrence_is_left_sequential_and_audits_clean():
    emitted = vectorize_source(RECURRENCE).source
    assert "for i" in emitted            # the pipeline must decline
    assert audit_source(RECURRENCE, emitted).ok


def test_a001_recurrence_forged_as_vectorized():
    forged = (
        "%! w(*,1) n(1)\n"
        "w = zeros(8, 1);\n"
        "w(1) = 1;\n"
        "n = 8;\n"
        "w(2:n) = w(1:n-1) + 1;\n")
    assert "A001" in audit_codes(RECURRENCE, forged)


def test_a002_dependent_statements_reordered():
    forged = (
        "%! x(*,1) y(*,1) n(1)\n"
        "x = zeros(8, 1);\n"
        "y = zeros(8, 1);\n"
        "n = 8;\n"
        "y(1:n) = x(1:n) .* 2;\n"
        "x(1:n) = (1:n)' + 1;\n")
    assert "A002" in audit_codes(ORDERED, forged)


def test_a004_dropped_annotation():
    emitted = vectorize_source(SAXPY).source
    forged = "\n".join(line for line in emitted.splitlines()
                       if not line.startswith("%!")) + "\n"
    assert "A004" in audit_codes(SAXPY, forged)


def test_a101_emitted_garbage():
    assert "A101" in audit_codes(SAXPY, "for i =\n")


def test_result_to_dict_round_trips():
    result = audit_source(SAXPY, vectorize_source(SAXPY).source)
    payload = result.to_dict()
    assert payload["ok"] is True
    assert payload["vectorized_stmts"] >= 1
    assert payload["diagnostics"] == []
