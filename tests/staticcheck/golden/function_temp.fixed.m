function r = scaled(v)
r = v * 2;
end
q = scaled(3);
