%! a(1,*)
a = zeros(1, 4);
b = a + 1;
disp(b);
