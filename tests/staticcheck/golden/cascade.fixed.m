y = 9;
x = y;
z = x;
