"""Golden diagnostic snapshots: ``mvec lint`` over a corpus of
deliberately broken programs under ``tests/staticcheck/broken/``.

Every broken program must produce *exactly* the rendered diagnostics in
its ``tests/staticcheck/golden/<stem>.txt`` snapshot — codes, messages,
and 1-based ``line:col`` spans included.  Regenerate after an
intentional diagnostic change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/staticcheck/test_lint_golden.py -q

then review the diff like any other code change.
"""

import os
from pathlib import Path

import pytest

from repro.staticcheck import lint_source, render_text

BROKEN = Path(__file__).resolve().parent / "broken"
GOLDEN = Path(__file__).resolve().parent / "golden"
UPDATE = bool(os.environ.get("REPRO_UPDATE_GOLDEN"))

FILES = sorted(BROKEN.glob("*.m"))


def _rendered(path: Path) -> str:
    diagnostics = lint_source(path.read_text())
    return render_text(diagnostics, filename=path.name) + "\n"


def test_broken_corpus_present():
    assert FILES, f"no broken programs found under {BROKEN}"


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_diagnostics_match_golden(path):
    actual = _rendered(path)
    golden_path = GOLDEN / f"{path.stem}.txt"
    if UPDATE:
        GOLDEN.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(actual)
        return
    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path}; regenerate with "
        "REPRO_UPDATE_GOLDEN=1")
    assert actual == golden_path.read_text(), (
        f"diagnostics for {path.name} drifted from the golden snapshot; "
        f"if intentional, regenerate with REPRO_UPDATE_GOLDEN=1")


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_every_broken_program_flags_something(path):
    assert lint_source(path.read_text()), (
        f"{path.name} is in the broken corpus but lints clean")


def test_no_stale_goldens():
    stems = {p.stem for p in FILES}
    stale = [g.name for g in GOLDEN.glob("*.txt") if g.stem not in stems]
    assert not stale, f"stale golden files without broken programs: {stale}"
