"""Targeted linter behavior beyond the golden snapshots."""

from pathlib import Path

import pytest

from repro.staticcheck import lint_source

CORPUS = Path(__file__).resolve().parents[2] / "examples" / "corpus"


def codes(source: str) -> list[str]:
    return [d.code for d in lint_source(source)]


def test_clean_program_produces_nothing():
    assert lint_source(
        "%! x(*,1) n(1)\n"
        "x = zeros(4, 1);\n"
        "n = 4;\n"
        "for i = 1:n\n  x(i) = i;\nend\n"
        "s = sum(x);\n") == []


def test_annotated_name_counts_as_defined():
    # The %! annotation vouches for x: no E101 even without a prelude.
    assert "E101" not in codes("%! x(*,1)\ny = x + 1;\n")


def test_loop_index_is_defined_inside_body():
    assert "E101" not in codes("for i = 1:3\n  y(i) = i;\nend\n")


def test_function_params_are_defined():
    source = ("function y = f(a, b)\n"
              "  y = a + b;\n"
              "end\n")
    assert codes(source) == []


def test_function_scopes_are_independent():
    # x defined in the script does NOT leak into the function body.
    source = ("x = 1;\n"
              "function y = g()\n"
              "  y = x;\n"
              "end\n")
    assert "E101" in codes(source)


def test_function_output_not_a_dead_store():
    source = ("function y = h()\n"
              "  y = 1;\n"
              "end\n")
    assert "W201" not in codes(source)


def test_dead_store_requires_pure_rhs():
    # rand() is impure: overwriting its result is not reported.
    assert "W201" not in codes("x = rand(3, 1);\nx = 1;\ny = x;\n")


def test_e302_forgives_orientation_only_mismatch():
    # The paper's own histeq writes a column into a row-annotated name;
    # MATLAB reshapes on assignment, so only rank changes are errors.
    source = ("%! h(1,*)\n"
              "g = zeros(4, 1);\n"
              "h = cumsum(g);\n")
    assert "E302" not in codes(source)


def test_e302_flags_rank_mismatch():
    source = ("%! s(1)\n"
              "g = zeros(4, 1);\n"
              "s = cumsum(g);\n")
    assert "E302" in codes(source)


def test_global_names_count_as_defined():
    assert "E101" not in codes("global counter\nx = counter + 1;\n")


def test_diagnostics_are_sorted_by_position():
    diags = lint_source("a = b;\nc = d;\n")
    positions = [(d.line, d.column) for d in diags]
    assert positions == sorted(positions)


@pytest.mark.parametrize("path", sorted(CORPUS.glob("*.m")),
                         ids=lambda p: p.stem)
def test_corpus_is_error_free(path):
    errors = [d for d in lint_source(path.read_text()) if d.is_error]
    assert not errors, [str(d.render(path.name)) for d in errors]
