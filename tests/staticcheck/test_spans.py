"""Source spans: token positions under awkward input (tabs,
continuations, escaped quotes) and AST node anchoring — the spans the
linter prints and the verifier's V001 invariant both depend on these."""

from repro.mlang.ast_nodes import Apply, Assign, BinOp, For
from repro.mlang.lexer import tokenize
from repro.mlang.parser import parse
from repro.staticcheck import verify_program


def positions(source: str):
    return [(t.text, t.line, t.column) for t in tokenize(source)
            if t.text.strip()]


def test_tab_counts_as_one_column():
    assert positions("\ty = 2;\n")[0] == ("y", 1, 2)


def test_line_continuation_resumes_on_next_line():
    toks = positions("z = 1 + ...\n    2;\n")
    assert ("2", 2, 5) in toks
    # The '+' stays anchored on the first line.
    assert ("+", 1, 7) in toks


def test_escaped_quote_string_span():
    toks = positions("s = 'ab''cd';\n")
    assert ("ab'cd", 1, 5) in toks
    assert (";", 1, 13) in toks       # the closing quote consumed 1 col


def test_comment_lines_do_not_shift_positions():
    toks = positions("  % leading comment\nw = 3;\n")
    assert toks[0] == ("w", 2, 1)


def test_matrix_rows_span_lines():
    toks = positions("a = [1 2\n3 4];\n")
    assert ("3", 2, 1) in toks


def test_statement_nodes_carry_spans():
    program = parse("x = 1;\nfor i = 1:3\n  y(i) = x + i;\nend\n")
    assigns = [n for n in program.walk() if isinstance(n, Assign)]
    assert [(a.pos.line, a.pos.column) for a in assigns] == [(1, 1), (3, 3)]
    loop = next(n for n in program.walk() if isinstance(n, For))
    assert (loop.pos.line, loop.pos.column) == (2, 1)


def test_expression_nodes_carry_spans():
    program = parse("y = a(2) + b;\n")
    apply_node = next(n for n in program.walk() if isinstance(n, Apply))
    assert (apply_node.pos.line, apply_node.pos.column) == (1, 5)
    binop = next(n for n in program.walk() if isinstance(n, BinOp))
    assert binop.pos.line == 1


def test_every_parsed_node_satisfies_v001():
    source = ("%! x(*,1) n(1)\n"
              "x = zeros(4, 1);\n"
              "n = 4;\n"
              "for i = 1:n\n"
              "  if x(i) > 0\n    x(i) = -x(i);\n  end\n"
              "end\n"
              "[m, k] = size(x);\n"
              "s = 'done';\n")
    verify_program(parse(source), "parse", require_spans=True)
