% fuzz reproducer: hand-seeded — §2.2 transpose insertion on m ≠ n
%$ outputs: A B C
%! A(*,*) B(*,*) C(*,*) m(1) n(1)
A = zeros(2, 3);
B = [1, 2; 3, 4; 5, 6];
C = [0.5, -1, 1.5; 2, -0.25, 0];
m = 2;
n = 3;
for i = 1:m
  for j = 1:n
    A(i, j) = B(j, i) + C(i, j);
  end
end
