% fuzz reproducer: hand-seeded — diagonal access and per-row dot
% product against the same matrix in one program
%$ outputs: A Y a d
%! A(*,*) Y(*,*) a(1,*) d(1,*) n(1)
A = [1, 2, 3; 4, 5, 6; 7, 8, 10];
Y = [0.5, -1, 0; 1, 0.25, -0.5; 0, 2, 1];
a = zeros(1, 3);
d = zeros(1, 3);
n = 3;
for i = 1:n
  d(i) = A(i, i);
end
for i = 1:n
  a(i) = A(i, :)*Y(:, i);
end
