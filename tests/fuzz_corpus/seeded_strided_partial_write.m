% fuzz reproducer: hand-seeded — non-unit stride writes only half the
% output; untouched zero entries must survive vectorization
%$ outputs: x z
%! x(*,1) z(*,1) n(1)
x = [0.25; -1; 1.5; 2; -0.5; 0.75];
z = zeros(6, 1);
n = 6;
for i = 2:2:n
  z(i) = x(i).^2 - 1;
end
