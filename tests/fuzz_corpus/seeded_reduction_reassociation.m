% fuzz reproducer: hand-seeded — Γ reduction reassociation with mixed
% magnitudes must stay inside the documented oracle tolerances
%$ outputs: s x
%! s(1) x(*,1) n(1)
x = [1000000; 0.03125; -1000000; 0.0625; 512; -512];
s = 0;
n = 6;
for i = 1:n
  s = s + x(i)*x(i);
end
