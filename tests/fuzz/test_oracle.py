"""The oracle must pass correct programs and flag broken ones.

Broken vectorizers are *injected* (the real one is — by design — hard
to catch misbehaving), proving the oracle actually discriminates.
"""

from dataclasses import dataclass

from repro.fuzz.oracle import (
    comparable_names,
    diff_workspaces,
    loop_index_vars,
    run_oracle,
)
from repro.mlang.parser import parse

GOOD = """\
%! x(*,1) z(*,1) n(1)
x = [1; 2; 3];
n = 3;
for i = 1:n
  z(i) = 2*x(i);
end
"""


@dataclass
class _FakeResult:
    source: str


def _broken_vectorizer(source: str) -> _FakeResult:
    """Pretends to vectorize but silently drops a factor of 2."""
    return _FakeResult(source="""\
x = [1; 2; 3];
n = 3;
z = x;
""")


def _crashing_vectorizer(source: str):
    raise ZeroDivisionError("boom")


class TestHappyPath:
    def test_good_program_is_ok(self):
        report = run_oracle(GOOD)
        assert report.ok, report.describe()
        assert report.vectorized_source is not None

    def test_outputs_default_excludes_loop_index(self):
        report = run_oracle(GOOD)
        assert "i" not in report.outputs
        assert "z" in report.outputs

    def test_explicit_outputs_respected(self):
        report = run_oracle(GOOD, outputs=["z"])
        assert report.outputs == ("z",)
        assert report.ok


class TestDetection:
    def test_wrong_vectorization_flagged(self):
        report = run_oracle(GOOD, vectorizer=_broken_vectorizer)
        assert not report.ok
        assert any(d.variable == "z" for d in report.divergences)
        assert any(d.stage == "interp-vectorized"
                   for d in report.divergences)

    def test_vectorizer_crash_is_a_finding(self):
        report = run_oracle(GOOD, vectorizer=_crashing_vectorizer)
        assert not report.ok
        assert report.divergences[0].stage == "vectorize"

    def test_invalid_program_reported_as_reference_crash(self):
        report = run_oracle("z = undefined_variable + 1;")
        assert not report.ok
        assert report.divergences[0].stage == "interp-original"

    def test_describe_mentions_program(self):
        report = run_oracle(GOOD, vectorizer=_broken_vectorizer)
        text = report.describe()
        assert "z(i) = 2*x(i);" in text
        assert "divergence" in text


class TestHelpers:
    def test_loop_index_vars(self):
        program = parse("for i = 1:3\nfor j = 1:2\nA(i, j) = 1;\nend\nend")
        assert loop_index_vars(program) == {"i", "j"}

    def test_comparable_names_excludes_temps(self):
        program = parse("""
for i = 1:3
  t = 2*i;
  z(i) = t + 1;
end
""")
        names = comparable_names(program)
        assert "z" in names
        assert "t" not in names      # forward-substitutable temp
        assert "i" not in names      # loop index

    def test_comparable_names_keeps_reductions(self):
        program = parse("s = 0;\nfor i = 1:3\ns = s + i;\nend")
        assert "s" in comparable_names(program)

    def test_diff_missing_variable(self):
        divergences = diff_workspaces({"a": 1.0}, {}, ["a"], "stage")
        assert len(divergences) == 1
        assert "missing" in divergences[0].detail

    def test_diff_absent_everywhere_ignored(self):
        assert diff_workspaces({}, {}, ["a"], "stage") == []

    def test_diff_tolerance(self):
        base = {"a": 1.0}
        assert not diff_workspaces(base, {"a": 1.0 + 1e-13}, ["a"], "s")
        assert diff_workspaces(base, {"a": 1.01}, ["a"], "s")


class TestCorpusPrograms:
    """The oracle agrees with the existing corpus equivalence suite on
    self-contained corpus programs (those needing no external inputs
    are synthesized inline here)."""

    def test_histeq_style_program(self):
        source = """\
%! im(*,*) bw(*,*) t(1)
im = [10, 200; 130, 90];
t = 128;
bw = zeros(2, 2);
for i = 1:2
  for j = 1:2
    bw(i, j) = im(i, j) > t;
  end
end
"""
        report = run_oracle(source)
        assert report.ok, report.describe()
        assert "for " not in report.vectorized_source
