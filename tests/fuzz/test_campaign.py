"""Campaign + CLI integration: clean runs, mismatch handling, metrics."""

from dataclasses import dataclass

import pytest

from repro.cli import main
from repro.fuzz.campaign import run_campaign


def test_small_campaign_clean():
    result = run_campaign(25, seed=0)
    assert result.ok, "\n".join(
        m.report.describe() for m in result.mismatches)
    assert result.total == 25
    assert result.programs_per_sec > 0
    assert "OK" in result.summary()


def test_campaign_counts_mismatches(tmp_path):
    @dataclass
    class _FakeResult:
        source: str

    def alway_wrong(source):
        return _FakeResult(source="wrong = 42;\n")

    result = run_campaign(3, seed=0, shrink=True, corpus_dir=tmp_path,
                          vectorizer=alway_wrong)
    assert not result.ok
    assert len(result.mismatches) == 3
    for mismatch in result.mismatches:
        assert mismatch.shrunk_source is not None
        assert mismatch.reproducer is not None
        assert mismatch.reproducer.exists()
    assert "MISMATCH" in result.summary()


def test_progress_callback():
    seen = []
    run_campaign(4, seed=0, progress=lambda done, total: seen.append(
        (done, total)))
    assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]


def test_cli_fuzz_smoke(capsys):
    assert main(["fuzz", "--n", "10", "--seed", "0", "--quiet"]) == 0
    err = capsys.readouterr().err
    assert "10 programs" in err
    assert "OK" in err


def test_cli_fuzz_progress(capsys):
    assert main(["fuzz", "--n", "3", "--seed", "1"]) == 0
    err = capsys.readouterr().err
    assert "3/3" in err


def test_throughput_benchmark_metric():
    from repro.bench.fuzzbench import (
        format_fuzz_row,
        measure_fuzz_throughput,
    )

    measurement = measure_fuzz_throughput(n=5, seed=0)
    assert measurement.programs == 5
    assert measurement.mismatches == 0
    assert measurement.programs_per_sec > 0
    row = format_fuzz_row(measurement)
    assert "fuzz-oracle" in row and "ok" in row


@pytest.mark.parametrize("seed", [0, 1])
def test_campaign_deterministic(seed):
    first = run_campaign(5, seed=seed)
    second = run_campaign(5, seed=seed)
    assert first.ok == second.ok
    assert first.total == second.total


def test_parallel_campaign_matches_sequential():
    sequential = run_campaign(30, seed=4)
    parallel = run_campaign(30, seed=4, workers=2)
    assert parallel.total == sequential.total == 30
    assert parallel.ok == sequential.ok
    assert [m.index for m in parallel.mismatches] == \
        [m.index for m in sequential.mismatches]


def test_parallel_campaign_progress_monotonic():
    seen = []
    run_campaign(12, seed=0, workers=2,
                 progress=lambda done, total: seen.append((done, total)))
    assert seen[-1] == (12, 12)
    assert [done for done, _ in seen] == sorted(done for done, _ in seen)


def test_injected_vectorizer_forces_sequential_path():
    # Closures can't cross process boundaries; the campaign must still
    # honor the injection (and find the planted mismatch) with workers.
    @dataclass
    class _FakeResult:
        source: str

    result = run_campaign(2, seed=0, workers=4,
                          vectorizer=lambda s: _FakeResult("wrong = 1;\n"))
    assert len(result.mismatches) == 2


def test_cli_fuzz_workers_flag(capsys):
    assert main(["fuzz", "--n", "8", "--seed", "0", "--quiet",
                 "--workers", "2"]) == 0
    assert "8 programs" in capsys.readouterr().err
