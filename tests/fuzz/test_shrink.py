"""Shrinker tests: minimization against injected vectorizer bugs."""

from dataclasses import dataclass

from repro.fuzz.shrink import (
    read_reproducer_outputs,
    shrink_source,
    write_reproducer,
)
from repro.fuzz.oracle import run_oracle
from repro.mlang.parser import parse

#: A program with plenty of irrelevant statements around one that the
#: broken vectorizer miscompiles (it rewrites ``z(i) = 2*x(i)`` loops
#: to ``z = x``, dropping the factor).
NOISY = """\
%! x(*,1) z(*,1) w(*,1) q(*,*) n(1)
x = [1; 2; 3];
w = [5; 6; 7];
q = [1, 2; 3, 4];
n = 3;
for i = 1:n
  w(i) = w(i) + 1;
end
for i = 1:n
  z(i) = 2*x(i);
end
if 1 > 0
  q(1, 1) = 9;
end
"""


@dataclass
class _FakeResult:
    source: str


def _miscompiling_vectorizer(source: str) -> _FakeResult:
    """Replace every ``for i=1:n ... end`` loop body with a wrong
    closed form for the ``z`` loop and a right one for the ``w`` loop."""
    out = source
    out = out.replace(
        "for i = 1:n\n  w(i) = w(i) + 1;\nend", "w = w + 1;")
    out = out.replace(
        "for i = 1:n\n  z(i) = 2*x(i);\nend", "z = x;")  # BUG: lost the 2
    return _FakeResult(source=out)


def test_shrink_removes_irrelevant_statements():
    report = run_oracle(NOISY, vectorizer=_miscompiling_vectorizer)
    assert not report.ok
    shrunk = shrink_source(NOISY, vectorizer=_miscompiling_vectorizer)
    # The faulty loop and its input must survive…
    assert "z(i) = 2*x(i);" in shrunk
    assert "x =" in shrunk
    # …while unrelated statements are gone.
    assert "q" not in shrunk
    assert "w(i)" not in shrunk
    # And it still mismatches.
    assert not run_oracle(shrunk, vectorizer=_miscompiling_vectorizer).ok


def test_shrink_is_much_smaller():
    shrunk = shrink_source(NOISY, vectorizer=_miscompiling_vectorizer)
    assert len(shrunk.splitlines()) < len(NOISY.splitlines())


def test_shrink_flattens_literals():
    shrunk = shrink_source(NOISY, vectorizer=_miscompiling_vectorizer)
    # The literal-flattening pass rewrites x's values to 1s (the bug
    # still reproduces: 2*1 != 1).
    assert "[1; 1; 1]" in shrunk or "[1; 2; 3]" in shrunk


def test_shrunk_program_still_parses():
    shrunk = shrink_source(NOISY, vectorizer=_miscompiling_vectorizer)
    parse(shrunk)


def test_shrink_noop_on_unshrinkable_input():
    minimal = "x = [1; 2];\nfor i = 1:2\n  z(i) = 2*x(i);\nend\n"

    def broken(source):
        # Miscompile the loop when present; leave everything else alone,
        # so deleting any statement makes the mismatch disappear.
        return _FakeResult(source=source.replace(
            "for i = 1:2\n  z(i) = 2*x(i);\nend", "z = x;"))

    shrunk = shrink_source(minimal, vectorizer=broken)
    assert "z(i) = 2*x(i);" in shrunk
    assert "x =" in shrunk


def test_write_and_read_reproducer(tmp_path):
    report = run_oracle(NOISY, vectorizer=_miscompiling_vectorizer)
    path = write_reproducer(tmp_path, NOISY, report, "fuzz_seed0_1")
    assert path.name == "fuzz_seed0_1.m"
    text = path.read_text()
    assert text.startswith("% fuzz reproducer")
    assert "interp-vectorized" in text
    outputs = read_reproducer_outputs(path)
    assert outputs is not None and "z" in outputs


def test_read_outputs_absent(tmp_path):
    path = tmp_path / "plain.m"
    path.write_text("x = 1;\n")
    assert read_reproducer_outputs(path) is None
