"""The generator's contract: deterministic, well-formed by
construction, and varied enough to cover the whole template grammar."""

import pytest

from repro.fuzz.generator import TEMPLATES, ProgramGenerator, Shape
from repro.mlang.ast_nodes import For, If
from repro.mlang.parser import parse
from repro.mlang.printer import to_source
from repro.runtime.interp import Interpreter

N_SAMPLE = 40


@pytest.fixture(scope="module")
def sample():
    return list(ProgramGenerator(seed=0).programs(N_SAMPLE))


def test_deterministic_across_instances():
    a = ProgramGenerator(seed=7).generate(3)
    b = ProgramGenerator(seed=7).generate(3)
    assert a.source == b.source
    assert a.outputs == b.outputs


def test_seed_sensitivity():
    a = ProgramGenerator(seed=1).generate(0)
    b = ProgramGenerator(seed=2).generate(0)
    assert a.source != b.source


def test_index_sensitivity():
    generator = ProgramGenerator(seed=0)
    assert generator.generate(0).source != generator.generate(1).source


def test_programs_parse_and_round_trip(sample):
    for program in sample:
        tree = parse(program.source)
        assert to_source(tree) == program.source


def test_programs_run_crash_free(sample):
    """Shape-correctness by construction: the reference interpreter
    never raises on a generated program."""
    for program in sample:
        workspace = Interpreter(seed=0).run(parse(program.source), env={})
        for name in program.outputs:
            assert name in workspace, (name, program.source)


def test_outputs_exclude_loop_indices(sample):
    for program in sample:
        indices = {node.var for node in parse(program.source).walk()
                   if isinstance(node, For)}
        assert not indices & set(program.outputs)


def test_annotation_mix(sample):
    annotated = [p for p in sample if p.annotated]
    inference_only = [p for p in sample if not p.annotated]
    assert annotated and inference_only, \
        "sample must mix annotated and annotation-free programs"
    for program in annotated:
        assert program.source.startswith("%! ")
    for program in inference_only:
        assert "%!" not in program.source


def test_annotation_free_programs_vectorize():
    """The inference-only path is not a dead letter: a healthy share
    of annotation-free programs still vectorizes at least one loop."""
    from repro.vectorizer.driver import vectorize_source

    vectorized = total = 0
    for program in ProgramGenerator(seed=3).programs(60):
        if program.annotated:
            continue
        total += 1
        result = vectorize_source(program.source)
        vectorized += bool(result.report.vectorized_loops)
    assert total >= 5
    assert vectorized >= total // 2, (vectorized, total)


def test_annotation_ratio_zero_keeps_all_annotated():
    for program in ProgramGenerator(
            seed=0, annotation_free_ratio=0.0).programs(10):
        assert program.annotated


def test_template_coverage():
    """Over a few hundred programs every template family appears."""
    seen_if = seen_nest = seen_colon = seen_stride = False
    for program in ProgramGenerator(seed=0).programs(200):
        tree = parse(program.source)
        for node in tree.walk():
            if isinstance(node, If):
                seen_if = True
            if isinstance(node, For) and any(
                    isinstance(child, For) for child in node.body):
                seen_nest = True
        if ", :)" in program.source or "(:, " in program.source:
            seen_colon = True
        if "2:2:" in program.source:
            seen_stride = True
    assert seen_if and seen_nest and seen_colon and seen_stride


def test_every_template_emits_valid_code():
    """Drive each template directly (not via the random mix)."""
    import random

    from repro.fuzz.generator import _Builder

    for template in set(TEMPLATES):
        builder = _Builder(random.Random(0))
        template(builder)
        generated = builder.finish(0, 0)
        workspace = Interpreter(seed=0).run(parse(generated.source), env={})
        assert workspace


def test_shape_annotation_text():
    assert Shape(1, 1).annotation == "(1)"
    assert Shape(4, 1).annotation == "(*,1)"
    assert Shape(1, 4).annotation == "(1,*)"
    assert Shape(3, 4).annotation == "(*,*)"


def test_while_and_mask_template_coverage():
    """The grammar's while-loop and logical-mask families appear in a
    modest sample (they are 3 of 15 template slots)."""
    from repro.mlang.ast_nodes import BinOp, While

    seen_while = seen_mask = seen_while_inner_for = False
    for program in ProgramGenerator(seed=5).programs(150):
        tree = parse(program.source)
        for node in tree.walk():
            if isinstance(node, While):
                seen_while = True
                if any(isinstance(inner, For) for inner in node.body):
                    seen_while_inner_for = True
            if isinstance(node, BinOp) and node.op == ".*" and \
                    isinstance(node.right, BinOp) and \
                    node.right.op in (">", "<", ">=", "<=", "&", "|"):
                seen_mask = True
    assert seen_while and seen_mask and seen_while_inner_for


def test_new_templates_oracle_clean():
    """Direct differential check of each new template family."""
    import random

    from repro.fuzz.generator import (
        _Builder,
        t_logical_mask,
        t_while_accumulate,
        t_while_inner_for,
    )
    from repro.fuzz.oracle import run_oracle

    for template in (t_logical_mask, t_while_accumulate,
                     t_while_inner_for):
        for trial in range(8):
            builder = _Builder(random.Random(trial * 7919 + 13))
            template(builder)
            generated = builder.finish(trial, 0)
            report = run_oracle(generated.source,
                                outputs=generated.outputs)
            assert report.ok, report.describe()


def test_while_inner_for_is_vectorized_inside_while():
    """The driver recurses through While bodies: the inner for loop
    vectorizes while the while stays."""
    import random

    from repro.fuzz.generator import _Builder, t_while_inner_for
    from repro.vectorizer.driver import vectorize_source

    builder = _Builder(random.Random(2))
    t_while_inner_for(builder)
    generated = builder.finish(0, 0)
    vectorized = vectorize_source(generated.source).source
    assert "while " in vectorized
    assert "for " not in vectorized
