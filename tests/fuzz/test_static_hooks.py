"""The fuzz campaign's static hooks: the lint-clean generator
invariant and the per-program legality audit.  Like the oracle tests,
violations are *injected* — the real pipeline is designed not to
produce them."""

from dataclasses import dataclass

from repro.fuzz.generator import ProgramGenerator
from repro.fuzz.oracle import run_oracle

GOOD = """\
%! x(*,1) z(*,1) n(1)
x = [1; 2; 3];
n = 3;
for i = 1:n
  z(i) = 2 .* x(i);
end
"""

#: A recurrence the vectorizer must decline...
RECURRENCE = """\
%! w(*,1) n(1)
w = [1; 0; 0; 0];
n = 4;
for i = 2:n
  w(i) = w(i-1) + 1;
end
"""

#: ...and a forged "vectorization" of it that happens to also be
#: behaviorally wrong — but the *audit* divergence must appear even
#: before any workspace comparison runs.
ILLEGAL = """\
%! w(*,1) n(1)
w = [1; 0; 0; 0];
n = 4;
w(2:n) = w(1:n-1) + 1;
"""


@dataclass
class _FakeResult:
    source: str


def _illegal_vectorizer(source: str) -> _FakeResult:
    return _FakeResult(source=ILLEGAL)


class TestLintHook:
    def test_clean_program_passes(self):
        assert run_oracle(GOOD, lint=True).ok

    def test_unclean_program_is_a_divergence(self):
        report = run_oracle("y = z + 1;\nq = y;\n", lint=True)
        stages = [d.stage for d in report.divergences]
        assert stages == ["lint-original"]
        assert "E101" in report.divergences[0].detail

    def test_lint_off_by_default(self):
        # Without the hook the unclean program still *runs* into the
        # reference-interpreter failure, not a lint finding.
        report = run_oracle("y = z + 1;\nq = y;\n")
        assert all(d.stage != "lint-original" for d in report.divergences)


class TestAuditHook:
    def test_legal_vectorization_passes(self):
        assert run_oracle(GOOD, audit=True).ok

    def test_declined_loop_passes(self):
        assert run_oracle(RECURRENCE, audit=True).ok

    def test_illegal_vectorization_is_a_divergence(self):
        report = run_oracle(RECURRENCE, audit=True,
                            vectorizer=_illegal_vectorizer)
        audit = [d for d in report.divergences if d.stage == "audit"]
        assert audit and "A001" in audit[0].detail

    def test_audit_off_misses_the_legality_bug(self):
        # Same forged output without the hook: only behavioral stages
        # can complain, and none of them mention the dependence.
        report = run_oracle(RECURRENCE, vectorizer=_illegal_vectorizer)
        assert all(d.stage != "audit" for d in report.divergences)


class TestGeneratorInvariant:
    def test_generated_programs_are_lint_clean_and_audit_clean(self):
        generator = ProgramGenerator(seed=7)
        for index in range(25):
            program = generator.generate(index)
            report = run_oracle(program.source, outputs=program.outputs,
                                lint=True, audit=True)
            assert report.ok, report.describe()
