"""Permanent regression coverage: every reproducer in
``tests/fuzz_corpus/`` must oracle cleanly forever."""

from pathlib import Path

import pytest

from repro.fuzz.oracle import run_oracle
from repro.fuzz.shrink import read_reproducer_outputs

CORPUS = Path(__file__).resolve().parent.parent / "fuzz_corpus"
FILES = sorted(CORPUS.glob("*.m"))


def test_corpus_directory_exists():
    assert CORPUS.is_dir()
    assert (CORPUS / "README.md").exists()


def test_corpus_nonempty():
    assert FILES, "fuzz corpus must carry at least the seeded programs"


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_reproducer_oracles_clean(path):
    source = path.read_text()
    outputs = read_reproducer_outputs(path)
    report = run_oracle(source, outputs=outputs)
    assert report.ok, report.describe()
