"""Image filtering scenario: convolution + thresholding.

Two image-processing loops from the corpus, showing the vectorizer's
behaviour on imperfectly vectorizable code:

* ``convolution.m`` — a 3×3 convolution written as a quadruple loop.
  The two pixel loops vectorize into one accumulating array statement;
  the two (tiny) kernel loops stay sequential around it — exactly how a
  performance-minded MATLAB programmer writes convolution by hand.
* ``threshold.m`` — elementwise comparison against a threshold, which
  collapses to a single comparison over the whole image.

Run with::

    python examples/image_filtering.py
"""

import time

import numpy as np

from repro import vectorize_source
from repro.bench.workloads import workload
from repro.mlang.parser import parse
from repro.runtime.interp import Interpreter
from repro.runtime.values import values_equal


def run_timed(program, env):
    workspace = {k: (v.copy(order="F") if isinstance(v, np.ndarray) else v)
                 for k, v in env.items()}
    start = time.perf_counter()
    out = Interpreter(seed=0).run(program, env=workspace)
    return out, time.perf_counter() - start


def demo(name: str) -> None:
    w = workload(name)
    source = w.source()
    result = vectorize_source(source)
    print("=" * 64)
    print(f"{name}")
    print("--- vectorized -------------------------------")
    print(result.source.strip())

    env = w.env(scale="default")
    base, t_loop = run_timed(parse(source), env)
    vect, t_vect = run_timed(result.program, env)
    for output in w.outputs:
        assert values_equal(base[output], vect[output])
    print(f"--- loop {t_loop:.4f} s  |  vectorized {t_vect:.4f} s  "
          f"({t_loop / t_vect:.0f}x), outputs match ✓\n")


def main() -> None:
    demo("convolution")
    demo("threshold")


if __name__ == "__main__":
    main()
