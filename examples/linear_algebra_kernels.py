"""The Menon & Pingali reduction kernels (Figure 5 / Table 3).

Three classic loop nests — a triangular forward-substitution update, a
quadratic form, and a quadruple nest — all additive reductions the
vectorizer turns into matrix algebra.  The script prints each
transformation and regenerates the Table 3 rows at a configurable scale.

Run with::

    python examples/linear_algebra_kernels.py [--paper-scale]

(--paper-scale uses the paper's problem sizes; expect the loop versions
to take minutes under the tree-walking baseline.)
"""

import argparse

from repro import vectorize_source
from repro.bench.harness import format_table, measure
from repro.bench.workloads import workload

KERNELS = ["triangular-update", "quadratic-form", "quad-nest"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's settings (slow baseline!)")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()
    scale = "paper" if args.paper_scale else "default"

    for name in KERNELS:
        w = workload(name)
        print("=" * 64)
        print(f"{name}  (paper experiment: {w.experiment})")
        print("--- input loops ------------------------------")
        print(w.source().strip())
        print("--- vectorized -------------------------------")
        print(vectorize_source(w.source()).source.strip())
        print()

    print("=" * 64)
    measurements = [measure(workload(name), scale=scale,
                            repeats=args.repeats) for name in KERNELS]
    print(format_table(
        measurements,
        title="Table 3 (reproduced; sizes scaled — see EXPERIMENTS.md)"))


if __name__ == "__main__":
    main()
