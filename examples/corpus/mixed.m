% Mixed loop: one statement vectorizes, the recurrence stays.
%! a(1,*) b(1,*) x(1,*) n(1)
a(1) = 0;
for i=2:n
  a(i) = a(i-1) + 1;
  b(i) = x(i)*3;
end
