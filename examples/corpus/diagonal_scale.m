% Table 2 pattern 3: diagonal access via column-major linear indexing.
%! a(1,*) A(*,*) b(1,*) n(1)
for i=1:n
  a(i) = A(i,i)*b(i);
end
