% Pointwise scale-and-shift over a vector (simplest vectorizable loop).
%! x(*,1) y(*,1) n(1)
for i=1:n
  y(i) = 2*x(i) + 1;
end
