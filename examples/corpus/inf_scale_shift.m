% Classic scale-and-shift, colon-initialized.
%! x(1,*) y(1,*) n(1)
n = 12;
x = 1:12;
y = zeros(1, 12);
for i=1:n
  y(i) = 2*x(i) + 1;
end
