% Row/column broadcast into a matrix, shapes inferred.
%! A(*,*) u(*,1) v(1,*) m(1) n(1)
m = 3;
n = 4;
u = [2; 4; 6];
v = linspace(0, 1, 4);
A = zeros(3, 4);
for i=1:m
  for j=1:n
    A(i,j) = u(i) + v(j);
  end
end
