% Row vector added to column vector elementwise (needs a transpose).
%! x(*,1) y(1,*) z(*,1) n(1)
for i=1:n
  z(i) = x(i) + y(i);
end
