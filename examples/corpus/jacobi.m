% Jacobi relaxation: the time loop carries a true dependence and stays
% sequential; the interior-point double loop vectorizes each sweep.
%! U(*,*) Uold(*,*) steps(1)
for t=1:steps
  Uold = U;
  for i=2:size(U,1)-1
    for j=2:size(U,2)-1
      U(i,j) = 0.25*(Uold(i-1,j)+Uold(i+1,j)+Uold(i,j-1)+Uold(i,j+1));
    end
  end
end
