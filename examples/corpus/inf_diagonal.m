% Diagonal gather (Table 2 pattern 3) from an eye-built matrix.
%! A(*,*) d(1,*) n(1)
n = 5;
A = eye(5) * 3;
d = zeros(1, 5);
for i=1:n
  d(i) = A(i,i) + 1;
end
