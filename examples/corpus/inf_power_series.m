% Pointwise math over an inferred column vector.
%! x(*,1) y(*,1) n(1)
n = 6;
x = [0.1; 0.2; 0.3; 0.4; 0.5; 0.6];
y = zeros(6, 1);
for i=1:n
  y(i) = exp(-x(i)^2/2) + cos(x(i))*0.25;
end
