% Matrix-vector product written as a double loop (reduction via matmul).
%! y(*,1) A(*,*) x(*,1) n(1) m(1)
for i=1:n
  for k=1:m
    y(i) = y(i) + A(i,k)*x(k);
  end
end
