% Table 2 pattern 2: column vector broadcast across a matrix.
%! A(*,*) B(*,*) C(*,1) m(1) n(1)
for i=1:m
  for j=1:n
    A(i,j) = B(i,j) + C(i);
  end
end
