% Non-unit stride over an inferred row vector.
%! x(1,*) z(1,*) n(1)
n = 10;
x = linspace(1, 10, 10);
z = zeros(1, 10);
for i=2:2:n
  z(i) = x(i) * 0.5;
end
