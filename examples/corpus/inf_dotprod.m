% Per-column dot products; matrix shapes inferred from ones().
%! X(*,*) Y(*,*) a(1,*) n(1)
n = 4;
X = ones(4, 3) * 0.5;
Y = ones(3, 4) * 2;
a = zeros(1, 4);
for i=1:n
  a(i) = X(i,:) * Y(:,i);
end
