% Column vectors from literal matrices; z = c .* x elementwise.
%! x(*,1) z(*,1) c(1) n(1)
n = 5;
c = 0.5;
x = [1; 2; 3; 4; 5];
z = zeros(5, 1);
for i=1:n
  z(i) = c * x(i);
end
