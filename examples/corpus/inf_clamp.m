% Clamp with two-argument min/max; colon-range input.
%! x(1,*) y(1,*) lo(1) hi(1) n(1)
n = 9;
lo = 2;
hi = 6;
x = 0:8;
y = zeros(1, 9);
for i=1:n
  y(i) = min(max(x(i), lo), hi);
end
