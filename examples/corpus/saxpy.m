% SAXPY: z = a*x + y.
%! x(*,1) y(*,1) z(*,1) a(1) n(1)
for i=1:n
  z(i) = a*x(i) + y(i);
end
