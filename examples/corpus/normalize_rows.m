% Scale each row of a matrix by a per-row factor (broadcast pattern).
%! A(*,*) B(*,*) w(*,1) m(1) n(1)
for i=1:m
  for j=1:n
    B(i,j) = A(i,j) .* w(i);
  end
end
