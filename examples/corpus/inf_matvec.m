% Accumulating matrix-vector product, shapes all inferred.
%! A(*,*) x(*,1) y(*,1) n(1) m(1)
n = 4;
m = 3;
A = ones(4, 3) * 0.25;
x = [1; 2; 3];
y = zeros(4, 1);
for i=1:n
  for j=1:m
    y(i) = y(i) + A(i,j) * x(j);
  end
end
