% FIR filter (1-D convolution): tap loop sequential, signal loop
% vectorized into one accumulating shifted-slice statement per tap.
%! x(*,1) y(*,1) h(*,1) taps(1)
for k=1:taps
  for i=1:size(x,1)-taps+1
    y(i) = y(i) + h(k)*x(i+k-1);
  end
end
