% Interprocedural: the call's result shape feeds the loop.
function y = scaleadd(x, c)
y = x .* c + 1;
end
n = 8;
x = linspace(0, 7, 8);
w = scaleadd(x, 0.5);
z = zeros(1, 8);
for i=1:n
  z(i) = w(i) + x(i);
end
