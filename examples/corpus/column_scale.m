% Column scaling: each column multiplied by a per-column factor
% (the scale-broadcast pattern over a data extent).
%! A(*,*) B(*,*) c(*,1) n(1)
for j=1:n
  A(:,j) = B(:,j)*c(j);
end
