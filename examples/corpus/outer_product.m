% Outer product accumulation written elementwise.
%! P(*,*) u(*,1) v(1,*) m(1) n(1)
for i=1:m
  for j=1:n
    P(i,j) = u(i)*v(j);
  end
end
