% Menon & Pingali example 2: phi(k) += x'*A*f.
%! phi(*,1) a(*,*) x_se(*,1) f(*,1) k(1) N(1)
for i=1:N,
  for j=1:N
    phi(k)=phi(k)+a(i,j)*x_se(i)*f(j);
  end
end
