% Pointwise comparison: binarize an image against a threshold.
%! im(*,*) bw(*,*) t(1)
for i=1:size(im,1)
  for j=1:size(im,2)
    bw(i,j) = im(i,j) > t;
  end
end
