% First-order recurrence: must stay sequential (loop-carried flow dep).
%! a(1,*) n(1)
a(1) = 1;
for i=2:n
  a(i) = a(i-1)*1.1 + 1;
end
