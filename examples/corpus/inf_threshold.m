% Logical mask over an inferred matrix.
%! A(*,*) bw(*,*) t(1) m(1) n(1)
m = 4;
n = 5;
t = 0.5;
A = ones(4, 5) * 0.75;
bw = zeros(4, 5);
for i=1:m
  for j=1:n
    bw(i,j) = A(i,j) > t;
  end
end
