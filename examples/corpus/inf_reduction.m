% Scalar additive reduction over an inferred row vector.
%! x(1,*) s(1) n(1)
n = 7;
x = linspace(0, 3, 7);
s = 0;
for i=1:n
  s = s + x(i) * x(i);
end
