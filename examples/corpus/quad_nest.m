% Menon & Pingali example 3: quadruple nest collapsing to matrix algebra.
%! y(*,1) x(*,1) A(*,*) B(*,*) C(*,*) n(1)
for i=1:n,
  for j=1:n,
    for k=1:n,
      for l=1:n
        y(i)=y(i)+x(j)*A(i,k)*B(l,k)*C(l,j);
      end
    end
  end
end
