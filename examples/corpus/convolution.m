% 3x3 convolution (valid region): the pixel loops vectorize, the small
% kernel loops stay sequential around one accumulating array statement.
%! im(*,*) out(*,*) k(*,*)
for di=1:3
  for dj=1:3
    for i=1:size(im,1)-2
      for j=1:size(im,2)-2
        out(i,j) = out(i,j) + im(i+di-1, j+dj-1)*k(di,dj);
      end
    end
  end
end
