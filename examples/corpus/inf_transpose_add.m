% Transposed read feeding a pointwise 2-nest.
%! A(*,*) B(*,*) C(*,*) m(1) n(1)
m = 3;
n = 4;
B = ones(4, 3) * 2;
C = ones(3, 4) * 5;
A = zeros(3, 4);
for i=1:m
  for j=1:n
    A(i,j) = B(j,i) + C(i,j);
  end
end
