% Table 2 pattern 1: per-row dot products.
%! a(1,*) X(*,*) Y(*,*) n(1)
for i=1:n
  a(i) = X(i,:)*Y(:,i);
end
