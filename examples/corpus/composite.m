% Figure 4 (scaled): diagonal accesses, dot products, matmul, repmat.
%! A(*,*) B(*,*) C(*,*) D(*,*) a(1,*) ind(1,*)
ind=1:15;
for i=2:2:30,
  B(i,1)=D(i,i)*A(i,i)+C(i,:)*D(:,i);
  for j=3:2:31,
    A(i,j)=B(i,ind)*C(ind,j)+D(j,i)'-a(2*i-1);
  end
end
