% Clamp values into [lo, hi] using pointwise min/max builtins.
%! x(*,1) y(*,1) lo(1) hi(1) n(1)
for i=1:n
  y(i) = min(max(x(i), lo), hi);
end
