% Section 2.2's worked example: B accessed transposed.
%! A(*,*) B(*,*) C(*,*) m(1) n(1)
for i=1:m
  for j=1:n
    A(i,j) = B(j,i) + C(i,j);
  end
end
