% Pointwise math functions and powers.
%! x(*,1) y(*,1) n(1)
for i=1:n
  y(i) = exp(-x(i)^2/2) + cos(x(i))*0.25;
end
