% Figure 3: histogram equalization of an 8-bit image.
%! im(*,*) im2(*,*) heq(1,*) h(1,*)
h=hist(im(:),0:255);
heq=255*cumsum(h(:))/sum(h(:));
for i=1:size(im,1),
  for j=1:size(im,2),
    im2(i,j)=heq(im(i,j)+1);
  end
end
