% Mask-weighted combination of two inferred rows.
%! x(1,*) w(1,*) y(1,*) c(1) n(1)
n = 6;
c = 3;
x = linspace(1, 6, 6);
w = linspace(6, 1, 6);
y = zeros(1, 6);
for i=1:n
  y(i) = x(i).*(x(i) > c) + w(i).*(x(i) <= c);
end
