% Self-contained SAXPY; every shape is recoverable by inference.
%! x(1,*) y(1,*) z(1,*) a(1) n(1)
n = 8;
a = 1.5;
x = linspace(0, 1, 8);
y = linspace(1, 2, 8);
z = zeros(1, 8);
for i=1:n
  z(i) = a*x(i) + y(i);
end
