% Outer product from a literal column and an inferred row.
%! u(*,1) v(1,*) P(*,*) m(1) n(1)
m = 3;
n = 4;
u = [1; 2; 3];
v = linspace(1, 4, 4);
P = zeros(3, 4);
for i=1:m
  for j=1:n
    P(i,j) = u(i) * v(j);
  end
end
