% Menon & Pingali example 1: forward-substitution row update.
%! X(*,*) L(*,*) i(1) p(1)
for k=1:p,
  for j=1:(i-1),
    X(i,k)=X(i,k)-L(i,j)*X(j,k);
  end
end
