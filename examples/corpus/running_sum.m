% Scalar additive reduction.
%! s(1) x(*,1) n(1)
s = 0;
for i=1:n
  s = s + x(i)*x(i);
end
