"""Regenerate every table/figure of the paper's evaluation (§5).

Prints, in the paper's row format:

* Figure 3 — histogram equalization (whole-program and loop-only);
* Figure 4 — the composite example;
* Table 2  — the three pattern-database transformations;
* Table 3  — the Menon & Pingali kernels;
* the corpus sweep backing the "vectorized all applicable inputs" claim;
* the ablation matrix for the design-choice benchmarks.

Run with::

    python examples/reproduce_tables.py [--scale default|tiny|paper]

The default scale keeps the tree-walking baseline to a few seconds per
workload; EXPERIMENTS.md records one full run and compares shapes with
the paper's numbers.
"""

import argparse

from repro.bench.harness import ABLATIONS, format_table, measure
from repro.bench.workloads import WORKLOADS, workload


def section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="default",
                        choices=["tiny", "default", "paper"])
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    def scale_for(w):
        return args.scale if args.scale in w.scales else "default"

    section("Figure 3 — histogram equalization")
    m = measure(workload("histeq"), scale=scale_for(workload("histeq")),
                repeats=args.repeats)
    print(format_table([m]))
    print("paper: 0.178 s → 0.114 s (~1.56x whole program; ~4.6x for the "
          "loop portion — see benchmarks/bench_fig3_histeq.py)")

    section("Figure 4 — composite example")
    m = measure(workload("composite"), scale="default",
                repeats=args.repeats)
    print(format_table([m]))
    print("paper: ~25 s → ~0.5 s (~50x) at 1500x1500")

    section("Table 2 — pattern database")
    rows = [measure(workload(name), scale=scale_for(workload(name)),
                    repeats=args.repeats)
            for name in ("dot-products", "column-broadcast",
                         "diagonal-scale")]
    print(format_table(rows))

    section("Table 3 — Menon & Pingali examples")
    rows = [measure(workload(name), scale=scale_for(workload(name)),
                    repeats=args.repeats)
            for name in ("triangular-update", "quadratic-form",
                         "quad-nest")]
    print(format_table(rows))
    print("paper: ~17 (i=500,p=5000), ~14 (N=1000), ~5000 (n=40)")

    section("Corpus sweep (§5 prose)")
    rows = [measure(w, scale="tiny", repeats=1)
            for w in WORKLOADS.values()]
    print(format_table(rows))
    vectorized = sum(1 for r in rows if r.fully_vectorized)
    partial = sorted(r.name for r in rows if not r.fully_vectorized)
    print(f"\nfully vectorized: {vectorized}/{len(rows)}; kept (partly) "
          f"sequential by design: {', '.join(partial)}; "
          f"all outputs equal: {all(r.outputs_equal for r in rows)}")

    section("Ablations (design choices)")
    cases = [("diagonal-scale", "no-patterns"),
             ("transpose-add", "no-transposes"),
             ("matvec", "no-reductions"),
             ("quad-nest", "no-regroup"),
             ("power-series", "no-promotion")]
    print(f"{'workload':<20} {'ablation':<16} {'still vectorizes?':<18} "
          f"{'speedup vs loop'}")
    for name, variant in cases:
        m = measure(workload(name), scale="tiny", repeats=1,
                    options=ABLATIONS[variant])
        print(f"{name:<20} {variant:<16} "
              f"{'yes' if m.fully_vectorized else 'NO':<18} "
              f"{m.speedup:.1f}x")


if __name__ == "__main__":
    main()
