"""Figure 3 walkthrough: histogram equalization of an 8-bit image.

The paper's motivating image-processing example: a double loop mapping
every pixel through a lookup table collapses to a single array-indexing
statement.  This script vectorizes the corpus program, verifies the
two versions pixel-for-pixel, and times them at a few image sizes so
you can watch the speedup grow with problem size.

Run with::

    python examples/histogram_equalization.py
"""

import time

import numpy as np

from repro import vectorize_source
from repro.bench.workloads import workload
from repro.mlang.parser import parse
from repro.runtime.interp import Interpreter
from repro.runtime.values import as_array, values_equal


def run(program, env):
    workspace = {k: (v.copy(order="F") if isinstance(v, np.ndarray) else v)
                 for k, v in env.items()}
    start = time.perf_counter()
    out = Interpreter(seed=0).run(program, env=workspace)
    return out, time.perf_counter() - start


def main() -> None:
    histeq = workload("histeq")
    source = histeq.source()
    result = vectorize_source(source)

    print("--- vectorized program -----------------------")
    print(result.source.strip())
    print()

    original = parse(source)
    vectorized = result.program

    print(f"{'image':>10} {'loop (s)':>10} {'vectorized (s)':>15} "
          f"{'speedup':>9}")
    for rows, cols in [(20, 15), (40, 30), (80, 60), (120, 90)]:
        rng = np.random.default_rng(1)
        env = {"im": np.asfortranarray(
            np.floor(rng.random((rows, cols)) * 256))}
        loop_out, loop_time = run(original, env)
        vect_out, vect_time = run(vectorized, env)
        assert values_equal(loop_out["im2"], vect_out["im2"])
        print(f"{rows}x{cols:<6} {loop_time:>10.4f} {vect_time:>15.5f} "
              f"{loop_time / vect_time:>8.1f}x")

    # Show a corner of the equalized image for the curious.
    sample = as_array(vect_out["im2"])[:4, :6]
    print("\nequalized image corner:\n", np.round(sample, 1))


if __name__ == "__main__":
    main()
