"""Extending the pattern database (§3 Figure 2, §7).

The paper ships patterns as dynamically loaded libraries and suggests
(§7) treating *function calls* "in the same manner as matrix accesses".
Here a user pattern is a few lines of Python: we teach the vectorizer
to handle

    for i=1:n
      d(i) = norm(X(i,:));
    end

``norm`` is not a pointwise function, so the stock checker rejects any
call whose argument carries a loop symbol — the loop stays sequential.
The registered :class:`CallPattern` rewrites the per-row norm into
``sqrt(sum(X'.^2, 1))``, a single statement over the whole matrix.

Run with::

    python examples/custom_pattern.py
"""

import numpy as np

from repro import run_source, vectorize_source
from repro.dims.abstract import ONE, STAR
from repro.mlang.ast_nodes import Apply, BinOp, Transpose, call, num
from repro.patterns.base import CallPattern, R1, template
from repro.patterns.builtin import default_database
from repro.runtime.values import values_equal

SOURCE = """
%! d(1,*) X(*,*) n(1)
for i=1:n
  d(i) = norm(X(i,:));
end
"""


def per_row_norm(node: Apply, bindings, ctx):
    """norm(X(i,:))  →  sqrt(sum(X(i,:)'.^2, 1)).

    After index substitution the argument is the n×k row block; its
    transpose is k×n, squaring elementwise and summing each column
    leaves the squared norm of row i in column i.
    """
    squared = BinOp(".^", Transpose(node.args[0]), num(2))
    return call("sqrt", call("sum", squared, num(1)))


ROW_NORMS = CallPattern(
    name="user-row-norms",
    function="norm",
    args=(template(R1, STAR),),   # one argument shaped (r_i, *)
    out=template(ONE, R1),        # one norm per row, laid out as a row
    transform=per_row_norm,
)


def main() -> None:
    stock = vectorize_source(SOURCE)
    print("--- stock database ---------------------------")
    print(stock.source.strip())
    print("(the loop survives: 'norm' is not pointwise)\n")

    db = default_database()
    db.register(ROW_NORMS)
    extended = vectorize_source(SOURCE, db=db)
    print("--- with the user call-pattern ----------------")
    print(extended.source.strip())
    assert "for " not in extended.source

    rng = np.random.default_rng(0)
    env = {"X": np.asfortranarray(rng.random((6, 4))), "n": 6.0}
    loop_out = run_source(SOURCE, env=dict(env))
    vect_out = run_source(extended.source, env=dict(env))
    assert values_equal(loop_out["d"], vect_out["d"])
    used = extended.report.loops[0].outcomes[0].patterns
    print(f"\noutputs match ✓  (patterns used: {used})")


if __name__ == "__main__":
    main()
