"""Quickstart: vectorize a loop-based MATLAB snippet and run both versions.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import run_source, vectorize_source
from repro.runtime.values import as_array

LOOP_CODE = """
%! x(*,1) y(1,*) z(*,1) n(1)
for i=1:n
  z(i) = x(i) + y(i);
end
"""


def main() -> None:
    # 1. Vectorize: the dimension checker notices y is a ROW vector while
    #    x and z are columns, and inserts the transpose the paper's §2.2
    #    rules require.
    result = vectorize_source(LOOP_CODE)
    print("--- original ---------------------------------")
    print(LOOP_CODE.strip())
    print("--- vectorized -------------------------------")
    print(result.source.strip())
    print("--- report -----------------------------------")
    print(result.report.summary())

    # 2. Execute both under the bundled MATLAB runtime and compare.
    n = 6
    env = {
        "x": np.asfortranarray(np.arange(1.0, n + 1).reshape(n, 1)),
        "y": np.asfortranarray(np.arange(10.0, 10 + n).reshape(1, n)),
        "n": float(n),
    }
    loop_out = run_source(LOOP_CODE, env=dict(env))
    vect_out = run_source(result.source, env=dict(env))

    print("--- outputs ----------------------------------")
    print("loop      z':", as_array(loop_out["z"]).ravel())
    print("vectorized z':", as_array(vect_out["z"]).ravel())
    assert np.allclose(as_array(loop_out["z"]), as_array(vect_out["z"]))
    print("outputs match ✓")


if __name__ == "__main__":
    main()
