"""Vectorize MATLAB, then compile it to Python/NumPy.

The full extension pipeline: the paper's vectorizer emits array-based
MATLAB; the NumPy backend then compiles it to Python source whose array
statements are straight NumPy calls.  The script prints the generated
Python and times three execution modes.

Run with::

    python examples/transpile_to_numpy.py
"""

import time

import numpy as np

from repro import vectorize_source
from repro.bench.workloads import workload
from repro.mlang.parser import parse
from repro.runtime.interp import Interpreter
from repro.runtime.values import values_equal
from repro.translate.numpy_backend import compile_source, translate_source


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - start


def copy_env(env):
    return {k: (v.copy(order="F") if isinstance(v, np.ndarray) else v)
            for k, v in env.items()}


def main() -> None:
    w = workload("matvec")
    source = w.source()
    vectorized = vectorize_source(source).source
    env = w.env(scale="default")

    unit = translate_source(vectorized, extra_variables=env.keys())
    print("--- generated Python for the vectorized program ---")
    print(unit.python_source)

    loop_interp, t_interp = timed(
        lambda: Interpreter(seed=0).run(parse(source), env=copy_env(env)))
    loop_compiled_fn = compile_source(source, extra_variables=env.keys())
    loop_compiled, t_loop_c = timed(loop_compiled_fn, env=copy_env(env),
                                    seed=0)
    vect_compiled_fn = unit.compile()
    vect_compiled, t_vect_c = timed(vect_compiled_fn, env=copy_env(env),
                                    seed=0)

    for out in (loop_compiled, vect_compiled):
        for name in w.outputs:
            assert values_equal(loop_interp[name], out[name])

    print("--- timings (matvec, n=80, m=70) -------------------")
    print(f"loop, interpreted      : {t_interp:.4f} s")
    print(f"loop, compiled to py   : {t_loop_c:.4f} s "
          f"({t_interp / t_loop_c:.1f}x)")
    print(f"vectorized, compiled   : {t_vect_c:.5f} s "
          f"({t_interp / t_vect_c:.0f}x)")


if __name__ == "__main__":
    main()
