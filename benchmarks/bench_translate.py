"""Extension benchmark — the MATLAB → NumPy transpiler.

Three execution modes of the same workload:

1. loop program, tree-walking interpreter (the MATLAB-analog baseline);
2. loop program, compiled to Python (interpretive dispatch removed);
3. *vectorized* program, compiled to Python (the full pipeline:
   dimension-abstraction vectorizer + NumPy backend).

The expected shape: 2 beats 1 by a constant factor; 3 beats both and
scales with problem size.
"""

import pytest

from repro import vectorize_source
from repro.mlang.parser import parse
from repro.runtime.interp import Interpreter
from repro.translate.numpy_backend import compile_source
from repro.bench.workloads import WORKLOADS

from conftest import ROUNDS, copy_env

CASES = ["histeq", "matvec", "quad-nest"]


@pytest.fixture(scope="module", params=CASES)
def translate_case(request):
    workload = WORKLOADS[request.param]
    source = workload.source()
    env = workload.env(scale="default")
    vectorized = vectorize_source(source).source
    return (
        request.param,
        parse(source),
        compile_source(source, extra_variables=env.keys()),
        compile_source(vectorized, extra_variables=env.keys()),
        env,
    )


@pytest.mark.benchmark(group="translate")
def bench_loop_interpreted(benchmark, translate_case):
    name, program, _, _, env = translate_case
    benchmark.group = f"translate-{name}"
    benchmark.pedantic(
        lambda: Interpreter(seed=0).run(program, env=copy_env(env)),
        rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="translate")
def bench_loop_compiled(benchmark, translate_case):
    name, _, compiled_loop, _, env = translate_case
    benchmark.group = f"translate-{name}"
    benchmark.pedantic(lambda: compiled_loop(env=copy_env(env), seed=0),
                       rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="translate")
def bench_vectorized_compiled(benchmark, translate_case):
    name, _, _, compiled_vect, env = translate_case
    benchmark.group = f"translate-{name}"
    benchmark.pedantic(lambda: compiled_vect(env=copy_env(env), seed=0),
                       rounds=ROUNDS, iterations=1)
