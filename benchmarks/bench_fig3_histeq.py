"""Figure 3 — histogram equalization.

Paper (800×600 uint8, MATLAB 7.2, 3.0 GHz Pentium D):
whole program 0.178 s → 0.114 s (≈1.56×); loop portion only
0.0814 s → 0.0176 s (≈4.6×).

We run a scaled image (the baseline is a Python tree-walker); the shape
to reproduce is: vectorized wins, and the loop-only speedup is much
larger than the whole-program speedup because the (already array-based)
histogram/cumsum preamble is common to both versions.
"""

import pytest

from conftest import Prepared, run_pair


@pytest.fixture(scope="module")
def histeq():
    return Prepared("histeq", scale="default")


@pytest.mark.benchmark(group="fig3-whole-program")
def bench_whole_loop_version(benchmark, histeq):
    run_pair(benchmark, histeq, "loop")


@pytest.mark.benchmark(group="fig3-whole-program")
def bench_whole_vectorized(benchmark, histeq):
    run_pair(benchmark, histeq, "vectorized")


@pytest.fixture(scope="module")
def histeq_loop_only(histeq):
    return histeq.loop_only_pair()


@pytest.mark.benchmark(group="fig3-loop-only")
def bench_loop_only_loop_version(benchmark, histeq_loop_only):
    run_orig, _ = histeq_loop_only
    benchmark.pedantic(run_orig, rounds=3, iterations=1)


@pytest.mark.benchmark(group="fig3-loop-only")
def bench_loop_only_vectorized(benchmark, histeq_loop_only):
    _, run_vect = histeq_loop_only
    benchmark.pedantic(run_vect, rounds=3, iterations=1)
