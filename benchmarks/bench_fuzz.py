"""Fuzz-oracle throughput: programs/sec through the full differential
pipeline (generate → interpret → vectorize → interpret → NumPy ×2 →
compare).  Tracked so regressions in any stage show up as a rate drop."""

from repro.bench.fuzzbench import format_fuzz_row, measure_fuzz_throughput


def bench_fuzz_throughput(benchmark):
    result = benchmark.pedantic(
        measure_fuzz_throughput, kwargs={"n": 25, "seed": 0},
        rounds=2, iterations=1)
    assert result.mismatches == 0
    print()
    print(format_fuzz_row(result))
