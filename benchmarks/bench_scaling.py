"""Scaling sweep — §5: "The speedup is dependent on the chosen problem
size, but these results indicate the significant speedup possible on
large problems or deeply nested loops."

Benchmarks histogram equalization at growing image sizes and the
quadruple nest at growing n; the loop time should grow with the
iteration count while the vectorized time stays near-flat, so the
speedup ratio widens — the claim's shape.
"""

import numpy as np
import pytest

from repro import vectorize_source
from repro.mlang.parser import parse
from repro.runtime.interp import Interpreter
from repro.bench.workloads import WORKLOADS

from conftest import copy_env

HISTEQ_SIZES = [(20, 15), (40, 30), (80, 60)]
QUAD_SIZES = [4, 8, 12]


def _runner(program, env):
    return lambda: Interpreter(seed=0).run(program, env=copy_env(env))


@pytest.fixture(scope="module")
def histeq_programs():
    source = WORKLOADS["histeq"].source()
    return parse(source), vectorize_source(source).program


@pytest.mark.benchmark(group="scaling-histeq")
@pytest.mark.parametrize("size", HISTEQ_SIZES,
                         ids=[f"{r}x{c}" for r, c in HISTEQ_SIZES])
@pytest.mark.parametrize("which", ["loop", "vectorized"])
def bench_histeq_scaling(benchmark, histeq_programs, size, which):
    rows, cols = size
    benchmark.group = f"scaling-histeq-{rows}x{cols}"
    rng = np.random.default_rng(2)
    env = {"im": np.asfortranarray(np.floor(rng.random((rows, cols)) * 256))}
    program = histeq_programs[0] if which == "loop" else histeq_programs[1]
    benchmark.pedantic(_runner(program, env), rounds=2, iterations=1)


@pytest.fixture(scope="module")
def quad_programs():
    source = WORKLOADS["quad-nest"].source()
    return parse(source), vectorize_source(source).program


@pytest.mark.benchmark(group="scaling-quad-nest")
@pytest.mark.parametrize("n", QUAD_SIZES, ids=[f"n={n}" for n in QUAD_SIZES])
@pytest.mark.parametrize("which", ["loop", "vectorized"])
def bench_quad_nest_scaling(benchmark, quad_programs, n, which):
    benchmark.group = f"scaling-quad-nest-n{n}"
    env = WORKLOADS["quad-nest"].make_env(
        {"n": n}, np.random.default_rng(3))
    program = quad_programs[0] if which == "loop" else quad_programs[1]
    benchmark.pedantic(_runner(program, env), rounds=2, iterations=1)
