"""Table 2 — the three pattern-database transformations, timed.

The paper's Table 2 gives the loop and vector code; these benchmarks
measure each pair to confirm the transformations pay off: dot-product
rows, repmat column broadcast, and diagonal access via column-major
linear indexing.
"""

import pytest

from conftest import Prepared, run_pair


@pytest.fixture(scope="module")
def dot_products():
    return Prepared("dot-products", scale="default")


@pytest.fixture(scope="module")
def column_broadcast():
    return Prepared("column-broadcast", scale="default")


@pytest.fixture(scope="module")
def diagonal_scale():
    return Prepared("diagonal-scale", scale="default")


@pytest.mark.benchmark(group="table2-pattern1-dot")
def bench_dot_loop(benchmark, dot_products):
    run_pair(benchmark, dot_products, "loop")


@pytest.mark.benchmark(group="table2-pattern1-dot")
def bench_dot_vectorized(benchmark, dot_products):
    run_pair(benchmark, dot_products, "vectorized")


@pytest.mark.benchmark(group="table2-pattern2-repmat")
def bench_broadcast_loop(benchmark, column_broadcast):
    run_pair(benchmark, column_broadcast, "loop")


@pytest.mark.benchmark(group="table2-pattern2-repmat")
def bench_broadcast_vectorized(benchmark, column_broadcast):
    run_pair(benchmark, column_broadcast, "vectorized")


@pytest.mark.benchmark(group="table2-pattern3-diagonal")
def bench_diagonal_loop(benchmark, diagonal_scale):
    run_pair(benchmark, diagonal_scale, "loop")


@pytest.mark.benchmark(group="table2-pattern3-diagonal")
def bench_diagonal_vectorized(benchmark, diagonal_scale):
    run_pair(benchmark, diagonal_scale, "vectorized")
