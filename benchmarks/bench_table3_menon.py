"""Table 3 — the Menon & Pingali examples (Figure 5).

Paper settings and speedups (MATLAB 7.2, 3.0 GHz Pentium D):

====================  =================  ===========  ===========  =======
example               settings           input time   vect. time   speedup
====================  =================  ===========  ===========  =======
triangular update     i=500, p=5000      0.536 s      0.030 s      ~17
quadratic form        N=1000             0.174 s      0.012 s      ~14
quadruple nest        n=40               0.622 s      0.0001 s     ~5000
====================  =================  ===========  ===========  =======

Scaled settings here (tree-walker baseline): i=50/p=500, N=100, n=12.
The shape to reproduce: all three vectorize fully; speedups are large;
the quadruple nest's speedup dwarfs the others (loop work grows as n⁴
while the vector form is a handful of matrix products).
"""

import pytest

from conftest import Prepared, run_pair


@pytest.fixture(scope="module")
def triangular():
    return Prepared("triangular-update", scale="default")


@pytest.fixture(scope="module")
def quadratic():
    return Prepared("quadratic-form", scale="default")


@pytest.fixture(scope="module")
def quad_nest():
    return Prepared("quad-nest", scale="default")


@pytest.mark.benchmark(group="table3-row1-triangular")
def bench_triangular_loop(benchmark, triangular):
    run_pair(benchmark, triangular, "loop")


@pytest.mark.benchmark(group="table3-row1-triangular")
def bench_triangular_vectorized(benchmark, triangular):
    run_pair(benchmark, triangular, "vectorized")


@pytest.mark.benchmark(group="table3-row2-quadratic")
def bench_quadratic_loop(benchmark, quadratic):
    run_pair(benchmark, quadratic, "loop")


@pytest.mark.benchmark(group="table3-row2-quadratic")
def bench_quadratic_vectorized(benchmark, quadratic):
    run_pair(benchmark, quadratic, "vectorized")


@pytest.mark.benchmark(group="table3-row3-quad-nest")
def bench_quad_nest_loop(benchmark, quad_nest):
    run_pair(benchmark, quad_nest, "loop")


@pytest.mark.benchmark(group="table3-row3-quad-nest")
def bench_quad_nest_vectorized(benchmark, quad_nest):
    run_pair(benchmark, quad_nest, "vectorized")
