"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation disables one checker capability and re-runs a workload
that depends on it.  The interesting readout is the *vectorized* time:
with the capability disabled the "vectorized" program degenerates to
the original loop, so the pair quantifies what each mechanism buys.

* pattern database off  → diagonal/dot/broadcast workloads stay loops;
* transpose insertion off → the §2.2 example stays a loop;
* reductions off        → Menon-style accumulations stay loops;
* product regrouping off → the quadruple nest stays a loop.
"""

import pytest

from repro import vectorize_source
from repro.mlang.parser import parse
from repro.runtime.interp import Interpreter
from repro.vectorizer.checker import CheckOptions
from repro.bench.workloads import WORKLOADS

from conftest import ROUNDS, copy_env

CASES = [
    ("diagonal-scale", "patterns", CheckOptions(patterns=False)),
    ("dot-products", "patterns", CheckOptions(patterns=False)),
    ("transpose-add", "transposes", CheckOptions(transposes=False)),
    ("matvec", "reductions", CheckOptions(reductions=False)),
    ("quad-nest", "regroup", CheckOptions(product_regroup=False)),
    ("power-series", "promotion", CheckOptions(promotion=False)),
]


@pytest.fixture(scope="module", params=CASES,
                ids=[f"{w}-sans-{f}" for w, f, _ in CASES])
def ablation_case(request):
    name, feature, options = request.param
    workload = WORKLOADS[name]
    source = workload.source()
    env = workload.env(scale="default")

    full = vectorize_source(source)
    ablated = vectorize_source(source, options=options)
    # The ablated feature must actually matter for this workload:
    assert "for " not in full.source
    assert "for " in ablated.source
    return name, feature, parse(full.source), ablated.program, env


def _timer(program, env):
    def run():
        return Interpreter(seed=0).run(program, env=copy_env(env))

    return run


@pytest.mark.benchmark(group="ablation")
def bench_ablation_full(benchmark, ablation_case):
    name, feature, full, _, env = ablation_case
    benchmark.group = f"ablation-{name}-sans-{feature}"
    benchmark.pedantic(_timer(full, env), rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="ablation")
def bench_ablation_disabled(benchmark, ablation_case):
    name, feature, _, ablated, env = ablation_case
    benchmark.group = f"ablation-{name}-sans-{feature}"
    benchmark.pedantic(_timer(ablated, env), rounds=ROUNDS, iterations=1)
