"""§5 corpus sweep — "the dimensional analysis approach was capable of
vectorizing all the inputs for which it was applicable."

Benchmarks the remaining corpus programs (those not already covered by
the per-figure benchmarks): simple pointwise loops, transposition,
reductions, comparisons, and the deliberately non-vectorizable
recurrence (where both sides run the same loop — speedup ≈ 1).
"""

import pytest

from conftest import Prepared, run_pair

PAIRS = [
    "scale-shift",
    "saxpy",
    "row-col-add",
    "transpose-add",
    "running-sum",
    "matvec",
    "threshold",
    "normalize-rows",
    "outer-product",
    "power-series",
    "mixed",
    "recurrence",
]


@pytest.fixture(scope="module", params=PAIRS)
def corpus_case(request):
    return Prepared(request.param, scale="default")


@pytest.mark.benchmark(group="corpus")
def bench_corpus_loop(benchmark, corpus_case):
    benchmark.group = f"corpus-{corpus_case.workload.name}"
    run_pair(benchmark, corpus_case, "loop")


@pytest.mark.benchmark(group="corpus")
def bench_corpus_vectorized(benchmark, corpus_case):
    benchmark.group = f"corpus-{corpus_case.workload.name}"
    run_pair(benchmark, corpus_case, "vectorized")
