"""Compilation-service benchmarks: cache cold-vs-warm speedup.

The batch-throughput half lives in ``repro.bench.servicebench`` and is
run via ``python -m repro.bench.servicebench`` (it spawns fresh
interpreters per configuration, which pytest-benchmark's in-process
rounds cannot express)."""

from repro.bench.servicebench import format_service_rows, measure_cache_speedup


def bench_cache_cold_vs_warm(benchmark):
    result = benchmark.pedantic(
        measure_cache_speedup, kwargs={"cold_runs": 3, "warm_runs": 20},
        rounds=2, iterations=1)
    assert result["speedup"] >= 10.0
    print()
    print(format_service_rows({"benchmark": "service", "cache": result,
                               "batch": {"files": 0, "cpu_count": None,
                                         "per_file_processes_s": 0.0,
                                         "batch_speedup_vs_per_file": 0.0}}))
