"""Shared fixtures and helpers for the benchmark suite.

Every benchmark follows the paper's protocol (§5): run the original
loop program and the automatically vectorized program on identical
inputs under the same MATLAB runtime, after verifying the outputs
match.  ``benchmark.pedantic`` with a few rounds keeps total wall time
reasonable (the baseline interpreter is a Python tree walker, much
slower than MATLAB's C interpreter — see EXPERIMENTS.md for the
scaling discussion).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import vectorize_source
from repro.mlang.ast_nodes import Assign, For, Program
from repro.mlang.parser import parse
from repro.runtime.interp import Interpreter
from repro.runtime.values import values_equal
from repro.bench.workloads import WORKLOADS

ROUNDS = 3


def copy_env(env: dict) -> dict:
    return {k: (v.copy(order="F") if isinstance(v, np.ndarray) else v)
            for k, v in env.items()}


class Prepared:
    """A workload prepared for benchmarking: parsed programs + inputs."""

    def __init__(self, name: str, scale: str = "default", seed: int = 12345):
        self.workload = WORKLOADS[name]
        self.source = self.workload.source()
        self.result = vectorize_source(self.source)
        self.original = parse(self.source)
        self.vectorized = self.result.program
        self.env = self.workload.env(scale=scale, seed=seed)
        self._verify()

    def _verify(self) -> None:
        base = Interpreter(seed=0).run(self.original, env=copy_env(self.env))
        vect = Interpreter(seed=0).run(self.vectorized,
                                       env=copy_env(self.env))
        for output in self.workload.outputs:
            assert values_equal(base[output], vect[output]), (
                f"{self.workload.name}: outputs diverge — benchmark void")

    def run_original(self):
        return Interpreter(seed=0).run(self.original,
                                       env=copy_env(self.env))

    def run_vectorized(self):
        return Interpreter(seed=0).run(self.vectorized,
                                       env=copy_env(self.env))

    # -- loop-only variants (Figure 3 reports both whole-program and
    # loop-only timings) ---------------------------------------------------

    def loop_only_pair(self):
        """(run_original_loops, run_vectorized_stmts) with the preamble
        pre-executed into the environment."""
        pre_orig, body_orig = _split_program(self.original)
        pre_vect, body_vect = _split_program(self.vectorized)
        env_orig = Interpreter(seed=0).run(Program(pre_orig),
                                           env=copy_env(self.env))
        env_vect = Interpreter(seed=0).run(Program(pre_vect),
                                           env=copy_env(self.env))

        def run_orig():
            return Interpreter(seed=0).run(Program(body_orig),
                                           env=copy_env(env_orig))

        def run_vect():
            return Interpreter(seed=0).run(Program(body_vect),
                                           env=copy_env(env_vect))

        return run_orig, run_vect


def _split_program(program: Program):
    """Split a program at the first loop (or first vectorized statement
    that replaced a loop): everything before is preamble."""
    body = [s for s in program.body]
    for k, stmt in enumerate(body):
        if isinstance(stmt, For):
            return body[:k], body[k:]
    # Fully vectorized program: the statements that replaced the loops
    # are the trailing ones; the preamble is everything before them.
    return body[:-1], body[-1:]


@pytest.fixture(scope="module")
def prepared_cache():
    cache: dict = {}

    def get(name: str, scale: str = "default") -> Prepared:
        key = (name, scale)
        if key not in cache:
            cache[key] = Prepared(name, scale=scale)
        return cache[key]

    return get


def run_pair(benchmark, prepared: Prepared, which: str):
    """Run one side of a loop/vectorized pair under pytest-benchmark."""
    target = (prepared.run_original if which == "loop"
              else prepared.run_vectorized)
    benchmark.pedantic(target, rounds=ROUNDS, iterations=1)
