"""Figure 4 — the composite example (≈50× in the paper: 25 s → 0.5 s).

The program combines several transformations in one imperfect nest:
diagonal accesses, a dot-product pattern, loop normalization of strided
ranges (2:2:1500), native matrix multiplication, a transposed read, and
a repmat broadcast.  Matrices are scaled from 1500² to 32² for the
tree-walker baseline; both statements must still vectorize fully.
"""

import pytest

from conftest import Prepared, run_pair


@pytest.fixture(scope="module")
def composite():
    prepared = Prepared("composite", scale="default")
    assert "for " not in prepared.result.source
    return prepared


@pytest.mark.benchmark(group="fig4-composite")
def bench_composite_loop(benchmark, composite):
    run_pair(benchmark, composite, "loop")


@pytest.mark.benchmark(group="fig4-composite")
def bench_composite_vectorized(benchmark, composite):
    run_pair(benchmark, composite, "vectorized")
