"""Compilation service: caching, batch compilation, and serving.

The scaling layer over the paper's one-shot pipeline:

* :mod:`repro.service.fingerprint` — pipeline fingerprint and
  content-addressed cache keys;
* :mod:`repro.service.cache` — two-tier (LRU memory + atomic disk)
  artifact cache;
* :mod:`repro.service.shardedcache` — consistent-hash sharding of the
  two-tier cache across N directories with rebalance-on-resize;
* :mod:`repro.service.compiler` — :class:`CompilationService`,
  :func:`compile_many`, and the error-isolated worker pool;
* :mod:`repro.service.backends` — the backend registry behind
  multi-backend fan-out;
* :mod:`repro.service.metrics` — counters/gauges/histograms with JSON
  and Prometheus rendering;
* :mod:`repro.service.v1` — the versioned (``/v1``) envelope protocol
  shared by both front ends;
* :mod:`repro.service.server` — the threaded HTTP and stdio front
  ends (``mvec serve``);
* :mod:`repro.service.aserver` — the asyncio front end with a bounded
  queue, load shedding, and a process-pool executor
  (``mvec serve --async``);
* :mod:`repro.service.client` — the retrying v1 client
  (``mvec client``).
"""

from .aserver import (  # noqa: F401
    AsyncCompilationServer,
    AsyncServerThread,
    serve_async,
)
from .backends import (  # noqa: F401
    Backend,
    backend_names,
    fanout_sync,
    get_backend,
    register_backend,
    unregister_backend,
)
from .cache import CompilationCache, DiskCache, MemoryLRU  # noqa: F401
from .client import (  # noqa: F401
    ClientResponse,
    ServiceClient,
    ServiceUnavailable,
)
from .compiler import (  # noqa: F401
    CompilationService,
    CompileFailure,
    CompileResult,
    WorkerFailure,
    compile_many,
    parallel_map,
)
from .fingerprint import (  # noqa: F401
    CompileOptions,
    cache_key,
    pipeline_fingerprint,
    salted_cache_key,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry  # noqa: F401
from .server import CompilationServer, serve_http, serve_stdio  # noqa: F401
from .shardedcache import RebalanceReport, ShardedCache  # noqa: F401

__all__ = [
    "AsyncCompilationServer",
    "AsyncServerThread",
    "Backend",
    "ClientResponse",
    "CompilationCache",
    "CompilationServer",
    "CompilationService",
    "CompileFailure",
    "CompileOptions",
    "CompileResult",
    "Counter",
    "DiskCache",
    "Gauge",
    "Histogram",
    "MemoryLRU",
    "MetricsRegistry",
    "RebalanceReport",
    "ServiceClient",
    "ServiceUnavailable",
    "ShardedCache",
    "WorkerFailure",
    "backend_names",
    "cache_key",
    "compile_many",
    "fanout_sync",
    "get_backend",
    "parallel_map",
    "pipeline_fingerprint",
    "register_backend",
    "salted_cache_key",
    "serve_async",
    "serve_http",
    "serve_stdio",
    "unregister_backend",
]
