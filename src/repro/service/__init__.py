"""Compilation service: caching, batch compilation, and serving.

The scaling layer over the paper's one-shot pipeline:

* :mod:`repro.service.fingerprint` — pipeline fingerprint and
  content-addressed cache keys;
* :mod:`repro.service.cache` — two-tier (LRU memory + atomic disk)
  artifact cache;
* :mod:`repro.service.compiler` — :class:`CompilationService`,
  :func:`compile_many`, and the error-isolated worker pool;
* :mod:`repro.service.metrics` — counters/histograms with JSON and
  Prometheus rendering;
* :mod:`repro.service.server` — ``mvec serve``'s HTTP and stdio
  front ends.
"""

from .cache import CompilationCache, DiskCache, MemoryLRU  # noqa: F401
from .compiler import (  # noqa: F401
    CompilationService,
    CompileFailure,
    CompileResult,
    WorkerFailure,
    compile_many,
    parallel_map,
)
from .fingerprint import (  # noqa: F401
    CompileOptions,
    cache_key,
    pipeline_fingerprint,
)
from .metrics import Counter, Histogram, MetricsRegistry  # noqa: F401
from .server import CompilationServer, serve_http, serve_stdio  # noqa: F401

__all__ = [
    "CompilationCache",
    "DiskCache",
    "MemoryLRU",
    "CompilationService",
    "CompileFailure",
    "CompileResult",
    "WorkerFailure",
    "compile_many",
    "parallel_map",
    "CompileOptions",
    "cache_key",
    "pipeline_fingerprint",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "CompilationServer",
    "serve_http",
    "serve_stdio",
]
