"""The compilation service: cached single compiles and parallel batches.

:class:`CompilationService` wraps the paper's pipeline (parse → dims
analysis → codegen → optional NumPy translation) behind a
content-addressed cache and a metrics registry.  ``compile`` never
raises on bad input — every outcome is a :class:`CompileResult`, with
compilation errors carried as structured :class:`CompileFailure`
payloads so batch callers and the HTTP front end can report them
uniformly.

:func:`compile_many` fans a list of named sources across a
``multiprocessing`` pool (fork-server free, plain ``fork`` where
available so workers inherit the warm interpreter) with

* **deterministic ordering** — results come back in input order no
  matter which worker finished first;
* **error isolation** — one bad file yields one failed result, never a
  dead batch;
* **per-file timeout** — enforced cooperatively *inside* the worker
  with ``SIGALRM``/``setitimer`` where the platform has it, and
  unconditionally by a parent-side watchdog routed through the
  executor (dispatch-one-per-idle-process + deadline + pool recycle),
  so a pathological input cannot wedge a worker slot forever even on
  platforms without Unix signals.

:func:`parallel_map` is the reusable pool primitive; the fuzz campaign
driver uses it to parallelize oracle runs.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from ..errors import ReproError
from .cache import CompilationCache
from .fingerprint import (
    CompileOptions,
    cache_key,
    pipeline_fingerprint,
    salted_cache_key,
)
from .metrics import MetricsRegistry

#: Compile stages reported in latency histograms, in pipeline order.
STAGES = ("lex", "parse", "analyze", "codegen", "translate")


@dataclass
class CompileFailure:
    """A structured, picklable compilation error."""

    type: str                   # e.g. 'ParseError', 'timeout', 'internal'
    message: str

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class CompileResult:
    """Outcome of compiling one source, success or failure."""

    name: str
    ok: bool
    cached: bool = False
    cache_key: Optional[str] = None
    vectorized: Optional[str] = None
    python: Optional[str] = None
    stats: Optional[dict] = None
    report_summary: Optional[str] = None
    timings: dict[str, float] = field(default_factory=dict)
    elapsed: float = 0.0
    error: Optional[CompileFailure] = None

    def to_dict(self) -> dict:
        data = asdict(self)
        data["error"] = self.error.to_dict() if self.error else None
        return data


class CompilationService:
    """Cache- and metrics-instrumented front door to the pipeline."""

    def __init__(self, cache: Optional[CompilationCache] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.cache = cache if cache is not None else CompilationCache()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.fingerprint = self.cache.fingerprint

    # -- public API ----------------------------------------------------

    def compile(self, source: str,
                options: Optional[CompileOptions] = None,
                name: str = "<memory>") -> CompileResult:
        """Compile one source, consulting the cache first."""
        options = options or CompileOptions()
        start = time.perf_counter()
        key = cache_key(source, options, self.fingerprint)
        self.metrics.counter(
            "mvec_compile_requests_total",
            "Compilation requests", backend=options.backend).inc()

        artifact = self._cache_lookup(key)
        if artifact is not None:
            return CompileResult(
                name=name, ok=True, cached=True, cache_key=key,
                vectorized=artifact["vectorized"],
                python=artifact.get("python"),
                stats=artifact.get("stats"),
                report_summary=artifact.get("report_summary"),
                timings={},
                elapsed=time.perf_counter() - start)

        result = self._compile_uncached(source, options, name, key)
        result.elapsed = time.perf_counter() - start
        if result.ok:
            self.cache.put(key, {
                "vectorized": result.vectorized,
                "python": result.python,
                "stats": result.stats,
                "report_summary": result.report_summary,
            })
        else:
            self.metrics.counter(
                "mvec_compile_errors_total", "Failed compilations",
                type=result.error.type).inc()
        return result

    def lint(self, source: str, name: str = "<memory>") -> dict:
        """Lint one source, consulting the cache first.

        Returns the :func:`repro.staticcheck.to_json`-shaped payload
        plus ``cached``.  Lint results share the artifact cache under a
        distinct key prefix (a ``vectorized`` placeholder satisfies the
        artifact schema).
        """
        from ..staticcheck import counts_by_severity, lint_source

        self.metrics.counter("mvec_lint_requests_total",
                             "Lint requests").inc()
        key = salted_cache_key("lint", source, CompileOptions(),
                               self.fingerprint)
        artifact = self._cache_lookup(key)
        if artifact is not None:
            return {**artifact["lint"], "cached": True}

        diagnostics = lint_source(source)
        counts = counts_by_severity(diagnostics)
        for severity, count in counts.items():
            if count:
                self.metrics.counter(
                    "mvec_lint_diagnostics_total",
                    "Lint diagnostics by severity",
                    severity=severity).inc(count)
        payload = {
            "file": name,
            "diagnostics": [d.to_dict() for d in diagnostics],
            "errors": counts["error"],
            "warnings": counts["warning"],
        }
        self.cache.put(key, {"vectorized": None, "lint": payload})
        return {**payload, "cached": False}

    def audit(self, source: str,
              options: Optional[CompileOptions] = None,
              name: str = "<memory>") -> dict:
        """Compile one source and audit the emitted code against it.

        The compile itself goes through :meth:`compile` (cached); the
        audit re-derives legality independently.  A failed compile is
        reported as ``ok: False`` with the compile error attached.
        """
        from ..staticcheck import audit_source

        options = options or CompileOptions()
        self.metrics.counter("mvec_audit_requests_total",
                             "Audit requests").inc()
        compiled = self.compile(source, options, name=name)
        if not compiled.ok:
            self.metrics.counter("mvec_audit_total",
                                 "Audits by verdict",
                                 verdict="compile-error").inc()
            return {"file": name, "ok": False, "cached": compiled.cached,
                    "error": compiled.error.to_dict(), "diagnostics": []}
        result = audit_source(source, compiled.vectorized,
                              scalar_temps=options.scalar_temps)
        self.metrics.counter(
            "mvec_audit_total", "Audits by verdict",
            verdict="pass" if result.ok else "fail").inc()
        return {"file": name, "cached": compiled.cached,
                **result.to_dict()}

    # -- internals -----------------------------------------------------

    def _cache_lookup(self, key: str) -> Optional[dict]:
        stats = self.cache.stats
        before = (stats.memory_hits, stats.disk_hits)
        artifact = self.cache.get(key)
        if artifact is not None:
            tier = "memory" if stats.memory_hits > before[0] else "disk"
            self.metrics.counter("mvec_cache_hits_total",
                                 "Cache hits by tier", tier=tier).inc()
        else:
            self.metrics.counter("mvec_cache_misses_total",
                                 "Cache misses").inc()
        return artifact

    def _compile_uncached(self, source: str, options: CompileOptions,
                          name: str, key: str) -> CompileResult:
        from ..translate.numpy_backend import translate_source
        from ..vectorizer.driver import Vectorizer

        try:
            vect = Vectorizer(options=options.check_options(),
                              simplify=options.simplify,
                              scalar_temps=options.scalar_temps,
                              verify=options.verify,
                              use_annotations=options.use_annotations,
                              ).vectorize_source(source)
            vectorized = vect.source
            timings = dict(vect.timings)
            python = None
            if options.backend == "numpy":
                start = time.perf_counter()
                python = translate_source(vectorized).python_source
                timings["translate"] = time.perf_counter() - start
        except ReproError as error:
            return CompileResult(name=name, ok=False, cache_key=key,
                                 error=CompileFailure(
                                     type(error).__name__, str(error)))
        except RecursionError as error:
            return CompileResult(name=name, ok=False, cache_key=key,
                                 error=CompileFailure(
                                     "RecursionError", str(error)))
        for stage, seconds in timings.items():
            self.metrics.histogram(
                "mvec_stage_seconds",
                "Per-stage compile latency", stage=stage).observe(seconds)
        return CompileResult(
            name=name, ok=True, cache_key=key, vectorized=vectorized,
            python=python, stats=vect.report.stats(),
            report_summary=vect.report.summary(), timings=timings)


# ---------------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------------


@dataclass
class WorkerFailure:
    """Why one pool item produced no result."""

    type: str                   # 'timeout' or the exception class name
    message: str


class WorkerTimeout(Exception):
    """Raised inside a worker when the per-item timer fires."""


def _raise_timeout(signum, frame):
    raise WorkerTimeout()


def _call_with_timeout(fn: Callable, item, timeout: Optional[float]):
    """Run ``fn(item)``, bounded by ``timeout`` seconds where possible.

    The bound uses ``SIGALRM``/``setitimer`` and therefore only applies
    on platforms with Unix signals and when running on the process's
    main thread (always true for pool workers; the inline fallback
    skips the bound when called from a server thread).
    """
    can_alarm = (timeout is not None and hasattr(signal, "setitimer")
                 and threading.current_thread() is threading.main_thread())
    if not can_alarm:
        return fn(item)
    previous = signal.signal(signal.SIGALRM, _raise_timeout)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return fn(item)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


_pool_fn: Optional[Callable] = None
_pool_timeout: Optional[float] = None


def _pool_init(fn: Callable, timeout: Optional[float]) -> None:
    global _pool_fn, _pool_timeout
    _pool_fn = fn
    _pool_timeout = timeout


def _pool_call(payload):
    index, item = payload
    try:
        return index, _call_with_timeout(_pool_fn, item, _pool_timeout), None
    except WorkerTimeout:
        return index, None, WorkerFailure(
            "timeout", f"exceeded {_pool_timeout:g}s")
    except Exception as error:  # noqa: BLE001 — isolation is the contract
        return index, None, WorkerFailure(type(error).__name__, str(error))


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])


#: Parent-side slack on top of the per-item timeout before the watchdog
#: declares a worker wedged.  When SIGALRM is available the worker
#: self-reports right at ``timeout`` and the watchdog never fires; the
#: grace keeps the two enforcement layers from racing.
POOL_TIMEOUT_GRACE = 0.25

#: Watchdog poll interval (seconds).
_POOL_POLL = 0.01


def parallel_map(fn: Callable, items: Sequence, workers: int = 1,
                 timeout: Optional[float] = None) -> list:
    """Apply ``fn`` to every item, in parallel, with error isolation.

    Returns one entry per item **in input order**: the call's return
    value, or a :class:`WorkerFailure` if it raised or timed out.
    ``fn`` must be a module-level (picklable) callable when
    ``workers > 1``.  ``workers <= 1`` runs inline, same contract.

    The per-item ``timeout`` is enforced twice when ``workers > 1``:
    cooperatively inside the worker via ``SIGALRM`` where the platform
    has it, and unconditionally by a parent-side watchdog that routes
    the deadline through the executor itself — items are dispatched one
    per idle process (so an item's clock only starts when it is
    actually executing), and an item that blows its deadline has its
    pool terminated and rebuilt, the survivors resubmitted, and a
    ``timeout`` :class:`WorkerFailure` recorded.  The watchdog is what
    keeps timeouts meaningful on platforms without Unix signals, where
    the in-worker bound silently cannot apply.
    """
    if workers <= 1 or len(items) <= 1:
        out = []
        for payload in enumerate(items):
            _, result, failure = _serial_call(payload, fn, timeout)
            out.append(failure if failure is not None else result)
        return out
    return _executor_map(fn, items, workers, timeout)


def _executor_map(fn: Callable, items: Sequence, workers: int,
                  timeout: Optional[float]) -> list:
    """Pool fan-out with the parent-side deadline watchdog."""
    out: list = [None] * len(items)
    pending: list[tuple[int, object]] = list(enumerate(items))
    pending.reverse()                      # pop() preserves input order
    processes = min(workers, len(items))
    context = _pool_context()
    pool = context.Pool(processes, initializer=_pool_init,
                        initargs=(fn, timeout))
    #: index -> (async handle, dispatch time, original item)
    inflight: dict[int, tuple] = {}
    try:
        while pending or inflight:
            while pending and len(inflight) < processes:
                index, item = pending.pop()
                handle = pool.apply_async(_pool_call, ((index, item),))
                inflight[index] = (handle, time.monotonic(), item)
            progressed = False
            now = time.monotonic()
            for index in list(inflight):
                handle, dispatched, item = inflight[index]
                if handle.ready():
                    _index, result, failure = handle.get()
                    out[index] = failure if failure is not None else result
                    del inflight[index]
                    progressed = True
                elif (timeout is not None
                        and now - dispatched > timeout + POOL_TIMEOUT_GRACE):
                    # The worker is wedged (no SIGALRM, or stuck in C
                    # code): give up on this item, recycle the pool to
                    # free the slot, and resubmit the other in-flight
                    # items (content-addressed compiles are idempotent).
                    out[index] = WorkerFailure(
                        "timeout", f"exceeded {timeout:g}s")
                    del inflight[index]
                    for other_index, (_h, _t, other_item) in \
                            inflight.items():
                        pending.append((other_index, other_item))
                    inflight.clear()
                    pool.terminate()
                    pool.join()
                    pool = context.Pool(processes, initializer=_pool_init,
                                        initargs=(fn, timeout))
                    progressed = True
                    break
            if not progressed:
                time.sleep(_POOL_POLL)
    finally:
        pool.terminate()
        pool.join()
    return out


def _serial_call(payload, fn, timeout):
    index, item = payload
    try:
        return index, _call_with_timeout(fn, item, timeout), None
    except WorkerTimeout:
        return index, None, WorkerFailure("timeout", f"exceeded {timeout:g}s")
    except Exception as error:  # noqa: BLE001
        return index, None, WorkerFailure(type(error).__name__, str(error))


# ---------------------------------------------------------------------------
# Batch compilation
# ---------------------------------------------------------------------------

#: Per-process service reused across batch items (so a worker compiles
#: the whole batch slice against one warm cache).
_worker_services: dict[tuple, CompilationService] = {}


def _batch_compile_item(item) -> CompileResult:
    name, source, options_dict, cache_dir = item
    service_key = (cache_dir,)
    service = _worker_services.get(service_key)
    if service is None:
        cache = CompilationCache(directory=cache_dir)
        service = CompilationService(cache=cache)
        _worker_services[service_key] = service
    return service.compile(source, CompileOptions(**options_dict), name=name)


def compile_many(sources: Sequence[tuple[str, str]],
                 options: Optional[CompileOptions] = None,
                 workers: int = 1,
                 timeout: Optional[float] = None,
                 cache_dir: Optional[Path | str] = None
                 ) -> list[CompileResult]:
    """Compile ``(name, source)`` pairs, fanned across ``workers``.

    Results are returned in input order.  Items that raise or time out
    come back as failed :class:`CompileResult`\\ s — the batch always
    completes.  ``cache_dir`` points every worker at one shared on-disk
    cache tier (safe: writes are atomic and content-addressed).
    """
    options = options or CompileOptions()
    items = [(name, source, options.to_dict(),
              str(cache_dir) if cache_dir else None)
             for name, source in sources]
    mapped = parallel_map(_batch_compile_item, items,
                          workers=workers, timeout=timeout)
    results: list[CompileResult] = []
    for (name, _source, _opts, _dir), outcome in zip(items, mapped):
        if isinstance(outcome, WorkerFailure):
            outcome = CompileResult(
                name=name, ok=False,
                error=CompileFailure(outcome.type, outcome.message))
        results.append(outcome)
    return results


def read_sources(paths: Sequence[str | Path]) -> list[tuple[str, str]]:
    """Read ``(name, source)`` pairs for the CLI; '-' means stdin."""
    import sys

    pairs = []
    for path in paths:
        if str(path) == "-":
            pairs.append(("<stdin>", sys.stdin.read()))
        else:
            with open(path, encoding="utf-8") as handle:
                pairs.append((Path(path).name, handle.read()))
    return pairs


__all__ = [
    "STAGES",
    "CompileFailure",
    "CompileResult",
    "CompilationService",
    "WorkerFailure",
    "parallel_map",
    "compile_many",
    "read_sources",
    "pipeline_fingerprint",
]
