"""Content addressing for compiled artifacts.

A cached artifact is only reusable while the pipeline that produced it
is byte-identical — a codegen fix must never serve yesterday's output.
The *pipeline fingerprint* is a digest over the source files of every
package that determines what the compiler emits (front-end, dimension
abstraction, analyses, patterns, vectorizer, translator).  It is baked
into every cache entry and into every cache key, so both tiers of the
cache invalidate wholesale on any pipeline change.

The *cache key* is ``sha256(fingerprint || options || source)`` — pure
content addressing: identical source compiled with identical options by
an identical pipeline always maps to the same key, on any machine.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Optional

from ..vectorizer.checker import CheckOptions

#: Packages (relative to ``repro``) whose sources determine compiler
#: output.  ``runtime`` and ``fuzz`` are deliberately absent: they
#: verify artifacts but never shape them.
PIPELINE_PACKAGES = ("mlang", "dims", "shapes", "depgraph",
                     "patterns", "vectorizer", "translate", "staticcheck")

#: Bumped on artifact *schema* changes (what a cache entry contains),
#: independent of pipeline source changes.
SCHEMA_VERSION = 1

_fingerprint_cache: Optional[str] = None


def pipeline_fingerprint(refresh: bool = False) -> str:
    """Digest of every pipeline source file (hex, 16 chars).

    Computed once per process; ``refresh`` forces recomputation (tests
    that edit pipeline sources on disk use it).
    """
    global _fingerprint_cache
    if _fingerprint_cache is not None and not refresh:
        return _fingerprint_cache
    from ..shapes import ENGINE_VERSION

    digest = hashlib.sha256()
    digest.update(f"schema:{SCHEMA_VERSION}".encode())
    # The shape engine versions its lattice semantics explicitly — a
    # meaning change without a byte change (e.g. a data-driven summary
    # format) must still invalidate every cached artifact.
    digest.update(f"shape-engine:{ENGINE_VERSION}".encode())
    root = Path(__file__).resolve().parent.parent
    for package in PIPELINE_PACKAGES:
        for path in sorted((root / package).rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    _fingerprint_cache = digest.hexdigest()[:16]
    return _fingerprint_cache


BACKENDS = ("matlab", "numpy")


@dataclass(frozen=True)
class CompileOptions:
    """Everything (besides the source) that selects a compiled artifact.

    ``backend`` picks what the service produces: ``"matlab"`` is the
    paper's source-to-source pipeline; ``"numpy"`` additionally runs the
    translator over the vectorized output.  The remaining fields mirror
    :class:`~repro.vectorizer.checker.CheckOptions` plus the driver's
    ``simplify``/``scalar_temps`` switches.
    """

    backend: str = "matlab"
    simplify: bool = False
    scalar_temps: bool = True
    transposes: bool = True
    patterns: bool = True
    reductions: bool = True
    promotion: bool = True
    product_regroup: bool = True
    max_chain: int = 8
    verify: bool = False
    #: ``False`` ignores ``%!`` annotations for analysis (they still
    #: pass through to the output verbatim) so every shape must come
    #: from the flow-sensitive inference engine.
    use_annotations: bool = True

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r} "
                             f"(expected one of {BACKENDS})")

    def check_options(self) -> CheckOptions:
        return CheckOptions(
            transposes=self.transposes,
            patterns=self.patterns,
            reductions=self.reductions,
            promotion=self.promotion,
            product_regroup=self.product_regroup,
            max_chain=self.max_chain,
        )

    def canonical(self) -> str:
        """Deterministic serialization used in cache keys."""
        return json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CompileOptions":
        """Build options from an untrusted request payload.

        Unknown keys raise ``ValueError`` (a typoed option silently
        falling back to defaults would poison the content address).
        """
        if not isinstance(data, dict):
            raise ValueError(f"options must be an object, "
                             f"got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown option(s): {sorted(unknown)}")
        return cls(**data)


def cache_key(source: str, options: Optional[CompileOptions] = None,
              fingerprint: Optional[str] = None) -> str:
    """Content address of one compilation: sha256 hex digest."""
    options = options or CompileOptions()
    fingerprint = fingerprint or pipeline_fingerprint()
    digest = hashlib.sha256()
    digest.update(fingerprint.encode())
    digest.update(b"\0")
    digest.update(options.canonical().encode())
    digest.update(b"\0")
    digest.update(source.encode())
    return digest.hexdigest()


def salted_cache_key(salt: str, source: str,
                     options: Optional[CompileOptions] = None,
                     fingerprint: Optional[str] = None) -> str:
    """Content address in a named key namespace.

    Non-compile artifacts (lint results, audit verdicts, custom fan-out
    backends) share the artifact cache but must never collide with
    compile artifacts for the same source; the ``salt`` prefixes the
    addressed content with an out-of-band namespace tag (``\\0`` cannot
    occur in MATLAB source).
    """
    prefixed = f"{salt}\0{source}" if salt else source
    return cache_key(prefixed, options, fingerprint)
