"""Counters and histograms for the compilation service.

A deliberately small, stdlib-only metrics kernel: named counters and
fixed-bucket latency histograms with optional labels, registered in a
:class:`MetricsRegistry` and rendered either as JSON (for programmatic
consumers and the stdio mode) or in the Prometheus text exposition
format (for ``GET /metrics`` scrapes).

Instruments are get-or-create by ``(name, labels)``, so call sites can
write ``registry.histogram("mvec_stage_seconds", stage="parse")`` on
every observation without bookkeeping.  All mutation is lock-guarded —
the HTTP front end serves from a thread pool.
"""

from __future__ import annotations

import math
from threading import Lock
from typing import Optional, Sequence

#: Default latency buckets (seconds): compile stages sit in the 0.1 ms –
#: 100 ms range; the long tail catches pathological inputs.
DEFAULT_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                   0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0)

_INVALID_NAME = "metric names must be non-empty [a-zA-Z_][a-zA-Z0-9_]*"


def _check_name(name: str) -> str:
    if not name or not name.replace("_", "a").isalnum() \
            or name[0].isdigit():
        raise ValueError(f"{_INVALID_NAME}: {name!r}")
    return name


def _label_str(labels: dict[str, str], extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """A monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[dict[str, str]] = None):
        self.name = _check_name(name)
        self.help = help
        self.labels = dict(labels or {})
        self.value = 0.0
        self._lock = Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (inc {amount})")
        with self._lock:
            self.value += amount

    def to_json(self) -> dict:
        return {"value": self.value}

    def render(self) -> list[str]:
        return [f"{self.name}{_label_str(self.labels)} {_format(self.value)}"]


class Gauge:
    """A value that can go up and down (in-flight requests, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[dict[str, str]] = None):
        self.name = _check_name(name)
        self.help = help
        self.labels = dict(labels or {})
        self.value = 0.0
        self._lock = Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def to_json(self) -> dict:
        return {"value": self.value}

    def render(self) -> list[str]:
        return [f"{self.name}{_label_str(self.labels)} {_format(self.value)}"]


class Histogram:
    """Fixed-bucket histogram with cumulative (Prometheus-style) counts."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS,
                 labels: Optional[dict[str, str]] = None):
        self.name = _check_name(name)
        self.help = help
        self.labels = dict(labels or {})
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self.counts = [0] * len(self.buckets)   # per-bucket (non-cumulative)
        self.count = 0
        self.sum = 0.0
        self._lock = Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[index] += 1
                    break

    def cumulative(self) -> list[int]:
        """Cumulative bucket counts, one per upper bound (``+Inf`` is
        :attr:`count`)."""
        out, running = [], 0
        for bucket_count in self.counts:
            running += bucket_count
            out.append(running)
        return out

    def to_json(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {_format(bound): cum for bound, cum
                        in zip(self.buckets, self.cumulative())},
        }

    def render(self) -> list[str]:
        lines = []
        for bound, cum in zip(self.buckets, self.cumulative()):
            le = _label_str(self.labels, f'le="{_format(bound)}"')
            lines.append(f"{self.name}_bucket{le} {cum}")
        inf = _label_str(self.labels, 'le="+Inf"')
        lines.append(f"{self.name}_bucket{inf} {self.count}")
        lines.append(f"{self.name}_sum{_label_str(self.labels)} "
                     f"{_format(self.sum)}")
        lines.append(f"{self.name}_count{_label_str(self.labels)} "
                     f"{self.count}")
        return lines


def _format(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Get-or-create instrument store plus the two renderers."""

    def __init__(self) -> None:
        self._instruments: dict[tuple, Counter | Gauge | Histogram] = {}
        self._lock = Lock()

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        key = (cls.kind, name, tuple(sorted(labels.items())))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, help, labels=labels, **kwargs)
                self._instruments[key] = instrument
            return instrument

    def instruments(self) -> list[Counter | Gauge | Histogram]:
        with self._lock:
            return list(self._instruments.values())

    # -- rendering -----------------------------------------------------

    def to_json(self) -> dict:
        """``{name: {kind, help, series: [{labels, …}]}}``."""
        out: dict[str, dict] = {}
        for instrument in self.instruments():
            family = out.setdefault(instrument.name, {
                "kind": instrument.kind,
                "help": instrument.help,
                "series": [],
            })
            family["series"].append(
                {"labels": instrument.labels, **instrument.to_json()})
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        seen_families: set[str] = set()
        by_name: dict[str, list] = {}
        for instrument in self.instruments():
            by_name.setdefault(instrument.name, []).append(instrument)
        for name in sorted(by_name):
            for instrument in by_name[name]:
                if name not in seen_families:
                    if instrument.help:
                        lines.append(f"# HELP {name} {instrument.help}")
                    lines.append(f"# TYPE {name} {instrument.kind}")
                    seen_families.add(name)
                lines.extend(instrument.render())
        return "\n".join(lines) + "\n"
