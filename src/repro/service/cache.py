"""The two-tier content-addressed compilation cache.

Tier 1 is an in-process LRU over artifact dicts; tier 2 is an on-disk
store safe for concurrent writers.  Both are keyed by
:func:`repro.service.fingerprint.cache_key` and carry the pipeline
fingerprint, so entries produced by a different pipeline version are
dropped on read, never served.

Disk layout (``<dir>/<key[:2]>/<key>.json``, two-hex-char shards to
keep directories small)::

    {"version": 1, "fingerprint": "…", "key": "…", "artifact": {…}}

Writes go through a temporary file in the destination directory
followed by ``os.replace`` — readers see either the old entry or the
new one, never a torn write, and the last concurrent writer wins
(harmless: both wrote the same content-addressed artifact).  Any entry
that fails to parse or validate is treated as a miss and deleted; the
caller recompiles.  A cache failure must never take compilation down.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from threading import Lock
from typing import Optional

from .fingerprint import SCHEMA_VERSION, pipeline_fingerprint

#: Artifact keys every well-formed entry must provide.
REQUIRED_ARTIFACT_KEYS = ("vectorized",)


@dataclass
class CacheStats:
    """Hit/miss accounting, split by tier."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    dropped_stale: int = 0      # fingerprint mismatch
    dropped_corrupt: int = 0    # unparseable / schema-invalid entry

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "dropped_stale": self.dropped_stale,
            "dropped_corrupt": self.dropped_corrupt,
            "hit_rate": self.hit_rate,
        }


class MemoryLRU:
    """Bounded LRU dict; ``get`` refreshes recency, eviction is oldest-first."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._lock = Lock()
        self.evictions = 0

    def get(self, key: str) -> Optional[dict]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: str, value: dict) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def pop(self, key: str) -> Optional[dict]:
        """Remove and return one entry (``None`` when absent).  Used by
        the sharded cache to re-home entries on a shard-count change."""
        with self._lock:
            return self._entries.pop(key, None)

    def keys(self) -> list[str]:
        """Keys from least- to most-recently used (for tests/inspection)."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


class DiskCache:
    """Sharded on-disk entry store with atomic writes."""

    def __init__(self, directory: Path | str):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str, fingerprint: str,
            stats: Optional[CacheStats] = None) -> Optional[dict]:
        """Load and validate one entry; invalid entries are deleted."""
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            entry = json.loads(raw)
            if not isinstance(entry, dict):
                raise ValueError("entry is not an object")
            artifact = entry["artifact"]
            if entry["version"] != SCHEMA_VERSION:
                raise ValueError(f"schema version {entry['version']}")
            for required in REQUIRED_ARTIFACT_KEYS:
                if required not in artifact:
                    raise ValueError(f"artifact missing {required!r}")
        except (ValueError, KeyError, TypeError):
            if stats is not None:
                stats.dropped_corrupt += 1
            self._drop(path)
            return None
        if entry.get("fingerprint") != fingerprint:
            if stats is not None:
                stats.dropped_stale += 1
            self._drop(path)
            return None
        return artifact

    def put(self, key: str, artifact: dict, fingerprint: str) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"version": SCHEMA_VERSION, "fingerprint": fingerprint,
                 "key": key, "artifact": artifact}
        payload = json.dumps(entry, sort_keys=True)
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent,
            prefix=f".{key[:8]}.", suffix=".tmp", delete=False)
        try:
            with handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, path)
        except OSError:
            self._drop(Path(handle.name))

    @staticmethod
    def _drop(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*/*.json"))


@dataclass
class CompilationCache:
    """Memory tier in front of an optional disk tier.

    ``fingerprint`` defaults to the live pipeline fingerprint;
    injectable so tests can simulate a pipeline change without editing
    compiler sources.
    """

    capacity: int = 256
    directory: Optional[Path | str] = None
    fingerprint: str = field(default_factory=pipeline_fingerprint)

    def __post_init__(self) -> None:
        self.memory = MemoryLRU(self.capacity)
        self.disk = DiskCache(self.directory) if self.directory else None
        self.stats = CacheStats()

    def get(self, key: str) -> Optional[dict]:
        artifact = self.memory.get(key)
        if artifact is not None:
            self.stats.memory_hits += 1
            return artifact
        if self.disk is not None:
            artifact = self.disk.get(key, self.fingerprint, self.stats)
            if artifact is not None:
                self.stats.disk_hits += 1
                self.memory.put(key, artifact)   # promote
                self.stats.evictions = self.memory.evictions
                return artifact
        self.stats.misses += 1
        return None

    def put(self, key: str, artifact: dict) -> None:
        self.memory.put(key, artifact)
        self.stats.evictions = self.memory.evictions
        self.stats.writes += 1
        if self.disk is not None:
            self.disk.put(key, artifact, self.fingerprint)
