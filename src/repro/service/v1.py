"""The versioned HTTP surface (``/v1``) shared by both front ends.

Every v1 response — threaded or async, success or failure — is one
JSON **envelope**::

    {
      "ok":          bool,
      "result":      op-specific payload (null on failure),
      "error":       {"type", "message"} or null,
      "diagnostics": [Diagnostic dicts]     (lint/audit findings),
      "timings":     {"stages": {...}, "elapsed": s},
      "cache":       {"cached": bool, "key": hex} for compile-shaped
                     ops; the full cache-stats dict on /v1/healthz
    }

The legacy unversioned paths (``/vectorize``, ``/translate``,
``/lint``, ``/audit``, ``/healthz``, ``/metrics``) are kept as
**deprecated shims**: they answer with their historical payload shapes
but carry a ``Deprecation: true`` header plus a ``Link`` to the
``successor-version`` v1 route (RFC 8594/9745 style).  New clients and
``repro.service.client`` speak v1 only.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .backends import Backend

#: Path prefix of the current API version.
V1_PREFIX = "/v1"

#: POST ops served under /v1/<op>.
V1_POST_OPS = ("vectorize", "translate", "lint", "audit", "fanout")

#: GET ops served under /v1/<op>.
V1_GET_OPS = ("healthz", "metrics")

#: legacy path -> v1 successor, for the Deprecation/Link shim headers.
LEGACY_SUCCESSORS = {
    "/vectorize": "/v1/vectorize",
    "/translate": "/v1/translate",
    "/lint": "/v1/lint",
    "/audit": "/v1/audit",
    "/healthz": "/v1/healthz",
    "/metrics": "/v1/metrics",
}


def deprecation_headers(path: str) -> list[tuple[str, str]]:
    """Headers a legacy shim must attach to its response."""
    successor = LEGACY_SUCCESSORS.get(path)
    headers = [("Deprecation", "true")]
    if successor:
        headers.append(("Link",
                        f'<{successor}>; rel="successor-version"'))
    return headers


def envelope(ok: bool, *, result=None, error: Optional[dict] = None,
             diagnostics: Optional[Sequence[dict]] = None,
             timings: Optional[dict] = None,
             cache: Optional[dict] = None) -> dict:
    """Assemble one v1 envelope with every field always present."""
    return {
        "ok": bool(ok),
        "result": result,
        "error": error,
        "diagnostics": list(diagnostics or []),
        "timings": timings if timings is not None
        else {"stages": {}, "elapsed": 0.0},
        "cache": cache if cache is not None
        else {"cached": False, "key": None},
    }


def error_envelope(error_type: str, message: str) -> dict:
    """An envelope for a request-level failure (400/404/413/429/...)."""
    return envelope(False, error={"type": error_type, "message": message})


def envelope_for(backend: Backend, payload: dict) -> dict:
    """The v1 envelope for one backend's primitive payload."""
    if backend.kind == "compile":
        timings = {"stages": dict(payload.get("timings") or {}),
                   "elapsed": payload.get("elapsed", 0.0)}
        cache = {"cached": bool(payload.get("cached")),
                 "key": payload.get("cache_key")}
        if payload.get("ok"):
            result = {key: payload.get(key) for key in
                      ("name", "vectorized", "python", "stats",
                       "report_summary")}
            return envelope(True, result=result, timings=timings,
                            cache=cache)
        return envelope(False, error=payload.get("error"),
                        timings=timings, cache=cache)
    cache = {"cached": bool(payload.get("cached")), "key": None}
    diagnostics = payload.get("diagnostics") or []
    if backend.kind == "lint":
        if payload.get("error"):
            return envelope(False, error=payload["error"], cache=cache)
        result = {"file": payload.get("file"),
                  "errors": payload.get("errors", 0),
                  "warnings": payload.get("warnings", 0)}
        return envelope(True, result=result, diagnostics=diagnostics,
                        cache=cache)
    if backend.kind == "audit":
        if payload.get("error"):
            return envelope(False, error=payload["error"],
                            diagnostics=diagnostics, cache=cache)
        result = {key: payload.get(key) for key in
                  ("file", "audited_loops", "audited_stmts",
                   "vectorized_stmts")}
        return envelope(bool(payload.get("ok")), result=result,
                        diagnostics=diagnostics, cache=cache)
    # custom backend: the payload (minus bookkeeping) is the result
    result = {key: value for key, value in payload.items()
              if key not in ("ok", "error", "cached", "diagnostics")}
    return envelope(payload.get("ok", True) and not payload.get("error"),
                    result=result, error=payload.get("error"),
                    diagnostics=diagnostics, cache=cache)


def fanout_envelope(results: dict[str, tuple[int, dict]],
                    backends: dict[str, Backend]) -> tuple[int, dict]:
    """``(status, envelope)`` for a fan-out result map.

    ``result`` maps each backend name to its own sub-envelope;
    top-level ``ok`` (and a 422) reflects any backend failure.
    """
    sub = {name: envelope_for(backends[name], payload)
           for name, (_status, payload) in results.items()}
    ok = all(status < 400 for status, _payload in results.values())
    return (200 if ok else 422), envelope(
        ok, result=sub,
        cache={"cached": all(e["cache"].get("cached") for e in
                             sub.values()) if sub else False,
               "key": None})


def health_envelope(service, uptime_seconds: float,
                    extra: Optional[dict] = None) -> dict:
    """The /v1/healthz envelope (cache field carries the stats dict)."""
    result = {"fingerprint": service.fingerprint,
              "uptime_seconds": uptime_seconds}
    if extra:
        result.update(extra)
    return envelope(True, result=result,
                    cache=service.cache.stats.to_dict())


__all__ = [
    "LEGACY_SUCCESSORS",
    "V1_GET_OPS",
    "V1_POST_OPS",
    "V1_PREFIX",
    "deprecation_headers",
    "envelope",
    "envelope_for",
    "error_envelope",
    "fanout_envelope",
    "health_envelope",
]
