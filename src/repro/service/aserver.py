"""The asyncio serving front end: concurrent compiles over a process pool.

:class:`AsyncCompilationServer` is the scale-out counterpart of the
threaded :class:`~repro.service.server.CompilationServer`.  The event
loop owns admission control, caching, and response assembly; the
CPU-bound pipeline work runs in an executor (by default a
``ProcessPoolExecutor`` of forked workers, each keeping one warm
:class:`~repro.service.compiler.CompilationService`), so one slow
compile never stalls the accept loop or other in-flight requests.

Request lifecycle::

    accept ──► admission check ──► semaphore ──► cache lookup ──► hit?
       │    (active ≥ max+queue        (max_concurrency           │yes
       │     → 503 + Retry-After)       slots)                    ▼
       │                                  │no-hit            envelope
       │                                  ▼
       │                          run_backend in executor
       │                          (asyncio.wait_for → 504)
       │                                  │
       └──────────────────────── cache.put + metering ◄───────────┘

* **Bounded queue** — at most ``max_concurrency`` requests execute and
  at most ``queue_depth`` more wait on the semaphore; anything beyond
  that is shed immediately with **503** and a ``Retry-After`` header
  (see :mod:`repro.service.client` for the matching backoff).
* **Per-request timeout** — ``asyncio.wait_for(..., request_timeout)``
  bounds queue-wait plus compute; expiry answers **504**.  The executor
  job itself is left to finish (a process-pool future cannot be
  interrupted) and its artifact still lands in the worker's own cache.
* **Caching** — the parent process consults its (optionally sharded)
  cache before shipping work out, and stores the artifact on the way
  back, so concurrent identical requests converge to one compile plus
  N−1 hits.

The HTTP surface is the same as the threaded server's: ``/v1/*`` with
the :mod:`repro.service.v1` envelope, plus the deprecated unversioned
shims with ``Deprecation``/``Link`` headers.  Requests are parsed by a
deliberately small HTTP/1.1 reader (stdlib-only; every response is
``Connection: close``).

For tests and synchronous callers :class:`AsyncServerThread` runs the
whole event loop in a daemon thread behind a context manager.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor
from http import HTTPStatus
from typing import Optional
from urllib.parse import urlparse

from . import v1
from .backends import (
    Backend,
    artifact_for,
    get_backend,
    meter_backend,
    payload_from_artifact,
    resolve_backends,
    run_backend,
    status_for,
)
from .compiler import CompilationService
from .fingerprint import CompileOptions
from .server import (
    MAX_SOURCE_BYTES,
    RequestError,
    _parse_request,
    parse_fanout_request,
)

#: Upper bound on the request head (request line + headers).
MAX_HEADER_BYTES = 16_384

#: Seconds a shed client is told to wait before retrying.
RETRY_AFTER_SECONDS = 1


def _default_executor(workers: int) -> ProcessPoolExecutor:
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


class AsyncCompilationServer:
    """asyncio front end over one :class:`CompilationService`.

    ``executor`` defaults to a fork-based ``ProcessPoolExecutor`` with
    ``max_concurrency`` workers (owned, and shut down by
    :meth:`stop`).  Tests inject a ``ThreadPoolExecutor`` so custom
    in-process backends and monkeypatches reach the runner.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 service: Optional[CompilationService] = None, *,
                 executor: Optional[Executor] = None,
                 max_concurrency: int = 4,
                 queue_depth: int = 8,
                 request_timeout: float = 30.0,
                 quiet: bool = True):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        self.host = host
        self.port = port
        self.service = service if service is not None else CompilationService()
        self.max_concurrency = max_concurrency
        self.queue_depth = queue_depth
        self.request_timeout = request_timeout
        self.quiet = quiet
        self.executor = executor
        self._owns_executor = executor is None
        self._server: Optional[asyncio.base_events.Server] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._active = 0
        self._started = time.monotonic()
        self.address: Optional[tuple[str, int]] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        if self.executor is None:
            self.executor = _default_executor(self.max_concurrency)
        self._semaphore = asyncio.Semaphore(self.max_concurrency)
        self._started = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._owns_executor and self.executor is not None:
            self.executor.shutdown(wait=False, cancel_futures=True)
            self.executor = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    @property
    def inflight(self) -> int:
        """Requests currently admitted (executing or queued)."""
        return self._active

    # -- metering ------------------------------------------------------

    def _observe(self, route: str, status: int) -> None:
        self.service.metrics.counter(
            "mvec_http_requests_total", "HTTP requests by route/status",
            route=route, status=str(status)).inc()

    def _gauge_inflight(self) -> None:
        self.service.metrics.gauge(
            "mvec_inflight_requests",
            "Admitted requests currently in flight").set(self._active)

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            status, body, content_type, extra = await self._handle_request(
                reader)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as error:  # noqa: BLE001 — keep the loop alive
            status = 500
            body = json.dumps(
                v1.error_envelope("internal", str(error))).encode()
            content_type, extra = "application/json", []
        try:
            self._write_response(writer, status, body, content_type, extra)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _read_head(self, reader: asyncio.StreamReader
                         ) -> tuple[str, str, dict[str, str]]:
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > MAX_HEADER_BYTES:
            raise RequestError(431, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise RequestError(400, f"malformed request line: {lines[0]!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: dict[str, str]) -> bytes:
        try:
            length = int(headers.get("content-length", 0))
        except ValueError:
            raise RequestError(400, "bad Content-Length")
        if length > MAX_SOURCE_BYTES:
            raise RequestError(413,
                               f"body exceeds {MAX_SOURCE_BYTES} bytes")
        if length <= 0:
            return b""
        return await reader.readexactly(length)

    def _write_response(self, writer: asyncio.StreamWriter, status: int,
                        body: bytes, content_type: str,
                        extra_headers: list[tuple[str, str]]) -> None:
        try:
            reason = HTTPStatus(status).phrase
        except ValueError:
            reason = "Unknown"
        head = [f"HTTP/1.1 {status} {reason}",
                "Server: mvec-aserve",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        head += [f"{name}: {value}" for name, value in extra_headers]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)

    # -- routing -------------------------------------------------------

    async def _handle_request(self, reader: asyncio.StreamReader
                              ) -> tuple[int, bytes, str, list]:
        path = "?"
        try:
            try:
                method, target, headers = await self._read_head(reader)
            except asyncio.LimitOverrunError:
                raise RequestError(431, "request head too large")
            url = urlparse(target)
            path = url.path
            if method == "GET":
                return self._handle_get(url)
            if method == "POST":
                body = await self._read_body(reader, headers)
                return await self._handle_post(url, body)
            self._observe(url.path, 405)
            return (405,
                    json.dumps(v1.error_envelope(
                        "request", f"method {method} not allowed")).encode(),
                    "application/json", [])
        except RequestError as error:
            self._observe(path, error.status)
            return (error.status,
                    json.dumps(v1.error_envelope(
                        "request", str(error))).encode(),
                    "application/json", [])

    def _handle_get(self, url) -> tuple[int, bytes, str, list]:
        if url.path in ("/v1/healthz", "/healthz"):
            extra_headers = ([] if url.path.startswith("/v1/")
                             else v1.deprecation_headers(url.path))
            uptime = time.monotonic() - self._started
            if url.path == "/v1/healthz":
                payload = v1.health_envelope(
                    self.service, uptime,
                    extra={"server": "async", "inflight": self._active})
            else:
                payload = {"ok": True,
                           "fingerprint": self.service.fingerprint,
                           "uptime_seconds": uptime,
                           "cache": self.service.cache.stats.to_dict()}
            self._observe(url.path, 200)
            return 200, json.dumps(payload).encode(), "application/json", \
                extra_headers
        if url.path in ("/v1/metrics", "/metrics"):
            extra_headers = ([] if url.path.startswith("/v1/")
                             else v1.deprecation_headers(url.path))
            self._observe(url.path, 200)
            if "format=json" in (url.query or ""):
                body = json.dumps(self.service.metrics.to_json()).encode()
                return 200, body, "application/json", extra_headers
            text = self.service.metrics.render_prometheus()
            return (200, text.encode(), "text/plain; version=0.0.4",
                    extra_headers)
        self._observe(url.path, 404)
        return (404, json.dumps(v1.error_envelope(
            "request", f"no such endpoint: {url.path}")).encode(),
            "application/json", [])

    _LEGACY_POSTS = {"/vectorize": "vectorize", "/translate": "translate",
                     "/lint": "lint", "/audit": "audit"}

    async def _handle_post(self, url, body: bytes
                           ) -> tuple[int, bytes, str, list]:
        is_v1 = url.path.startswith("/v1/")
        if is_v1:
            op = url.path[len("/v1/"):]
            if op not in v1.V1_POST_OPS:
                raise RequestError(404, f"no such endpoint: {url.path}")
            extra_headers: list = []
        elif url.path in self._LEGACY_POSTS:
            op = self._LEGACY_POSTS[url.path]
            extra_headers = v1.deprecation_headers(url.path)
        else:
            raise RequestError(404, f"no such endpoint: {url.path}")

        # Admission control: shed immediately once the queue is full.
        if self._active >= self.max_concurrency + self.queue_depth:
            self._observe(url.path, 503)
            self.service.metrics.counter(
                "mvec_requests_shed_total",
                "Requests shed at admission (queue full)").inc()
            return (503,
                    json.dumps(v1.error_envelope(
                        "saturated",
                        f"queue full ({self._active} in flight); "
                        f"retry later")).encode(),
                    "application/json",
                    extra_headers + [("Retry-After",
                                      str(RETRY_AFTER_SECONDS))])

        self._active += 1
        self._gauge_inflight()
        try:
            status, payload = await asyncio.wait_for(
                self._execute(op, body),
                timeout=self.request_timeout)
        except asyncio.TimeoutError:
            self._observe(url.path, 504)
            return (504,
                    json.dumps(v1.error_envelope(
                        "timeout",
                        f"request exceeded "
                        f"{self.request_timeout:g}s")).encode(),
                    "application/json", extra_headers)
        finally:
            self._active -= 1
            self._gauge_inflight()

        raw = payload.pop("_raw", None)
        if not is_v1:
            payload = self._legacy_payload(op, payload, raw)
        self._observe(url.path, status)
        return (status, json.dumps(payload).encode(), "application/json",
                extra_headers)

    @staticmethod
    def _legacy_payload(op: str, envelope_payload: dict,
                        raw: Optional[dict]) -> dict:
        """The legacy (pre-v1) response shape for a shim route."""
        if raw is None:
            return envelope_payload
        if op == "lint" and not raw.get("error"):
            return {"ok": True, **raw}
        return raw

    # -- execution -----------------------------------------------------

    async def _execute(self, op: str, body: bytes) -> tuple[int, dict]:
        """One admitted request → ``(status, v1 envelope)``.

        The envelope carries the raw backend payload under ``"_raw"``
        (popped before serialization) so the legacy shims can recover
        their historical response shapes.
        """
        assert self._semaphore is not None
        async with self._semaphore:
            if op == "fanout":
                source, options, names = parse_fanout_request(body)
                try:
                    backends = resolve_backends(names)
                except ValueError as error:
                    raise RequestError(400, str(error))
                outcomes = await asyncio.gather(
                    *(self._run_one(b, source, b.options_for(options))
                      for b in backends))
                results = {b.name: outcome
                           for b, outcome in zip(backends, outcomes)}
                return v1.fanout_envelope(
                    results, {b.name: b for b in backends})
            backend = get_backend(op)
            source, options = _parse_request(body)
            status, payload = await self._run_one(
                backend, source, backend.options_for(options))
            envelope_payload = v1.envelope_for(backend, payload)
            envelope_payload["_raw"] = payload
            return status, envelope_payload

    async def _run_one(self, backend: Backend, source: str,
                       options: CompileOptions) -> tuple[int, dict]:
        """Run one backend: parent cache first, executor on a miss."""
        start = time.perf_counter()
        key: Optional[str] = None
        if backend.cacheable:
            key = backend.cache_key_for(source, options,
                                        self.service.fingerprint)
            artifact = self.service._cache_lookup(key)
            if artifact is not None:
                payload = payload_from_artifact(backend, artifact, key=key)
                status = status_for(backend, payload)
                meter_backend(self.service.metrics, backend.name,
                              time.perf_counter() - start,
                              ok=status < 400)
                return status, payload

        loop = asyncio.get_running_loop()
        try:
            payload = await loop.run_in_executor(
                self.executor, run_backend, backend.name, source,
                options.to_dict())
        except Exception as error:  # noqa: BLE001 — broken pool, pickling
            from .backends import failure_payload
            payload = failure_payload(backend, type(error).__name__,
                                      str(error))
        # The worker's own warm cache may have answered, but from this
        # serving tier's perspective the request was a miss.
        payload["cached"] = False
        if key is not None:
            artifact = artifact_for(backend, payload)
            if artifact is not None:
                self.service.cache.put(key, artifact)
        for stage, seconds in (payload.get("timings") or {}).items():
            self.service.metrics.histogram(
                "mvec_stage_seconds", "Per-stage compile latency",
                stage=stage).observe(seconds)
        status = status_for(backend, payload)
        meter_backend(self.service.metrics, backend.name,
                      time.perf_counter() - start, ok=status < 400)
        return status, payload


# ---------------------------------------------------------------------------
# Synchronous wrappers
# ---------------------------------------------------------------------------


class AsyncServerThread:
    """Run an :class:`AsyncCompilationServer` in a daemon thread.

    Context manager for tests, benchmarks, and the CLI's foreground
    mode::

        with AsyncServerThread(service=svc, max_concurrency=4) as srv:
            requests.post(f"http://{srv.host}:{srv.port}/v1/vectorize", ...)
    """

    def __init__(self, **kwargs):
        self.server = AsyncCompilationServer(**kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "AsyncServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> tuple[str, int]:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever,
                                        daemon=True, name="mvec-aserve")
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self.server.start(),
                                                  self._loop)
        return future.result(timeout=10)

    def stop(self) -> None:
        if self._loop is None:
            return
        asyncio.run_coroutine_threadsafe(self.server.stop(),
                                         self._loop).result(timeout=10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._loop.close()
        self._loop = None
        self._thread = None

    @property
    def host(self) -> str:
        assert self.server.address is not None
        return self.server.address[0]

    @property
    def port(self) -> int:
        assert self.server.address is not None
        return self.server.address[1]


def serve_async(host: str, port: int,
                service: Optional[CompilationService] = None,
                quiet: bool = False, **kwargs) -> int:
    """Run the async front end until interrupted (CLI entry point)."""
    import sys

    async def _main() -> None:
        server = AsyncCompilationServer(host, port, service, quiet=quiet,
                                        **kwargs)
        bound = await server.start()
        print(f"mvec serve --async: listening on "
              f"http://{bound[0]}:{bound[1]} "
              f"(pipeline {server.service.fingerprint}, "
              f"{server.max_concurrency} workers, "
              f"queue {server.queue_depth})", file=sys.stderr, flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


__all__ = [
    "MAX_HEADER_BYTES",
    "RETRY_AFTER_SECONDS",
    "AsyncCompilationServer",
    "AsyncServerThread",
    "serve_async",
]
