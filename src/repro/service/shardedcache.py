"""Consistent-hash sharding over the two-tier compilation cache.

:class:`ShardedCache` spreads fingerprint keys across N independent
:class:`~repro.service.cache.CompilationCache` shards — each with its
own memory LRU, its own on-disk directory (``<dir>/shard-NNN/``), and
its own lock — so concurrent front ends (the async server's request
tasks, the threaded server's handler threads) never serialize on one
cache-wide lock, and the disk tier can later be mounted across hosts.

Routing is a **consistent-hash ring**: every shard owns
:data:`DEFAULT_VNODES` pseudo-random points on a 64-bit ring, and a key
goes to the shard owning the first point at or after the key's own ring
position.  Cache keys are already sha256 hex digests (see
:func:`repro.service.fingerprint.cache_key`), so the key's leading 16
hex chars *are* its ring position — no rehash on the hot path.

Why a ring instead of ``hash(key) % N``: :meth:`resize` (rebalance on a
shard-count change) only re-homes the ~``K/N`` entries whose owning arc
actually moved, instead of reshuffling nearly every key.  Re-homing
moves live memory entries between LRUs and renames disk entry files
into their new shard directory — atomic per entry, and any entry a
concurrent reader misses mid-move is simply recompiled (the cache is
content-addressed; a miss is never wrong, only slower).

The class is drop-in compatible with :class:`CompilationCache` where
the service touches it: ``get``/``put``, a ``stats`` object with the
same fields (here a live view aggregating over shards), and
``fingerprint``.
"""

from __future__ import annotations

import hashlib
import os
from bisect import bisect_left
from dataclasses import dataclass
from pathlib import Path
from threading import Lock
from typing import Optional

from .cache import CompilationCache
from .fingerprint import pipeline_fingerprint

#: Ring points per shard.  128 keeps the per-shard load within a few
#: percent of uniform for thousands of keys while the ring stays tiny
#: (N * 128 sorted ints, built once per resize).
DEFAULT_VNODES = 128


def _ring_point(token: str) -> int:
    """64-bit ring position of an arbitrary token."""
    return int(hashlib.sha256(token.encode()).hexdigest()[:16], 16)


def _key_point(key: str) -> int:
    """Ring position of a cache key (sha256 hex: reuse its own bits)."""
    try:
        return int(key[:16], 16)
    except ValueError:
        return _ring_point(key)


class AggregateStats:
    """Live, read-only aggregation of per-shard :class:`CacheStats`.

    Mirrors the :class:`~repro.service.cache.CacheStats` attribute
    surface so callers written against a single cache (the service's
    hit/miss metering, ``/healthz``) work unchanged; every attribute
    read re-sums the shards, so "snapshot, operate, compare" patterns
    observe fresh values.
    """

    _FIELDS = ("memory_hits", "disk_hits", "misses", "writes",
               "evictions", "dropped_stale", "dropped_corrupt")

    def __init__(self, cache: "ShardedCache"):
        self._cache = cache

    def _sum(self, attr: str) -> int:
        return sum(getattr(shard.stats, attr)
                   for shard in self._cache.shards)

    def __getattr__(self, attr: str):
        if attr in self._FIELDS:
            return self._sum(attr)
        raise AttributeError(attr)

    @property
    def hits(self) -> int:
        return self._sum("memory_hits") + self._sum("disk_hits")

    @property
    def lookups(self) -> int:
        return self.hits + self._sum("misses")

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        out = {field: self._sum(field) for field in self._FIELDS}
        out["hits"] = out["memory_hits"] + out["disk_hits"]
        out["hit_rate"] = self.hit_rate
        out["shards"] = self._cache.shard_stats()
        return out


@dataclass
class RebalanceReport:
    """What one :meth:`ShardedCache.resize` moved."""

    shards_before: int
    shards_after: int
    moved_memory: int = 0
    moved_disk: int = 0

    @property
    def moved(self) -> int:
        return self.moved_memory + self.moved_disk

    def to_dict(self) -> dict:
        return {"shards_before": self.shards_before,
                "shards_after": self.shards_after,
                "moved_memory": self.moved_memory,
                "moved_disk": self.moved_disk,
                "moved": self.moved}


class ShardedCache:
    """N consistent-hashed :class:`CompilationCache` shards behind the
    single-cache interface."""

    def __init__(self, shards: int = 4, capacity: int = 256,
                 directory: Optional[Path | str] = None,
                 fingerprint: Optional[str] = None,
                 vnodes: int = DEFAULT_VNODES):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.capacity = capacity
        self.directory = Path(directory) if directory is not None else None
        self.fingerprint = fingerprint or pipeline_fingerprint()
        self.vnodes = vnodes
        self.shards: list[CompilationCache] = []
        self._locks: list[Lock] = []
        self._ring: list[tuple[int, int]] = []
        self._resize_lock = Lock()
        self._grow_to(shards)
        self._rebuild_ring()
        self.stats = AggregateStats(self)

    # -- construction --------------------------------------------------

    def _shard_directory(self, index: int) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"shard-{index:03d}"

    def _per_shard_capacity(self, count: int) -> int:
        return max(1, self.capacity // count)

    def _grow_to(self, count: int) -> None:
        while len(self.shards) < count:
            index = len(self.shards)
            self.shards.append(CompilationCache(
                capacity=self._per_shard_capacity(count),
                directory=self._shard_directory(index),
                fingerprint=self.fingerprint))
            self._locks.append(Lock())

    def _rebuild_ring(self) -> None:
        ring = []
        for index in range(len(self.shards)):
            for vnode in range(self.vnodes):
                ring.append((_ring_point(f"shard-{index}:vnode-{vnode}"),
                             index))
        ring.sort()
        self._ring = ring

    # -- routing -------------------------------------------------------

    def shard_index(self, key: str) -> int:
        """Which shard owns ``key`` (first ring point at/after it)."""
        ring = self._ring
        position = bisect_left(ring, (_key_point(key),))
        if position == len(ring):
            position = 0          # wrap around the ring
        return ring[position][1]

    # -- the CompilationCache interface --------------------------------

    def get(self, key: str) -> Optional[dict]:
        index = self.shard_index(key)
        with self._locks[index]:
            return self.shards[index].get(key)

    def put(self, key: str, artifact: dict) -> None:
        index = self.shard_index(key)
        with self._locks[index]:
            self.shards[index].put(key, artifact)

    # -- introspection -------------------------------------------------

    def shard_stats(self) -> list[dict]:
        """Per-shard statistics, index order."""
        out = []
        for index, shard in enumerate(self.shards):
            out.append({
                "shard": index,
                "memory_entries": len(shard.memory),
                **shard.stats.to_dict(),
            })
        return out

    def distribution(self, keys) -> list[int]:
        """How many of ``keys`` each shard would own (for tests/bench)."""
        counts = [0] * len(self.shards)
        for key in keys:
            counts[self.shard_index(key)] += 1
        return counts

    # -- rebalance-on-resize -------------------------------------------

    def resize(self, shards: int) -> RebalanceReport:
        """Change the shard count and re-home misplaced entries.

        Thanks to consistent hashing only the entries whose owning arc
        moved are touched — ~``K/N`` of them, not all ``K``.  The call
        serializes against all shard locks; concurrent ``get``/``put``
        either complete before the new ring is installed or run after
        the move (a racing reader that looked at the old home sees a
        miss and recompiles — safe, never stale).
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        with self._resize_lock:
            before = len(self.shards)
            report = RebalanceReport(before, shards)
            if shards == before:
                return report
            acquired = list(self._locks)
            for lock in acquired:
                lock.acquire()
            try:
                removed: list[CompilationCache] = []
                if shards > before:
                    self._grow_to(shards)     # appends shards and locks
                else:
                    removed = self.shards[shards:]
                    del self.shards[shards:]
                    del self._locks[shards:]
                per_shard = self._per_shard_capacity(shards)
                for shard in self.shards:
                    shard.memory.capacity = per_shard
                self._rebuild_ring()
                self._rehome(removed, report)
            finally:
                for lock in acquired:
                    lock.release()
            return report

    def rebalance(self) -> RebalanceReport:
        """Re-home any misplaced entries without changing the count
        (e.g. after pointing the cache at a directory written under a
        different shard layout)."""
        with self._resize_lock:
            report = RebalanceReport(len(self.shards), len(self.shards))
            acquired = list(self._locks)
            for lock in acquired:
                lock.acquire()
            try:
                self._rehome([], report)
            finally:
                for lock in acquired:
                    lock.release()
            return report

    def _rehome(self, removed: list[CompilationCache],
                report: RebalanceReport) -> None:
        """Move every entry whose owning shard changed.  Caller holds
        all shard locks."""
        sources = list(enumerate(self.shards))
        sources += [(None, shard) for shard in removed]
        for source_index, shard in sources:
            for key in shard.memory.keys():
                target = self.shard_index(key)
                if target == source_index:
                    continue
                artifact = shard.memory.pop(key)
                if artifact is not None:
                    self.shards[target].memory.put(key, artifact)
                    report.moved_memory += 1
            if shard.disk is None:
                continue
            for path in list(shard.disk.directory.glob("*/*.json")):
                key = path.stem
                target = self.shard_index(key)
                if target == source_index:
                    continue
                target_disk = self.shards[target].disk
                if target_disk is None:
                    continue
                destination = target_disk.path_for(key)
                destination.parent.mkdir(parents=True, exist_ok=True)
                try:
                    os.replace(path, destination)
                    report.moved_disk += 1
                except OSError:
                    pass


__all__ = [
    "DEFAULT_VNODES",
    "AggregateStats",
    "RebalanceReport",
    "ShardedCache",
]
