"""A stdlib v1 client with retry/backoff for the serving front ends.

:class:`ServiceClient` speaks the ``/v1`` envelope protocol to either
front end (threaded or async).  Its one interesting behavior is the
**retry policy**, matched to the async server's load shedding:

* **503 (saturated)** — the server shed the request at admission; the
  client sleeps ``Retry-After`` seconds (or the backoff schedule when
  the header is missing) and retries, up to ``max_retries`` times.
* **504 (timeout)** and connection errors — retried on the exponential
  backoff schedule (``backoff * 2**attempt``, capped); the request may
  have warmed the server cache, so the retry is usually cheaper.
* **4xx / 422** — never retried: the request itself is wrong, or the
  compile legitimately failed.

Responses come back as :class:`ClientResponse` (status + parsed
envelope + headers), so callers can assert on ``Deprecation`` headers
and cache flags in tests.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

#: Statuses worth retrying: shed (503) and request-timeout (504).
RETRYABLE_STATUSES = (503, 504)


class ServiceUnavailable(Exception):
    """All retries exhausted (the last status/error is attached)."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


@dataclass
class ClientResponse:
    """One HTTP exchange: status + parsed JSON body + headers."""

    status: int
    body: dict
    headers: dict[str, str] = field(default_factory=dict)
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return bool(self.body.get("ok"))

    @property
    def deprecated(self) -> bool:
        return self.headers.get("deprecation", "").lower() == "true"

    @property
    def result(self):
        return self.body.get("result")


@dataclass
class ServiceClient:
    """v1 client for one server, with bounded retry/backoff.

    ``sleep`` is injectable so tests can count/skip the waits.
    """

    host: str = "127.0.0.1"
    port: int = 8032
    timeout: float = 60.0
    max_retries: int = 3
    backoff: float = 0.1
    backoff_cap: float = 2.0
    sleep: Callable[[float], None] = time.sleep

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- transport -----------------------------------------------------

    def _exchange(self, method: str, path: str,
                  payload: Optional[dict] = None
                  ) -> tuple[int, dict, dict[str, str]]:
        url = self.base_url + path
        data = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        request = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                body = json.loads(response.read().decode("utf-8"))
                headers = {k.lower(): v for k, v in
                           response.headers.items()}
                return response.status, body, headers
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", "replace")
            try:
                body = json.loads(raw)
            except json.JSONDecodeError:
                body = {"ok": False, "error": {"type": "http",
                                               "message": raw}}
            headers = {k.lower(): v for k, v in error.headers.items()}
            return error.code, body, headers

    def request(self, method: str, path: str,
                payload: Optional[dict] = None) -> ClientResponse:
        """One request with the retry policy applied."""
        last_status: Optional[int] = None
        last_error: Optional[str] = None
        for attempt in range(self.max_retries + 1):
            try:
                status, body, headers = self._exchange(method, path, payload)
            except (urllib.error.URLError, ConnectionError,
                    TimeoutError) as error:
                last_status, last_error = None, str(error)
                if attempt >= self.max_retries:
                    break
                self.sleep(self._backoff_delay(attempt))
                continue
            if status not in RETRYABLE_STATUSES:
                return ClientResponse(status, body, headers,
                                      attempts=attempt + 1)
            last_status = status
            last_error = (body.get("error") or {}).get("message")
            if attempt >= self.max_retries:
                break
            self.sleep(self._retry_delay(headers, attempt))
        raise ServiceUnavailable(
            f"{method} {path} failed after "
            f"{self.max_retries + 1} attempts: "
            f"{last_error or last_status}", status=last_status)

    def _backoff_delay(self, attempt: int) -> float:
        return min(self.backoff * (2 ** attempt), self.backoff_cap)

    def _retry_delay(self, headers: dict[str, str], attempt: int) -> float:
        retry_after = headers.get("retry-after")
        if retry_after:
            try:
                return min(float(retry_after), self.backoff_cap)
            except ValueError:
                pass
        return self._backoff_delay(attempt)

    # -- v1 operations -------------------------------------------------

    def _post_op(self, op: str, source: str,
                 options: Optional[dict] = None) -> ClientResponse:
        payload: dict = {"source": source}
        if options:
            payload["options"] = options
        return self.request("POST", f"/v1/{op}", payload)

    def vectorize(self, source: str,
                  options: Optional[dict] = None) -> ClientResponse:
        return self._post_op("vectorize", source, options)

    def translate(self, source: str,
                  options: Optional[dict] = None) -> ClientResponse:
        return self._post_op("translate", source, options)

    def lint(self, source: str) -> ClientResponse:
        return self._post_op("lint", source)

    def audit(self, source: str,
              options: Optional[dict] = None) -> ClientResponse:
        return self._post_op("audit", source, options)

    def fanout(self, source: str, options: Optional[dict] = None,
               backends: Optional[Sequence[str]] = None) -> ClientResponse:
        payload: dict = {"source": source}
        if options:
            payload["options"] = options
        if backends:
            payload["backends"] = list(backends)
        return self.request("POST", "/v1/fanout", payload)

    def healthz(self) -> ClientResponse:
        return self.request("GET", "/v1/healthz")

    def metrics_json(self) -> ClientResponse:
        return self.request("GET", "/v1/metrics?format=json")


__all__ = [
    "RETRYABLE_STATUSES",
    "ClientResponse",
    "ServiceClient",
    "ServiceUnavailable",
]
