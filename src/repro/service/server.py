"""The threaded serving front end: a stdlib-only JSON API.

Two transports share one :class:`CompilationService`:

* **HTTP** (:class:`CompilationServer`, a ``ThreadingHTTPServer``).
  The current surface is versioned under ``/v1`` and answers with the
  uniform envelope described in :mod:`repro.service.v1`::

      POST /v1/vectorize   {"source": "...", "options": {...}?}
      POST /v1/translate   same body; forces the NumPy backend
      POST /v1/lint        static diagnostics (diagnostics are data)
      POST /v1/audit       compile + independent legality audit
      POST /v1/fanout      {"source", "options"?, "backends"?} — run
                           several backends concurrently, keyed map
      GET  /v1/healthz     liveness + fingerprint + cache stats
      GET  /v1/metrics     Prometheus text (``?format=json`` for JSON)

  The legacy unversioned paths (``/vectorize``, ``/translate``,
  ``/lint``, ``/audit``, ``/healthz``, ``/metrics``) still answer with
  their historical payload shapes, but as **deprecated shims**: every
  response carries ``Deprecation: true`` and a ``Link`` to the v1
  successor route.  Nothing the client sends can crash a worker
  thread — every handler path ends in a JSON response.

* **stdio JSON-lines** (:func:`serve_stdio`) for embedding ``mvec`` in
  another process without a port: one request object per input line
  (``{"op": "vectorize"|"translate"|"lint"|"audit"|"fanout"|"health"|
  "metrics", ...}``), one response object per output line, in order.
  EOF ends the session.

For scale-out serving (asyncio + process-pool executor, bounded queue,
503 shedding) see :mod:`repro.service.aserver`.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Optional
from urllib.parse import urlparse

from . import v1
from .backends import fanout_sync, get_backend, resolve_backends
from .compiler import CompilationService
from .fingerprint import CompileOptions

#: Reject request bodies larger than this (pathological inputs should
#: fail fast, not occupy a compile slot).
MAX_SOURCE_BYTES = 1_000_000


class RequestError(Exception):
    """A client error with an HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _parse_request(raw: bytes | str, force_backend: Optional[str] = None
                   ) -> tuple[str, CompileOptions]:
    """Validate a vectorize/translate payload into (source, options)."""
    payload = _parse_json_object(raw)
    source = payload.get("source")
    if not isinstance(source, str):
        raise RequestError(400, "missing required string field 'source'")
    options_data = payload.get("options", {})
    if force_backend is not None:
        options_data = {**options_data, "backend": force_backend}
    try:
        options = CompileOptions.from_dict(options_data)
    except (ValueError, TypeError) as error:
        raise RequestError(400, f"bad options: {error}")
    return source, options


def _parse_json_object(raw: bytes | str) -> dict:
    try:
        payload = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise RequestError(400, f"invalid JSON: {error}")
    if not isinstance(payload, dict):
        raise RequestError(400, "request body must be a JSON object")
    return payload


def parse_fanout_request(raw: bytes | str
                         ) -> tuple[str, CompileOptions, Optional[list]]:
    """Validate a fan-out payload into (source, options, backends)."""
    source, options = _parse_request(raw)
    payload = _parse_json_object(raw)
    backends = payload.get("backends")
    if backends is not None and (
            not isinstance(backends, list)
            or not all(isinstance(name, str) for name in backends)):
        raise RequestError(400, "'backends' must be a list of names")
    return source, options, backends


def handle_compile(service: CompilationService, raw: bytes | str,
                   force_backend: Optional[str] = None) -> tuple[int, dict]:
    """Shared vectorize/translate handler → (HTTP status, response dict)."""
    source, options = _parse_request(raw, force_backend)
    result = service.compile(source, options)
    return (200 if result.ok else 422), result.to_dict()


def handle_lint(service: CompilationService, raw: bytes | str
                ) -> tuple[int, dict]:
    """``POST /lint`` handler.  Diagnostics are data, not failures:
    a well-formed request always gets 200, with lex/parse errors
    reported as E001/E002 diagnostics in the body."""
    source, _options = _parse_request(raw)
    payload = service.lint(source)
    return 200, {"ok": True, **payload}


def handle_audit(service: CompilationService, raw: bytes | str
                 ) -> tuple[int, dict]:
    """``POST /audit`` handler: 200 on a passing audit, 422 when the
    compile failed or the auditor found a violation."""
    source, options = _parse_request(raw)
    payload = service.audit(source, options)
    return (200 if payload.get("ok") else 422), payload


def handle_v1_post(service: CompilationService, op: str,
                   raw: bytes | str) -> tuple[int, dict]:
    """One v1 POST op → ``(status, envelope)``, dispatched inline
    through the (thread-safe) service.  Shared by the threaded front
    end and the stdio transport."""
    if op not in v1.V1_POST_OPS:
        raise RequestError(404, f"no such endpoint: /v1/{op}")
    if op == "fanout":
        source, options, names = parse_fanout_request(raw)
        try:
            backends = {b.name: b for b in resolve_backends(names)}
        except ValueError as error:
            raise RequestError(400, str(error))
        outcome = fanout_sync(service, source, options, names)
        return v1.fanout_envelope(outcome.results, backends)
    backend = get_backend(op)
    source, options = _parse_request(raw)
    from .backends import dispatch_sync, meter_backend, status_for

    start = time.perf_counter()
    payload = dispatch_sync(service, backend, source, options)
    status = status_for(backend, payload)
    meter_backend(service.metrics, backend.name,
                  time.perf_counter() - start, ok=status < 400)
    return status, v1.envelope_for(backend, payload)


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the shared :class:`CompilationService`."""

    server_version = "mvec-serve"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> CompilationService:
        return self.server.service

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", False):
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes,
              content_type: str = "application/json",
              extra_headers: Optional[list[tuple[str, str]]] = None
              ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers or []:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict,
                   extra_headers: Optional[list[tuple[str, str]]] = None
                   ) -> None:
        self._send(status, json.dumps(payload).encode("utf-8"),
                   extra_headers=extra_headers)

    def _send_error(self, status: int, message: str,
                    extra_headers: Optional[list[tuple[str, str]]] = None
                    ) -> None:
        self._send_json(status, {"ok": False,
                                 "error": {"type": "request",
                                           "message": message}},
                        extra_headers=extra_headers)

    def _observe(self, route: str, status: int) -> None:
        # Called BEFORE the response is written: a client that chains
        # request → /metrics must see this request already counted.
        self.service.metrics.counter(
            "mvec_http_requests_total", "HTTP requests by route/status",
            route=route, status=str(status)).inc()

    # -- routes --------------------------------------------------------

    def _health_payload(self) -> dict:
        return {
            "ok": True,
            "fingerprint": self.service.fingerprint,
            "uptime_seconds": time.monotonic() - self.server.started,
            "cache": self.service.cache.stats.to_dict(),
        }

    def _metrics_body(self, query: str) -> tuple[bytes, str]:
        if "format=json" in (query or ""):
            body = json.dumps(self.service.metrics.to_json())
            return body.encode("utf-8"), "application/json"
        text = self.service.metrics.render_prometheus()
        return text.encode("utf-8"), "text/plain; version=0.0.4"

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        url = urlparse(self.path)
        if url.path == "/v1/healthz":
            uptime = time.monotonic() - self.server.started
            payload = v1.health_envelope(
                self.service, uptime, extra={"server": "threaded"})
            self._observe(url.path, 200)
            self._send_json(200, payload)
        elif url.path == "/healthz":
            self._observe(url.path, 200)
            self._send_json(200, self._health_payload(),
                            extra_headers=v1.deprecation_headers(url.path))
        elif url.path == "/v1/metrics":
            self._observe(url.path, 200)
            body, content_type = self._metrics_body(url.query)
            self._send(200, body, content_type=content_type)
        elif url.path == "/metrics":
            self._observe(url.path, 200)
            body, content_type = self._metrics_body(url.query)
            self._send(200, body, content_type=content_type,
                       extra_headers=v1.deprecation_headers(url.path))
        else:
            self._observe(url.path, 404)
            self._send_error(404, f"no such endpoint: {url.path}")

    def do_POST(self) -> None:  # noqa: N802
        url = urlparse(self.path)
        legacy_routes = {"/vectorize": None, "/translate": "numpy",
                         "/lint": None, "/audit": None}
        is_v1 = url.path.startswith("/v1/")
        if not is_v1 and url.path not in legacy_routes:
            self._observe(url.path, 404)
            self._send_error(404, f"no such endpoint: {url.path}")
            return
        deprecated = (v1.deprecation_headers(url.path)
                      if not is_v1 else None)
        try:
            length = int(self.headers.get("Content-Length", 0))
            if length > MAX_SOURCE_BYTES:
                raise RequestError(
                    413, f"body exceeds {MAX_SOURCE_BYTES} bytes")
            raw = self.rfile.read(length)
            if is_v1:
                status, payload = handle_v1_post(
                    self.service, url.path[len("/v1/"):], raw)
            elif url.path == "/lint":
                status, payload = handle_lint(self.service, raw)
            elif url.path == "/audit":
                status, payload = handle_audit(self.service, raw)
            else:
                status, payload = handle_compile(self.service, raw,
                                                 legacy_routes[url.path])
        except RequestError as error:
            self._observe(url.path, error.status)
            if is_v1:
                self._send_json(error.status,
                                v1.error_envelope("request", str(error)))
            else:
                self._send_error(error.status, str(error),
                                 extra_headers=deprecated)
            return
        except Exception as error:  # noqa: BLE001 — keep the thread alive
            self._observe(url.path, 500)
            body = (v1.error_envelope("internal", str(error)) if is_v1
                    else {"ok": False, "error": {"type": "internal",
                                                 "message": str(error)}})
            self._send_json(500, body,
                            extra_headers=None if is_v1 else deprecated)
            return
        self._observe(url.path, status)
        self._send_json(status, payload, extra_headers=deprecated)


class CompilationServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to one :class:`CompilationService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 service: Optional[CompilationService] = None,
                 quiet: bool = False):
        super().__init__(address, ServiceHandler)
        self.service = service if service is not None else CompilationService()
        self.quiet = quiet
        self.started = time.monotonic()


def serve_http(host: str, port: int,
               service: Optional[CompilationService] = None,
               quiet: bool = False) -> int:
    """Run the HTTP front end until interrupted."""
    import sys

    server = CompilationServer((host, port), service, quiet=quiet)
    bound = server.server_address
    print(f"mvec serve: listening on http://{bound[0]}:{bound[1]} "
          f"(pipeline {server.service.fingerprint})", file=sys.stderr,
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


# ---------------------------------------------------------------------------
# stdio JSON-lines transport
# ---------------------------------------------------------------------------


def _stdio_response(service: CompilationService, line: str) -> dict:
    try:
        request = json.loads(line)
    except json.JSONDecodeError as error:
        return {"ok": False, "error": {"type": "request",
                                       "message": f"invalid JSON: {error}"}}
    if not isinstance(request, dict):
        return {"ok": False, "error": {"type": "request",
                                       "message": "request must be an "
                                                  "object"}}
    op = request.get("op", "vectorize")
    if op in ("vectorize", "translate"):
        backend = "numpy" if op == "translate" else None
        try:
            _status, payload = handle_compile(service, line, backend)
        except RequestError as error:
            return {"ok": False, "error": {"type": "request",
                                           "message": str(error)}}
        return payload
    if op == "lint":
        try:
            _status, payload = handle_lint(service, line)
        except RequestError as error:
            return {"ok": False, "error": {"type": "request",
                                           "message": str(error)}}
        return payload
    if op == "audit":
        try:
            _status, payload = handle_audit(service, line)
        except RequestError as error:
            return {"ok": False, "error": {"type": "request",
                                           "message": str(error)}}
        return payload
    if op == "fanout":
        try:
            _status, payload = handle_v1_post(service, "fanout", line)
        except RequestError as error:
            return {"ok": False, "error": {"type": "request",
                                           "message": str(error)}}
        return payload
    if op in ("health", "healthz"):
        return {"ok": True, "fingerprint": service.fingerprint,
                "cache": service.cache.stats.to_dict()}
    if op == "metrics":
        return {"ok": True, "metrics": service.metrics.to_json()}
    return {"ok": False, "error": {"type": "request",
                                   "message": f"unknown op: {op!r}"}}


def serve_stdio(service: Optional[CompilationService] = None,
                stdin: Optional[IO[str]] = None,
                stdout: Optional[IO[str]] = None) -> int:
    """JSON-lines loop: one request per line in, one response per line out."""
    import sys

    service = service if service is not None else CompilationService()
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    for line in stdin:
        if not line.strip():
            continue
        response = _stdio_response(service, line)
        stdout.write(json.dumps(response) + "\n")
        stdout.flush()
    return 0
