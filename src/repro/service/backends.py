"""The backend registry: named compile targets for multi-backend fan-out.

One request can ask the service to run a source against several
*backends* — the paper's vectorizer, the NumPy translator, the static
linter, the legality auditor — concurrently, and get back a result map
keyed by backend name.  This module owns:

* the :class:`Backend` descriptor and the process-global registry
  (:func:`register_backend` / :func:`get_backend`);
* the **executor entry point** :func:`run_backend` — a module-level,
  picklable callable the async front end ships to its process pool
  (each worker process lazily builds one warm
  :class:`~repro.service.compiler.CompilationService` and reuses it for
  every job it is handed);
* the artifact adapters (:func:`artifact_for` /
  :func:`payload_from_artifact`) that let all backends share the one
  content-addressed cache under per-backend key namespaces; and
* :func:`fanout_sync`, the thread-pool fan-out used by the synchronous
  (threaded) front end and the :mod:`repro.api` facade.

Every backend execution is metered in the caller's metrics registry
(``mvec_backend_requests_total`` / ``mvec_backend_seconds`` /
``mvec_backend_errors_total``, labeled by backend).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .fingerprint import CompileOptions, cache_key, salted_cache_key
from .metrics import MetricsRegistry

#: Backends every fan-out request gets when it names none.
DEFAULT_FANOUT = ("vectorize", "translate", "lint", "audit")


@dataclass(frozen=True)
class Backend:
    """One named compile target.

    ``kind`` selects the payload/caching/status conventions:

    * ``"compile"`` — payload is a ``CompileResult`` dict; artifacts
      share the compile cache namespace (``force_backend`` pins the
      pipeline backend, e.g. ``numpy`` for the translator);
    * ``"lint"`` / ``"audit"`` — payload is the corresponding service
      method's dict; artifacts live under a salted key namespace;
    * ``"custom"`` — anything registered by an embedder; the payload
      dict should carry ``ok`` (assumed true when absent).
    """

    name: str
    kind: str
    runner: Callable[[str, dict], dict]
    force_backend: Optional[str] = None
    salt: str = ""
    cacheable: bool = True
    description: str = ""

    def options_for(self, options: CompileOptions) -> CompileOptions:
        """Options with this backend's pipeline backend pinned."""
        if self.force_backend and options.backend != self.force_backend:
            return CompileOptions(**{**options.to_dict(),
                                     "backend": self.force_backend})
        return options

    def cache_key_for(self, source: str, options: CompileOptions,
                      fingerprint: Optional[str] = None) -> str:
        options = self.options_for(options)
        if self.kind == "compile":
            return cache_key(source, options, fingerprint)
        return salted_cache_key(self.salt or self.name, source,
                                options, fingerprint)


# ---------------------------------------------------------------------------
# Executor-side runners.  Each worker process keeps one warm service;
# its small in-process cache is a bonus tier under the serving cache.
# ---------------------------------------------------------------------------

_worker_service = None


def _service():
    global _worker_service
    if _worker_service is None:
        from .compiler import CompilationService
        _worker_service = CompilationService()
    return _worker_service


def _run_vectorize(source: str, options_dict: dict) -> dict:
    options = CompileOptions(**{**options_dict, "backend": "matlab"})
    return _service().compile(source, options).to_dict()


def _run_translate(source: str, options_dict: dict) -> dict:
    options = CompileOptions(**{**options_dict, "backend": "numpy"})
    return _service().compile(source, options).to_dict()


def _run_lint(source: str, options_dict: dict) -> dict:
    return dict(_service().lint(source))


def _run_audit(source: str, options_dict: dict) -> dict:
    options = CompileOptions(**options_dict)
    return dict(_service().audit(source, options))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Add a backend to the registry (``replace=True`` to overwrite)."""
    if not replace and backend.name in _REGISTRY:
        raise ValueError(f"backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> Backend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown backend {name!r} "
                         f"(registered: {sorted(_REGISTRY)})") from None


def backend_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


register_backend(Backend(
    name="vectorize", kind="compile", runner=_run_vectorize,
    force_backend="matlab",
    description="the paper's source-to-source vectorizer"))
register_backend(Backend(
    name="translate", kind="compile", runner=_run_translate,
    force_backend="numpy",
    description="vectorize, then translate to NumPy Python"))
register_backend(Backend(
    name="lint", kind="lint", runner=_run_lint, salt="lint",
    description="static diagnostics (E/W codes)"))
register_backend(Backend(
    name="audit", kind="audit", runner=_run_audit, salt="audit",
    description="compile + independent legality audit"))


def run_backend(name: str, source: str, options_dict: dict) -> dict:
    """Module-level executor entry point: run one backend, return its
    primitive payload dict.  Never raises — a crashing runner comes
    back as a failure payload so the serving loop stays up."""
    backend = get_backend(name)
    try:
        return backend.runner(source, options_dict)
    except Exception as error:  # noqa: BLE001 — isolation is the contract
        return failure_payload(backend, type(error).__name__, str(error))


def failure_payload(backend: Backend, error_type: str,
                    message: str) -> dict:
    """A backend-shaped failure payload (timeouts, crashed runners)."""
    error = {"type": error_type, "message": message}
    if backend.kind == "compile":
        return {"name": "<memory>", "ok": False, "cached": False,
                "cache_key": None, "vectorized": None, "python": None,
                "stats": None, "report_summary": None, "timings": {},
                "elapsed": 0.0, "error": error}
    if backend.kind == "lint":
        return {"file": "<memory>", "diagnostics": [], "errors": 0,
                "warnings": 0, "cached": False, "ok": False,
                "error": error}
    if backend.kind == "audit":
        return {"file": "<memory>", "ok": False, "cached": False,
                "diagnostics": [], "error": error}
    return {"ok": False, "error": error}


# ---------------------------------------------------------------------------
# Cache adapters
# ---------------------------------------------------------------------------


def artifact_for(backend: Backend, payload: dict) -> Optional[dict]:
    """The cache-storable artifact for a payload, or ``None`` when the
    outcome must not be cached (failures may be transient)."""
    if not backend.cacheable:
        return None
    if backend.kind == "compile":
        if not payload.get("ok"):
            return None
        return {"vectorized": payload.get("vectorized"),
                "python": payload.get("python"),
                "stats": payload.get("stats"),
                "report_summary": payload.get("report_summary")}
    if payload.get("error"):
        return None
    data = {k: v for k, v in payload.items() if k != "cached"}
    return {"vectorized": None, backend.kind: data}


def payload_from_artifact(backend: Backend, artifact: dict,
                          name: str = "<memory>",
                          key: Optional[str] = None) -> dict:
    """Rebuild the backend's payload shape from a cache hit."""
    if backend.kind == "compile":
        return {"name": name, "ok": True, "cached": True,
                "cache_key": key,
                "vectorized": artifact.get("vectorized"),
                "python": artifact.get("python"),
                "stats": artifact.get("stats"),
                "report_summary": artifact.get("report_summary"),
                "timings": {}, "elapsed": 0.0, "error": None}
    data = artifact.get(backend.kind) or artifact.get("payload") or {}
    return {**data, "cached": True}


def status_for(backend: Backend, payload: dict) -> int:
    """HTTP status for a payload: lint diagnostics are data (200,
    unless the linter itself crashed); compile/audit failures are
    422."""
    if backend.kind == "lint":
        return 422 if payload.get("error") else 200
    return 200 if payload.get("ok", True) else 422


def meter_backend(metrics: MetricsRegistry, name: str, seconds: float,
                  ok: bool = True) -> None:
    """Per-backend request/latency/error metering."""
    metrics.counter("mvec_backend_requests_total",
                    "Backend executions by backend", backend=name).inc()
    metrics.histogram("mvec_backend_seconds",
                      "Per-backend execution latency",
                      backend=name).observe(seconds)
    if not ok:
        metrics.counter("mvec_backend_errors_total",
                        "Failed backend executions", backend=name).inc()


# ---------------------------------------------------------------------------
# Synchronous fan-out (threaded front end, repro.api facade)
# ---------------------------------------------------------------------------


@dataclass
class FanoutOutcome:
    """Result map of one fan-out: ``name -> (status, payload)``."""

    results: dict[str, tuple[int, dict]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(status < 400 for status, _payload in
                   self.results.values())


def resolve_backends(names: Optional[Sequence[str]]) -> list[Backend]:
    """Validate fan-out backend names (raises ``ValueError`` on an
    unknown or duplicate name, or an empty list)."""
    chosen = tuple(names) if names else DEFAULT_FANOUT
    if not chosen:
        raise ValueError("fan-out needs at least one backend")
    if len(set(chosen)) != len(chosen):
        raise ValueError(f"duplicate backend in {list(chosen)}")
    return [get_backend(name) for name in chosen]


def dispatch_sync(service, backend: Backend, source: str,
                  options: CompileOptions) -> dict:
    """Run one backend inline through a (thread-safe) service, using
    the service's own caching for the standard backends."""
    if backend.kind == "compile":
        return service.compile(source, backend.options_for(options)).to_dict()
    if backend.kind == "lint":
        return dict(service.lint(source))
    if backend.kind == "audit":
        return dict(service.audit(source, options))
    return run_backend(backend.name, source, options.to_dict())


def fanout_sync(service, source: str,
                options: Optional[CompileOptions] = None,
                backends: Optional[Sequence[str]] = None,
                max_workers: Optional[int] = None) -> FanoutOutcome:
    """Run several backends over one source concurrently (threads).

    Used by the threaded front end and :func:`repro.api.fanout`; the
    async front end fans out over its process pool instead.
    """
    options = options or CompileOptions()
    resolved = resolve_backends(backends)

    def run_one(backend: Backend) -> tuple[str, tuple[int, dict]]:
        start = time.perf_counter()
        payload = dispatch_sync(service, backend, source, options)
        status = status_for(backend, payload)
        meter_backend(service.metrics, backend.name,
                      time.perf_counter() - start, ok=status < 400)
        return backend.name, (status, payload)

    workers = max_workers or min(4, len(resolved))
    if workers <= 1 or len(resolved) == 1:
        return FanoutOutcome(dict(run_one(b) for b in resolved))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return FanoutOutcome(dict(pool.map(run_one, resolved)))


__all__ = [
    "DEFAULT_FANOUT",
    "Backend",
    "FanoutOutcome",
    "artifact_for",
    "backend_names",
    "dispatch_sync",
    "failure_payload",
    "fanout_sync",
    "get_backend",
    "meter_backend",
    "payload_from_artifact",
    "register_backend",
    "resolve_backends",
    "run_backend",
    "status_for",
    "unregister_backend",
]
