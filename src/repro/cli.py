"""``mvec`` — command-line interface to the vectorizer.

Usage::

    mvec input.m                 # print vectorized MATLAB to stdout
    mvec input.m -o out.m        # write to a file
    mvec input.m --report        # also print the per-loop report
    mvec input.m --run           # interpret original and vectorized,
                                 #   compare workspaces, print timings
    mvec input.m --emit-python   # print the NumPy-backend translation
    mvec input.m --no-patterns --no-transposes ...   # ablations
    mvec fuzz --n 500 --seed 0   # differential-equivalence fuzzing
"""

from __future__ import annotations

import argparse
import sys
import time

from .errors import ReproError
from .mlang.parser import parse
from .runtime.interp import Interpreter
from .translate.numpy_backend import translate_source
from .vectorizer.checker import CheckOptions
from .vectorizer.driver import Vectorizer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mvec",
        description="Vectorize loop-based MATLAB code (CGO 2007 "
                    "dimension-abstraction approach).")
    parser.add_argument("input", help="MATLAB source file (use '-' for "
                                      "stdin)")
    parser.add_argument("-o", "--output", help="write vectorized MATLAB "
                                               "here instead of stdout")
    parser.add_argument("--report", action="store_true",
                        help="print the per-loop vectorization report")
    parser.add_argument("--stats", action="store_true",
                        help="print aggregate vectorization statistics "
                             "as JSON")
    parser.add_argument("--run", action="store_true",
                        help="interpret both versions, verify equality, "
                             "and print timings")
    parser.add_argument("--emit-python", action="store_true",
                        help="print the NumPy-backend Python translation "
                             "of the vectorized program")
    parser.add_argument("--seed", type=int, default=0,
                        help="runtime RNG seed for --run")
    parser.add_argument("--simplify", action="store_true",
                        help="distribute/cancel transposes in the output "
                             "(the paper's §2.2 'later optimization')")
    parser.add_argument("--no-scalar-temps", dest="scalar_temps",
                        action="store_false",
                        help="disable forward substitution of per-"
                             "iteration scalar temporaries")
    for flag, attr in [("--no-patterns", "patterns"),
                       ("--no-transposes", "transposes"),
                       ("--no-reductions", "reductions"),
                       ("--no-promotion", "promotion"),
                       ("--no-regroup", "product_regroup")]:
        parser.add_argument(flag, dest=attr, action="store_false",
                            help=f"disable the {attr.replace('_', ' ')} "
                                 "mechanism")
    return parser


def build_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mvec fuzz",
        description="Differential-equivalence fuzzing: generate random "
                    "well-formed MATLAB, run it through the interpreter, "
                    "the vectorizer, and the NumPy backend, and verify "
                    "all routes agree.")
    parser.add_argument("--n", type=int, default=100,
                        help="number of programs to generate (default 100)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--shrink", action="store_true",
                        help="minimize mismatching programs and write "
                             "reproducers to --corpus-dir")
    parser.add_argument("--corpus-dir", default="tests/fuzz_corpus",
                        help="where --shrink writes reproducers "
                             "(default tests/fuzz_corpus)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the progress line")
    return parser


def _fuzz_main(argv: list[str]) -> int:
    from .fuzz import run_campaign

    parser = build_fuzz_parser()
    args = parser.parse_args(argv)
    if args.n < 0:
        parser.error(f"--n must be >= 0, got {args.n}")

    def progress(done: int, total: int) -> None:
        if not args.quiet and (done % 100 == 0 or done == total):
            print(f"mvec fuzz: {done}/{total}", file=sys.stderr)

    from pathlib import Path

    result = run_campaign(args.n, seed=args.seed, shrink=args.shrink,
                          corpus_dir=Path(args.corpus_dir) if args.shrink
                          else None,
                          progress=progress)
    print(result.summary(), file=sys.stderr)
    for mismatch in result.mismatches:
        print(f"--- mismatch at index {mismatch.index} ---",
              file=sys.stderr)
        print(mismatch.report.describe(), file=sys.stderr)
        if mismatch.shrunk_source:
            print("--- shrunken reproducer ---", file=sys.stderr)
            print(mismatch.shrunk_source, end="", file=sys.stderr)
        if mismatch.reproducer:
            print(f"--- written to {mismatch.reproducer}", file=sys.stderr)
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fuzz":
        return _fuzz_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.input == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.input, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            print(f"mvec: {error}", file=sys.stderr)
            return 2

    options = CheckOptions(
        patterns=args.patterns,
        transposes=args.transposes,
        reductions=args.reductions,
        promotion=args.promotion,
        product_regroup=args.product_regroup,
    )
    try:
        result = Vectorizer(options=options, simplify=args.simplify,
                            scalar_temps=args.scalar_temps,
                            ).vectorize_source(source)
    except ReproError as error:
        print(f"mvec: {error}", file=sys.stderr)
        return 1

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.source)
    else:
        print(result.source, end="")

    if args.report:
        print("--- report ---", file=sys.stderr)
        print(result.report.summary(), file=sys.stderr)

    if args.stats:
        import json

        print(json.dumps(result.report.stats(), indent=2), file=sys.stderr)

    if args.emit_python:
        unit = translate_source(result.source)
        print("--- python ---")
        print(unit.python_source, end="")

    if args.run:
        status = _run_both(source, result.source, args.seed)
        if status:
            return status
    return 0


def _run_both(original: str, vectorized: str, seed: int) -> int:
    from .fuzz.oracle import comparable_names, diff_workspaces

    programs = {"original": parse(original),
                "vectorized": parse(vectorized)}
    outputs = {}
    for label, program in programs.items():
        start = time.perf_counter()
        try:
            outputs[label] = Interpreter(seed=seed).run(program, env={})
        except ReproError as error:
            print(f"mvec: {label} run failed: {error}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - start
        print(f"--- {label}: {elapsed:.4f} s", file=sys.stderr)
    base, vect = outputs["original"], outputs["vectorized"]
    # Compare every observable output of the original program — a
    # variable the vectorized run *lost* counts as divergence, not just
    # values that differ (loop indices and forward-substituted scalar
    # temporaries are legitimately absent and excluded).
    names = comparable_names(programs["original"])
    divergences = diff_workspaces(base, vect, names, "vectorized")
    if divergences:
        print(f"mvec: outputs diverge: "
              f"{[d.variable for d in divergences]}", file=sys.stderr)
        for divergence in divergences:
            print(f"mvec:   {divergence}", file=sys.stderr)
        return 1
    print("--- workspaces match", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
