"""``mvec`` — command-line interface to the vectorizer.

Usage::

    mvec input.m                 # print vectorized MATLAB to stdout
    mvec a.m b.m c.m             # several files (nonzero exit if any fails)
    mvec input.m -o out.m        # write to a file
    mvec input.m --report        # also print the per-loop report
    mvec input.m --run           # interpret original and vectorized,
                                 #   compare workspaces, print timings
    mvec input.m --emit-python   # print the NumPy-backend translation
    mvec input.m --no-patterns --no-transposes ...   # ablations
    mvec fuzz --n 500 --seed 0   # differential-equivalence fuzzing
    mvec batch *.m --workers 4   # parallel batch compilation
    mvec serve --port 8032       # JSON compile service (HTTP, threaded)
    mvec serve --async --shards 4  # asyncio front end + process pool,
                                 #   consistent-hash sharded cache
    mvec serve --stdio           # JSON-lines compile service (pipes)
    mvec client vectorize in.m   # speak /v1 to a running server
                                 #   (retries 503/504 with backoff)
    mvec lint input.m            # static diagnostics (use-before-def,
                                 #   dead stores, shape conflicts)
    mvec lint --fix input.m      # apply safe autofixes in place
    mvec audit input.m           # compile, then independently re-derive
                                 #   and check vectorization legality
    mvec shapes input.m          # dump the shape engine's inferred
                                 #   environments per scope
    mvec input.m --no-annotations  # vectorize from inference alone
"""

from __future__ import annotations

import argparse
import sys
import time

from .errors import ReproError
from .mlang.parser import parse
from .runtime.interp import Interpreter


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mvec",
        description="Vectorize loop-based MATLAB code (CGO 2007 "
                    "dimension-abstraction approach).")
    parser.add_argument("input", nargs="+",
                        help="MATLAB source file(s) (use '-' for stdin); "
                             "with several files the exit status is "
                             "nonzero if any file fails")
    parser.add_argument("-o", "--output", help="write vectorized MATLAB "
                                               "here instead of stdout")
    parser.add_argument("--report", action="store_true",
                        help="print the per-loop vectorization report")
    parser.add_argument("--stats", action="store_true",
                        help="print aggregate vectorization statistics "
                             "as JSON")
    parser.add_argument("--run", action="store_true",
                        help="interpret both versions, verify equality, "
                             "and print timings")
    parser.add_argument("--emit-python", action="store_true",
                        help="print the NumPy-backend Python translation "
                             "of the vectorized program")
    parser.add_argument("--seed", type=int, default=0,
                        help="runtime RNG seed for --run")
    parser.add_argument("--simplify", action="store_true",
                        help="distribute/cancel transposes in the output "
                             "(the paper's §2.2 'later optimization')")
    parser.add_argument("--verify", action="store_true",
                        help="run the IR verifier between pipeline stages "
                             "(a failure indicates a compiler bug)")
    _add_ablation_flags(parser)
    return parser


def _add_ablation_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-scalar-temps", dest="scalar_temps",
                        action="store_false",
                        help="disable forward substitution of per-"
                             "iteration scalar temporaries")
    parser.add_argument("--no-annotations", dest="use_annotations",
                        action="store_false",
                        help="ignore %%! annotations for analysis and "
                             "rely on shape inference alone (annotations "
                             "still pass through to the output verbatim)")
    for flag, attr in [("--no-patterns", "patterns"),
                       ("--no-transposes", "transposes"),
                       ("--no-reductions", "reductions"),
                       ("--no-promotion", "promotion"),
                       ("--no-regroup", "product_regroup")]:
        parser.add_argument(flag, dest=attr, action="store_false",
                            help=f"disable the {attr.replace('_', ' ')} "
                                 "mechanism")


def _compile_options(args, backend: str):
    """Build service :class:`CompileOptions` from parsed CLI flags."""
    from .service.fingerprint import CompileOptions

    return CompileOptions(
        backend=backend,
        simplify=getattr(args, "simplify", False),
        scalar_temps=args.scalar_temps,
        transposes=args.transposes,
        patterns=args.patterns,
        reductions=args.reductions,
        promotion=args.promotion,
        product_regroup=args.product_regroup,
        verify=getattr(args, "verify", False),
        use_annotations=args.use_annotations,
    )


def build_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mvec fuzz",
        description="Differential-equivalence fuzzing: generate random "
                    "well-formed MATLAB, run it through the interpreter, "
                    "the vectorizer, and the NumPy backend, and verify "
                    "all routes agree.")
    parser.add_argument("--n", type=int, default=100,
                        help="number of programs to generate (default 100)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--shrink", action="store_true",
                        help="minimize mismatching programs and write "
                             "reproducers to --corpus-dir")
    parser.add_argument("--corpus-dir", default="tests/fuzz_corpus",
                        help="where --shrink writes reproducers "
                             "(default tests/fuzz_corpus)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the progress line")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallelize oracle runs across N worker "
                             "processes (default 1)")
    parser.add_argument("--no-lint", dest="lint", action="store_false",
                        help="skip the lint-clean generator invariant")
    parser.add_argument("--no-audit", dest="audit", action="store_false",
                        help="skip the vectorization-legality audit")
    return parser


def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mvec batch",
        description="Compile many MATLAB files in parallel through the "
                    "compilation service (error-isolated: one bad file "
                    "fails that file, never the batch).")
    parser.add_argument("files", nargs="+", help="MATLAB source files")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default min(4, CPUs))")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-file compile timeout in seconds")
    parser.add_argument("-o", "--out-dir",
                        help="write each vectorized file here as "
                             "<stem>.m (and <stem>.py with "
                             "--emit-python)")
    parser.add_argument("--emit-python", action="store_true",
                        help="also produce the NumPy translation")
    parser.add_argument("--json", action="store_true",
                        help="print full structured results as JSON on "
                             "stdout")
    parser.add_argument("--cache-dir",
                        help="shared on-disk compilation cache directory")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-file summary on stderr")
    parser.add_argument("--simplify", action="store_true",
                        help="distribute/cancel transposes in the output")
    parser.add_argument("--verify", action="store_true",
                        help="run the IR verifier between pipeline stages")
    _add_ablation_flags(parser)
    return parser


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mvec lint",
        description="Static diagnostics over MATLAB sources: "
                    "use-before-def, dead stores, and shape conflicts "
                    "on the dimension-abstraction lattice.  Exit status "
                    "is 1 when any *error*-severity diagnostic is "
                    "found; warnings alone exit 0.")
    parser.add_argument("files", nargs="+",
                        help="MATLAB source file(s) (use '-' for stdin)")
    parser.add_argument("--json", action="store_true",
                        help="print structured diagnostics as JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-file summaries; only the exit "
                             "status reports the outcome")
    parser.add_argument("--fix", action="store_true",
                        help="apply safe autofixes in place (delete W201 "
                             "dead stores, strip %%! annotation entries "
                             "for names that no longer occur); stdin "
                             "input prints the fixed source to stdout.  "
                             "Remaining diagnostics are reported on the "
                             "fixed source")
    return parser


def build_audit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mvec audit",
        description="Compile each file, then independently re-derive "
                    "dependences over the original loops and confirm "
                    "the emitted vector code violated none of them.  "
                    "Exit status is 1 when any audit fails.")
    parser.add_argument("files", nargs="+",
                        help="MATLAB source file(s) (use '-' for stdin)")
    parser.add_argument("--json", action="store_true",
                        help="print structured audit results as JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-file summaries")
    parser.add_argument("--simplify", action="store_true",
                        help="audit the simplified-transposes output")
    parser.add_argument("--verify", action="store_true",
                        help="also run the IR verifier between pipeline "
                             "stages while compiling")
    _add_ablation_flags(parser)
    return parser


def build_shapes_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mvec shapes",
        description="Dump the flow-sensitive shape-inference engine's "
                    "verdict: for each scope, every variable's abstract "
                    "dimensionality at scope exit, marked 'annotated' "
                    "(frozen by a %! annotation) or 'inferred'.")
    parser.add_argument("files", nargs="+",
                        help="MATLAB source file(s) (use '-' for stdin)")
    parser.add_argument("--json", action="store_true",
                        help="print structured shape environments as JSON")
    parser.add_argument("--no-annotations", dest="use_annotations",
                        action="store_false",
                        help="ignore %%! annotations and report what "
                             "inference alone can prove")
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mvec serve",
        description="Run the compilation service: the versioned /v1 API "
                    "(POST /v1/vectorize|translate|lint|audit|fanout, "
                    "GET /v1/healthz|/v1/metrics) plus the deprecated "
                    "unversioned shims — or a JSON-lines loop over "
                    "stdin/stdout with --stdio.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8032,
                        help="TCP port (default 8032; 0 picks a free "
                             "port)")
    parser.add_argument("--stdio", action="store_true",
                        help="serve JSON-lines over stdin/stdout instead "
                             "of HTTP")
    parser.add_argument("--async", dest="use_async", action="store_true",
                        help="asyncio front end: CPU-bound compiles run "
                             "in a process pool; saturated queue sheds "
                             "with 503 + Retry-After")
    parser.add_argument("--shards", type=int, default=1,
                        help="split the cache across N consistent-hashed "
                             "shards (default 1 = the plain two-tier "
                             "cache)")
    parser.add_argument("--max-concurrency", type=int, default=4,
                        help="concurrent compiles in flight with --async "
                             "(default 4)")
    parser.add_argument("--queue-depth", type=int, default=8,
                        help="admitted requests allowed to queue beyond "
                             "--max-concurrency before shedding "
                             "(default 8)")
    parser.add_argument("--request-timeout", type=float, default=30.0,
                        help="per-request deadline in seconds with "
                             "--async; expiry answers 504 (default 30)")
    parser.add_argument("--cache-dir",
                        help="enable the on-disk cache tier at this "
                             "directory (memory-only by default)")
    parser.add_argument("--cache-capacity", type=int, default=256,
                        help="in-memory LRU capacity in entries "
                             "(default 256)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request access logs")
    return parser


def build_client_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mvec client",
        description="Talk /v1 to a running 'mvec serve' instance, with "
                    "retry/backoff on 503 (saturated) and 504 (timeout). "
                    "Prints the JSON envelope; exit status 0 iff ok.")
    parser.add_argument("op",
                        choices=["vectorize", "translate", "lint",
                                 "audit", "fanout", "healthz", "metrics"],
                        help="which /v1 operation to invoke")
    parser.add_argument("file", nargs="?",
                        help="MATLAB source file for POST ops ('-' for "
                             "stdin)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="server address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8032,
                        help="server port (default 8032)")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="per-request client timeout in seconds")
    parser.add_argument("--retries", type=int, default=3,
                        help="retry budget for 503/504/connection "
                             "errors (default 3)")
    parser.add_argument("--backends",
                        help="comma-separated backend names for fanout "
                             "(default: all registered)")
    parser.add_argument("--simplify", action="store_true",
                        help="request transpose simplification")
    parser.add_argument("--verify", action="store_true",
                        help="request the IR verifier between stages")
    _add_ablation_flags(parser)
    return parser


def _default_workers() -> int:
    import os

    return min(4, os.cpu_count() or 1)


def _batch_main(argv: list[str]) -> int:
    from . import api
    from .service.compiler import read_sources

    args = build_batch_parser().parse_args(argv)
    workers = args.workers if args.workers is not None else \
        _default_workers()
    try:
        pairs = read_sources(args.files)
    except OSError as error:
        print(f"mvec batch: {error}", file=sys.stderr)
        return 2
    backend = "numpy" if args.emit_python else "matlab"
    start = time.perf_counter()
    results = api.compile_many(pairs,
                               options=_compile_options(args, backend),
                               workers=workers, timeout=args.timeout,
                               cache_dir=args.cache_dir)
    elapsed = time.perf_counter() - start

    out_dir = None
    if args.out_dir:
        from pathlib import Path

        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)

    failed = 0
    for result in results:
        if not result.ok:
            failed += 1
            print(f"mvec batch: FAIL {result.name}: {result.error.type}: "
                  f"{result.error.message}", file=sys.stderr)
            continue
        if not args.quiet:
            cached = " (cached)" if result.cached else ""
            print(f"mvec batch: ok {result.name}{cached}", file=sys.stderr)
        if out_dir is not None:
            from pathlib import Path

            stem = Path(result.name).stem
            (out_dir / f"{stem}.m").write_text(result.vectorized,
                                               encoding="utf-8")
            if args.emit_python and result.python is not None:
                (out_dir / f"{stem}.py").write_text(result.python,
                                                    encoding="utf-8")
    if args.json:
        import json

        print(json.dumps([r.to_dict() for r in results], indent=2))
    if not args.quiet:
        print(f"mvec batch: {len(results) - failed}/{len(results)} ok, "
              f"{workers} worker(s), {elapsed:.3f} s", file=sys.stderr)
    return 1 if failed else 0


def _serve_main(argv: list[str]) -> int:
    from .service.cache import CompilationCache
    from .service.compiler import CompilationService
    from .service.server import serve_http, serve_stdio
    from .service.shardedcache import ShardedCache

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    if args.shards > 1:
        cache = ShardedCache(shards=args.shards,
                             capacity=args.cache_capacity,
                             directory=args.cache_dir)
    else:
        cache = CompilationCache(capacity=args.cache_capacity,
                                 directory=args.cache_dir)
    service = CompilationService(cache=cache)
    if args.stdio:
        return serve_stdio(service)
    if args.use_async:
        from .service.aserver import serve_async

        return serve_async(args.host, args.port, service,
                           quiet=args.quiet,
                           max_concurrency=args.max_concurrency,
                           queue_depth=args.queue_depth,
                           request_timeout=args.request_timeout)
    return serve_http(args.host, args.port, service, quiet=args.quiet)


def _client_main(argv: list[str]) -> int:
    import json

    from .service.client import ServiceClient, ServiceUnavailable

    parser = build_client_parser()
    args = parser.parse_args(argv)
    client = ServiceClient(host=args.host, port=args.port,
                           timeout=args.timeout,
                           max_retries=args.retries)
    try:
        if args.op == "healthz":
            response = client.healthz()
        elif args.op == "metrics":
            response = client.metrics_json()
        else:
            if not args.file:
                parser.error(f"{args.op} needs a source file")
            pairs = _read_inputs([args.file])
            if pairs is None:
                return 2
            _name, source = pairs[0]
            backend = "numpy" if args.op == "translate" else "matlab"
            options = _compile_options(args, backend).to_dict()
            if args.op == "fanout":
                backends = (args.backends.split(",")
                            if args.backends else None)
                response = client.fanout(source, options=options,
                                         backends=backends)
            else:
                response = getattr(client, args.op)(
                    source, **({} if args.op == "lint"
                               else {"options": options}))
    except ServiceUnavailable as error:
        print(f"mvec client: {error}", file=sys.stderr)
        return 3
    print(json.dumps(response.body, indent=2))
    return 0 if response.ok else 1


def _fuzz_main(argv: list[str]) -> int:
    from .fuzz import run_campaign

    parser = build_fuzz_parser()
    args = parser.parse_args(argv)
    if args.n < 0:
        parser.error(f"--n must be >= 0, got {args.n}")

    def progress(done: int, total: int) -> None:
        if not args.quiet and (done % 100 == 0 or done == total):
            print(f"mvec fuzz: {done}/{total}", file=sys.stderr)

    from pathlib import Path

    result = run_campaign(args.n, seed=args.seed, shrink=args.shrink,
                          corpus_dir=Path(args.corpus_dir) if args.shrink
                          else None,
                          progress=progress, workers=args.workers,
                          lint=args.lint, audit=args.audit)
    print(result.summary(), file=sys.stderr)
    for mismatch in result.mismatches:
        print(f"--- mismatch at index {mismatch.index} ---",
              file=sys.stderr)
        print(mismatch.report.describe(), file=sys.stderr)
        if mismatch.shrunk_source:
            print("--- shrunken reproducer ---", file=sys.stderr)
            print(mismatch.shrunk_source, end="", file=sys.stderr)
        if mismatch.reproducer:
            print(f"--- written to {mismatch.reproducer}", file=sys.stderr)
    return 0 if result.ok else 1


def _read_inputs(files: list[str]) -> list[tuple[str, str]] | None:
    """Read (name, source) pairs; '-' reads stdin.  None on I/O error."""
    pairs: list[tuple[str, str]] = []
    for name in files:
        if name == "-":
            pairs.append(("<stdin>", sys.stdin.read()))
            continue
        try:
            with open(name, encoding="utf-8") as handle:
                pairs.append((name, handle.read()))
        except OSError as error:
            print(f"mvec: {error}", file=sys.stderr)
            return None
    return pairs


def _render_diagnostic_dicts(diagnostics, filename: str) -> str:
    """``render_text`` over the facade's diagnostic dicts."""
    from .staticcheck import render_text
    from .staticcheck.diagnostics import Diagnostic

    rebuilt = [Diagnostic(code=d["code"], message=d["message"],
                          line=d["line"], column=d["column"],
                          hint=d.get("hint"))
               for d in diagnostics]
    return render_text(rebuilt, filename=filename)


def _lint_main(argv: list[str]) -> int:
    from . import api

    args = build_lint_parser().parse_args(argv)
    pairs = _read_inputs(args.files)
    if pairs is None:
        return 2
    status = 0
    json_out = []
    for name, source in pairs:
        if args.fix:
            from pathlib import Path

            from .staticcheck import fix_source

            fixed = fix_source(source)
            source = fixed.source
            if name == "<stdin>":
                sys.stdout.write(fixed.source)
            elif fixed.changed:
                Path(name).write_text(fixed.source)
            if not args.quiet:
                print(f"mvec lint --fix: {name}: {fixed.summary()}",
                      file=sys.stderr)
        report = api.lint(source, name=name)
        if report.errors:
            status = 1
        if args.json:
            json_out.append(
                {"file": name,
                 "diagnostics": [dict(d) for d in report.diagnostics],
                 "errors": report.errors,
                 "warnings": report.warnings})
        elif report.diagnostics:
            print(_render_diagnostic_dicts(report.diagnostics, name))
        if not args.quiet and not args.json:
            print(f"mvec lint: {name}: {report.errors} error(s), "
                  f"{report.warnings} warning(s)", file=sys.stderr)
    if args.json:
        import json

        print(json.dumps(json_out, indent=2))
    return status


def _shapes_main(argv: list[str]) -> int:
    from .mlang.annotations import parse_annotations
    from .shapes import analyze_program

    args = build_shapes_parser().parse_args(argv)
    pairs = _read_inputs(args.files)
    if pairs is None:
        return 2
    status = 0
    json_out = []
    for name, source in pairs:
        try:
            program = parse(source)
            shapes = analyze_program(
                program, use_annotations=args.use_annotations)
        except ReproError as error:
            print(f"mvec shapes: {name}: {error}", file=sys.stderr)
            status = 1
            continue
        annotated = parse_annotations(program.annotations) \
            if args.use_annotations else None
        scopes_payload = {}
        for scope_name, env in shapes.scope_envs.items():
            entries = {}
            for var in sorted(env.shapes):
                origin = ("annotated" if annotated is not None
                          and var in annotated else "inferred")
                entries[var] = {"dims": str(env.shapes[var]),
                                "origin": origin}
            scopes_payload[scope_name] = entries
        if args.json:
            json_out.append({"file": name, "scopes": scopes_payload})
            continue
        print(f"% ===== {name} =====")
        for scope_name, entries in scopes_payload.items():
            print(f"{scope_name}:")
            if not entries:
                print("  (no provable shapes)")
            for var, info in entries.items():
                print(f"  {var}: {info['dims']}  [{info['origin']}]")
    if args.json:
        import json

        print(json.dumps(json_out, indent=2))
    return status


def _audit_main(argv: list[str]) -> int:
    from . import api

    args = build_audit_parser().parse_args(argv)
    pairs = _read_inputs(args.files)
    if pairs is None:
        return 2
    options = _compile_options(args, "matlab")
    status = 0
    json_out = []
    for name, source in pairs:
        report = api.audit(source, options=options, name=name)
        if report.error is not None:
            print(f"mvec audit: {name}: compile error: "
                  f"{report.error.message}", file=sys.stderr)
            status = 1
            continue
        if not report.ok:
            status = 1
        if args.json:
            json_out.append(report.to_dict())
        else:
            if report.diagnostics:
                print(_render_diagnostic_dicts(report.diagnostics, name))
            if not args.quiet:
                verdict = "pass" if report.ok else "FAIL"
                print(f"mvec audit: {name}: {verdict} "
                      f"({report.vectorized_stmts} vectorized stmt(s) "
                      f"across {report.audited_loops} loop(s))",
                      file=sys.stderr)
    if args.json:
        import json

        print(json.dumps(json_out, indent=2))
    return status


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fuzz":
        return _fuzz_main(argv[1:])
    if argv and argv[0] == "batch":
        return _batch_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "client":
        return _client_main(argv[1:])
    if argv and argv[0] == "lint":
        return _lint_main(argv[1:])
    if argv and argv[0] == "audit":
        return _audit_main(argv[1:])
    if argv and argv[0] == "shapes":
        return _shapes_main(argv[1:])
    args = build_parser().parse_args(argv)
    if len(args.input) > 1:
        return _multi_main(args)
    if args.input[0] == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.input[0], encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            print(f"mvec: {error}", file=sys.stderr)
            return 2

    from . import api

    if args.emit_python:
        outcome = api.translate(
            source, options=_compile_options(args, "numpy"),
            name=args.input[0])
    else:
        outcome = api.vectorize(
            source, options=_compile_options(args, "matlab"),
            name=args.input[0])
    if not outcome.ok:
        print(f"mvec: {outcome.error.message}", file=sys.stderr)
        return 1

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(outcome.vectorized)
    else:
        print(outcome.vectorized, end="")

    if args.report:
        print("--- report ---", file=sys.stderr)
        print(outcome.report_summary, file=sys.stderr)

    if args.stats:
        import json

        print(json.dumps(outcome.stats, indent=2), file=sys.stderr)

    if args.emit_python:
        print("--- python ---")
        print(outcome.python, end="")

    if args.run:
        status = _run_both(source, outcome.vectorized, args.seed)
        if status:
            return status
    return 0


def _multi_main(args) -> int:
    """Several positional inputs: compile through the facade's batch
    compiler, print each result, exit nonzero if any file failed."""
    from . import api
    from .service.compiler import read_sources

    if args.output:
        print("mvec: -o/--output needs a single input; use "
              "'mvec batch -o DIR' for many files", file=sys.stderr)
        return 2
    try:
        pairs = read_sources(args.input)
    except OSError as error:
        print(f"mvec: {error}", file=sys.stderr)
        return 2
    backend = "numpy" if args.emit_python else "matlab"
    results = api.compile_many(pairs,
                               options=_compile_options(args, backend))
    status = 0
    for (name, source), result in zip(pairs, results):
        print(f"% ===== {name} =====")
        if not result.ok:
            print(f"mvec: {name}: {result.error.type}: "
                  f"{result.error.message}", file=sys.stderr)
            status = 1
            continue
        print(result.vectorized, end="")
        if args.report:
            print(f"--- report: {name} ---", file=sys.stderr)
            print(result.report_summary, file=sys.stderr)
        if args.stats:
            import json

            print(json.dumps(result.stats, indent=2), file=sys.stderr)
        if args.emit_python:
            print("--- python ---")
            print(result.python, end="")
        if args.run and _run_both(source, result.vectorized, args.seed):
            status = 1
    return status


def _run_both(original: str, vectorized: str, seed: int) -> int:
    from .fuzz.oracle import comparable_names, diff_workspaces

    programs = {"original": parse(original),
                "vectorized": parse(vectorized)}
    outputs = {}
    for label, program in programs.items():
        start = time.perf_counter()
        try:
            outputs[label] = Interpreter(seed=seed).run(program, env={})
        except ReproError as error:
            print(f"mvec: {label} run failed: {error}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - start
        print(f"--- {label}: {elapsed:.4f} s", file=sys.stderr)
    base, vect = outputs["original"], outputs["vectorized"]
    # Compare every observable output of the original program — a
    # variable the vectorized run *lost* counts as divergence, not just
    # values that differ (loop indices and forward-substituted scalar
    # temporaries are legitimately absent and excluded).
    names = comparable_names(programs["original"])
    divergences = diff_workspaces(base, vect, names, "vectorized")
    if divergences:
        print(f"mvec: outputs diverge: "
              f"{[d.variable for d in divergences]}", file=sys.stderr)
        for divergence in divergences:
            print(f"mvec:   {divergence}", file=sys.stderr)
        return 1
    print("--- workspaces match", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
