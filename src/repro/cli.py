"""``mvec`` — command-line interface to the vectorizer.

Usage::

    mvec input.m                 # print vectorized MATLAB to stdout
    mvec input.m -o out.m        # write to a file
    mvec input.m --report        # also print the per-loop report
    mvec input.m --run           # interpret original and vectorized,
                                 #   compare workspaces, print timings
    mvec input.m --emit-python   # print the NumPy-backend translation
    mvec input.m --no-patterns --no-transposes ...   # ablations
"""

from __future__ import annotations

import argparse
import sys
import time

from .errors import ReproError
from .mlang.parser import parse
from .runtime.interp import Interpreter
from .runtime.values import values_equal
from .translate.numpy_backend import translate_source
from .vectorizer.checker import CheckOptions
from .vectorizer.driver import Vectorizer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mvec",
        description="Vectorize loop-based MATLAB code (CGO 2007 "
                    "dimension-abstraction approach).")
    parser.add_argument("input", help="MATLAB source file (use '-' for "
                                      "stdin)")
    parser.add_argument("-o", "--output", help="write vectorized MATLAB "
                                               "here instead of stdout")
    parser.add_argument("--report", action="store_true",
                        help="print the per-loop vectorization report")
    parser.add_argument("--stats", action="store_true",
                        help="print aggregate vectorization statistics "
                             "as JSON")
    parser.add_argument("--run", action="store_true",
                        help="interpret both versions, verify equality, "
                             "and print timings")
    parser.add_argument("--emit-python", action="store_true",
                        help="print the NumPy-backend Python translation "
                             "of the vectorized program")
    parser.add_argument("--seed", type=int, default=0,
                        help="runtime RNG seed for --run")
    parser.add_argument("--simplify", action="store_true",
                        help="distribute/cancel transposes in the output "
                             "(the paper's §2.2 'later optimization')")
    parser.add_argument("--no-scalar-temps", dest="scalar_temps",
                        action="store_false",
                        help="disable forward substitution of per-"
                             "iteration scalar temporaries")
    for flag, attr in [("--no-patterns", "patterns"),
                       ("--no-transposes", "transposes"),
                       ("--no-reductions", "reductions"),
                       ("--no-promotion", "promotion"),
                       ("--no-regroup", "product_regroup")]:
        parser.add_argument(flag, dest=attr, action="store_false",
                            help=f"disable the {attr.replace('_', ' ')} "
                                 "mechanism")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.input == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.input, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            print(f"mvec: {error}", file=sys.stderr)
            return 2

    options = CheckOptions(
        patterns=args.patterns,
        transposes=args.transposes,
        reductions=args.reductions,
        promotion=args.promotion,
        product_regroup=args.product_regroup,
    )
    try:
        result = Vectorizer(options=options, simplify=args.simplify,
                            scalar_temps=args.scalar_temps,
                            ).vectorize_source(source)
    except ReproError as error:
        print(f"mvec: {error}", file=sys.stderr)
        return 1

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.source)
    else:
        print(result.source, end="")

    if args.report:
        print("--- report ---", file=sys.stderr)
        print(result.report.summary(), file=sys.stderr)

    if args.stats:
        import json

        print(json.dumps(result.report.stats(), indent=2), file=sys.stderr)

    if args.emit_python:
        unit = translate_source(result.source)
        print("--- python ---")
        print(unit.python_source, end="")

    if args.run:
        status = _run_both(source, result.source, args.seed)
        if status:
            return status
    return 0


def _run_both(original: str, vectorized: str, seed: int) -> int:
    programs = {"original": parse(original),
                "vectorized": parse(vectorized)}
    outputs = {}
    for label, program in programs.items():
        start = time.perf_counter()
        try:
            outputs[label] = Interpreter(seed=seed).run(program, env={})
        except ReproError as error:
            print(f"mvec: {label} run failed: {error}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - start
        print(f"--- {label}: {elapsed:.4f} s", file=sys.stderr)
    base, vect = outputs["original"], outputs["vectorized"]
    diverging = [
        name for name in sorted(set(base) & set(vect))
        if not values_equal(base[name], vect[name])
    ]
    if diverging:
        print(f"mvec: outputs diverge: {diverging}", file=sys.stderr)
        return 1
    print("--- workspaces match", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
