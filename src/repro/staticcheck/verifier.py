"""An LLVM-style AST verifier run between pipeline stages.

Every invariant checked here must hold of any AST the pipeline passes
between stages — a violation is a compiler bug, never user error, so
violations raise :class:`~repro.errors.VerifyError` (tagged with the
stage that produced the AST) instead of returning diagnostics.

Checked invariants:

* **V001** — under ``require_spans`` every node carries a 1-based
  source span.  Only the post-parse stage requires this; later stages
  synthesize nodes (range headers, scalar-temp substitutions) with
  default spans.
* **V002** — structural soundness: operator spellings the printer can
  emit, assignment targets that are names or subscripted names,
  non-empty ``if`` chains and matrix rows, well-formed identifiers.
* **V003** — ``:`` and ``end`` appear only inside subscript argument
  positions (``a(:, end)``), never as free expressions.
* **V004** — every ``%!`` annotation still parses under the annotation
  grammar (stages must not rewrite annotation text).
"""

from __future__ import annotations

from typing import Iterable, Union

from ..dims.context import ShapeEnv
from ..errors import AnnotationError, VerifyError
from ..mlang.annotations import parse_annotation
from ..mlang.ast_nodes import (
    Annotation,
    Apply,
    Assign,
    BinOp,
    Colon,
    End,
    Expr,
    For,
    FunctionDef,
    Ident,
    If,
    Matrix,
    MultiAssign,
    Node,
    Num,
    Program,
    Stmt,
    Str,
    UnOp,
)

_BINARY_OPS = frozenset({
    "||", "&&", "|", "&", "==", "~=", "<", "<=", ">", ">=",
    "+", "-", "*", "/", "\\", ".*", "./", ".\\", "^", ".^",
})
_UNARY_OPS = frozenset({"+", "-", "~"})


def verify_program(program: Program, stage: str,
                   require_spans: bool = False) -> None:
    """Verify a whole program; raises :class:`VerifyError` on the first
    violated invariant."""
    verify_stmts(program.body, stage, require_spans)


def verify_stmts(stmts: Iterable[Stmt], stage: str,
                 require_spans: bool = False) -> None:
    """Verify a statement list (e.g. one rewritten loop body)."""
    for stmt in stmts:
        _verify_node(stmt, stage, require_spans,
                     colon_ok=False, end_ok=False)


def _fail(stage: str, code: str, node: Node, detail: str) -> VerifyError:
    where = ""
    pos = getattr(node, "pos", None)
    if pos is not None and pos.line:
        where = f" at {pos.line}:{pos.column}"
    return VerifyError(stage,
                       f"{code}: {detail} ({type(node).__name__}{where})")


def _verify_target(target: Expr, stage: str, owner: Node) -> None:
    """Assignment targets must be names or subscripted names."""
    if isinstance(target, Ident):
        return
    if isinstance(target, Apply) and isinstance(target.func, Ident):
        return
    raise _fail(stage, "V002", owner,
                f"invalid assignment target {type(target).__name__}")


def _verify_node(node: Union[Stmt, Expr], stage: str, require_spans: bool,
                 colon_ok: bool, end_ok: bool) -> None:
    # ``colon_ok`` holds only in an Apply's direct argument slots; a
    # bare ':' anywhere else is malformed.  ``end_ok`` holds at any
    # depth inside a subscript argument (``a(end - 1)`` is fine).
    if require_spans:
        pos = getattr(node, "pos", None)
        if pos is not None and not pos.line:
            raise _fail(stage, "V001", node, "node is missing a source span")

    if isinstance(node, Colon) and not colon_ok:
        raise _fail(stage, "V003", node,
                    "':' outside a subscript position")
    if isinstance(node, End) and not end_ok:
        raise _fail(stage, "V003", node,
                    "'end' outside a subscript position")

    if isinstance(node, BinOp):
        if node.op not in _BINARY_OPS:
            raise _fail(stage, "V002", node,
                        f"unknown binary operator {node.op!r}")
    elif isinstance(node, UnOp):
        if node.op not in _UNARY_OPS:
            raise _fail(stage, "V002", node,
                        f"unknown unary operator {node.op!r}")
    elif isinstance(node, Ident):
        if not node.name:
            raise _fail(stage, "V002", node, "empty identifier")
    elif isinstance(node, Num):
        if not isinstance(node.value, (int, float)):
            raise _fail(stage, "V002", node,
                        f"non-numeric literal {node.value!r}")
    elif isinstance(node, Str):
        if not isinstance(node.value, str):
            raise _fail(stage, "V002", node, "non-string literal")
    elif isinstance(node, Matrix):
        if any(not row for row in node.rows):
            raise _fail(stage, "V002", node, "empty matrix row")
    elif isinstance(node, Assign):
        _verify_target(node.lhs, stage, node)
    elif isinstance(node, MultiAssign):
        if not node.targets:
            raise _fail(stage, "V002", node, "multi-assign with no targets")
        for target in node.targets:
            _verify_target(target, stage, node)
    elif isinstance(node, For):
        if not node.var:
            raise _fail(stage, "V002", node, "for loop with no index name")
    elif isinstance(node, If):
        if not node.tests:
            raise _fail(stage, "V002", node, "if statement with no branches")
    elif isinstance(node, FunctionDef):
        if not node.name:
            raise _fail(stage, "V002", node, "function with no name")
    elif isinstance(node, Annotation):
        try:
            parse_annotation(node.text, ShapeEnv())
        except AnnotationError as exc:
            raise _fail(stage, "V004", node,
                        f"annotation no longer parses: {exc}") from exc

    # Recurse.
    if isinstance(node, Apply):
        _verify_node(node.func, stage, require_spans,
                     colon_ok=False, end_ok=end_ok)
        for arg in node.args:
            _verify_node(arg, stage, require_spans,
                         colon_ok=True, end_ok=True)
    elif isinstance(node, (Colon, End)):
        pass
    else:
        for child in node.children():
            _verify_node(child, stage, require_spans,
                         colon_ok=False, end_ok=end_ok)
