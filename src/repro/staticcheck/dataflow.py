"""A generic worklist solver for forward/backward dataflow analyses.

An analysis supplies a *boundary* value (at the entry for forward
analyses, the exit for backward ones), a *meet* over predecessor
values, and a *transfer* function over one basic block.  The solver
represents the top element (unreached) as ``None`` — ``meet`` is never
called on it, and blocks whose every predecessor is unreached stay at
``None``, so must-analyses (intersection meets) need no explicit
universal set and unreachable code is naturally skipped.

Values must support ``==`` (fixpoint detection); the lattices used by
the concrete analyses (frozensets, dicts over a finite height lattice)
all converge.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generic, Optional, TypeVar

from .cfg import CFG, Block

T = TypeVar("T")


class Analysis(Generic[T]):
    """Base class for dataflow analyses. Subclass and override."""

    #: 'forward' or 'backward'.
    direction: str = "forward"

    def boundary(self) -> T:
        """Value at the entry (forward) / exit (backward) boundary."""
        raise NotImplementedError

    def meet(self, left: T, right: T) -> T:
        """Combine two incoming values (∪ for may, ∩ for must)."""
        raise NotImplementedError

    def transfer(self, block: Block, value: T) -> T:
        """Push ``value`` through ``block`` in the analysis direction."""
        raise NotImplementedError


class Solution(Generic[T]):
    """Fixpoint values per block.

    ``before[b]`` is the value on entry to ``b`` *in the analysis
    direction* (block entry for forward analyses, block exit for
    backward ones); ``after[b]`` is the transferred value.  ``None``
    means the block is unreachable from the boundary.
    """

    def __init__(self, before: dict[int, Optional[T]],
                 after: dict[int, Optional[T]]):
        self.before = before
        self.after = after


def solve(cfg: CFG, analysis: Analysis[T]) -> Solution[T]:
    """Iterate ``analysis`` over ``cfg`` to a fixpoint."""
    forward = analysis.direction == "forward"
    boundary_block = cfg.entry if forward else cfg.exit

    def inputs(block: Block) -> list[int]:
        return block.preds if forward else block.succs

    def outputs(block: Block) -> list[int]:
        return block.succs if forward else block.preds

    before: dict[int, Optional[T]] = {b.id: None for b in cfg.blocks}
    after: dict[int, Optional[T]] = {b.id: None for b in cfg.blocks}

    worklist: deque[int] = deque(
        b.id for b in (cfg.blocks if forward else reversed(cfg.blocks)))
    queued = set(worklist)
    while worklist:
        bid = worklist.popleft()
        queued.discard(bid)
        block = cfg.blocks[bid]
        incoming = [after[p] for p in inputs(block) if after[p] is not None]
        value: Optional[T]
        if bid == boundary_block:
            value = analysis.boundary()
            for extra in incoming:
                value = analysis.meet(value, extra)
        elif incoming:
            value = incoming[0]
            for extra in incoming[1:]:
                value = analysis.meet(value, extra)
        else:
            value = None                      # unreachable so far
        before[bid] = value
        new_after = None if value is None else analysis.transfer(block, value)
        if new_after != after[bid]:
            after[bid] = new_after
            for succ in outputs(block):
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    return Solution(before, after)


def run_forward_units(block: Block, value: T,
                      step: Callable[[int, T], T]) -> T:
    """Walk a block's units forward, threading ``value`` through
    ``step(unit_index, value)``; returns the final value."""
    for index in range(len(block.units)):
        value = step(index, value)
    return value


def run_backward_units(block: Block, value: T,
                       step: Callable[[int, T], T]) -> T:
    """Walk a block's units backward (liveness-style)."""
    for index in reversed(range(len(block.units))):
        value = step(index, value)
    return value
