"""Control-flow graphs over the MATLAB AST, one per script/function.

A :class:`CFG` is a list of basic blocks holding :class:`Unit` records —
one unit per executable statement part (a plain statement, a loop
header, an ``if``/``while`` condition).  Loop headers are their own
blocks so that back edges and zero-trip exits are explicit; ``break``,
``continue``, and ``return`` terminate their block with the appropriate
edge and start an unreachable continuation block.

:func:`program_scopes` splits a program into analysis scopes: the
top-level script (excluding function definitions) and one scope per
``function`` body.  MATLAB functions do not close over the script
workspace, so every scope is analyzed independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..mlang.ast_nodes import (
    Annotation,
    Assign,
    Break,
    Continue,
    Expr,
    ExprStmt,
    For,
    FunctionDef,
    Global,
    If,
    MultiAssign,
    Node,
    Pos,
    Program,
    Return,
    Stmt,
    While,
)

#: Unit kinds.  ``"for"`` marks a loop-header unit (defines the index
#: variable, reads the iteration expression); ``"cond"`` an ``if``/
#: ``while`` condition (pure use).  All other kinds name the statement.
UNIT_KINDS = frozenset({
    "assign", "multiassign", "expr", "global", "annotation",
    "for", "cond", "break", "continue", "return",
})


@dataclass(frozen=True)
class Unit:
    """One executable item inside a basic block."""

    kind: str
    node: Union[Stmt, Expr]
    pos: Pos
    loop_vars: frozenset[str] = frozenset()


@dataclass
class Block:
    """A basic block: straight-line units plus successor/predecessor ids."""

    id: int
    units: list[Unit] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)


@dataclass
class CFG:
    """A control-flow graph. ``blocks[entry]`` starts execution and
    every normal termination reaches ``blocks[exit]``."""

    blocks: list[Block]
    entry: int
    exit: int

    def units(self) -> list[Unit]:
        """All units in block order (reachable or not)."""
        return [unit for block in self.blocks for unit in block.units]


@dataclass
class Scope:
    """One independently analyzed workspace."""

    name: str
    kind: str                     # 'script' | 'function'
    params: tuple[str, ...]
    outs: tuple[str, ...]
    body: list[Stmt]
    cfg: CFG


class _Builder:
    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.entry = self._new_block()
        self.exit = self._new_block()

    def _new_block(self) -> int:
        block = Block(id=len(self.blocks))
        self.blocks.append(block)
        return block.id

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def _unit(self, block: int, kind: str, node: Union[Stmt, Expr],
              pos: Pos, loop_vars: frozenset[str]) -> None:
        self.blocks[block].units.append(Unit(kind, node, pos, loop_vars))

    # ``loops`` holds (header_block, after_block) per enclosing loop so
    # continue/break know their targets.
    def stmt_list(self, stmts: list[Stmt], current: int,
                  loops: list[tuple[int, int]],
                  loop_vars: frozenset[str]) -> int:
        for stmt in stmts:
            if isinstance(stmt, For):
                header = self._new_block()
                self._edge(current, header)
                self._unit(header, "for", stmt, stmt.pos, loop_vars)
                body_entry = self._new_block()
                after = self._new_block()
                self._edge(header, body_entry)
                self._edge(header, after)
                body_end = self.stmt_list(
                    stmt.body, body_entry, loops + [(header, after)],
                    loop_vars | {stmt.var})
                self._edge(body_end, header)
                current = after
            elif isinstance(stmt, While):
                header = self._new_block()
                self._edge(current, header)
                cond_pos = stmt.cond.pos if stmt.cond.pos.line else stmt.pos
                self._unit(header, "cond", stmt.cond, cond_pos, loop_vars)
                body_entry = self._new_block()
                after = self._new_block()
                self._edge(header, body_entry)
                self._edge(header, after)
                body_end = self.stmt_list(
                    stmt.body, body_entry, loops + [(header, after)],
                    loop_vars)
                self._edge(body_end, header)
                current = after
            elif isinstance(stmt, If):
                after = self._new_block()
                for cond, body in stmt.tests:
                    cond_pos = cond.pos if cond.pos.line else stmt.pos
                    self._unit(current, "cond", cond, cond_pos, loop_vars)
                    body_entry = self._new_block()
                    self._edge(current, body_entry)
                    body_end = self.stmt_list(body, body_entry, loops,
                                              loop_vars)
                    self._edge(body_end, after)
                    chain = self._new_block()
                    self._edge(current, chain)
                    current = chain
                orelse_end = self.stmt_list(stmt.orelse, current, loops,
                                            loop_vars)
                self._edge(orelse_end, after)
                current = after
            elif isinstance(stmt, Break):
                self._unit(current, "break", stmt, stmt.pos, loop_vars)
                if loops:
                    self._edge(current, loops[-1][1])
                current = self._new_block()
            elif isinstance(stmt, Continue):
                self._unit(current, "continue", stmt, stmt.pos, loop_vars)
                if loops:
                    self._edge(current, loops[-1][0])
                current = self._new_block()
            elif isinstance(stmt, Return):
                self._unit(current, "return", stmt, stmt.pos, loop_vars)
                self._edge(current, self.exit)
                current = self._new_block()
            elif isinstance(stmt, FunctionDef):
                continue            # split into its own scope beforehand
            else:
                kind = {Assign: "assign", MultiAssign: "multiassign",
                        ExprStmt: "expr", Global: "global",
                        Annotation: "annotation"}.get(type(stmt))
                if kind is None:  # pragma: no cover - parser limits kinds
                    raise TypeError(
                        f"unsupported statement {type(stmt).__name__}")
                self._unit(current, kind, stmt, stmt.pos, loop_vars)
        return current


def build_cfg(stmts: list[Stmt]) -> CFG:
    """Build the CFG of one statement list."""
    builder = _Builder()
    end = builder.stmt_list(stmts, builder.entry, [], frozenset())
    builder._edge(end, builder.exit)
    return CFG(builder.blocks, builder.entry, builder.exit)


def program_scopes(program: Program) -> list[Scope]:
    """Split a program into its script scope plus one scope per function."""
    script_body = [s for s in program.body
                   if not isinstance(s, FunctionDef)]
    scopes = [Scope("<script>", "script", (), (), script_body,
                    build_cfg(script_body))]
    for stmt in program.body:
        if isinstance(stmt, FunctionDef):
            scopes.append(Scope(stmt.name, "function", tuple(stmt.params),
                                tuple(stmt.outs), stmt.body,
                                build_cfg(stmt.body)))
    return scopes


def assigned_names(stmts: list[Stmt]) -> set[str]:
    """Every name assigned anywhere in the statement list, including
    loop index variables and multi-assign targets."""
    from ..mlang.ast_nodes import Apply, Ident

    names: set[str] = set()
    root: Node = Program(stmts)
    for node in root.walk():
        if isinstance(node, Assign):
            target = node.lhs
        elif isinstance(node, MultiAssign):
            for target in node.targets:
                if isinstance(target, Ident):
                    names.add(target.name)
                elif isinstance(target, Apply) \
                        and isinstance(target.func, Ident):
                    names.add(target.func.name)
            continue
        elif isinstance(node, For):
            names.add(node.var)
            continue
        else:
            continue
        if isinstance(target, Ident):
            names.add(target.name)
        elif isinstance(target, Apply) and isinstance(target.func, Ident):
            names.add(target.func.name)
    return names
