"""Structured diagnostics: codes, severities, rendering.

Every finding produced by the linter, the verifier, and the auditor is a
:class:`Diagnostic` — a frozen record with a stable machine-readable
code, a severity, a 1-based source span, and an optional fix hint.  The
:data:`CODES` registry is the single source of truth for the code table
in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Optional, Sequence


class Severity(enum.Enum):
    """Diagnostic severity. Errors fail ``mvec lint``; warnings do not."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


#: Registry of every diagnostic code: ``code -> one-line description``.
#: E-codes are linter errors, W-codes linter warnings, V-codes verifier
#: invariant failures, A-codes auditor findings.
CODES: dict[str, str] = {
    "E001": "lexical error: the source cannot be tokenized",
    "E002": "syntax error: the source cannot be parsed",
    "E003": "malformed %! shape annotation",
    "E101": "use of a variable before any assignment reaches it",
    "W102": "use of a variable assigned on only some paths",
    "W201": "dead store: value is overwritten before any use",
    "E301": "shape conflict between pointwise operands",
    "E302": "assignment conflicts with the variable's %! annotation",
    "E303": "indexed assignment of a provably non-scalar value",
    "V001": "verifier: AST node missing a source span",
    "V002": "verifier: malformed node (bad operator, arity, or field)",
    "V003": "verifier: ':'/'end' outside a subscript position",
    "V004": "verifier: annotation text inconsistent with the annotation grammar",
    "A001": "auditor: statement vectorized across a carried dependence",
    "A002": "auditor: emitted statement order violates a dependence",
    "A003": "auditor: vectorized dims signature incompatible",
    "A004": "auditor: %! annotations changed between input and output",
    "A005": "auditor: could not match emitted writes for a variable",
    "A101": "auditor: emitted program failed to re-parse or re-analyze",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding, renderable as text or JSON."""

    code: str
    message: str
    line: int = 0
    column: int = 0
    hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    @property
    def severity(self) -> Severity:
        return (Severity.WARNING if self.code.startswith("W")
                else Severity.ERROR)

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def render(self, filename: str = "<source>") -> str:
        head = (f"{filename}:{self.line}:{self.column}: "
                f"{self.severity}[{self.code}]: {self.message}")
        if self.hint:
            head += f"\n    hint: {self.hint}"
        return head

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "line": self.line,
            "column": self.column,
            "hint": self.hint,
        }

    def sort_key(self) -> tuple[int, int, str, str]:
        return (self.line, self.column, self.code, self.message)


def sort_diagnostics(diags: Sequence[Diagnostic]) -> list[Diagnostic]:
    """Stable source order: by line, column, code."""
    return sorted(diags, key=Diagnostic.sort_key)


def render_text(diags: Sequence[Diagnostic],
                filename: str = "<source>") -> str:
    """All diagnostics, one per line, plus a count trailer."""
    lines = [d.render(filename) for d in diags]
    errors = sum(1 for d in diags if d.is_error)
    warnings = len(diags) - errors
    lines.append(f"{filename}: {errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def to_json(diags: Sequence[Diagnostic],
            filename: str = "<source>") -> str:
    """JSON rendering: ``{"file", "diagnostics", "errors", "warnings"}``."""
    errors = sum(1 for d in diags if d.is_error)
    return json.dumps({
        "file": filename,
        "diagnostics": [d.to_dict() for d in diags],
        "errors": errors,
        "warnings": len(diags) - errors,
    }, indent=2)


def counts_by_severity(diags: Sequence[Diagnostic]) -> dict[str, int]:
    """``{"error": n, "warning": m}`` — metrics-friendly summary."""
    out = {"error": 0, "warning": 0}
    for diag in diags:
        out[str(diag.severity)] += 1
    return out
