"""The linter front end: source text in, sorted diagnostics out.

``lint_source`` handles the syntactic tiers itself (``E001`` lexical,
``E002`` syntactic, ``E003`` malformed annotations) and then runs every
dataflow-backed check from :mod:`.analyses` over each scope of the
parsed program.  Diagnostics come back in stable source order, ready
for :func:`~repro.staticcheck.diagnostics.render_text` or
:func:`~repro.staticcheck.diagnostics.to_json`.
"""

from __future__ import annotations

from ..errors import AnnotationError, LexError, ParseError
from ..mlang.annotations import parse_annotation
from ..mlang.ast_nodes import Annotation, Program
from ..mlang.lexer import tokenize
from ..mlang.parser import Parser
from ..shapes import FunctionSummaries, check_shapes
from .analyses import check_dead_stores, check_use_before_def
from .cfg import Scope, program_scopes
from .diagnostics import Diagnostic, sort_diagnostics


def lint_source(source: str) -> list[Diagnostic]:
    """Lint MATLAB source text.

    A lexical or syntactic failure short-circuits (the later analyses
    need an AST); everything past parsing accumulates.
    """
    try:
        tokens = tokenize(source)
    except LexError as exc:
        return [Diagnostic("E001", exc.message, exc.line, exc.column)]
    try:
        program = Parser(tokens).parse_program()
    except ParseError as exc:
        return [Diagnostic("E002", exc.message, exc.line, exc.column)]
    return lint_program(program)


def lint_program(program: Program) -> list[Diagnostic]:
    """Lint a parsed program: annotation syntax plus every per-scope
    dataflow check, sorted into source order.

    Shape checks run on the shared :mod:`repro.shapes` engine with one
    set of interprocedural summaries for the whole program, so E301–
    E303 see exactly the facts the vectorizer vectorizes against.
    """
    diags: list[Diagnostic] = []
    scopes = program_scopes(program)
    functions = frozenset(s.name for s in scopes if s.kind == "function")
    summaries = FunctionSummaries(scopes, functions)
    for scope in scopes:
        diags.extend(_check_annotations(scope))
        diags.extend(check_use_before_def(scope, functions))
        diags.extend(check_dead_stores(scope, functions))
        diags.extend(check_shapes(scope, summaries, functions))
    return sort_diagnostics(diags)


def _check_annotations(scope: Scope) -> list[Diagnostic]:
    """E003 for each ``%!`` annotation the grammar rejects."""
    from ..dims.context import ShapeEnv

    out: list[Diagnostic] = []
    env = ShapeEnv()
    for stmt in scope.body:
        for node in stmt.walk():
            if isinstance(node, Annotation):
                try:
                    parse_annotation(node.text, env)
                except AnnotationError as exc:
                    out.append(Diagnostic(
                        "E003", str(exc), node.pos.line, node.pos.column,
                        "annotations look like: %! x(1,*) y(*,1) — see "
                        "docs/dimension-abstraction.md"))
    return out
