"""Static analysis and diagnostics over the MATLAB subset.

Three tools share this package:

* the **dataflow framework** (:mod:`.cfg`, :mod:`.dataflow`,
  :mod:`.analyses`) — CFG construction per script/function, a worklist
  solver, and the classic analyses (reaching definitions, liveness,
  definite/maybe assignment, shape propagation on the dims lattice);
* the **linter** (:mod:`.linter`) — runs every analysis and renders
  structured :class:`~repro.staticcheck.diagnostics.Diagnostic` objects
  (``mvec lint``, ``POST /lint``);
* the **pipeline verifier** (:mod:`.verifier`) and the
  **vectorization-legality auditor** (:mod:`.auditor`) — compiler-grade
  checks that the vectorizer's stages emit well-formed ASTs and that
  emitted vector code preserved every dependence (``--verify``,
  ``mvec audit``).
"""

from .auditor import AuditResult, audit_source
from .diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    counts_by_severity,
    render_text,
    sort_diagnostics,
    to_json,
)
from .linter import lint_program, lint_source
from .verifier import verify_program, verify_stmts

__all__ = [
    "CODES",
    "Diagnostic",
    "Severity",
    "counts_by_severity",
    "render_text",
    "sort_diagnostics",
    "to_json",
    "lint_program",
    "lint_source",
    "verify_program",
    "verify_stmts",
    "AuditResult",
    "audit_source",
]
