"""Static analysis and diagnostics over the MATLAB subset.

Three tools share this package:

* the **dataflow framework** (:mod:`.cfg`, :mod:`.dataflow`,
  :mod:`.analyses`) — CFG construction per script/function, a worklist
  solver, and the classic analyses (reaching definitions, liveness,
  definite/maybe assignment); shape propagation lives in the shared
  :mod:`repro.shapes` engine and is consumed here by the linter;
* the **linter** (:mod:`.linter`) — runs every analysis and renders
  structured :class:`~repro.staticcheck.diagnostics.Diagnostic` objects
  (``mvec lint``, ``POST /lint``), with the :mod:`.fixer` applying
  safe autofixes (``mvec lint --fix``);
* the **pipeline verifier** (:mod:`.verifier`) and the
  **vectorization-legality auditor** (:mod:`.auditor`) — compiler-grade
  checks that the vectorizer's stages emit well-formed ASTs and that
  emitted vector code preserved every dependence (``--verify``,
  ``mvec audit``).

Attributes resolve lazily (PEP 562): the auditor imports the vectorizer
driver, which imports :mod:`repro.shapes`, which builds on this
package's CFG and solver — eager re-exports here would close that loop.
"""

from __future__ import annotations

#: Public name → defining submodule.
_EXPORTS = {
    "CODES": "diagnostics",
    "Diagnostic": "diagnostics",
    "Severity": "diagnostics",
    "counts_by_severity": "diagnostics",
    "render_text": "diagnostics",
    "sort_diagnostics": "diagnostics",
    "to_json": "diagnostics",
    "lint_program": "linter",
    "lint_source": "linter",
    "fix_source": "fixer",
    "FixResult": "fixer",
    "verify_program": "verifier",
    "verify_stmts": "verifier",
    "AuditResult": "auditor",
    "audit_source": "auditor",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    submodule = _EXPORTS.get(name)
    if submodule is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{submodule}", __name__), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
