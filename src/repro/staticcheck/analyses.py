"""Concrete dataflow analyses and their diagnostic emitters.

All analyses run over one :class:`~repro.staticcheck.cfg.Scope`:

* **reaching definitions** — which assignment sites may reach each use;
* **liveness** — which names may still be read after each point;
* **definite/maybe assignment** — the must/may pair behind
  use-before-def diagnostics (``E101`` definitely unassigned, ``W102``
  assigned on only some paths);
* **dead stores** (``W201``) — full assignments of a pure value that is
  overwritten before any use;
* **shape propagation** on the dims lattice — constant-propagates
  abstract dimensionalities through the CFG and flags provable
  conflicts (``E301``/``E302``/``E303``).

MATLAB specifics honoured throughout: a subscripted write auto-creates
its array (so it *defines* the name but also, for liveness, *reads* the
old array — a partial write preserves untouched elements); annotated
names are inputs, defined at scope entry; scripts observe their whole
final workspace, so only overwritten values can be dead.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ..dims.abstract import Dim
from ..dims.context import IMPURE_FUNCTIONS, KNOWN_FUNCTIONS, ShapeEnv
from ..errors import AnnotationError
from ..mlang.annotations import parse_annotation
from ..mlang.ast_nodes import (
    Annotation,
    Apply,
    Assign,
    BinOp,
    Colon,
    End,
    Expr,
    For,
    Global,
    Ident,
    MultiAssign,
    Node,
    Range,
)
from .cfg import Block, Scope, Unit, assigned_names
from .dataflow import Analysis, Solution, solve
from .diagnostics import Diagnostic

# ---------------------------------------------------------------------------
# Defs and uses of one unit
# ---------------------------------------------------------------------------


def expr_reads(node: Node, known: frozenset[str]) -> set[str]:
    """Every variable name read by an expression (function names in
    ``known`` are calls, not reads)."""
    return {n.name for n in node.walk()
            if isinstance(n, Ident) and n.name not in known}


def unit_defs(unit: Unit) -> tuple[set[str], set[str]]:
    """``(full, partial)`` definitions made by one unit.  A partial
    definition (subscripted write) defines the name without killing the
    previous value."""
    full: set[str] = set()
    partial: set[str] = set()
    node = unit.node
    if unit.kind == "assign" and isinstance(node, Assign):
        if isinstance(node.lhs, Ident):
            full.add(node.lhs.name)
        elif isinstance(node.lhs, Apply) and isinstance(node.lhs.func, Ident):
            partial.add(node.lhs.func.name)
    elif unit.kind == "multiassign" and isinstance(node, MultiAssign):
        for target in node.targets:
            if isinstance(target, Ident):
                full.add(target.name)
            elif isinstance(target, Apply) and isinstance(target.func, Ident):
                partial.add(target.func.name)
    elif unit.kind == "for" and isinstance(node, For):
        full.add(node.var)
    elif unit.kind == "global" and isinstance(node, Global):
        full.update(node.names)
    return full, partial


def unit_uses(unit: Unit, known: frozenset[str],
              for_liveness: bool = False) -> set[str]:
    """Names read by one unit.

    With ``for_liveness`` a partial write also counts as a read of its
    own array (the untouched elements survive); for use-before-def it
    does not (MATLAB auto-creates the array).
    """
    node = unit.node
    uses: set[str] = set()
    if unit.kind == "assign" and isinstance(node, Assign):
        uses |= expr_reads(node.rhs, known)
        if isinstance(node.lhs, Apply) and isinstance(node.lhs.func, Ident):
            for arg in node.lhs.args:
                uses |= expr_reads(arg, known)
            if for_liveness:
                uses.add(node.lhs.func.name)
    elif unit.kind == "multiassign" and isinstance(node, MultiAssign):
        uses |= expr_reads(node.rhs, known)
        for target in node.targets:
            if isinstance(target, Apply) and isinstance(target.func, Ident):
                for arg in target.args:
                    uses |= expr_reads(arg, known)
                if for_liveness:
                    uses.add(target.func.name)
    elif unit.kind == "expr":
        uses |= expr_reads(node, known)
    elif unit.kind == "for" and isinstance(node, For):
        uses |= expr_reads(node.iter, known)
    elif unit.kind == "cond":
        uses |= expr_reads(node, known)
    return uses


def scope_known_functions(scope: Scope) -> frozenset[str]:
    """Builtin names acting as functions in this scope — everything the
    analyses recognize minus names the scope assigns (shadowing)."""
    shadowed = assigned_names(scope.body) | set(scope.params)
    return frozenset(KNOWN_FUNCTIONS - shadowed)


def scope_annotations(scope: Scope) -> ShapeEnv:
    """The shape environment declared by ``%!`` annotations in the
    scope (malformed annotations are skipped here; the linter reports
    them as E003 separately)."""
    env = ShapeEnv()
    for stmt in scope.body:
        for node in stmt.walk():
            if isinstance(node, Annotation):
                try:
                    parse_annotation(node.text, env)
                except AnnotationError:
                    continue
    return env


def entry_defined(scope: Scope, annotated: ShapeEnv) -> frozenset[str]:
    """Names defined before the scope's first statement runs: function
    parameters, ``global`` names, and annotated inputs."""
    names = set(scope.params) | set(annotated.shapes)
    for stmt in scope.body:
        for node in stmt.walk():
            if isinstance(node, Global):
                names.update(node.names)
    return frozenset(names)


# ---------------------------------------------------------------------------
# The analyses
# ---------------------------------------------------------------------------

#: A definition site: (block id, unit index).
DefSite = tuple[int, int]


class ReachingDefinitions(Analysis[frozenset[tuple[str, DefSite]]]):
    """Forward may-analysis over (name, definition-site) pairs.  Full
    definitions kill prior sites of the same name; partial definitions
    accumulate (gen without kill)."""

    direction = "forward"

    def __init__(self, entry_names: frozenset[str] = frozenset()):
        #: Synthetic entry definitions use the site (-1, -1).
        self.entry_names = entry_names

    def boundary(self) -> frozenset[tuple[str, DefSite]]:
        return frozenset((name, (-1, -1)) for name in self.entry_names)

    def meet(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def transfer(self, block: Block, value: frozenset) -> frozenset:
        defs = set(value)
        for index, unit in enumerate(block.units):
            full, partial = unit_defs(unit)
            if full:
                defs = {(name, site) for name, site in defs
                        if name not in full}
            for name in full | partial:
                defs.add((name, (block.id, index)))
        return frozenset(defs)


class Liveness(Analysis[frozenset[str]]):
    """Backward may-analysis: names whose current value may be read."""

    direction = "backward"

    def __init__(self, known: frozenset[str],
                 exit_live: frozenset[str]):
        self.known = known
        self.exit_live = exit_live

    def boundary(self) -> frozenset[str]:
        return self.exit_live

    def meet(self, left: frozenset[str],
             right: frozenset[str]) -> frozenset[str]:
        return left | right

    def transfer(self, block: Block,
                 value: frozenset[str]) -> frozenset[str]:
        live = set(value)
        for unit in reversed(block.units):
            full, _partial = unit_defs(unit)
            live -= full
            live |= unit_uses(unit, self.known, for_liveness=True)
        return frozenset(live)


class _AssignedNames(Analysis[frozenset[str]]):
    """Forward analysis over the set of assigned names; the meet picks
    must (intersection) or may (union) semantics."""

    direction = "forward"

    def __init__(self, entry: frozenset[str], must: bool):
        self.entry = entry
        self.must = must

    def boundary(self) -> frozenset[str]:
        return self.entry

    def meet(self, left: frozenset[str],
             right: frozenset[str]) -> frozenset[str]:
        return (left & right) if self.must else (left | right)

    def transfer(self, block: Block,
                 value: frozenset[str]) -> frozenset[str]:
        assigned = set(value)
        for unit in block.units:
            full, partial = unit_defs(unit)
            assigned |= full | partial
        return frozenset(assigned)


def definite_assignment(entry: frozenset[str]) -> _AssignedNames:
    return _AssignedNames(entry, must=True)


def maybe_assignment(entry: frozenset[str]) -> _AssignedNames:
    return _AssignedNames(entry, must=False)


# ---------------------------------------------------------------------------
# Diagnostic emitters
# ---------------------------------------------------------------------------


def check_use_before_def(scope: Scope) -> list[Diagnostic]:
    """E101 (no assignment reaches this use) and W102 (an assignment
    reaches it on some paths only)."""
    known = scope_known_functions(scope)
    annotated = scope_annotations(scope)
    entry = entry_defined(scope, annotated)
    cfg = scope.cfg
    definite = solve(cfg, definite_assignment(entry))
    maybe = solve(cfg, maybe_assignment(entry))

    out: list[Diagnostic] = []
    seen: set[tuple[str, str, int, int]] = set()

    def report(code: str, name: str, unit: Unit, message: str,
               hint: str) -> None:
        key = (code, name, unit.pos.line, unit.pos.column)
        if key not in seen:
            seen.add(key)
            out.append(Diagnostic(code, message, unit.pos.line,
                                  unit.pos.column, hint))

    for block in cfg.blocks:
        sure = definite.before[block.id]
        may = maybe.before[block.id]
        if sure is None or may is None:
            continue                       # unreachable
        sure_set, may_set = set(sure), set(may)
        for unit in block.units:
            for name in sorted(unit_uses(unit, known)):
                if name not in may_set:
                    report("E101", name, unit,
                           f"'{name}' is used before any assignment",
                           f"assign '{name}' first or declare it in a "
                           f"%! annotation")
                elif name not in sure_set:
                    report("W102", name, unit,
                           f"'{name}' may be used before assignment "
                           f"(assigned on some paths only)",
                           f"assign '{name}' on every path before this "
                           f"use")
            full, partial = unit_defs(unit)
            sure_set |= full | partial
            may_set |= full | partial
    return out


def _is_pure(expr: Expr) -> bool:
    for node in expr.walk():
        if isinstance(node, Ident) and node.name in IMPURE_FUNCTIONS:
            return False
    return True


def check_dead_stores(scope: Scope) -> list[Diagnostic]:
    """W201: a full assignment whose pure value is never read.

    Scripts observe their entire final workspace, so every name is live
    at scope exit and only values overwritten before any use are dead.
    Functions observe their outputs and globals.
    """
    known = scope_known_functions(scope)
    if scope.kind == "script":
        exit_live = frozenset(assigned_names(scope.body))
    else:
        globals_: set[str] = set()
        for stmt in scope.body:
            for node in stmt.walk():
                if isinstance(node, Global):
                    globals_.update(node.names)
        exit_live = frozenset(set(scope.outs) | globals_)

    cfg = scope.cfg
    solution: Solution[frozenset[str]] = solve(
        cfg, Liveness(known, exit_live))

    out: list[Diagnostic] = []
    for block in cfg.blocks:
        live_value = solution.before[block.id]
        if live_value is None:
            continue
        live = set(live_value)
        findings: list[Diagnostic] = []
        for unit in reversed(block.units):
            node = unit.node
            if (unit.kind == "assign" and isinstance(node, Assign)
                    and isinstance(node.lhs, Ident)
                    and node.lhs.name not in live
                    and _is_pure(node.rhs)):
                name = node.lhs.name
                findings.append(Diagnostic(
                    "W201",
                    f"value assigned to '{name}' is never used",
                    unit.pos.line, unit.pos.column,
                    f"remove this assignment or use '{name}' before "
                    f"reassigning it"))
            full, _partial = unit_defs(unit)
            live -= full
            live |= unit_uses(unit, known, for_liveness=True)
        out.extend(reversed(findings))
    return out


# ---------------------------------------------------------------------------
# Shape propagation on the dims lattice
# ---------------------------------------------------------------------------


class _Conflict:
    """Lattice bottom for one variable: defined, shape not constant."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<conflict>"


CONFLICT = _Conflict()

ShapeFact = Union[Dim, _Conflict]
ShapeFacts = dict[str, ShapeFact]

#: Pointwise binary operators (Table 1 row: elementwise ops need
#: compatible dimensionalities; scalars extend).
ELEMENTWISE_OPS = frozenset({
    "+", "-", ".*", "./", ".\\", ".^",
    "==", "~=", "<", ">", "<=", ">=", "&", "|",
})


class ShapePropagation(Analysis[ShapeFacts]):
    """Forward constant propagation of abstract dimensionalities."""

    direction = "forward"

    def __init__(self, scope: Scope, annotated: ShapeEnv,
                 known: frozenset[str]):
        self.scope = scope
        self.annotated = annotated
        self.known = known

    def boundary(self) -> ShapeFacts:
        return dict(self.annotated.shapes)

    def meet(self, left: ShapeFacts, right: ShapeFacts) -> ShapeFacts:
        merged: ShapeFacts = {}
        for name in set(left) | set(right):
            if name in left and name in right:
                merged[name] = (left[name] if left[name] == right[name]
                                else CONFLICT)
            else:
                merged[name] = left.get(name, right.get(name, CONFLICT))
        return merged

    def transfer(self, block: Block, value: ShapeFacts) -> ShapeFacts:
        facts = dict(value)
        for unit in block.units:
            shape_step(unit, facts, self.annotated)
        return facts


def _facts_env(facts: ShapeFacts) -> ShapeEnv:
    return ShapeEnv({name: dim for name, dim in facts.items()
                     if isinstance(dim, Dim)})


def fact_dim(expr: Expr, facts: ShapeFacts,
             loop_vars: frozenset[str]) -> Optional[Dim]:
    """Abstract dims of ``expr`` under the current facts, or None."""
    from ..analysis.shapes import ShapeInference

    inference = ShapeInference(_facts_env(facts))
    return inference.expr_dim(expr, set(loop_vars))


def shape_step(unit: Unit, facts: ShapeFacts, annotated: ShapeEnv,
               emit: Optional[Callable[[Diagnostic], None]] = None) -> None:
    """Advance ``facts`` over one unit, optionally emitting diagnostics.

    Mutates ``facts`` in place (transfer functions copy beforehand).
    """
    node = unit.node
    if unit.kind == "for" and isinstance(node, For):
        facts[node.var] = Dim.scalar()
        return
    if unit.kind == "global" and isinstance(node, Global):
        for name in node.names:
            facts.setdefault(name, CONFLICT)
        return
    if unit.kind == "multiassign" and isinstance(node, MultiAssign):
        _multiassign_step(node, facts, unit.loop_vars)
        return
    if unit.kind != "assign" or not isinstance(node, Assign):
        return

    if emit is not None:
        _emit_operand_conflicts(node, facts, unit, emit)

    rhs_dim = fact_dim(node.rhs, facts, unit.loop_vars)
    lhs = node.lhs
    if isinstance(lhs, Ident):
        name = lhs.name
        if name in annotated:
            # Orientation-only mismatches (row vs column) are forgiven:
            # the pipeline transposes freely and linear indexing works
            # for either, so only rank/extent conflicts are real bugs.
            if (emit is not None and rhs_dim is not None
                    and rhs_dim.reduce() != annotated.shapes[name].reduce()
                    and rhs_dim.reverse().reduce()
                    != annotated.shapes[name].reduce()):
                emit(Diagnostic(
                    "E302",
                    f"assignment of shape {rhs_dim} to '{name}' conflicts "
                    f"with its annotation {annotated.shapes[name]}",
                    unit.pos.line, unit.pos.column,
                    f"update the %! annotation for '{name}' or fix the "
                    f"right-hand side"))
            facts[name] = annotated.shapes[name]
        elif name in unit.loop_vars:
            facts[name] = Dim.scalar()
        else:
            facts[name] = rhs_dim if rhs_dim is not None else CONFLICT
        return
    if isinstance(lhs, Apply) and isinstance(lhs.func, Ident):
        name = lhs.func.name
        if emit is not None and rhs_dim is not None \
                and not rhs_dim.is_scalar \
                and _all_scalar_subscripts(lhs, facts, unit.loop_vars):
            emit(Diagnostic(
                "E303",
                f"assignment of a non-scalar value (shape {rhs_dim}) to "
                f"the single element '{name}"
                f"({', '.join('…' for _ in lhs.args)})'",
                unit.pos.line, unit.pos.column,
                "index a matching slice on the left or reduce the "
                "right-hand side to a scalar"))
        if name not in facts and name not in annotated:
            # MATLAB auto-creation on a subscripted first write.
            if len(lhs.args) == 1:
                facts[name] = Dim.row()
            else:
                facts[name] = Dim.matrix() if len(lhs.args) == 2 \
                    else CONFLICT


def _multiassign_step(node: MultiAssign, facts: ShapeFacts,
                      loop_vars: frozenset[str]) -> None:
    rhs = node.rhs
    name = rhs.func.name if (isinstance(rhs, Apply)
                             and isinstance(rhs.func, Ident)) else None
    targets = [t.name for t in node.targets if isinstance(t, Ident)]
    if name == "size" or (name in ("max", "min")
                          and isinstance(rhs, Apply) and len(rhs.args) == 1):
        for target in targets:
            facts[target] = Dim.scalar()
    elif name == "sort" and isinstance(rhs, Apply) and len(rhs.args) == 1:
        dim = fact_dim(rhs.args[0], facts, loop_vars)
        for target in targets:
            facts[target] = dim if dim is not None else CONFLICT
    else:
        for target in targets:
            facts[target] = CONFLICT


def _all_scalar_subscripts(lhs: Apply, facts: ShapeFacts,
                           loop_vars: frozenset[str]) -> bool:
    for arg in lhs.args:
        if isinstance(arg, (Colon, End, Range)):
            return False
        dim = fact_dim(arg, facts, loop_vars)
        if dim is None or not dim.is_scalar:
            return False
    return True


def _emit_operand_conflicts(stmt: Assign, facts: ShapeFacts, unit: Unit,
                            emit: Callable[[Diagnostic], None]) -> None:
    """E301: elementwise operands with provably different shapes."""
    for node in stmt.rhs.walk():
        if not (isinstance(node, BinOp) and node.op in ELEMENTWISE_OPS):
            continue
        left = fact_dim(node.left, facts, unit.loop_vars)
        right = fact_dim(node.right, facts, unit.loop_vars)
        if left is None or right is None:
            continue
        if left.is_scalar or right.is_scalar:
            continue
        if left.reduce() != right.reduce():
            pos = node.pos if node.pos.line else unit.pos
            emit(Diagnostic(
                "E301",
                f"operands of '{node.op}' have incompatible shapes "
                f"{left} and {right}",
                pos.line, pos.column,
                "transpose one operand or index a matching slice"))


def check_shapes(scope: Scope) -> list[Diagnostic]:
    """E301/E302/E303 over one scope via shape propagation."""
    known = scope_known_functions(scope)
    annotated = scope_annotations(scope)
    cfg = scope.cfg
    solution = solve(cfg, ShapePropagation(scope, annotated, known))

    out: list[Diagnostic] = []
    seen: set[tuple[str, str, int, int]] = set()

    def emit(diag: Diagnostic) -> None:
        key = (diag.code, diag.message, diag.line, diag.column)
        if key not in seen:
            seen.add(key)
            out.append(diag)

    for block in cfg.blocks:
        facts_value = solution.before[block.id]
        if facts_value is None:
            continue
        facts = dict(facts_value)
        for unit in block.units:
            shape_step(unit, facts, annotated, emit)
    return out
