"""Concrete dataflow analyses and their diagnostic emitters.

All analyses run over one :class:`~repro.staticcheck.cfg.Scope`:

* **reaching definitions** — which assignment sites may reach each use;
* **liveness** — which names may still be read after each point;
* **definite/maybe assignment** — the must/may pair behind
  use-before-def diagnostics (``E101`` definitely unassigned, ``W102``
  assigned on only some paths);
* **dead stores** (``W201``) — full assignments of a pure value that is
  overwritten before any use.

Shape propagation on the dims lattice (``E301``–``E303``) lives in the
shared :mod:`repro.shapes` engine — the same fixpoint the vectorizer
consumes — and the linter calls it directly.

MATLAB specifics honoured throughout: a subscripted write auto-creates
its array (so it *defines* the name but also, for liveness, *reads* the
old array — a partial write preserves untouched elements); annotated
names are inputs, defined at scope entry; scripts observe their whole
final workspace, so only overwritten values can be dead.
"""

from __future__ import annotations

from ..dims.context import IMPURE_FUNCTIONS
from ..mlang.ast_nodes import (
    Apply,
    Assign,
    Expr,
    For,
    Global,
    Ident,
    MultiAssign,
    Node,
)
from ..shapes.engine import (
    entry_defined,
    scope_annotations,
    scope_known_functions,
)
from .cfg import Block, Scope, Unit, assigned_names
from .dataflow import Analysis, Solution, solve
from .diagnostics import Diagnostic

__all__ = [
    "DefSite",
    "Liveness",
    "ReachingDefinitions",
    "check_dead_stores",
    "check_use_before_def",
    "definite_assignment",
    "entry_defined",
    "expr_reads",
    "maybe_assignment",
    "scope_annotations",
    "scope_known_functions",
    "unit_defs",
    "unit_uses",
]

# ---------------------------------------------------------------------------
# Defs and uses of one unit
# ---------------------------------------------------------------------------


def expr_reads(node: Node, known: frozenset[str]) -> set[str]:
    """Every variable name read by an expression (function names in
    ``known`` are calls, not reads)."""
    return {n.name for n in node.walk()
            if isinstance(n, Ident) and n.name not in known}


def unit_defs(unit: Unit) -> tuple[set[str], set[str]]:
    """``(full, partial)`` definitions made by one unit.  A partial
    definition (subscripted write) defines the name without killing the
    previous value."""
    full: set[str] = set()
    partial: set[str] = set()
    node = unit.node
    if unit.kind == "assign" and isinstance(node, Assign):
        if isinstance(node.lhs, Ident):
            full.add(node.lhs.name)
        elif isinstance(node.lhs, Apply) and isinstance(node.lhs.func, Ident):
            partial.add(node.lhs.func.name)
    elif unit.kind == "multiassign" and isinstance(node, MultiAssign):
        for target in node.targets:
            if isinstance(target, Ident):
                full.add(target.name)
            elif isinstance(target, Apply) and isinstance(target.func, Ident):
                partial.add(target.func.name)
    elif unit.kind == "for" and isinstance(node, For):
        full.add(node.var)
    elif unit.kind == "global" and isinstance(node, Global):
        full.update(node.names)
    return full, partial


def unit_uses(unit: Unit, known: frozenset[str],
              for_liveness: bool = False) -> set[str]:
    """Names read by one unit.

    With ``for_liveness`` a partial write also counts as a read of its
    own array (the untouched elements survive); for use-before-def it
    does not (MATLAB auto-creates the array).
    """
    node = unit.node
    uses: set[str] = set()
    if unit.kind == "assign" and isinstance(node, Assign):
        uses |= expr_reads(node.rhs, known)
        if isinstance(node.lhs, Apply) and isinstance(node.lhs.func, Ident):
            for arg in node.lhs.args:
                uses |= expr_reads(arg, known)
            if for_liveness:
                uses.add(node.lhs.func.name)
    elif unit.kind == "multiassign" and isinstance(node, MultiAssign):
        uses |= expr_reads(node.rhs, known)
        for target in node.targets:
            if isinstance(target, Apply) and isinstance(target.func, Ident):
                for arg in target.args:
                    uses |= expr_reads(arg, known)
                if for_liveness:
                    uses.add(target.func.name)
    elif unit.kind == "expr":
        uses |= expr_reads(node, known)
    elif unit.kind == "for" and isinstance(node, For):
        uses |= expr_reads(node.iter, known)
    elif unit.kind == "cond":
        uses |= expr_reads(node, known)
    return uses


# ---------------------------------------------------------------------------
# The analyses
# ---------------------------------------------------------------------------

#: A definition site: (block id, unit index).
DefSite = tuple[int, int]


class ReachingDefinitions(Analysis[frozenset[tuple[str, DefSite]]]):
    """Forward may-analysis over (name, definition-site) pairs.  Full
    definitions kill prior sites of the same name; partial definitions
    accumulate (gen without kill)."""

    direction = "forward"

    def __init__(self, entry_names: frozenset[str] = frozenset()):
        #: Synthetic entry definitions use the site (-1, -1).
        self.entry_names = entry_names

    def boundary(self) -> frozenset[tuple[str, DefSite]]:
        return frozenset((name, (-1, -1)) for name in self.entry_names)

    def meet(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def transfer(self, block: Block, value: frozenset) -> frozenset:
        defs = set(value)
        for index, unit in enumerate(block.units):
            full, partial = unit_defs(unit)
            if full:
                defs = {(name, site) for name, site in defs
                        if name not in full}
            for name in full | partial:
                defs.add((name, (block.id, index)))
        return frozenset(defs)


class Liveness(Analysis[frozenset[str]]):
    """Backward may-analysis: names whose current value may be read."""

    direction = "backward"

    def __init__(self, known: frozenset[str],
                 exit_live: frozenset[str]):
        self.known = known
        self.exit_live = exit_live

    def boundary(self) -> frozenset[str]:
        return self.exit_live

    def meet(self, left: frozenset[str],
             right: frozenset[str]) -> frozenset[str]:
        return left | right

    def transfer(self, block: Block,
                 value: frozenset[str]) -> frozenset[str]:
        live = set(value)
        for unit in reversed(block.units):
            full, _partial = unit_defs(unit)
            live -= full
            live |= unit_uses(unit, self.known, for_liveness=True)
        return frozenset(live)


class _AssignedNames(Analysis[frozenset[str]]):
    """Forward analysis over the set of assigned names; the meet picks
    must (intersection) or may (union) semantics."""

    direction = "forward"

    def __init__(self, entry: frozenset[str], must: bool):
        self.entry = entry
        self.must = must

    def boundary(self) -> frozenset[str]:
        return self.entry

    def meet(self, left: frozenset[str],
             right: frozenset[str]) -> frozenset[str]:
        return (left & right) if self.must else (left | right)

    def transfer(self, block: Block,
                 value: frozenset[str]) -> frozenset[str]:
        assigned = set(value)
        for unit in block.units:
            full, partial = unit_defs(unit)
            assigned |= full | partial
        return frozenset(assigned)


def definite_assignment(entry: frozenset[str]) -> _AssignedNames:
    return _AssignedNames(entry, must=True)


def maybe_assignment(entry: frozenset[str]) -> _AssignedNames:
    return _AssignedNames(entry, must=False)


# ---------------------------------------------------------------------------
# Diagnostic emitters
# ---------------------------------------------------------------------------


def check_use_before_def(scope: Scope,
                         functions: frozenset[str] = frozenset()
                         ) -> list[Diagnostic]:
    """E101 (no assignment reaches this use) and W102 (an assignment
    reaches it on some paths only).  ``functions`` adds program-defined
    ``function`` names to the call-not-read set."""
    known = scope_known_functions(scope, functions)
    annotated = scope_annotations(scope)
    entry = entry_defined(scope, annotated)
    cfg = scope.cfg
    definite = solve(cfg, definite_assignment(entry))
    maybe = solve(cfg, maybe_assignment(entry))

    out: list[Diagnostic] = []
    seen: set[tuple[str, str, int, int]] = set()

    def report(code: str, name: str, unit: Unit, message: str,
               hint: str) -> None:
        key = (code, name, unit.pos.line, unit.pos.column)
        if key not in seen:
            seen.add(key)
            out.append(Diagnostic(code, message, unit.pos.line,
                                  unit.pos.column, hint))

    for block in cfg.blocks:
        sure = definite.before[block.id]
        may = maybe.before[block.id]
        if sure is None or may is None:
            continue                       # unreachable
        sure_set, may_set = set(sure), set(may)
        for unit in block.units:
            for name in sorted(unit_uses(unit, known)):
                if name not in may_set:
                    report("E101", name, unit,
                           f"'{name}' is used before any assignment",
                           f"assign '{name}' first or declare it in a "
                           f"%! annotation")
                elif name not in sure_set:
                    report("W102", name, unit,
                           f"'{name}' may be used before assignment "
                           f"(assigned on some paths only)",
                           f"assign '{name}' on every path before this "
                           f"use")
            full, partial = unit_defs(unit)
            sure_set |= full | partial
            may_set |= full | partial
    return out


def _is_pure(expr: Expr) -> bool:
    for node in expr.walk():
        if isinstance(node, Ident) and node.name in IMPURE_FUNCTIONS:
            return False
    return True


def check_dead_stores(scope: Scope,
                      functions: frozenset[str] = frozenset()
                      ) -> list[Diagnostic]:
    """W201: a full assignment whose pure value is never read.

    Scripts observe their entire final workspace, so every name is live
    at scope exit and only values overwritten before any use are dead.
    Functions observe their outputs and globals.
    """
    known = scope_known_functions(scope, functions)
    if scope.kind == "script":
        exit_live = frozenset(assigned_names(scope.body))
    else:
        globals_: set[str] = set()
        for stmt in scope.body:
            for node in stmt.walk():
                if isinstance(node, Global):
                    globals_.update(node.names)
        exit_live = frozenset(set(scope.outs) | globals_)

    cfg = scope.cfg
    solution: Solution[frozenset[str]] = solve(
        cfg, Liveness(known, exit_live))

    out: list[Diagnostic] = []
    for block in cfg.blocks:
        live_value = solution.before[block.id]
        if live_value is None:
            continue
        live = set(live_value)
        findings: list[Diagnostic] = []
        for unit in reversed(block.units):
            node = unit.node
            if (unit.kind == "assign" and isinstance(node, Assign)
                    and isinstance(node.lhs, Ident)
                    and node.lhs.name not in live
                    and _is_pure(node.rhs)):
                name = node.lhs.name
                findings.append(Diagnostic(
                    "W201",
                    f"value assigned to '{name}' is never used",
                    unit.pos.line, unit.pos.column,
                    f"remove this assignment or use '{name}' before "
                    f"reassigning it"))
            full, _partial = unit_defs(unit)
            live -= full
            live |= unit_uses(unit, known, for_liveness=True)
        out.extend(reversed(findings))
    return out
