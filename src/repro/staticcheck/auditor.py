"""The vectorization-legality auditor (``mvec audit``).

The vectorizer's own codegen *decides* what is legal; the auditor
*re-derives* legality from scratch and checks the decision.  It
re-parses the emitted source, rebuilds references and dependences with
:mod:`repro.depgraph` over the **original** loop nests, and confirms:

* **A001** — no statement was vectorized across a dependence that
  forces it sequential: for every statement the number of sequential
  loops still wrapping it in the emitted code is at least the minimum
  forced by the dependence-graph SCC structure (computed here by an
  independent walk mirroring Allen & Kennedy, with reductions allowed —
  the most permissive sound bound, so any stricter compiler option only
  over-satisfies it);
* **A002** — emitted statement order respects every dependence edge
  not already enforced by a *shared* sequential loop;
* **A003** — vectorized indexed assignments still have compatible dims
  signatures when re-checked over the emitted text;
* **A004** — ``%!`` annotations pass through the pipeline verbatim;
* **A005** (warning) — a variable's writes could not be matched
  one-to-one between input and output, so its statements were skipped;
* **A101** — the emitted program failed to re-parse or re-analyze.

Matching works positionally per variable: the original program is first
*prepared* by mirroring the driver's scalar-temp substitution, after
which both sides contain the same sequence of writes to each variable
(vectorization rewrites subscripts and right-hand sides, never the
written name or the per-variable write order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..depgraph.graph import DependenceGraph, StmtNode
from ..dims.abstract import compatible
from ..dims.context import KNOWN_FUNCTIONS, ShapeEnv
from ..errors import ReproError
from ..mlang.annotations import parse_annotations
from ..mlang.ast_nodes import (
    Apply,
    Assign,
    For,
    Ident,
    If,
    MultiAssign,
    Program,
    Stmt,
    While,
)
from ..mlang.parser import parse
from ..shapes import expr_dim, infer_shapes
from ..vectorizer.checker import is_additive_reduction
from ..vectorizer.driver import _ident_occurrences
from ..vectorizer.loop_info import (
    LoopNest,
    extract_nest,
    loop_rejection_reason,
)
from ..vectorizer.scalartemps import substitute_scalar_temps
from .diagnostics import Diagnostic, sort_diagnostics

__all__ = ["AuditResult", "audit_source"]


@dataclass
class AuditResult:
    """Outcome of one audit: verdict plus supporting diagnostics."""

    diagnostics: list[Diagnostic]
    audited_loops: int = 0
    audited_stmts: int = 0
    vectorized_stmts: int = 0

    @property
    def ok(self) -> bool:
        """True when no *error* was found (warnings are advisory)."""
        return not any(d.is_error for d in self.diagnostics)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "audited_loops": self.audited_loops,
            "audited_stmts": self.audited_stmts,
            "vectorized_stmts": self.vectorized_stmts,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


# ---------------------------------------------------------------------------
# Write records: every assignment with its chain of enclosing loops
# ---------------------------------------------------------------------------


@dataclass
class _WriteRec:
    var: str
    stmt: Stmt
    #: Enclosing ``for`` statements from the program root, outermost
    #: first, as (loop identity, index variable) pairs.  Identity
    #: matters: two statements share a sequential loop only when they
    #: sit in the *same* emitted ``for``, not merely same-named ones.
    chain: tuple[tuple[int, str], ...]
    order: int


def _collect_writes(program: Program) -> list[_WriteRec]:
    records: list[_WriteRec] = []

    def walk(stmts: list[Stmt],
             chain: tuple[tuple[int, str], ...]) -> None:
        for stmt in stmts:
            if isinstance(stmt, For):
                walk(stmt.body, chain + ((id(stmt), stmt.var),))
            elif isinstance(stmt, While):
                walk(stmt.body, chain)
            elif isinstance(stmt, If):
                for _, body in stmt.tests:
                    walk(body, chain)
                walk(stmt.orelse, chain)
            elif isinstance(stmt, Assign):
                name = _written_name(stmt.lhs)
                if name is not None:
                    records.append(_WriteRec(name, stmt, chain,
                                             len(records)))
            elif isinstance(stmt, MultiAssign):
                for target in stmt.targets:
                    name = _written_name(target)
                    if name is not None:
                        records.append(_WriteRec(name, stmt, chain,
                                                 len(records)))

    walk(program.body, ())
    return records


def _written_name(target) -> Optional[str]:
    if isinstance(target, Ident):
        return target.name
    if isinstance(target, Apply) and isinstance(target.func, Ident):
        return target.func.name
    return None


def _match_writes(original: list[_WriteRec], emitted: list[_WriteRec]
                  ) -> tuple[dict[int, _WriteRec], list[str]]:
    """Positionally match per-variable write sequences.  Returns a map
    from original record id to emitted record, plus the variables whose
    counts disagreed (their statements are skipped with A005)."""
    by_var_orig: dict[str, list[_WriteRec]] = {}
    by_var_emit: dict[str, list[_WriteRec]] = {}
    for rec in original:
        by_var_orig.setdefault(rec.var, []).append(rec)
    for rec in emitted:
        by_var_emit.setdefault(rec.var, []).append(rec)

    matched: dict[int, _WriteRec] = {}
    unmatched: list[str] = []
    for var, orig_recs in by_var_orig.items():
        emit_recs = by_var_emit.get(var, [])
        if len(orig_recs) != len(emit_recs):
            unmatched.append(var)
            continue
        for orig_rec, emit_rec in zip(orig_recs, emit_recs):
            matched[id(orig_rec)] = emit_rec
    for var in by_var_emit:
        if var not in by_var_orig:
            unmatched.append(var)
    return matched, sorted(set(unmatched))


# ---------------------------------------------------------------------------
# Mirror of the driver's preparation (scalar-temp substitution)
# ---------------------------------------------------------------------------


def _prepare(program: Program, scalar_temps: bool) -> Program:
    """Re-apply the driver's pre-codegen rewrites so write sequences
    line up with the emitted program (substituted temps vanish from
    both sides)."""
    if not scalar_temps:
        return program
    counts = _ident_occurrences(program)

    def live_outside(loop: For) -> frozenset[str]:
        inside = _ident_occurrences(loop)
        return frozenset(name for name, total in counts.items()
                         if total > inside.get(name, 0))

    def process(stmts: list[Stmt]) -> list[Stmt]:
        out: list[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, For):
                loop = substitute_scalar_temps(stmt, live_outside(stmt))
                out.append(For(loop.var, loop.iter, process(loop.body),
                               pos=loop.pos))
            elif isinstance(stmt, While):
                out.append(While(stmt.cond, process(stmt.body),
                                 pos=stmt.pos))
            elif isinstance(stmt, If):
                tests = [(cond, process(body)) for cond, body in stmt.tests]
                out.append(If(tests, process(stmt.orelse), pos=stmt.pos))
            else:
                out.append(stmt)
        return out

    return Program(process(program.body), pos=program.pos)


# ---------------------------------------------------------------------------
# Independent legality: minimum forced sequential prefix per statement
# ---------------------------------------------------------------------------


def _build_graph(nest: LoopNest, env: ShapeEnv) -> DependenceGraph:
    nodes = [
        StmtNode(
            index=index,
            stmt=nest_stmt.stmt,
            loop_vars=tuple(h.var for h in nest_stmt.headers),
            loop_counts=tuple(h.count for h in nest_stmt.headers),
        )
        for index, nest_stmt in enumerate(nest.stmts)
    ]
    known = frozenset(name for name in KNOWN_FUNCTIONS if name not in env)
    return DependenceGraph.build(nodes, known)


def _reduction_candidate(graph: DependenceGraph, node: StmtNode) -> bool:
    """Mirror of ``CodegenDim._is_vector_candidate`` with reductions
    always allowed — the most permissive sound candidacy, hence the
    lower bound on every configuration's forced sequential prefix."""
    self_edges = graph.self_edges(node.index)
    if not self_edges:
        return True
    if not is_additive_reduction(node.stmt):
        return False
    writes = node.refs.writes
    if len(writes) != 1:
        return False
    write = writes[0]
    for edge in self_edges:
        if edge.var != write.var:
            return False
        for ref in (edge.src_ref, edge.dst_ref):
            if ref is None or ref.var != write.var \
                    or ref.subs != write.subs:
                return False
    return True


def _legal_levels(graph: DependenceGraph, level: int,
                  legal: dict[int, int]) -> None:
    """Walk the SCC condensation exactly as codegen does, recording the
    level at which each statement first becomes a vector candidate."""
    for scc in graph.sccs_topological():
        if len(scc) == 1 and _reduction_candidate(graph, scc[0]):
            legal[scc[0].index] = level
        elif all(level >= len(node.loop_vars) for node in scc):
            # Safety net; dependence vectors never outlive the common
            # loop prefix, so a cycle cannot survive to full depth.
            for node in scc:                     # pragma: no cover
                legal[node.index] = len(node.loop_vars)
        else:
            indices = [n.index for n in scc]
            sub = graph.subgraph(indices).remove_carried_by(level)
            _legal_levels(sub, level + 1, legal)


# ---------------------------------------------------------------------------
# The audit
# ---------------------------------------------------------------------------


def audit_source(original: str, emitted: str,
                 scalar_temps: bool = True) -> AuditResult:
    """Audit one compilation: ``original`` MATLAB source against the
    ``emitted`` (vectorized) source.  ``scalar_temps`` must match the
    compiler option so the preparation mirrors the driver."""
    diags: list[Diagnostic] = []

    try:
        original_program = parse(original)
        annotations = parse_annotations(original_program.annotations)
        env = infer_shapes(original_program, annotations)
    except ReproError as exc:
        return AuditResult([Diagnostic(
            "A101", f"original program failed to analyze: {exc}")])
    try:
        emitted_program = parse(emitted)
    except ReproError as exc:
        return AuditResult([Diagnostic(
            "A101", f"emitted program failed to re-parse: {exc}")])

    if list(original_program.annotations) != list(emitted_program.annotations):
        diags.append(Diagnostic(
            "A004",
            "%! annotations differ between input and output",
            hint="the pipeline must pass annotations through verbatim"))

    prepared = _prepare(original_program, scalar_temps)
    orig_writes = _collect_writes(prepared)
    emit_writes = _collect_writes(emitted_program)
    matched, unmatched = _match_writes(orig_writes, emit_writes)
    for var in unmatched:
        diags.append(Diagnostic(
            "A005",
            f"writes to '{var}' could not be matched between input and "
            f"output; its statements were not audited"))

    rec_of_stmt = {id(rec.stmt): rec for rec in orig_writes}
    result = AuditResult(diags)
    _audit_stmts(prepared.body, (), env, matched, rec_of_stmt, result)
    result.diagnostics = sort_diagnostics(result.diagnostics)
    return result


def _audit_stmts(stmts: list[Stmt], chain: tuple[tuple[int, str], ...],
                 env: ShapeEnv,
                 matched: dict[int, _WriteRec],
                 rec_of_stmt: dict[int, _WriteRec],
                 result: AuditResult) -> None:
    """Find every loop nest the vectorizer would accept and audit it."""
    for stmt in stmts:
        if isinstance(stmt, For):
            nest = None
            if loop_rejection_reason(stmt) is None:
                nest = extract_nest(stmt)
            if nest is not None:
                _audit_nest(stmt, nest, chain, env, matched, rec_of_stmt,
                            result)
            else:
                # Rejected: the driver recursed looking for inner nests.
                _audit_stmts(stmt.body, chain + ((id(stmt), stmt.var),),
                             env, matched, rec_of_stmt, result)
        elif isinstance(stmt, While):
            _audit_stmts(stmt.body, chain, env, matched,
                         rec_of_stmt, result)
        elif isinstance(stmt, If):
            for _, body in stmt.tests:
                _audit_stmts(body, chain, env, matched,
                             rec_of_stmt, result)
            _audit_stmts(stmt.orelse, chain, env, matched,
                         rec_of_stmt, result)


def _audit_nest(loop: For, nest: LoopNest,
                chain: tuple[tuple[int, str], ...], env: ShapeEnv,
                matched: dict[int, _WriteRec],
                rec_of_stmt: dict[int, _WriteRec],
                result: AuditResult) -> None:
    result.audited_loops += 1
    graph = _build_graph(nest, env)
    legal: dict[int, int] = {}
    _legal_levels(graph, 0, legal)

    # The k-th assignment in a pre-order walk of the (prepared) loop is
    # nest.stmts[k]; normalization rewrote subscripts but kept order.
    loop_assigns = [s for s in loop.walk() if isinstance(s, Assign)]
    if len(loop_assigns) != len(nest.stmts):   # pragma: no cover - invariant
        result.diagnostics.append(Diagnostic(
            "A005",
            f"loop at line {loop.pos.line} could not be mapped onto its "
            f"normalized nest; skipped"))
        return

    # Emitted sequential chain (within the nest) per statement index.
    emitted_chain: dict[int, tuple[tuple[int, str], ...]] = {}
    emitted_order: dict[int, int] = {}

    for index, (assign, nest_stmt) in enumerate(zip(loop_assigns,
                                                    nest.stmts)):
        result.audited_stmts += 1
        orig_rec = rec_of_stmt.get(id(assign))
        emit_rec = matched.get(id(orig_rec)) if orig_rec else None
        if emit_rec is None:
            continue                      # already covered by an A005
        header_vars = tuple(h.var for h in nest_stmt.headers)
        outer_vars = tuple(var for _, var in chain)
        emit_vars = tuple(var for _, var in emit_rec.chain)
        if emit_vars[:len(outer_vars)] != outer_vars:
            result.diagnostics.append(Diagnostic(
                "A005",
                f"emitted write to '{emit_rec.var}' moved outside its "
                f"original loop structure; statement not audited",
                emit_rec.stmt.pos.line, emit_rec.stmt.pos.column))
            continue
        remainder = emit_rec.chain[len(outer_vars):]
        remainder_vars = tuple(var for _, var in remainder)
        if remainder_vars != header_vars[:len(remainder_vars)]:
            result.diagnostics.append(Diagnostic(
                "A005",
                f"emitted loops around the write to '{emit_rec.var}' do "
                f"not prefix its original nest "
                f"({remainder_vars} vs {header_vars}); not audited",
                emit_rec.stmt.pos.line, emit_rec.stmt.pos.column))
            continue
        emitted_chain[index] = remainder
        emitted_order[index] = emit_rec.order

        prefix = len(remainder)
        forced = legal.get(index, 0)
        if prefix < forced:
            result.diagnostics.append(Diagnostic(
                "A001",
                f"statement writing '{emit_rec.var}' was vectorized over "
                f"loop '{header_vars[prefix]}' despite a dependence "
                f"carried at level {forced - 1}",
                emit_rec.stmt.pos.line, emit_rec.stmt.pos.column,
                "this statement must stay inside "
                f"{forced} sequential loop(s)"))
        if prefix < len(header_vars):
            result.vectorized_stmts += 1
            _check_emitted_dims(emit_rec, env, result)

    # A002: every dependence edge not enforced by a shared sequential
    # loop must be enforced by emitted statement order.
    for edge in graph.edges:
        if edge.src == edge.dst:
            continue
        if edge.src not in emitted_chain or edge.dst not in emitted_chain:
            continue
        src_chain = emitted_chain[edge.src]
        dst_chain = emitted_chain[edge.dst]
        shared = 0
        for a, b in zip(src_chain, dst_chain):
            if a != b:          # identity: must be the *same* for loop
                break
            shared += 1
        needs_order = edge.has_loop_independent or any(
            level >= shared for level in edge.carried_levels())
        if needs_order and emitted_order[edge.src] >= emitted_order[edge.dst]:
            src_rec = matched.get(id(rec_of_stmt.get(id(loop_assigns[edge.src]))))
            pos = src_rec.stmt.pos if src_rec else loop.pos
            result.diagnostics.append(Diagnostic(
                "A002",
                f"emitted order violates the {edge.kind} dependence on "
                f"'{edge.var}' between statements {edge.src} and "
                f"{edge.dst} of the loop at line {loop.pos.line}",
                pos.line, pos.column))


def _check_emitted_dims(emit_rec: _WriteRec, env: ShapeEnv,
                        result: AuditResult) -> None:
    """A003: the emitted (vectorized) assignment's dims must still be
    compatible.  Only provable conflicts are flagged."""
    stmt = emit_rec.stmt
    if not isinstance(stmt, Assign) or not isinstance(stmt.lhs, Apply):
        return
    loop_vars = frozenset(var for _, var in emit_rec.chain)
    rhs_dim = expr_dim(stmt.rhs, env, loop_vars)
    lhs_dim = expr_dim(stmt.lhs, env, loop_vars)
    if rhs_dim is None or lhs_dim is None:
        return
    if rhs_dim.is_scalar:                     # scalar broadcast is legal
        return
    if not compatible(lhs_dim, rhs_dim):
        result.diagnostics.append(Diagnostic(
            "A003",
            f"vectorized assignment to '{emit_rec.var}' has incompatible "
            f"dims: left {lhs_dim}, right {rhs_dim}",
            stmt.pos.line, stmt.pos.column))
