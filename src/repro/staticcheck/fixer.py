"""Safe autofixes for lint findings (``mvec lint --fix``).

Two fixes are applied, both provably behaviour-preserving:

* **W201 dead stores** — a full assignment of a pure value that is
  overwritten before any use is deleted.  Fixes cascade (removing one
  store can orphan the store feeding it), so the linter re-runs until
  no fixable W201 remains, bounded by :data:`MAX_PASSES`.
* **unused ``%!`` annotation entries** — after dead-store removal, an
  annotation entry whose name no longer occurs anywhere in the program
  declares a shape for nothing and is stripped; an annotation line with
  no surviving entries is dropped entirely.

Deletion is line-based and deliberately conservative: a statement is
only removed when its source lines contain no part of any *other*
statement, so multi-statement lines are left untouched (and reported
as unfixable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mlang.annotations import strip_annotation_names
from ..mlang.ast_nodes import Assign, Ident
from ..mlang.parser import parse
from .diagnostics import Diagnostic
from .linter import lint_source

#: Upper bound on lint→delete rounds; each round removes at least one
#: store, so this is a cascade-depth limit, not a tuning knob.
MAX_PASSES = 10


@dataclass
class FixResult:
    """What ``fix_source`` did to one program."""

    source: str
    removed_stores: list[Diagnostic] = field(default_factory=list)
    stripped_annotations: list[str] = field(default_factory=list)
    passes: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.removed_stores or self.stripped_annotations)

    def summary(self) -> str:
        parts = []
        if self.removed_stores:
            parts.append(f"removed {len(self.removed_stores)} dead "
                         f"store(s)")
        if self.stripped_annotations:
            names = ", ".join(self.stripped_annotations)
            parts.append(f"stripped unused annotation entr"
                         f"{'y' if len(self.stripped_annotations) == 1 else 'ies'}"
                         f" ({names})")
        return "; ".join(parts) if parts else "nothing to fix"


def _stmt_spans(program) -> list[tuple[object, int, int]]:
    """Every statement with its (first line, last line) source span."""
    spans = []
    for stmt in program.walk():
        if not hasattr(stmt, "pos") or not getattr(stmt.pos, "line", 0):
            continue
        if not _is_statement(stmt):
            continue
        last = stmt.pos.line
        for node in stmt.walk():
            pos = getattr(node, "pos", None)
            if pos is not None and pos.line:
                last = max(last, pos.line)
        spans.append((stmt, stmt.pos.line, last))
    return spans


def _is_statement(node) -> bool:
    from ..mlang.ast_nodes import Stmt

    return isinstance(node, Stmt)


def _removable_lines(source: str,
                     diags: list[Diagnostic]) -> tuple[set[int],
                                                       list[Diagnostic]]:
    """Source lines safe to delete for the given W201 diagnostics."""
    program = parse(source)
    spans = _stmt_spans(program)
    removable: set[int] = set()
    applied: list[Diagnostic] = []
    for diag in diags:
        target = None
        for stmt, first, last in spans:
            if (isinstance(stmt, Assign) and isinstance(stmt.lhs, Ident)
                    and first == diag.line
                    and stmt.pos.column == diag.column):
                target, t_first, t_last = stmt, first, last
                break
        if target is None:
            continue
        lines = set(range(t_first, t_last + 1))
        descendants = {id(node) for node in target.walk()}
        safe = True
        for stmt, first, last in spans:
            if id(stmt) in descendants:
                continue                # the target itself or part of it
            if not (lines & set(range(first, last + 1))):
                continue
            if any(node is target for node in stmt.walk()):
                # Enclosing container (loop/branch/function): its body
                # always overlaps; only its own header line is off
                # limits.
                if stmt.pos.line in lines:
                    safe = False
                    break
                continue
            safe = False                # true sibling on a shared line
            break
        if not safe:
            continue
        removable |= lines
        applied.append(diag)
    return removable, applied


def _strip_unused_annotations(source: str) -> tuple[str, list[str]]:
    """Remove annotation entries for names absent from the program."""
    program = parse(source)
    referenced = {node.name for node in program.walk()
                  if isinstance(node, Ident)}
    annotated: set[str] = set()
    from ..mlang.annotations import annotations_env

    annotated = set(annotations_env(program.body).shapes)
    unused = annotated - referenced
    if not unused:
        return source, []
    out_lines: list[str] = []
    stripped: set[str] = set()
    for line in source.splitlines(keepends=True):
        body = line.strip()
        if not body.startswith("%!"):
            out_lines.append(line)
            continue
        text = body[2:]
        before = {name for name in unused
                  if name in _annotation_names(text)}
        new_text = strip_annotation_names(text, unused)
        stripped |= before
        if new_text is None:
            continue                    # nothing left: drop the line
        ending = "\n" if line.endswith("\n") else ""
        indent = line[:len(line) - len(line.lstrip())]
        out_lines.append(f"{indent}%! {new_text}{ending}")
    return "".join(out_lines), sorted(stripped)


def _annotation_names(text: str) -> set[str]:
    from ..mlang.annotations import _ENTRY

    return {match.group(1) for match in _ENTRY.finditer(text.strip())}


def fix_source(source: str) -> FixResult:
    """Apply every safe autofix to ``source``; never changes behaviour.

    Programs that fail to lex or parse come back untouched (the W201
    analysis needs an AST).
    """
    result = FixResult(source)
    current = source
    for _ in range(MAX_PASSES):
        diags = lint_source(current)
        if any(d.code in ("E001", "E002") for d in diags):
            result.source = current
            return result
        dead = [d for d in diags if d.code == "W201"]
        if not dead:
            break
        removable, applied = _removable_lines(current, dead)
        if not removable:
            break
        result.passes += 1
        result.removed_stores.extend(applied)
        current = "".join(
            line for number, line in
            enumerate(current.splitlines(keepends=True), start=1)
            if number not in removable)
    current, stripped = _strip_unused_annotations(current)
    result.stripped_annotations = stripped
    result.source = current
    return result
