"""repro — reproduction of *A Dimension Abstraction Approach to
Vectorization in Matlab* (Birkbeck, Lévesque, Amaral; CGO 2007).

The package provides:

* a MATLAB front-end (:mod:`repro.mlang`): lexer, parser, AST, printer;
* the dimension abstraction (:mod:`repro.dims`) — symbols ``1``, ``*``,
  ``r_i`` and the Table-1 vectorized-dimensionality rules;
* an extensible loop-pattern database (:mod:`repro.patterns`);
* dependence analysis (:mod:`repro.depgraph`) and the extended
  Allen & Kennedy ``codegen`` (:mod:`repro.vectorizer`);
* a MATLAB interpreter over NumPy (:mod:`repro.runtime`) used to verify
  and benchmark transformations;
* a MATLAB → NumPy transpiler (:mod:`repro.translate`);
* a unified, cached facade (:mod:`repro.api`): ``api.vectorize``,
  ``api.translate``, ``api.lint``, ``api.audit``,
  ``api.compile_many``, ``api.fanout`` — frozen result objects, one
  shared content-addressed cache.

Quickstart::

    from repro import vectorize_source
    result = vectorize_source('''
        %! x(*,1) y(*,1) z(*,1) n(1)
        for i=1:n
          z(i) = x(i) + y(i);
        end
    ''')
    print(result.source)   # z(1:n) = x(1:n)+y(1:n);
"""

from . import api  # noqa: F401
from .api import (  # noqa: F401
    AuditReport,
    CompileOutcome,
    LintReport,
)
from .dims.abstract import Dim, ONE, RSym, STAR  # noqa: F401
from .dims.context import ShapeEnv  # noqa: F401
from .errors import ReproError  # noqa: F401
from .mlang.parser import parse, parse_expr, parse_stmt  # noqa: F401
from .mlang.printer import to_source  # noqa: F401
from .patterns.base import AccessPattern, BinopPattern, template  # noqa: F401
from .patterns.builtin import default_database  # noqa: F401
from .patterns.database import PatternDatabase  # noqa: F401
from .vectorizer.checker import CheckOptions  # noqa: F401
from .vectorizer.driver import (  # noqa: F401
    Vectorizer,
    VectorizeResult,
    vectorize_source,
)

__version__ = "1.0.0"

__all__ = [
    "api",
    "AuditReport",
    "CompileOutcome",
    "LintReport",
    "Dim",
    "ONE",
    "STAR",
    "RSym",
    "ShapeEnv",
    "ReproError",
    "parse",
    "parse_expr",
    "parse_stmt",
    "to_source",
    "AccessPattern",
    "BinopPattern",
    "template",
    "PatternDatabase",
    "default_database",
    "CheckOptions",
    "Vectorizer",
    "VectorizeResult",
    "vectorize_source",
    "run_source",
    "interpret",
]


def run_source(source: str, env: dict | None = None, seed: int | None = None):
    """Interpret MATLAB ``source`` and return the final workspace.

    Thin wrapper re-exported from :mod:`repro.runtime.interp` (imported
    lazily to keep the front-end importable without NumPy overhead).
    """
    from .runtime.interp import run_source as _run

    return _run(source, env=env, seed=seed)


def interpret(program, env: dict | None = None, seed: int | None = None):
    """Interpret a parsed :class:`~repro.mlang.ast_nodes.Program`."""
    from .runtime.interp import run_program as _run

    return _run(program, env=env, seed=seed)
