"""The vectorizer: dimension checker, codegen_dim, and the driver."""

from .checker import CheckFailure, CheckOptions, DimChecker  # noqa: F401
from .codegen import CodegenDim, NestResult  # noqa: F401
from .driver import Vectorizer, VectorizeResult, vectorize_source  # noqa: F401
from .loop_info import LoopHeader, extract_nest, normalize_loop  # noqa: F401
