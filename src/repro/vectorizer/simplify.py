"""Transpose simplification — the paper's "later optimization".

§2.2 generates ``A(1:m,1:n) = (B(1:n,1:m)+C(1:m,1:n)')'`` and notes:

    "A later optimization, not investigated in this paper, would
    identify that the transpose can be distributed to generate a
    simpler equivalent form: A(1:m,1:n)=B(1:n,1:m)'+C(1:m,1:n)."

This pass implements exactly that.  Rewrite rules (applied bottom-up to
a fixpoint, each guarded so the total number of transposes never
increases):

* ``(X')' → X``                               (involution)
* ``(X ∘ Y)' → X' ∘ Y'`` for pointwise ∘       (distribution)
* ``(-X)' → -(X')``
* ``(X*Y)' → Y'*X'``                           (matmul reversal)
* ``s' → s`` for provably scalar expressions (numeric literals and
  scalar-producing builtins such as ``size(A,1)``, ``sum(v,1)`` of a
  scalar slot are *not* assumed — only literals are).

Distribution is applied only when it strictly reduces the transpose
count of the subtree (e.g. because an inner operand is itself
transposed, or is a literal), so ``(B+C')'`` becomes ``B'+C`` but
``(B+C)'`` is left alone.
"""

from __future__ import annotations

from ..mlang.ast_nodes import (
    Assign,
    BinOp,
    Expr,
    Node,
    Num,
    Transpose,
    UnOp,
    literal_value,
    num,
)
from ..mlang.visitor import Transformer

#: Pointwise operators across which a transpose distributes.
_DISTRIBUTIVE = frozenset({"+", "-", ".*", "./", ".\\", ".^",
                           "==", "~=", "<", "<=", ">", ">=", "&", "|"})


def transpose_count(expr: Node) -> int:
    """Number of transpose nodes in a subtree."""
    return sum(1 for node in expr.walk() if isinstance(node, Transpose))


def _transposed(expr: Expr) -> Expr:
    """``expr'`` simplified at the root."""
    if isinstance(expr, Transpose):
        return expr.operand
    if isinstance(expr, Num):
        return expr
    if isinstance(expr, UnOp) and expr.op in "+-":
        return UnOp(expr.op, _transposed(expr.operand))
    return Transpose(expr)


class _TransposeSimplifier(Transformer):
    def visit_Transpose(self, node: Transpose) -> Node:
        operand = self.visit(node.operand)

        # (X')' → X
        if isinstance(operand, Transpose):
            return operand.operand
        # literal' → literal
        if isinstance(operand, Num):
            return operand
        # (-X)' → -(X')
        if isinstance(operand, UnOp) and operand.op in "+-":
            return self.visit(UnOp(operand.op, Transpose(operand.operand)))
        if isinstance(operand, BinOp):
            if operand.op in _DISTRIBUTIVE:
                candidate = BinOp(operand.op,
                                  _transposed(operand.left),
                                  _transposed(operand.right))
                if transpose_count(candidate) < 1 + transpose_count(operand):
                    return self.visit(candidate)
            if operand.op == "*":
                candidate = BinOp("*",
                                  _transposed(operand.right),
                                  _transposed(operand.left))
                if transpose_count(candidate) < 1 + transpose_count(operand):
                    return self.visit(candidate)
        if operand is node.operand:
            return node
        return Transpose(operand, conjugate=node.conjugate)


class _ConstantFolder(Transformer):
    """Shape-safe arithmetic cleanup of generated code.

    Folds ``Num ∘ Num`` for ``+ - *``, drops additive zero terms
    (``x+0 → x``), unit factors (``1*x → x``), and merges literal tails
    (``(x+1)-1 → x``).  Rules that could change a value's *shape*
    (``0*x → 0``) are deliberately absent.
    """

    def visit_BinOp(self, node: BinOp) -> Node:
        left = self.visit(node.left)
        right = self.visit(node.right)
        op = node.op
        lv, rv = literal_value(left), literal_value(right)
        if op in ("+", "-", "*") and lv is not None and rv is not None:
            value = lv + rv if op == "+" else (
                lv - rv if op == "-" else lv * rv)
            return num(value)
        if op in ("+", "-") and rv == 0.0:
            return left
        if op == "+" and lv == 0.0:
            return right
        if op in ("*", ".*") and lv == 1.0:
            return right
        if op in ("*", ".*", "/", "./") and rv == 1.0:
            return left
        # Literal-tail merge: (x ± a) ± b  →  x ± (a ± b).
        if op in ("+", "-") and rv is not None and isinstance(left, BinOp) \
                and left.op in ("+", "-") \
                and (tail := literal_value(left.right)) is not None:
            combined = (tail if left.op == "+" else -tail) + (
                rv if op == "+" else -rv)
            if combined == 0.0:
                return left.left
            if combined > 0:
                return BinOp("+", left.left, num(combined))
            return BinOp("-", left.left, num(-combined))
        if left is node.left and right is node.right:
            return node
        return BinOp(op, left, right)


def fold_constants(root: Node) -> Node:
    """Apply the shape-safe constant folder (used on generated code)."""
    return _ConstantFolder().visit(root)


def simplify_transposes(root: Node) -> Node:
    """Apply the transpose rewrite rules to a fixpoint."""
    simplifier = _TransposeSimplifier()
    current = root
    for _ in range(20):  # fixpoint, bounded for safety
        simplified = simplifier.visit(current)
        if simplified is current or simplified == current:
            return simplified
        current = simplified
    return current
