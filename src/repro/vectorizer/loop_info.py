"""Loop headers, nest extraction, and index-variable normalization (§4).

Before analysis every candidate ``for`` loop is *normalized* to iterate
``1:n`` with unit stride; occurrences of the index variable in the body
are rewritten to the affine expression ``lo + st*(i-1)`` (simplified, so
``for i=2:2:1500`` rewrites uses of ``i`` to ``2*i`` over ``i=1:750`` —
exactly the ``2*(1:750)`` forms in the paper's Figure 4 output).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..dims.abstract import RSym
from ..mlang.ast_nodes import (
    Assign,
    BinOp,
    Expr,
    For,
    Num,
    Range,
    Stmt,
    UnOp,
    literal_value,
    num,
)
from ..mlang.visitor import substitute_idents

# ---------------------------------------------------------------------------
# Small constant-folding expression builders (for readable output)
# ---------------------------------------------------------------------------


def fold_add(left: Expr, right: Expr) -> Expr:
    """``left + right`` with numeric folding and 0-elimination.

    Also re-associates a literal tail: ``(n - 2) + 1`` folds to
    ``n - 1`` so normalized trip counts stay readable.
    """
    lv, rv = literal_value(left), literal_value(right)
    if lv is not None and rv is not None:
        return num(lv + rv)
    if lv == 0.0:
        return right
    if rv == 0.0:
        return left
    if rv is not None and isinstance(left, BinOp) and left.op in "+-":
        tail = literal_value(left.right)
        if tail is not None:
            combined = (tail if left.op == "+" else -tail) + rv
            return fold_add(left.left, num(combined))
    if rv is not None and rv < 0:
        return BinOp("-", left, num(-rv))
    return BinOp("+", left, right)


def fold_sub(left: Expr, right: Expr) -> Expr:
    """``left - right`` with numeric folding and 0-elimination."""
    lv, rv = literal_value(left), literal_value(right)
    if lv is not None and rv is not None:
        return num(lv - rv)
    if rv == 0.0:
        return left
    return BinOp("-", left, right)


def fold_mul(left: Expr, right: Expr) -> Expr:
    """``left * right`` with numeric folding and 1-elimination."""
    lv, rv = literal_value(left), literal_value(right)
    if lv is not None and rv is not None:
        return num(lv * rv)
    if lv == 1.0:
        return right
    if rv == 1.0:
        return left
    return BinOp("*", left, right)


# ---------------------------------------------------------------------------
# Loop headers
# ---------------------------------------------------------------------------

_serial_counter = [0]


def _next_serial() -> int:
    _serial_counter[0] += 1
    return _serial_counter[0]


@dataclass
class LoopHeader:
    """A normalized loop: ``for var = 1:count`` plus its r symbol.

    ``count`` is the trip-count expression; ``original`` keeps the
    pre-normalization loop for diagnostics and for regenerating
    sequential code.
    """

    var: str
    count: Expr
    sym: RSym
    original: For = field(repr=False, default=None)

    def range_expr(self) -> Expr:
        """The range that replaces the index variable on vectorization."""
        return Range(num(1), self.count)

    def header_stmt(self, body: list[Stmt]) -> For:
        """A sequential ``for`` running this normalized loop over ``body``."""
        return For(self.var, self.range_expr(), body)


@dataclass
class NormalizedLoop:
    """The result of normalizing one loop level."""

    header: LoopHeader
    body: list[Stmt]


def normalize_loop(loop: For) -> Optional[NormalizedLoop]:
    """Normalize ``loop`` to unit stride from 1; None when unsupported.

    Supported iteration expressions are colon ranges ``lo:hi`` and
    ``lo:st:hi``.  Loops over general vectors (``for x = v``) are not
    candidates for vectorization.
    """
    if not isinstance(loop.iter, Range):
        return None
    lo = loop.iter.start
    hi = loop.iter.stop
    st = loop.iter.step if loop.iter.step is not None else num(1)

    lo_val, st_val, hi_val = (literal_value(lo), literal_value(st),
                              literal_value(hi))
    sym = RSym(loop.var, _next_serial())

    if lo_val == 1.0 and st_val == 1.0:
        header = LoopHeader(loop.var, hi, sym, original=loop)
        return NormalizedLoop(header, list(loop.body))

    # Trip count: floor((hi - lo)/st) + 1.
    if lo_val is not None and st_val is not None and hi_val is not None:
        trips = math.floor((hi_val - lo_val) / st_val) + 1
        count: Expr = num(max(trips, 0))
    elif st_val == 1.0:
        count = fold_add(fold_sub(hi, lo), num(1))
    else:
        from ..mlang.ast_nodes import call

        span = BinOp("/", fold_sub(hi, lo), st)
        count = fold_add(call("floor", span), num(1))

    # Occurrences of var become lo + st*(var - 1) = st*var + (lo - st).
    if lo_val is not None and st_val is not None:
        replacement = fold_add(fold_mul(num(st_val), _var(loop.var)),
                               num(lo_val - st_val))
    else:
        replacement = fold_add(fold_mul(st, _var(loop.var)), fold_sub(lo, st))

    body = [substitute_idents(stmt, {loop.var: replacement})
            for stmt in loop.body]
    header = LoopHeader(loop.var, count, sym, original=loop)
    return NormalizedLoop(header, body)


def _var(name: str):
    from ..mlang.ast_nodes import Ident

    return Ident(name)


# ---------------------------------------------------------------------------
# Candidate screening (Figure 1's early rejections)
# ---------------------------------------------------------------------------


def loop_rejection_reason(loop: For) -> Optional[str]:
    """Why this loop nest cannot be considered for vectorization, or None.

    Mirrors §4: loops containing conditional statements (or any control
    flow) and loops writing to their own index variable are rejected.
    """
    from ..mlang.ast_nodes import (
        Break,
        Continue,
        Global,
        If,
        MultiAssign,
        Return,
        While,
    )

    index_vars: set[str] = set()

    def scan(stmts: list[Stmt], vars_in_scope: set[str]) -> Optional[str]:
        for stmt in stmts:
            if isinstance(stmt, (If, While)):
                return "contains control-flow statements"
            if isinstance(stmt, (Break, Continue, Return)):
                return "contains control-flow statements"
            if isinstance(stmt, (Global, MultiAssign)):
                return "contains unsupported statements"
            if isinstance(stmt, For):
                if stmt.var in vars_in_scope:
                    return f"reuses index variable {stmt.var!r}"
                reason = scan(stmt.body, vars_in_scope | {stmt.var})
                if reason:
                    return reason
            elif isinstance(stmt, Assign):
                target = stmt.lhs
                from ..mlang.ast_nodes import Apply, Ident

                if isinstance(target, Ident) and target.name in vars_in_scope:
                    return f"writes to its own index variable {target.name!r}"
                if isinstance(target, Apply) and isinstance(target.func, Ident) \
                        and target.func.name in vars_in_scope:
                    return f"writes to its own index variable {target.func.name!r}"
            else:
                return f"contains unsupported statement {type(stmt).__name__}"
        return None

    index_vars.add(loop.var)
    return scan(loop.body, index_vars)


@dataclass
class NestStmt:
    """A statement together with its chain of normalized enclosing loops."""

    stmt: Assign
    headers: tuple[LoopHeader, ...]


@dataclass
class LoopNest:
    """A fully normalized loop nest, flattened for dependence analysis.

    ``stmts`` lists every assignment in the nest with its loop chain
    (outermost first); chains share :class:`LoopHeader` instances, so two
    statements under the same loop reference the same header object.
    """

    root_header: LoopHeader
    stmts: list[NestStmt]
    headers: list[LoopHeader]

    @property
    def max_depth(self) -> int:
        return max((len(s.headers) for s in self.stmts), default=0)


def extract_nest(loop: For) -> Optional[LoopNest]:
    """Normalize ``loop`` and every nested loop, flattening statements.

    Returns None when any loop level is unsupported (non-range iteration
    expression); callers then leave the original loop untouched.
    """
    normalized = normalize_loop(loop)
    if normalized is None:
        return None
    stmts: list[NestStmt] = []
    headers: list[LoopHeader] = [normalized.header]

    def visit(body: list[Stmt], chain: tuple[LoopHeader, ...]) -> bool:
        for stmt in body:
            if isinstance(stmt, Assign):
                stmts.append(NestStmt(stmt, chain))
            elif isinstance(stmt, For):
                inner = normalize_loop(stmt)
                if inner is None:
                    return False
                headers.append(inner.header)
                if not visit(inner.body, chain + (inner.header,)):
                    return False
            else:
                return False
        return True

    if not visit(normalized.body, (normalized.header,)):
        return None
    return LoopNest(normalized.header, stmts, headers)
