"""``vectDimsOkay`` — the statement dimension checker (§2, §3, §3.1).

:class:`DimChecker` traverses one assignment's parse tree bottom-up,
computing vectorized dimensionalities (Table 1 rules from
:mod:`repro.dims.vectorized`), while

* verifying pointwise/assignment compatibility (§2.1),
* inserting transposes where they repair compatibility (§2.2),
* consulting the pattern database on failures (§3),
* rewriting duplicate-``r`` matrix accesses (diagonal patterns, §3),
* tracking reduced-variable sets ρ and applying the Γ reduction
  operator for additive-reduction statements (§3.1), including implicit
  reduction through native matrix multiplication and the enumeration of
  associative regroupings of ``*`` chains (footnote 2).

On success the checker returns a rewritten statement *template*: the
tree with all transforms applied but index variables still in place;
code generation substitutes the loop ranges afterwards.  On failure a
:class:`CheckFailure` carries a human-readable reason used in
vectorization reports.

Soundness notes beyond the paper's text (the paper's examples never hit
these, but an implementation must decide):

* ρ-carrying subexpressions may only flow through operators that
  distribute over addition (``+ - *`` and elementwise ``.*``, plus
  division by a ρ-free denominator); anything else — function calls,
  powers, comparisons — rejects, because ``f(Σe) ≠ Σf(e)``;
* multiplicative combinations require *disjoint* ρ sets (each reduction
  variable may be summed exactly once).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..dims.abstract import ONE, STAR, Dim, RSym, compatible
from ..dims.context import (
    DimContext,
    IMPURE_FUNCTIONS,
    KNOWN_FUNCTIONS,
    POINTWISE_BINARY,
    POINTWISE_UNARY,
    ShapeEnv,
)
from ..dims.signatures import builtin_result_dim, CONSTANT_NAMES
from ..dims.vectorized import (
    COLON,
    dim_of_matrix_literal,
    dim_of_subscript,
    pointwise_result,
)
from ..mlang.ast_nodes import (
    Apply,
    Assign,
    BinOp,
    Colon,
    End,
    Expr,
    Ident,
    Matrix,
    Num,
    Range,
    Str,
    Transpose,
    UnOp,
    call,
    num,
)
from ..patterns.database import PatternDatabase
from .loop_info import LoopHeader

#: Operators that MATLAB applies elementwise (scalar extension included).
POINTWISE_OPS = frozenset({"+", "-", ".*", "./", ".\\", ".^",
                           "==", "~=", "<", "<=", ">", ">=", "&", "|"})

#: Scalar operators promoted to their elementwise forms when every
#: iteration applied them to scalars (x(i)^2 → x(1:n).^2).
PROMOTIONS = {"*": ".*", "/": "./", "^": ".^", "\\": ".\\"}

#: Operators through which a ρ-carrying operand may pass (they
#: distribute over the deferred summation).
_RHO_TRANSPARENT = frozenset({"+", "-", "*", ".*"})


class CheckFailure(Exception):
    """Vectorization of the statement (at this level) is not possible."""

    def __init__(self, reason: str, node: Optional[Expr] = None):
        self.reason = reason
        self.node = node
        super().__init__(reason)


@dataclass(frozen=True)
class VExpr:
    """A checked subexpression: rewritten template, dims, ρ set, and the
    names of the database patterns used to build it."""

    expr: Expr
    dim: Dim
    rho: frozenset[RSym] = frozenset()
    patterns: tuple[str, ...] = ()

    def with_transpose(self) -> "VExpr":
        return VExpr(Transpose(self.expr), self.dim.reverse(), self.rho,
                     self.patterns)


@dataclass
class CheckOptions:
    """Feature switches, primarily for the ablation benchmarks."""

    transposes: bool = True
    patterns: bool = True
    reductions: bool = True
    promotion: bool = True
    product_regroup: bool = True
    max_chain: int = 8


@dataclass
class CheckedStmt:
    """A successfully checked statement, pre index-substitution."""

    template: Assign
    used_patterns: list[str] = field(default_factory=list)
    is_reduction: bool = False


# ---------------------------------------------------------------------------
# Expression-shape helpers
# ---------------------------------------------------------------------------


def flatten_additive(expr: Expr) -> list[tuple[int, Expr]]:
    """Flatten the top-level ``+``/``-`` spine into (sign, term) pairs."""
    terms: list[tuple[int, Expr]] = []

    def walk(node: Expr, sign: int) -> None:
        if isinstance(node, BinOp) and node.op in ("+", "-"):
            walk(node.left, sign)
            walk(node.right, sign if node.op == "+" else -sign)
        elif isinstance(node, UnOp) and node.op in "+-":
            walk(node.operand, sign if node.op == "+" else -sign)
        else:
            terms.append((sign, node))

    walk(expr, 1)
    return terms


def rebuild_additive(terms: Sequence[tuple[int, Expr]]) -> Expr:
    """Rebuild an expression from (sign, term) pairs."""
    expr: Optional[Expr] = None
    for sign, term in terms:
        if expr is None:
            expr = term if sign > 0 else UnOp("-", term)
        else:
            expr = BinOp("+" if sign > 0 else "-", expr, term)
    assert expr is not None
    return expr


def flatten_star(expr: Expr) -> list[Expr]:
    """Flatten the left spine of a ``*`` chain."""
    if isinstance(expr, BinOp) and expr.op == "*":
        return flatten_star(expr.left) + [expr.right]
    return [expr]


def is_additive_reduction(stmt: Assign) -> bool:
    """Quick syntactic test for the §3.1 form ``A(J) = A(J) ± E``."""
    return any(sign > 0 and term == stmt.lhs
               for sign, term in flatten_additive(stmt.rhs))


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------


class DimChecker:
    """Dimension-check (and rewrite) statements for a given set of loops.

    ``headers`` are the loops being vectorized, outermost first;
    ``sequential_vars`` are index variables of enclosing loops that stay
    sequential (they behave as scalars).
    """

    def __init__(self, shapes: ShapeEnv, headers: Sequence[LoopHeader],
                 sequential_vars: Sequence[str] = (),
                 db: Optional[PatternDatabase] = None,
                 options: Optional[CheckOptions] = None):
        self.headers = list(headers)
        self.ctx = DimContext(
            shapes=shapes,
            loop_syms={h.var: h.sym for h in headers},
            sequential_vars=frozenset(sequential_vars),
        )
        self.db = db if db is not None else PatternDatabase()
        self.options = options or CheckOptions()
        self._by_sym = {h.sym: h for h in headers}
        self._reduction_allowed: frozenset[RSym] = frozenset()

    # -- TransformContext protocol ------------------------------------

    def range_expr(self, sym: RSym) -> Expr:
        return self._by_sym[sym].range_expr()

    def tripcount_expr(self, sym: RSym) -> Expr:
        return self._by_sym[sym].count

    def base_dim_of(self, expr: Expr) -> Optional[Dim]:
        if isinstance(expr, Ident):
            return self.ctx.var_dim(expr.name)
        return None

    # -- statement entry point ---------------------------------------------

    def check_assign(self, stmt: Assign) -> CheckedStmt:
        """Check one assignment; raises :class:`CheckFailure` on failure."""
        lhs_v = self._check_lhs(stmt.lhs)
        active = self.ctx.active_syms()
        reduction_vars = active - lhs_v.dim.r_syms()

        if reduction_vars:
            if not self.options.reductions:
                raise CheckFailure(
                    "loop variables "
                    f"{sorted(str(s) for s in reduction_vars)} do not appear "
                    "in the assignment target (reductions disabled)",
                    stmt.lhs)
            template, used = self._check_reduction(stmt, lhs_v,
                                                   reduction_vars)
            return CheckedStmt(template, used, is_reduction=True)

        rhs_v = self.check_expr(stmt.rhs)
        if rhs_v.rho:
            raise CheckFailure("internal: unexpected reduction outside an "
                               "additive-reduction statement", stmt.rhs)
        rhs_v = self._fit_assignment(lhs_v, rhs_v, stmt.rhs)
        template = Assign(lhs_v.expr, rhs_v.expr, suppress=stmt.suppress)
        return CheckedStmt(template, list(lhs_v.patterns + rhs_v.patterns))

    # -- additive reductions (§3.1) ------------------------------------------

    def _check_reduction(self, stmt: Assign, lhs_v: VExpr,
                         reduction_vars: frozenset[RSym],
                         ) -> tuple[Assign, list[str]]:
        terms = flatten_additive(stmt.rhs)
        acc_positions = [k for k, (sign, term) in enumerate(terms)
                         if sign > 0 and term == stmt.lhs]
        if not acc_positions:
            raise CheckFailure(
                "statement uses loop variables absent from its target but "
                "is not an additive reduction A(J) = A(J) + E", stmt.rhs)
        rest = [pair for k, pair in enumerate(terms) if k != acc_positions[0]]
        if not rest:
            raise CheckFailure("degenerate reduction A(J) = A(J)", stmt.rhs)
        # Γ is linear, so a uniformly negative remainder is accumulated
        # positively and subtracted once: A = A - Σ E, not A = A + Σ(-E).
        negated = all(sign < 0 for sign, _ in rest)
        if negated:
            rest = [(1, term) for _, term in rest]

        self._reduction_allowed = reduction_vars
        try:
            e_v = self.check_expr(rebuild_additive(rest))
        finally:
            self._reduction_allowed = frozenset()

        for sym in self._ordered(reduction_vars - e_v.rho):
            e_v = self._gamma(e_v, sym)
        if e_v.rho != reduction_vars:
            raise CheckFailure(
                f"reduced variables {sorted(str(s) for s in e_v.rho)} do not "
                f"match the reduction set "
                f"{sorted(str(s) for s in reduction_vars)}", stmt.rhs)

        e_v = self._fit_assignment(lhs_v, e_v, stmt.rhs)
        accumulate: Expr = e_v.expr
        op = "-" if negated else "+"
        if isinstance(accumulate, UnOp) and accumulate.op == "-":
            op = "+" if op == "-" else "-"
            accumulate = accumulate.operand
        new_rhs = BinOp(op, lhs_v.expr, accumulate)
        template = Assign(lhs_v.expr, new_rhs, suppress=stmt.suppress)
        return template, list(lhs_v.patterns + e_v.patterns)

    def _ordered(self, syms: frozenset[RSym]) -> list[RSym]:
        order = {h.sym: k for k, h in enumerate(self.headers)}
        return sorted(syms, key=lambda s: order.get(s, len(order)))

    def _gamma(self, value: VExpr, sym: RSym) -> VExpr:
        """The Γ reduction operator: accumulate ``value`` over ``sym``.

        ``sum(e, j)`` along the unique axis holding ``r_i``; when the
        symbol does not occur, every iteration contributed the same
        value, so multiply by the trip count.
        """
        axis = value.dim.axis_of(sym)
        if axis is not None:
            expr = call("sum", value.expr, num(axis + 1))
            return VExpr(expr, value.dim.replace_axis(axis, ONE),
                         value.rho | {sym}, value.patterns)
        if sym in value.dim.r_syms():
            raise CheckFailure(
                f"cannot reduce {sym}: it occurs in several dimensions",
                value.expr)
        expr = BinOp("*", self.tripcount_expr(sym), value.expr)
        return VExpr(expr, value.dim, value.rho | {sym}, value.patterns)

    # -- assignment compatibility -------------------------------------------

    def _fit_assignment(self, lhs_v: VExpr, rhs_v: VExpr,
                        origin: Expr) -> VExpr:
        if rhs_v.dim.is_scalar:
            return rhs_v
        if compatible(lhs_v.dim, rhs_v.dim):
            return rhs_v
        if self.options.transposes and compatible(lhs_v.dim,
                                                  rhs_v.dim.reverse()):
            return rhs_v.with_transpose()
        raise CheckFailure(
            f"assignment dims disagree: {lhs_v.dim} vs {rhs_v.dim}", origin)

    # -- left-hand sides -------------------------------------------------

    def _check_lhs(self, lhs: Expr) -> VExpr:
        if isinstance(lhs, Ident):
            dim = self.ctx.var_dim(lhs.name)
            if lhs.name in self.ctx.loop_syms:
                raise CheckFailure(
                    f"cannot assign to loop index {lhs.name!r}", lhs)
            if dim is None:
                raise CheckFailure(
                    f"no shape information for assigned variable "
                    f"{lhs.name!r}", lhs)
            return VExpr(lhs, dim)
        if isinstance(lhs, Apply) and isinstance(lhs.func, Ident):
            return self._check_access(lhs, is_write=True)
        raise CheckFailure("unsupported assignment target", lhs)

    # -- expressions ------------------------------------------------------

    def check_expr(self, expr: Expr) -> VExpr:
        """Compute the vectorized dimensionality of ``expr``, rewriting."""
        if isinstance(expr, Num):
            return VExpr(expr, Dim.scalar())
        if isinstance(expr, Str):
            raise CheckFailure("string operand in candidate statement", expr)
        if isinstance(expr, Ident):
            return self._check_ident(expr)
        if isinstance(expr, UnOp):
            inner = self.check_expr(expr.operand)
            if expr.op == "~" and inner.rho:
                raise CheckFailure("logical negation of a reduced value", expr)
            return VExpr(UnOp(expr.op, inner.expr), inner.dim, inner.rho,
                         inner.patterns)
        if isinstance(expr, Transpose):
            inner = self.check_expr(expr.operand)
            return VExpr(Transpose(inner.expr, conjugate=expr.conjugate),
                         inner.dim.reverse(), inner.rho, inner.patterns)
        if isinstance(expr, Range):
            return self._check_range(expr)
        if isinstance(expr, Matrix):
            return self._check_matrix(expr)
        if isinstance(expr, BinOp):
            return self._check_binop(expr)
        if isinstance(expr, Apply):
            return self._check_apply(expr)
        if isinstance(expr, (Colon, End)):
            raise CheckFailure("':'/'end' outside a subscript", expr)
        raise CheckFailure(f"unsupported expression {type(expr).__name__}",
                           expr)

    def _check_ident(self, expr: Ident) -> VExpr:
        sym = self.ctx.sym_for(expr.name)
        if sym is not None:
            return VExpr(expr, Dim((ONE, sym)))
        dim = self.ctx.var_dim(expr.name)
        if dim is not None:
            return VExpr(expr, dim)
        if expr.name in CONSTANT_NAMES:
            return VExpr(expr, Dim.scalar())
        raise CheckFailure(f"no shape information for {expr.name!r}", expr)

    def _check_range(self, expr: Range) -> VExpr:
        parts = [expr.start, expr.stop] + ([expr.step] if expr.step else [])
        for part in parts:
            part_v = self.check_expr(part)
            if part_v.rho or part_v.dim.r_syms():
                raise CheckFailure(
                    "range bounds depend on a vectorized loop variable",
                    expr)
            if not part_v.dim.is_scalar:
                raise CheckFailure("non-scalar range bound", part)
        return VExpr(expr, Dim.row())

    def _check_matrix(self, expr: Matrix) -> VExpr:
        element_dims: list[Dim] = []
        new_rows: list[list[Expr]] = []
        for row in expr.rows:
            new_row = []
            for element in row:
                element_v = self.check_expr(element)
                if element_v.rho or element_v.dim.r_syms():
                    raise CheckFailure(
                        "matrix literal element depends on a vectorized "
                        "loop variable", element)
                element_dims.append(element_v.dim)
                new_row.append(element_v.expr)
            new_rows.append(new_row)
        dim = dim_of_matrix_literal([len(r) for r in expr.rows], element_dims)
        if dim is None:
            raise CheckFailure("matrix literal with non-scalar elements",
                               expr)
        return VExpr(Matrix(new_rows), dim)

    # -- subscripted accesses -----------------------------------------------

    def _check_apply(self, expr: Apply) -> VExpr:
        if not isinstance(expr.func, Ident):
            raise CheckFailure("unsupported applied expression", expr)
        name = expr.func.name
        if self.ctx.is_function(name):
            return self._check_call(expr, name)
        if self.ctx.var_dim(name) is None and name in KNOWN_FUNCTIONS:
            return self._check_call(expr, name)
        return self._check_access(expr, is_write=False)

    def _check_call(self, expr: Apply, name: str) -> VExpr:
        if name in IMPURE_FUNCTIONS:
            raise CheckFailure(
                f"{name!r} is impure: each iteration must call it anew, "
                "so the statement cannot be vectorized", expr)
        args = [self.check_expr(arg) for arg in expr.args]
        for arg_v in args:
            if arg_v.rho:
                raise CheckFailure(
                    f"reduced value used as argument of {name!r}", expr)
        new_expr = Apply(expr.func, [a.expr for a in args])
        merged = tuple(p for a in args for p in a.patterns)
        has_r = any(a.dim.r_syms() for a in args)
        if name in POINTWISE_UNARY and len(args) == 1:
            return VExpr(new_expr, args[0].dim, patterns=merged)
        if (name in POINTWISE_BINARY or name in ("min", "max")) \
                and len(args) == 2:
            # Two-argument min/max are elementwise (with scalar
            # extension), unlike their single-argument reducing forms.
            dim = pointwise_result(args[0].dim, args[1].dim)
            if dim is None:
                raise CheckFailure(
                    f"incompatible dims in {name}: {args[0].dim} vs "
                    f"{args[1].dim}", expr)
            return VExpr(new_expr, dim, patterns=merged)
        if has_r:
            if self.options.patterns:
                match = self.db.match_call(new_expr, name,
                                           [a.dim for a in args], self)
                if match is not None:
                    return VExpr(match.replacement, match.out_dim,
                                 patterns=merged + (match.pattern.name,))
            raise CheckFailure(
                f"non-pointwise function {name!r} applied to a vectorized "
                "loop expression", expr)
        dim = builtin_result_dim(name, [a.dim for a in args],
                                 [a.expr for a in args])
        if dim is None:
            raise CheckFailure(f"unknown result shape for builtin {name!r}",
                               expr)
        return VExpr(new_expr, dim, patterns=merged)

    def _check_access(self, expr: Apply, is_write: bool) -> VExpr:
        assert isinstance(expr.func, Ident)
        name = expr.func.name
        base = self.ctx.var_dim(name)
        if base is None:
            if not is_write:
                raise CheckFailure(f"no shape information for {name!r}",
                                   expr)
            base = self._assumed_write_shape(expr)

        arg_dims: list[object] = []
        new_args: list[Expr] = []
        arg_patterns: tuple[str, ...] = ()
        for arg in expr.args:
            if isinstance(arg, Colon):
                if self.ctx.var_dim(name) is None:
                    raise CheckFailure(
                        f"':' subscript on unknown-shape variable {name!r}",
                        arg)
                arg_dims.append(COLON)
                new_args.append(arg)
                continue
            if isinstance(arg, End):
                arg_dims.append(Dim.scalar())
                new_args.append(arg)
                continue
            arg_v = self.check_expr(arg)
            if arg_v.rho:
                raise CheckFailure("reduced value used as a subscript", arg)
            arg_dims.append(arg_v.dim)
            new_args.append(arg_v.expr)
            arg_patterns += arg_v.patterns

        access_dim = dim_of_subscript(base, arg_dims)
        if access_dim is None:
            raise CheckFailure(
                f"subscript of {name!r} mixes incompatible extents", expr)
        new_node = Apply(expr.func, new_args)
        if access_dim.has_duplicate_r():
            if not self.options.patterns:
                raise CheckFailure(
                    f"access {name!r} repeats a loop variable across "
                    "subscripts (patterns disabled)", expr)
            match = self.db.match_access(new_node, access_dim, self)
            if match is None:
                raise CheckFailure(
                    f"no pattern handles the access dims {access_dim} of "
                    f"{name!r}", expr)
            return VExpr(match.replacement, match.out_dim,
                         patterns=arg_patterns + (match.pattern.name,))
        return VExpr(new_node, access_dim, patterns=arg_patterns)

    def _assumed_write_shape(self, expr: Apply) -> Dim:
        """Shape assumed for a first-write target without annotations:
        MATLAB auto-creates ``a(i)=…`` as a row and ``A(i,j)=…`` as a
        matrix."""
        if len(expr.args) == 1:
            return Dim.row()
        return Dim(tuple(STAR for _ in expr.args))

    # -- binary operators ----------------------------------------------------

    def _check_binop(self, expr: BinOp) -> VExpr:
        op = expr.op
        if op in ("&&", "||"):
            left = self.check_expr(expr.left)
            right = self.check_expr(expr.right)
            if (left.rho or right.rho or not left.dim.is_scalar
                    or not right.dim.is_scalar):
                raise CheckFailure(
                    "short-circuit operator on non-scalar operands", expr)
            return VExpr(BinOp(op, left.expr, right.expr), Dim.scalar(),
                         patterns=left.patterns + right.patterns)
        if op == "*":
            return self._check_star_chain(expr)
        if op in POINTWISE_OPS:
            left = self.check_expr(expr.left)
            right = self.check_expr(expr.right)
            return self._combine_pointwise(expr, op, left, right)
        if op in ("/", "\\", "^"):
            return self._check_scalar_family(expr)
        raise CheckFailure(f"unsupported operator {op!r}", expr)

    def _check_scalar_family(self, expr: BinOp) -> VExpr:
        """``/``, ``\\``, ``^`` — matrix semantics in MATLAB; vectorizable
        when an operand is scalar or both were scalars per iteration."""
        op = expr.op
        left = self.check_expr(expr.left)
        right = self.check_expr(expr.right)
        merged = left.patterns + right.patterns
        if op == "/" and right.dim.is_scalar and not right.rho:
            return VExpr(BinOp(op, left.expr, right.expr), left.dim,
                         left.rho, merged)
        if op == "\\" and left.dim.is_scalar and not left.rho:
            return VExpr(BinOp(op, left.expr, right.expr), right.dim,
                         right.rho, merged)
        if op == "^" and left.dim.is_scalar and right.dim.is_scalar \
                and not left.rho and not right.rho:
            return VExpr(BinOp(op, left.expr, right.expr), Dim.scalar(),
                         patterns=merged)
        promotable = (
            left.dim.unvectorized().is_scalar
            and right.dim.unvectorized().is_scalar
        ) or (
            # '/' by a per-iteration scalar is elementwise scaling too.
            op == "/" and right.dim.unvectorized().is_scalar
        ) or (
            op == "\\" and left.dim.unvectorized().is_scalar
        )
        if self.options.promotion and promotable:
            promoted = PROMOTIONS[op]
            return self._combine_pointwise(expr, promoted, left, right)
        raise CheckFailure(
            f"operator {op!r} with dims {left.dim} and {right.dim} cannot "
            "be vectorized", expr)

    # -- pointwise combination with transposes, patterns, ρ handling -------

    def _combine_pointwise(self, origin: Expr, op: str, left: VExpr,
                           right: VExpr) -> VExpr:
        if op in ("+", "-"):
            left, right = self._equalize_rho(left, right)
        else:
            self._require_rho_valid(op, left, right)
        rho = left.rho | right.rho
        merged = left.patterns + right.patterns

        dim = pointwise_result(left.dim, right.dim)
        if dim is not None:
            return VExpr(BinOp(op, left.expr, right.expr), dim, rho, merged)

        if self.options.transposes:
            dim = pointwise_result(left.dim, right.dim.reverse())
            if dim is not None:
                return VExpr(BinOp(op, left.expr, Transpose(right.expr)),
                             dim, rho, merged)
            dim = pointwise_result(left.dim.reverse(), right.dim)
            if dim is not None:
                return VExpr(BinOp(op, Transpose(left.expr), right.expr),
                             dim, rho, merged)

        if self.options.patterns:
            variants = [(left, right)]
            if self.options.transposes:
                variants += [(left, right.with_transpose()),
                             (left.with_transpose(), right)]
            for lv, rv in variants:
                match = self.db.match_binop(op, lv.dim, rv.dim)
                if match is not None:
                    node = BinOp(op, lv.expr, rv.expr)
                    replacement = match.pattern.transform(
                        node, match.bindings, self)
                    return VExpr(replacement, match.out_dim, rho,
                                 merged + (match.pattern.name,))

        raise CheckFailure(
            f"incompatible dims for {op!r}: {left.dim} vs {right.dim}",
            origin)

    def _equalize_rho(self, left: VExpr, right: VExpr) -> tuple[VExpr, VExpr]:
        """§3.1: before ``±``, make both sides' reduced sets agree by
        applying Γ to the side missing a reduction variable."""
        for sym in self._ordered(right.rho - left.rho):
            left = self._gamma(left, sym)
        for sym in self._ordered(left.rho - right.rho):
            right = self._gamma(right, sym)
        return left, right

    def _require_rho_valid(self, op: str, left: VExpr, right: VExpr) -> None:
        if not left.rho and not right.rho:
            return
        if op not in _RHO_TRANSPARENT and not (
                op == "./" and not right.rho) and not (
                op == "/" and not right.rho):
            raise CheckFailure(
                f"reduced value cannot pass through operator {op!r}", None)
        if left.rho & right.rho:
            raise CheckFailure(
                "both operands reduce the same loop variable", None)
        if any(s in right.dim.r_syms() for s in left.rho) or any(
                s in left.dim.r_syms() for s in right.rho):
            raise CheckFailure(
                "a variable reduced in one operand appears in the "
                "dimensionality of the other", None)

    # -- * chains: scalar rule, promotion, patterns, matmul, regrouping ------

    def _check_star_chain(self, expr: BinOp) -> VExpr:
        factors = flatten_star(expr)
        checked = [self.check_expr(f) for f in factors]
        if len(checked) > self.options.max_chain:
            raise CheckFailure(
                f"product chain longer than {self.options.max_chain}", expr)
        if len(checked) == 2 or not self.options.product_regroup:
            result = self._best_star_variant(
                self._combine_star(checked[0], checked[1]))
            for nxt in checked[2:]:
                result = self._best_star_variant(
                    self._combine_star(result, nxt))
            return result
        variants = self._plan_chain(checked)
        if not variants:
            raise CheckFailure(
                "no associative grouping of the product chain has "
                "compatible dimensions", expr)
        return self._best_star_variant(variants)

    def _plan_chain(self, factors: list[VExpr]) -> list[VExpr]:
        """Enumerate associative groupings (footnote 2) by interval DP."""
        n = len(factors)
        table: dict[tuple[int, int], list[VExpr]] = {}
        for i in range(n):
            table[(i, i + 1)] = [factors[i]]
        for span in range(2, n + 1):
            for i in range(n - span + 1):
                j = i + span
                variants: dict[tuple[Dim, frozenset], VExpr] = {}
                for k in range(i + 1, j):
                    for lv in table[(i, k)]:
                        for rv in table[(k, j)]:
                            for candidate in self._combine_star(lv, rv):
                                key = (candidate.dim, candidate.rho)
                                variants.setdefault(key, candidate)
                table[(i, j)] = list(variants.values())
        return table[(0, n)]

    def _best_star_variant(self, variants: list[VExpr]) -> VExpr:
        if not variants:
            raise CheckFailure("product has no compatible interpretation",
                               None)
        needed = self._reduction_allowed

        def score(v: VExpr) -> tuple:
            reduced = len(v.rho & needed)
            leftover_r = len(v.dim.r_syms() - needed)
            return (-reduced, v.dim.has_duplicate_r(), leftover_r,
                    _transpose_count(v.expr))

        return min(variants, key=score)

    def _combine_star(self, left: VExpr, right: VExpr) -> list[VExpr]:
        """All sound interpretations of ``left * right``."""
        out: list[VExpr] = []

        # 1. Scalar scaling (MATLAB semantics of * with a scalar).
        if left.dim.is_scalar or right.dim.is_scalar:
            try:
                self._require_rho_valid("*", left, right)
            except CheckFailure:
                return out
            dim = right.dim if left.dim.is_scalar else left.dim
            out.append(VExpr(BinOp("*", left.expr, right.expr), dim,
                             left.rho | right.rho,
                             left.patterns + right.patterns))
            return out

        # 2. Promotion: at least one side was a scalar per iteration, so
        #    the original '*' was scalar scaling — vectorize elementwise.
        if self.options.promotion and (
                left.dim.unvectorized().is_scalar
                or right.dim.unvectorized().is_scalar):
            try:
                out.append(self._combine_pointwise(None, ".*", left, right))
            except CheckFailure:
                pass

        # 3. Pattern database (the Table 2 dot-product row and friends).
        if self.options.patterns:
            variants = [(left, right)]
            if self.options.transposes:
                variants += [(left, right.with_transpose()),
                             (left.with_transpose(), right)]
            for lv, rv in variants:
                match = self.db.match_binop("*", lv.dim, rv.dim)
                if match is not None:
                    node = BinOp("*", lv.expr, rv.expr)
                    replacement = match.pattern.transform(
                        node, match.bindings, self)
                    out.append(VExpr(
                        replacement, match.out_dim, lv.rho | rv.rho,
                        lv.patterns + rv.patterns + (match.pattern.name,)))
                    break

        # 4. Matrix multiplication, optionally transposing operands and
        #    implicitly reducing a shared loop symbol (§3.1).
        combos = [(left, right)]
        if self.options.transposes:
            combos += [
                (left, right.with_transpose()),
                (left.with_transpose(), right),
                (left.with_transpose(), right.with_transpose()),
            ]
        for lv, rv in combos:
            result = self._try_matmul(lv, rv)
            if result is not None:
                out.append(result)
        return out

    def _try_matmul(self, left: VExpr, right: VExpr) -> Optional[VExpr]:
        ldim = left.dim.reduce().pad(2)
        rdim = right.dim.reduce().pad(2)
        if len(ldim) != 2 or len(rdim) != 2:
            return None
        inner_l, inner_r = ldim[1], rdim[0]
        rho = left.rho | right.rho
        if left.rho & right.rho:
            return None
        if any(s in right.dim.r_syms() for s in left.rho) or any(
                s in left.dim.r_syms() for s in right.rho):
            return None

        reduces: Optional[RSym] = None
        if isinstance(inner_l, RSym) or isinstance(inner_r, RSym):
            if inner_l != inner_r:
                return None
            sym = inner_l
            if sym not in self._reduction_allowed or sym in rho:
                return None
            reduces = sym
        elif inner_l is not inner_r:
            # 1×k against k'×m with abstract sizes: ONE vs STAR cannot
            # conform (sizes 1 and >1); equal atoms are assumed
            # conformable as in the original program.
            return None

        result_dim = Dim((ldim[0], rdim[1]))
        result_rho = rho | ({reduces} if reduces else frozenset())
        # A matmul result repeating a loop symbol (e.g. (r_i,*)×(*,r_i))
        # computes a full cross product — not what the loop meant.
        if result_dim.has_duplicate_r():
            return None
        if reduces is None and not result_dim.r_syms() and not (
                left.dim.r_syms() or right.dim.r_syms()):
            # Loop-invariant product: fine, stays as-is.
            pass
        return VExpr(BinOp("*", left.expr, right.expr), result_dim,
                     result_rho, left.patterns + right.patterns)


def _transpose_count(expr: Expr) -> int:
    return sum(1 for node in expr.walk() if isinstance(node, Transpose))
