"""Scalar-temporary forward substitution (a scalar-privatization lite).

Loop bodies frequently name per-iteration intermediate values::

    for i=1:n
      t = 2*x(i) + c;
      y(i) = t*t;
    end

The scalar ``t`` creates flow/anti dependences between the two
statements at every loop level, so Allen & Kennedy's codegen (and the
paper's extension) must run the loop sequentially.  Classic vectorizers
fix this with scalar expansion; we implement the cheaper *forward
substitution*: inline the definition into its same-iteration uses and
drop it, provided

1. the target is a plain identifier assigned exactly once in the loop
   body (at any nesting depth of that body, counting writes anywhere in
   the analyzed nest);
2. the definition's right-hand side only reads variables that are never
   written inside the loop (so its value cannot change between the
   definition and any use in the same iteration) — loop index variables
   are fine;
3. the temporary is *dead after the loop*: the caller supplies the set
   of names read later in the program, and we refuse to substitute a
   name in it (dropping the definition would change the workspace);
4. the right-hand side is pure (no impure builtins) and cheap enough to
   duplicate (a bounded expression size).

Substitution is iterated so chains of temporaries (``u = t+1``) resolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dims.context import IMPURE_FUNCTIONS
from ..mlang.ast_nodes import (
    Apply,
    Assign,
    Expr,
    For,
    Ident,
    Node,
    Stmt,
)
from ..mlang.visitor import substitute_idents

#: Refuse to duplicate right-hand sides with more nodes than this.
MAX_RHS_NODES = 25


@dataclass
class SubstitutionResult:
    """Outcome of one pass over a loop body."""

    body: list[Stmt]
    substituted: list[str] = field(default_factory=list)


def _written_names(stmts: list[Stmt]) -> set[str]:
    """Every name assigned anywhere in the statement list (recursive)."""
    names: set[str] = set()
    for stmt in stmts:
        for node in stmt.walk() if not isinstance(stmt, For) else stmt.walk():
            if isinstance(node, Assign):
                target = node.lhs
                if isinstance(target, Ident):
                    names.add(target.name)
                elif isinstance(target, Apply) and isinstance(target.func,
                                                              Ident):
                    names.add(target.func.name)
            elif isinstance(node, For):
                names.add(node.var)
    return names


def _read_names(node: Node) -> set[str]:
    return {n.name for n in node.walk() if isinstance(n, Ident)}


def _is_pure(expr: Expr) -> bool:
    for node in expr.walk():
        if isinstance(node, Apply) and isinstance(node.func, Ident) \
                and node.func.name in IMPURE_FUNCTIONS:
            return False
        if isinstance(node, Ident) and node.name in IMPURE_FUNCTIONS:
            return False
    return True


def _count_nodes(expr: Expr) -> int:
    return sum(1 for _ in expr.walk())


def substitute_scalar_temps(loop: For,
                            live_after: frozenset[str]) -> For:
    """Return ``loop`` with eligible scalar temporaries inlined.

    ``live_after`` lists names read after the loop in the enclosing
    program; temporaries in it are left alone.  The original loop object
    is returned unchanged when nothing is eligible.
    """
    result = _substitute_in_body(loop.body, live_after,
                                 loop_vars={loop.var})
    if not result.substituted:
        return loop
    return For(loop.var, loop.iter, result.body, pos=loop.pos)


def _substitute_in_body(body: list[Stmt], live_after: frozenset[str],
                        loop_vars: set[str]) -> SubstitutionResult:
    written = _written_names(body) | loop_vars
    out = list(body)
    substituted: list[str] = []

    changed = True
    while changed:
        changed = False
        for index, stmt in enumerate(out):
            if not isinstance(stmt, Assign) or not isinstance(stmt.lhs,
                                                              Ident):
                continue
            name = stmt.lhs.name
            if name in live_after or name in loop_vars:
                continue
            # Condition 1: single definition in the body.
            defs = sum(
                1 for s in out
                for n in s.walk()
                if isinstance(n, Assign) and isinstance(n.lhs, Ident)
                and n.lhs.name == name)
            if defs != 1:
                continue
            # Condition 2: RHS reads only loop-invariant names (or loop
            # index variables) — but not the temp itself.
            reads = _read_names(stmt.rhs)
            if name in reads:
                continue
            if (reads & written) - loop_vars:
                continue
            # Condition 4: pure and small.
            if not _is_pure(stmt.rhs) or _count_nodes(stmt.rhs) > \
                    MAX_RHS_NODES:
                continue
            # No use of the temp *before* its definition (it would read
            # the previous iteration's value).
            earlier_reads = any(
                name in _read_names(s) for s in out[:index])
            if earlier_reads:
                continue
            # Inline into everything after the definition and drop it.
            replacement = stmt.rhs
            rest = [substitute_idents(s, {name: replacement})
                    for s in out[index + 1:]]
            out = out[:index] + rest
            substituted.append(name)
            changed = True
            break

    # Recurse into nested loops (their bodies may hold their own temps).
    for index, stmt in enumerate(out):
        if isinstance(stmt, For):
            inner = _substitute_in_body(stmt.body, live_after,
                                        loop_vars | {stmt.var})
            if inner.substituted:
                out[index] = For(stmt.var, stmt.iter, inner.body,
                                 pos=stmt.pos)
                substituted.extend(inner.substituted)

    return SubstitutionResult(out, substituted)
