"""The vectorizer driver — the Figure 1 pipeline.

``vectorize_source`` runs the whole source-to-source transformation::

    parse → collect %! annotations → flow-sensitive shape inference →
    per loop nest: screen (control flow / index writes) → normalize →
    data dependence graph → codegen_dim → splice → print

Shape truth comes from the shared :mod:`repro.shapes` engine: each loop
is checked against the provable shape environment *at its own program
point* (``%!`` annotations frozen/authoritative, inference as
fallback), so annotation-free programs vectorize and shapes merged
inconsistently at ``if``/``while`` join points conservatively stay
sequential.  ``use_annotations=False`` ignores annotations for
analysis while still passing them through to the output verbatim.

Loops rejected by the screen keep their header but are searched for
vectorizable *inner* loops.  Loops where no statement vectorizes are
left byte-identical.  The returned :class:`VectorizeResult` carries the
transformed program, its printed source, and a per-loop report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..dims.context import ShapeEnv
from ..mlang.annotations import parse_annotations
from ..mlang.ast_nodes import For, If, Program, Stmt, While
from ..shapes import ProgramShapes, analyze_program
from ..mlang.lexer import tokenize
from ..mlang.parser import Parser
from ..mlang.printer import to_source
from ..patterns.builtin import default_database
from ..patterns.database import PatternDatabase
from .checker import CheckOptions
from .codegen import CodegenDim, StatementOutcome
from .loop_info import extract_nest, loop_rejection_reason
from .scalartemps import substitute_scalar_temps
from .simplify import simplify_transposes


@dataclass
class LoopReport:
    """What happened to one ``for`` loop encountered by the driver."""

    line: int
    var: str
    status: str                       # 'vectorized' | 'partial' | 'rejected' | 'unchanged'
    reason: Optional[str] = None
    outcomes: list[StatementOutcome] = field(default_factory=list)


@dataclass
class VectorizeReport:
    """Aggregate report over a whole program."""

    loops: list[LoopReport] = field(default_factory=list)

    @property
    def vectorized_loops(self) -> int:
        return sum(1 for l in self.loops if l.status in ("vectorized",
                                                         "partial"))

    @property
    def statements_vectorized(self) -> int:
        return sum(sum(1 for o in l.outcomes if o.vectorized)
                   for l in self.loops)

    def stats(self) -> dict:
        """Aggregate counters for dashboards/CLI: loops and statements by
        outcome, pattern usage, and failure reasons."""
        from collections import Counter

        loops = Counter(l.status for l in self.loops)
        outcomes = [o for l in self.loops for o in l.outcomes]
        patterns = Counter(p for o in outcomes for p in o.patterns)
        reasons = Counter(
            (o.reasons[-1].split(": ", 1)[-1] if o.reasons
             else "loop-carried dependence")
            for o in outcomes if not o.vectorized)
        return {
            "loops": dict(loops),
            "statements_total": len(outcomes),
            "statements_vectorized": sum(o.vectorized for o in outcomes),
            "reductions": sum(o.is_reduction for o in outcomes),
            "patterns_used": dict(patterns),
            "failure_reasons": dict(reasons),
        }

    def summary(self) -> str:
        lines = []
        for loop in self.loops:
            head = f"loop '{loop.var}' (line {loop.line}): {loop.status}"
            if loop.reason:
                head += f" — {loop.reason}"
            lines.append(head)
            for outcome in loop.outcomes:
                if outcome.vectorized:
                    detail = f"  vectorized at level {outcome.level}"
                    if outcome.patterns:
                        detail += f" using patterns {outcome.patterns}"
                    if outcome.is_reduction:
                        detail += " (additive reduction)"
                else:
                    detail = "  left sequential"
                    if outcome.reasons:
                        detail += f": {outcome.reasons[-1]}"
                lines.append(detail)
        return "\n".join(lines) if lines else "no loops found"


@dataclass
class VectorizeResult:
    """The transformed program plus diagnostics.

    ``timings`` holds per-stage wall-clock seconds keyed by stage name
    (``lex``/``parse`` when the driver was handed source text, and
    ``analyze``/``codegen`` always); the compilation service feeds these
    into its latency histograms.
    """

    program: Program
    report: VectorizeReport
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def source(self) -> str:
        return to_source(self.program)


class Vectorizer:
    """Reusable driver with a configurable pattern database and options.

    ``simplify`` additionally runs the transpose-distribution cleanup
    (the "later optimization" of §2.2) over each vector statement.
    """

    def __init__(self, db: Optional[PatternDatabase] = None,
                 options: Optional[CheckOptions] = None,
                 simplify: bool = False,
                 scalar_temps: bool = True,
                 verify: bool = False,
                 use_annotations: bool = True):
        self.db = db if db is not None else default_database()
        self.options = options or CheckOptions()
        self.simplify = simplify
        self.scalar_temps = scalar_temps
        self.verify = verify
        self.use_annotations = use_annotations
        self._ident_counts: dict[str, int] = {}

    def _verify(self, node, stage: str, require_spans: bool = False) -> None:
        """Run the IR verifier between stages (``verify=True`` only).

        Imported lazily: the staticcheck package's auditor imports this
        driver, so a module-level import would be circular.
        """
        if not self.verify:
            return
        from ..staticcheck.verifier import verify_program, verify_stmts

        if isinstance(node, Program):
            verify_program(node, stage, require_spans)
        else:
            verify_stmts(node, stage, require_spans)

    # -- entry points ----------------------------------------------------

    def vectorize_source(self, source: str,
                         shapes: Optional[ShapeEnv] = None) -> VectorizeResult:
        start = time.perf_counter()
        tokens = tokenize(source)
        lex_time = time.perf_counter() - start
        start = time.perf_counter()
        program = Parser(tokens).parse_program()
        parse_time = time.perf_counter() - start
        self._verify(program, "parse", require_spans=True)
        result = self.vectorize_program(program, shapes=shapes)
        result.timings = {"lex": lex_time, "parse": parse_time,
                          **result.timings}
        return result

    def vectorize_program(self, program: Program,
                          shapes: Optional[ShapeEnv] = None) -> VectorizeResult:
        start = time.perf_counter()
        annotations = parse_annotations(program.annotations) \
            if self.use_annotations else ShapeEnv()
        if shapes is not None:
            annotations.merge(shapes)
        program_shapes = analyze_program(program, annotations=annotations)
        self._ident_counts = _ident_occurrences(program)
        analyze_time = time.perf_counter() - start
        self._verify(program, "analyze")
        report = VectorizeReport()
        start = time.perf_counter()
        body = self._process(program.body, program_shapes, report,
                             outer_scalars=frozenset())
        codegen_time = time.perf_counter() - start
        result_program = Program(body)
        self._verify(result_program, "codegen")
        return VectorizeResult(result_program, report,
                               {"analyze": analyze_time,
                                "codegen": codegen_time})

    # -- recursive statement-list processing -------------------------------

    def _process(self, stmts: list[Stmt], shapes: ProgramShapes,
                 report: VectorizeReport,
                 outer_scalars: frozenset[str]) -> list[Stmt]:
        out: list[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, For):
                out.extend(self._process_loop(stmt, shapes, report,
                                              outer_scalars))
            elif isinstance(stmt, While):
                body = self._process(stmt.body, shapes, report,
                                     outer_scalars)
                out.append(While(stmt.cond, body, pos=stmt.pos))
            elif isinstance(stmt, If):
                tests = [(cond, self._process(body, shapes, report,
                                              outer_scalars))
                         for cond, body in stmt.tests]
                orelse = self._process(stmt.orelse, shapes, report,
                                       outer_scalars)
                out.append(If(tests, orelse, pos=stmt.pos))
            else:
                out.append(stmt)
        return out

    def _process_loop(self, loop: For, shapes: ProgramShapes,
                      report: VectorizeReport,
                      outer_scalars: frozenset[str]) -> list[Stmt]:
        line = loop.pos.line
        # Look the environment up before any rewrite: scalar-temp
        # substitution rebuilds the For node (preserving its position,
        # which is the engine's fallback key for inner loops).
        env = shapes.env_at(loop)
        if self.scalar_temps:
            loop = substitute_scalar_temps(loop, self._live_outside(loop))
        reason = loop_rejection_reason(loop)
        if reason is None:
            nest = extract_nest(loop)
            if nest is None:
                reason = "unsupported loop iteration expression"
        if reason is not None:
            # Rejected: keep the loop, but look for inner candidates.
            report.loops.append(LoopReport(line, loop.var, "rejected",
                                           reason))
            body = self._process(loop.body, shapes, report,
                                 outer_scalars | {loop.var})
            return [For(loop.var, loop.iter, body, pos=loop.pos)]

        result = CodegenDim(nest, env, self.db, self.options,
                            outer_scalars).run()
        if not result.any_vectorized:
            failure = None
            for outcome in result.outcomes:
                if outcome.reasons:
                    failure = outcome.reasons[-1]
                    break
            report.loops.append(LoopReport(line, loop.var, "unchanged",
                                           failure, result.outcomes))
            return [loop]
        status = "vectorized" if result.fully_vectorized else "partial"
        report.loops.append(LoopReport(line, loop.var, status, None,
                                       result.outcomes))
        stmts = result.stmts
        if self.simplify:
            stmts = [simplify_transposes(stmt) for stmt in stmts]
        self._verify(stmts, f"codegen:loop@{line}")
        return stmts


    def _live_outside(self, loop: For) -> frozenset[str]:
        """Names whose identifier occurrences are not all inside ``loop``
        (conservatively treated as live after it)."""
        inside = _ident_occurrences(loop)
        return frozenset(
            name for name, total in self._ident_counts.items()
            if total > inside.get(name, 0))


def _ident_occurrences(root) -> dict[str, int]:
    from ..mlang.ast_nodes import Ident

    counts: dict[str, int] = {}
    for node in root.walk():
        if isinstance(node, Ident):
            counts[node.name] = counts.get(node.name, 0) + 1
    return counts


def vectorize_source(source: str, db: Optional[PatternDatabase] = None,
                     options: Optional[CheckOptions] = None,
                     shapes: Optional[ShapeEnv] = None,
                     simplify: bool = False) -> VectorizeResult:
    """One-shot convenience wrapper around :class:`Vectorizer`."""
    return Vectorizer(db, options, simplify=simplify).vectorize_source(
        source, shapes=shapes)
