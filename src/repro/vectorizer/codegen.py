"""Algorithm 1 — ``codegen_dim``: Allen & Kennedy's codegen extended with
dimension checking, pattern transforms, and additive reductions.

The DDG of a (possibly imperfect) loop nest is partitioned into strongly
connected components visited in topological order:

* a single-node component without recurrences — or whose only
  recurrences are the self-dependences of an additive-reduction
  accumulator (the paper's first contribution) — is dimension-checked
  at the deepest prefix of sequential loops that makes ``vectDimsOkay``
  succeed, then emitted as a vector statement (wrapped in the sequential
  loops for levels that failed);
* any other component runs its outermost loop sequentially: dependences
  carried by that loop are removed and codegen recurses on the rest.

Statements in imperfect nests carry their own loop chains, so a
statement at depth 1 vectorizes over one loop while its sibling at
depth 2 vectorizes over two (this is how Figure 4's two statements each
produce one vector statement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..dims.context import KNOWN_FUNCTIONS, ShapeEnv
from ..mlang.ast_nodes import Assign, Expr, Stmt
from ..mlang.visitor import substitute_idents
from ..patterns.database import PatternDatabase
from ..depgraph.graph import DependenceGraph, StmtNode
from .checker import (
    CheckFailure,
    CheckOptions,
    DimChecker,
    is_additive_reduction,
)
from .loop_info import LoopHeader, LoopNest
from .simplify import fold_constants


@dataclass
class StatementOutcome:
    """What happened to one statement of the nest."""

    stmt: Assign
    vectorized: bool
    level: Optional[int] = None          # first vectorized loop level
    reasons: list[str] = field(default_factory=list)
    patterns: list[str] = field(default_factory=list)
    is_reduction: bool = False


@dataclass
class NestResult:
    """Output of running codegen over one loop nest."""

    stmts: list[Stmt]
    outcomes: list[StatementOutcome]

    @property
    def any_vectorized(self) -> bool:
        return any(o.vectorized for o in self.outcomes)

    @property
    def fully_vectorized(self) -> bool:
        return all(o.vectorized and o.level == 0 for o in self.outcomes)


class CodegenDim:
    """The extended codegen algorithm over one normalized loop nest."""

    def __init__(self, nest: LoopNest, shapes: ShapeEnv,
                 db: PatternDatabase,
                 options: Optional[CheckOptions] = None,
                 outer_scalars: frozenset[str] = frozenset()):
        self.nest = nest
        self.shapes = shapes
        self.db = db
        self.options = options or CheckOptions()
        self.outer_scalars = outer_scalars
        self.outcomes: list[StatementOutcome] = []
        self._headers_of: dict[int, tuple[LoopHeader, ...]] = {}

    # -- public API --------------------------------------------------------

    def run(self) -> NestResult:
        nodes = []
        for index, nest_stmt in enumerate(self.nest.stmts):
            self._headers_of[index] = nest_stmt.headers
            nodes.append(StmtNode(
                index=index,
                stmt=nest_stmt.stmt,
                loop_vars=tuple(h.var for h in nest_stmt.headers),
                loop_counts=tuple(h.count for h in nest_stmt.headers),
            ))
        known = frozenset(
            name for name in KNOWN_FUNCTIONS if name not in self.shapes
        )
        graph = DependenceGraph.build(nodes, known)
        stmts = self._codegen(graph, level=0)
        return NestResult(stmts, self.outcomes)

    # -- the recursive algorithm --------------------------------------------

    def _codegen(self, graph: DependenceGraph, level: int) -> list[Stmt]:
        block: list[Stmt] = []
        for scc in graph.sccs_topological():
            if len(scc) == 1 and self._is_vector_candidate(graph, scc[0]):
                block.extend(self._vectorize_or_sequential(scc[0], level))
            else:
                indices = [n.index for n in scc]
                sub = graph.subgraph(indices).remove_carried_by(level)
                header = self._headers_of[scc[0].index][level]
                inner = self._codegen(sub, level + 1)
                block.append(header.header_stmt(inner))
        return block

    def _is_vector_candidate(self, graph: DependenceGraph,
                             node: StmtNode) -> bool:
        """Acyclic, or cyclic only through an additive-reduction
        accumulator's self-dependences (the codegen extension)."""
        self_edges = graph.self_edges(node.index)
        if not self_edges:
            return True
        if not self.options.reductions:
            return False
        if not is_additive_reduction(node.stmt):
            return False
        # Every recurrence must involve only the accumulator: each
        # self-edge's endpoint references must both use the write's
        # subscripts (reads with other subscripts are fine only when the
        # dependence tests already proved them independent — then they
        # produce no self-edge).
        writes = node.refs.writes
        if len(writes) != 1:
            return False
        write = writes[0]
        for edge in self_edges:
            if edge.var != write.var:
                return False
            for ref in (edge.src_ref, edge.dst_ref):
                if ref is None or ref.var != write.var \
                        or ref.subs != write.subs:
                    return False
        return True

    def _vectorize_or_sequential(self, node: StmtNode,
                                 level: int) -> list[Stmt]:
        headers = self._headers_of[node.index]
        outcome = StatementOutcome(node.stmt, vectorized=False)
        self.outcomes.append(outcome)
        for l in range(level, len(headers)):
            vector_stmt = self._vect_dims_okay(node.stmt, headers, l, outcome)
            if vector_stmt is not None:
                outcome.vectorized = True
                outcome.level = l
                return self._wrap_sequential(headers, level, l, [vector_stmt])
        # No vectorization possible at any level: keep the loops.
        return self._wrap_sequential(headers, level, len(headers),
                                     [fold_constants(node.stmt)])

    def _vect_dims_okay(self, stmt: Assign,
                        headers: tuple[LoopHeader, ...], l: int,
                        outcome: StatementOutcome) -> Optional[Stmt]:
        """Lines 7–11 of Algorithm 1: check, transform, substitute."""
        vector_headers = headers[l:]
        if not vector_headers:
            return None
        sequential_vars = [h.var for h in headers[:l]]
        sequential_vars.extend(self.outer_scalars)
        checker = DimChecker(self.shapes, vector_headers, sequential_vars,
                             self.db, self.options)
        try:
            checked = checker.check_assign(stmt)
        except CheckFailure as failure:
            outcome.reasons.append(
                f"level {l} ({'/'.join(h.var for h in vector_headers)}): "
                f"{failure.reason}")
            return None
        outcome.patterns.extend(checked.used_patterns)
        outcome.is_reduction = checked.is_reduction
        substitution: dict[str, Expr] = {
            h.var: h.range_expr() for h in vector_headers
        }
        return fold_constants(substitute_idents(checked.template,
                                                substitution))

    def _wrap_sequential(self, headers: tuple[LoopHeader, ...],
                         outer: int, inner: int,
                         body: list[Stmt]) -> list[Stmt]:
        """Wrap ``body`` in sequential loops for levels [outer, inner)."""
        for k in range(inner - 1, outer - 1, -1):
            body = [headers[k].header_stmt(body)]
        return body
