"""MATLAB builtin functions over the runtime value model.

Each builtin is a Python callable taking already-evaluated values; the
registry :data:`BUILTINS` maps names to implementations.  Shapes and
corner cases follow MATLAB 7 semantics for the supported subset (sum of
a vector collapses fully; of a matrix, by columns; ``hist`` uses bin
*centers*; ``repmat`` tiles; etc.).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import MatlabRuntimeError
from .values import (
    Value,
    as_array,
    as_scalar,
    canonical,
    is_scalar,
    matrix,
    numel,
    shape_of,
    transpose,
)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise MatlabRuntimeError(message)


# -- shape queries ---------------------------------------------------------


def m_size(*args: Value) -> Value:
    _require(1 <= len(args) <= 2, "size: wrong number of arguments")
    rows, cols = shape_of(args[0])
    if len(args) == 2:
        dim = int(as_scalar(args[1]))
        if dim == 1:
            return float(rows)
        if dim == 2:
            return float(cols)
        _require(dim >= 1, "size: bad dimension")
        return 1.0
    return np.asfortranarray(np.array([[float(rows), float(cols)]]))


def m_numel(value: Value) -> Value:
    return float(numel(value))


def m_length(value: Value) -> Value:
    rows, cols = shape_of(value)
    if rows == 0 or cols == 0:
        return 0.0
    return float(max(rows, cols))


def m_ndims(value: Value) -> Value:
    return 2.0


def m_isempty(value: Value) -> Value:
    return float(numel(value) == 0)


# -- constructors -----------------------------------------------------------


def _dims_from_args(args: tuple[Value, ...]) -> tuple[int, int]:
    if len(args) == 0:
        return 1, 1
    if len(args) == 1:
        if isinstance(args[0], np.ndarray) and numel(args[0]) == 2:
            flat = as_array(args[0]).reshape(-1, order="F")
            return int(flat[0]), int(flat[1])
        n = int(as_scalar(args[0]))
        return n, n
    return int(as_scalar(args[0])), int(as_scalar(args[1]))


def m_zeros(*args: Value) -> Value:
    rows, cols = _dims_from_args(args)
    return canonical(matrix(rows, cols, 0.0))


def m_ones(*args: Value) -> Value:
    rows, cols = _dims_from_args(args)
    return canonical(matrix(rows, cols, 1.0))


def m_eye(*args: Value) -> Value:
    rows, cols = _dims_from_args(args)
    return canonical(np.asfortranarray(np.eye(rows, cols)))


def m_linspace(lo: Value, hi: Value, n: Value = 100.0) -> Value:
    points = np.linspace(as_scalar(lo), as_scalar(hi), int(as_scalar(n)))
    return np.asfortranarray(points.reshape(1, -1))


def m_colon(lo: Value, step_or_hi: Value, hi: Optional[Value] = None) -> Value:
    if hi is None:
        lo_v, hi_v, step = as_scalar(lo), as_scalar(step_or_hi), 1.0
    else:
        lo_v, step, hi_v = as_scalar(lo), as_scalar(step_or_hi), as_scalar(hi)
    return colon_range(lo_v, step, hi_v)


def colon_range(lo: float, step: float, hi: float) -> Value:
    """The value of ``lo:step:hi`` (row vector; empty when degenerate)."""
    if step == 0:
        raise MatlabRuntimeError("colon: zero step")
    count = int(np.floor((hi - lo) / step + 1e-10)) + 1
    if count <= 0:
        return matrix(1, 0)
    points = lo + step * np.arange(count, dtype=float)
    return np.asfortranarray(points.reshape(1, -1))


def m_repmat(value: Value, *reps: Value) -> Value:
    if len(reps) == 1:
        if isinstance(reps[0], np.ndarray) and numel(reps[0]) == 2:
            flat = as_array(reps[0]).reshape(-1, order="F")
            rows, cols = int(flat[0]), int(flat[1])
        else:
            rows = cols = int(as_scalar(reps[0]))
    elif len(reps) == 2:
        rows, cols = int(as_scalar(reps[0])), int(as_scalar(reps[1]))
    else:
        raise MatlabRuntimeError("repmat: wrong number of arguments")
    return canonical(np.asfortranarray(np.tile(as_array(value),
                                               (rows, cols))))


def m_reshape(value: Value, *dims: Value) -> Value:
    rows, cols = _dims_from_args(dims)
    arr = as_array(value)
    _require(arr.size == rows * cols,
             "reshape: number of elements must not change")
    return canonical(np.asfortranarray(
        arr.reshape((rows, cols), order="F")))


def m_diag(value: Value) -> Value:
    arr = as_array(value)
    if min(arr.shape) == 1 and max(arr.shape) > 1:
        flat = arr.reshape(-1, order="F")
        return np.asfortranarray(np.diag(flat))
    return np.asfortranarray(np.diag(arr).reshape(-1, 1))


def m_tril(value: Value, k: Value = 0.0) -> Value:
    return canonical(np.asfortranarray(np.tril(as_array(value),
                                               int(as_scalar(k)))))


def m_triu(value: Value, k: Value = 0.0) -> Value:
    return canonical(np.asfortranarray(np.triu(as_array(value),
                                               int(as_scalar(k)))))


def m_kron(a: Value, b: Value) -> Value:
    return canonical(np.asfortranarray(np.kron(as_array(a), as_array(b))))


# -- reductions --------------------------------------------------------------


def _reduce(value: Value, dim: Optional[Value], fn) -> Value:
    arr = as_array(value)
    if arr.dtype == np.bool_:
        arr = arr.astype(float)
    if dim is None:
        if min(arr.shape) <= 1:
            return float(fn(arr.reshape(-1))) if arr.size else 0.0
        return canonical(np.asfortranarray(fn(arr, axis=0).reshape(1, -1)))
    axis = int(as_scalar(dim)) - 1
    _require(axis in (0, 1), "reduction: bad dimension argument")
    result = fn(arr, axis=axis)
    if axis == 0:
        return canonical(np.asfortranarray(result.reshape(1, -1)))
    return canonical(np.asfortranarray(result.reshape(-1, 1)))


def m_sum(value: Value, dim: Optional[Value] = None) -> Value:
    return _reduce(value, dim, np.sum)


def m_prod(value: Value, dim: Optional[Value] = None) -> Value:
    return _reduce(value, dim, np.prod)


def m_mean(value: Value, dim: Optional[Value] = None) -> Value:
    return _reduce(value, dim, np.mean)


def m_any(value: Value, dim: Optional[Value] = None) -> Value:
    return _reduce(value, dim, lambda a, axis=None:
                   np.any(a != 0, axis=axis).astype(float))


def m_all(value: Value, dim: Optional[Value] = None) -> Value:
    return _reduce(value, dim, lambda a, axis=None:
                   np.all(a != 0, axis=axis).astype(float))


def _cumulative(value: Value, dim: Optional[Value], fn) -> Value:
    arr = as_array(value)
    if dim is None:
        axis = 0 if arr.shape[0] > 1 or arr.shape[1] == 1 else 1
    else:
        axis = int(as_scalar(dim)) - 1
    return canonical(np.asfortranarray(fn(arr, axis=axis)))


def m_cumsum(value: Value, dim: Optional[Value] = None) -> Value:
    return _cumulative(value, dim, np.cumsum)


def m_cumprod(value: Value, dim: Optional[Value] = None) -> Value:
    return _cumulative(value, dim, np.cumprod)


def m_min(*args: Value) -> Value:
    return _minmax(args, np.minimum, np.min)


def m_max(*args: Value) -> Value:
    return _minmax(args, np.maximum, np.max)


def _minmax(args: tuple[Value, ...], pairwise, reducing) -> Value:
    if len(args) == 1:
        arr = as_array(args[0])
        if min(arr.shape) <= 1:
            return float(reducing(arr)) if arr.size else 0.0
        return canonical(np.asfortranarray(
            reducing(arr, axis=0).reshape(1, -1)))
    if len(args) == 2:
        from .values import _check_elementwise_shapes

        _check_elementwise_shapes(args[0], args[1], "min/max")
        left = as_array(args[0]) if isinstance(args[0], np.ndarray) \
            else as_scalar(args[0])
        right = as_array(args[1]) if isinstance(args[1], np.ndarray) \
            else as_scalar(args[1])
        return canonical(np.asfortranarray(pairwise(left, right)))
    raise MatlabRuntimeError("min/max: wrong number of arguments")


def m_dot(a: Value, b: Value) -> Value:
    left = as_array(a).reshape(-1, order="F")
    right = as_array(b).reshape(-1, order="F")
    _require(left.size == right.size, "dot: size mismatch")
    return float(np.dot(left, right))


def m_norm(value: Value, kind: Optional[Value] = None) -> Value:
    arr = as_array(value)
    if min(arr.shape) <= 1:
        order = 2.0 if kind is None else as_scalar(kind)
        return float(np.linalg.norm(arr.reshape(-1), order))
    return float(np.linalg.norm(arr, 2 if kind is None else as_scalar(kind)))


# -- histogram ---------------------------------------------------------------


def m_hist(values: Value, centers: Optional[Value] = None) -> Value:
    """MATLAB ``hist(y, x)``: counts per bin *center* (outermost bins
    absorb the tails)."""
    data = as_array(values).reshape(-1, order="F")
    if centers is None:
        center_points = np.linspace(data.min(), data.max(), 10) \
            if data.size else np.arange(10, dtype=float)
    elif is_scalar(centers):
        n = int(as_scalar(centers))
        lo, hi = (data.min(), data.max()) if data.size else (0.0, 1.0)
        width = (hi - lo) / n if hi > lo else 1.0
        center_points = lo + width * (np.arange(n) + 0.5)
    else:
        center_points = as_array(centers).reshape(-1, order="F")
    edges = np.concatenate((
        [-np.inf],
        (center_points[:-1] + center_points[1:]) / 2.0,
        [np.inf],
    ))
    counts, _ = np.histogram(data, bins=edges)
    return np.asfortranarray(counts.astype(float).reshape(1, -1))


def m_histc(values: Value, edges: Value) -> Value:
    data = as_array(values).reshape(-1, order="F")
    edge_points = as_array(edges).reshape(-1, order="F")
    counts = np.zeros(edge_points.size)
    for k in range(edge_points.size - 1):
        counts[k] = np.sum((data >= edge_points[k])
                           & (data < edge_points[k + 1]))
    counts[-1] = np.sum(data == edge_points[-1])
    return np.asfortranarray(counts.reshape(1, -1))


# -- misc ---------------------------------------------------------------------


def m_find(value: Value) -> Value:
    arr = as_array(value)
    if arr.dtype == np.bool_:
        arr = arr.astype(float)
    flat = arr.reshape(-1, order="F")
    positions = np.flatnonzero(flat != 0) + 1.0
    if arr.shape[0] == 1 and arr.shape[1] > 1:
        return np.asfortranarray(positions.reshape(1, -1))
    return np.asfortranarray(positions.reshape(-1, 1))


def m_sort(value: Value) -> Value:
    arr = as_array(value)
    if min(arr.shape) <= 1:
        ordered = np.sort(arr.reshape(-1, order="F"))
        return canonical(np.asfortranarray(ordered.reshape(arr.shape)))
    return canonical(np.asfortranarray(np.sort(arr, axis=0)))


def m_disp(value: Value) -> Value:
    print(value if isinstance(value, str) else as_array(value))
    return 0.0


def m_fprintf(*args: Value) -> Value:
    if args and isinstance(args[0], str):
        text = args[0].replace("\\n", "\n")
        numbers = [as_scalar(a) for a in args[1:]]
        try:
            print(text % tuple(numbers), end="")
        except (TypeError, ValueError):
            print(text, end="")
    return 0.0


def m_error(*args: Value) -> Value:
    message = args[0] if args and isinstance(args[0], str) else "error"
    raise MatlabRuntimeError(str(message))


def _pointwise(fn) -> Callable[[Value], Value]:
    def wrapper(value: Value) -> Value:
        if isinstance(value, np.ndarray):
            return canonical(np.asfortranarray(fn(as_array(value))))
        return float(fn(float(value)))

    return wrapper


def m_mod(a: Value, b: Value) -> Value:
    from .values import _elementwise

    return _elementwise("mod", a, b, lambda x, y: np.mod(x, y))


def m_rem(a: Value, b: Value) -> Value:
    from .values import _elementwise

    return _elementwise("rem", a, b, lambda x, y: np.fmod(x, y))


def m_atan2(a: Value, b: Value) -> Value:
    from .values import _elementwise

    return _elementwise("atan2", a, b, lambda x, y: np.arctan2(x, y))


def m_uint8(value: Value) -> Value:
    """Simulated uint8 cast: round and clamp to [0, 255] (values stay
    double — sufficient for the paper's image workloads)."""
    if isinstance(value, np.ndarray):
        return np.asfortranarray(np.clip(np.round(as_array(value)), 0, 255))
    return float(np.clip(round(float(value)), 0, 255))


def m_double(value: Value) -> Value:
    return canonical(as_array(value)) if isinstance(value, np.ndarray) \
        else float(value)


def make_builtins(rng: np.random.Generator) -> dict[str, Callable]:
    """The builtin registry; random builtins close over ``rng`` so runs
    are reproducible under a caller-provided seed."""

    def m_rand(*args: Value) -> Value:
        rows, cols = _dims_from_args(args)
        return canonical(np.asfortranarray(rng.random((rows, cols))))

    def m_randn(*args: Value) -> Value:
        rows, cols = _dims_from_args(args)
        return canonical(np.asfortranarray(rng.standard_normal((rows,
                                                                cols))))

    registry: dict[str, Callable] = {
        "size": m_size,
        "numel": m_numel,
        "length": m_length,
        "ndims": m_ndims,
        "isempty": m_isempty,
        "zeros": m_zeros,
        "ones": m_ones,
        "eye": m_eye,
        "rand": m_rand,
        "randn": m_randn,
        "linspace": m_linspace,
        "colon": m_colon,
        "repmat": m_repmat,
        "reshape": m_reshape,
        "diag": m_diag,
        "tril": m_tril,
        "triu": m_triu,
        "kron": m_kron,
        "sum": m_sum,
        "prod": m_prod,
        "mean": m_mean,
        "any": m_any,
        "all": m_all,
        "cumsum": m_cumsum,
        "cumprod": m_cumprod,
        "min": m_min,
        "max": m_max,
        "dot": m_dot,
        "norm": m_norm,
        "hist": m_hist,
        "histc": m_histc,
        "find": m_find,
        "sort": m_sort,
        "disp": m_disp,
        "fprintf": m_fprintf,
        "error": m_error,
        "mod": m_mod,
        "rem": m_rem,
        "atan2": m_atan2,
        "uint8": m_uint8,
        "double": m_double,
        "transpose": lambda v: transpose(v),
        "ctranspose": lambda v: transpose(v),
    }
    unary = {
        "cos": np.cos, "sin": np.sin, "tan": np.tan,
        "acos": np.arccos, "asin": np.arcsin, "atan": np.arctan,
        "cosh": np.cosh, "sinh": np.sinh, "tanh": np.tanh,
        "exp": np.exp, "log": np.log, "log2": np.log2, "log10": np.log10,
        "sqrt": np.sqrt, "abs": np.abs, "sign": np.sign,
        "floor": np.floor, "ceil": np.ceil, "round": np.round,
        "fix": np.trunc, "real": lambda x: x, "conj": lambda x: x,
        "isnan": lambda x: np.isnan(x).astype(float) if hasattr(x, "dtype")
        else float(np.isnan(x)),
        "isinf": lambda x: np.isinf(x).astype(float) if hasattr(x, "dtype")
        else float(np.isinf(x)),
        "isfinite": lambda x: np.isfinite(x).astype(float)
        if hasattr(x, "dtype") else float(np.isfinite(x)),
    }
    for name, fn in unary.items():
        registry[name] = _pointwise(fn)
    return registry


def call_multi(registry: dict, name: str, args: list,
               nargout: int) -> Optional[list]:
    """Evaluate builtin ``name`` with ``nargout`` outputs, or None when
    the builtin has no multi-output form.

    Supported: ``[m,n] = size(A)``, ``[v,i] = max/min(x)`` (value and
    1-based position of the first extremum), ``[s,i] = sort(x)``.
    """
    if nargout <= 1:
        return None
    if name == "size" and len(args) == 1:
        rows, cols = shape_of(args[0])
        return [float(rows), float(cols)]
    if name in ("max", "min") and len(args) == 1:
        arr = as_array(args[0]).reshape(-1, order="F")
        _require(arr.size > 0, f"{name}: empty input")
        position = int(np.argmax(arr) if name == "max" else np.argmin(arr))
        return [float(arr[position]), float(position + 1)]
    if name == "sort" and len(args) == 1:
        arr = as_array(args[0])
        _require(min(arr.shape) <= 1, "sort: two-output form needs a "
                                      "vector")
        flat = arr.reshape(-1, order="F")
        order = np.argsort(flat, kind="stable")
        ordered = flat[order].reshape(arr.shape, order="F")
        indices = (order + 1).astype(float).reshape(arr.shape, order="F")
        return [canonical(np.asfortranarray(ordered)),
                canonical(np.asfortranarray(indices))]
    return None


#: Scalar named constants.
CONSTANTS: dict[str, float] = {
    "pi": float(np.pi),
    "e": float(np.e),
    "eps": float(np.finfo(float).eps),
    "Inf": float("inf"),
    "inf": float("inf"),
    "NaN": float("nan"),
    "nan": float("nan"),
}
