"""MATLAB value model and operator semantics over NumPy.

Values are either Python ``float``/``bool`` (scalars — the fast path for
the per-element loops the vectorizer's baselines execute) or 2-D
``numpy.ndarray`` in Fortran (column-major) order, matching MATLAB's
storage.  Strings are Python ``str``.

Semantics deliberately match MATLAB 7 (the paper's era):

* **no implicit broadcasting** — elementwise operators require equal
  shapes or a scalar operand; a row plus a column is an error (this is
  exactly why the vectorizer must insert transposes and ``repmat``);
* ``*`` is matrix multiplication (inner dimensions must agree) unless a
  side is scalar;
* 1-based indexing; single-subscript (linear) indexing is column-major;
* assignment auto-grows arrays, zero-filling new elements;
* ``A(:)`` flattens column-major.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import MatlabRuntimeError

Scalar = Union[float, bool, int]
Value = Union[Scalar, np.ndarray, str]

#: Marker object for a bare ':' subscript at runtime.
COLON = object()


def is_scalar(value: Value) -> bool:
    if isinstance(value, (float, int, bool, np.floating, np.integer,
                          np.bool_)):
        return True
    return isinstance(value, np.ndarray) and value.size == 1


def as_scalar(value: Value) -> float:
    if isinstance(value, (float, int, bool, np.floating, np.integer,
                          np.bool_)):
        return float(value)
    if isinstance(value, np.ndarray):
        if value.size != 1:
            raise MatlabRuntimeError(
                f"expected a scalar, got a {value.shape[0]}x{value.shape[1]} "
                "array")
        return float(value.reshape(-1)[0])
    raise MatlabRuntimeError(f"expected a scalar, got {type(value).__name__}")


def as_array(value: Value) -> np.ndarray:
    """Canonical 2-D, Fortran-ordered float array view of a value."""
    if isinstance(value, np.ndarray):
        if value.ndim == 2:
            return value
        if value.ndim < 2:
            return value.reshape((1, value.size), order="F")
        raise MatlabRuntimeError(">2-D arrays are not supported")
    if isinstance(value, (float, int, bool, np.floating, np.integer,
                          np.bool_)):
        return np.full((1, 1), float(value), order="F")
    raise MatlabRuntimeError(f"cannot convert {type(value).__name__} "
                             "to a matrix")


def matrix(rows: int, cols: int, fill: float = 0.0) -> np.ndarray:
    return np.full((rows, cols), fill, order="F")


def canonical(value: Value) -> Value:
    """Collapse 1×1 arrays to Python floats (keeps the fast path fast)."""
    if isinstance(value, np.ndarray) and value.size == 1 and value.ndim <= 2:
        return float(value.reshape(-1)[0])
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return float(value)
    return value


def shape_of(value: Value) -> tuple[int, int]:
    if isinstance(value, np.ndarray):
        arr = as_array(value)
        return arr.shape[0], arr.shape[1]
    if isinstance(value, str):
        return (1, len(value)) if value else (0, 0)
    return (1, 1)


def numel(value: Value) -> int:
    rows, cols = shape_of(value)
    return rows * cols


# ---------------------------------------------------------------------------
# Elementwise and matrix operators
# ---------------------------------------------------------------------------


def _both_scalar(a: Value, b: Value) -> bool:
    return not isinstance(a, np.ndarray) and not isinstance(b, np.ndarray)


def _check_elementwise_shapes(a: Value, b: Value, op: str) -> None:
    if is_scalar(a) or is_scalar(b):
        return
    sa, sb = shape_of(a), shape_of(b)
    if sa != sb:
        raise MatlabRuntimeError(
            f"{op}: nonconformant arguments (op1 is {sa[0]}x{sa[1]}, "
            f"op2 is {sb[0]}x{sb[1]})")


def _numeric(arr: np.ndarray) -> np.ndarray:
    """Logical (bool) arrays participate in arithmetic as 0/1 doubles."""
    return arr.astype(float) if arr.dtype == np.bool_ else arr


def _elementwise(op: str, a: Value, b: Value, fn) -> Value:
    _check_elementwise_shapes(a, b, op)
    if _both_scalar(a, b):
        # Go through numpy scalars so MATLAB's IEEE semantics hold:
        # 1/0 = Inf, 0/0 = NaN, huge^huge = Inf (no Python exceptions).
        with np.errstate(divide="ignore", invalid="ignore",
                         over="ignore"):
            return float(fn(np.float64(a), np.float64(b)))
    left = _numeric(as_array(a)) if isinstance(a, np.ndarray) else float(a)
    right = _numeric(as_array(b)) if isinstance(b, np.ndarray) else float(b)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        return canonical(np.asfortranarray(fn(left, right)))


def add(a: Value, b: Value) -> Value:
    return _elementwise("+", a, b, lambda x, y: x + y)


def sub(a: Value, b: Value) -> Value:
    return _elementwise("-", a, b, lambda x, y: x - y)


def elmul(a: Value, b: Value) -> Value:
    return _elementwise(".*", a, b, lambda x, y: x * y)


def eldiv(a: Value, b: Value) -> Value:
    return _elementwise("./", a, b, lambda x, y: x / y)


def elleftdiv(a: Value, b: Value) -> Value:
    return _elementwise(".\\", a, b, lambda x, y: y / x)


def elpow(a: Value, b: Value) -> Value:
    return _elementwise(".^", a, b, lambda x, y: x ** y)


def matmul(a: Value, b: Value) -> Value:
    if is_scalar(a) or is_scalar(b):
        return elmul(a, b)
    left, right = _numeric(as_array(a)), _numeric(as_array(b))
    if left.shape[1] != right.shape[0]:
        raise MatlabRuntimeError(
            f"*: nonconformant arguments (op1 is "
            f"{left.shape[0]}x{left.shape[1]}, op2 is "
            f"{right.shape[0]}x{right.shape[1]})")
    return canonical(np.asfortranarray(left @ right))


def rdivide(a: Value, b: Value) -> Value:
    """``a / b``: elementwise when b is scalar, else solve ``x*b = a``."""
    if is_scalar(b):
        return eldiv(a, b)
    left, right = as_array(a), as_array(b)
    try:
        solution = np.linalg.solve(right.T, left.T).T
    except np.linalg.LinAlgError as error:
        raise MatlabRuntimeError(f"/: {error}") from error
    return canonical(np.asfortranarray(solution))


def ldivide(a: Value, b: Value) -> Value:
    """``a \\ b``: elementwise when a is scalar, else solve ``a*x = b``."""
    if is_scalar(a):
        return elmul(b, 1.0 / as_scalar(a))
    left, right = as_array(a), as_array(b)
    try:
        if left.shape[0] == left.shape[1]:
            solution = np.linalg.solve(left, right)
        else:
            solution, *_ = np.linalg.lstsq(left, right, rcond=None)
    except np.linalg.LinAlgError as error:
        raise MatlabRuntimeError(f"\\: {error}") from error
    return canonical(np.asfortranarray(solution))


def mpower(a: Value, b: Value) -> Value:
    if is_scalar(a) and is_scalar(b):
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            return float(np.float64(as_scalar(a)) **
                         np.float64(as_scalar(b)))
    if is_scalar(b):
        exponent = as_scalar(b)
        if exponent != int(exponent):
            raise MatlabRuntimeError("^: non-integer matrix power")
        return canonical(np.asfortranarray(
            np.linalg.matrix_power(as_array(a), int(exponent))))
    raise MatlabRuntimeError("^: unsupported operand shapes")


def transpose(a: Value) -> Value:
    if not isinstance(a, np.ndarray):
        return a
    return np.asfortranarray(as_array(a).T)


def negate(a: Value) -> Value:
    if isinstance(a, np.ndarray):
        return np.asfortranarray(-_numeric(as_array(a)))
    return -float(a)


_COMPARISONS = {
    "==": lambda x, y: x == y,
    "~=": lambda x, y: x != y,
    "<": lambda x, y: x < y,
    "<=": lambda x, y: x <= y,
    ">": lambda x, y: x > y,
    ">=": lambda x, y: x >= y,
}


def compare(op: str, a: Value, b: Value) -> Value:
    """Comparison: scalars give 0.0/1.0; arrays give *logical* (bool)
    arrays usable as masks in indexing (MATLAB logical class)."""
    _check_elementwise_shapes(a, b, op)
    fn = _COMPARISONS[op]
    if _both_scalar(a, b):
        return float(fn(float(a), float(b)))
    result = fn(_numeric(as_array(a)) if isinstance(a, np.ndarray)
                else float(a),
                _numeric(as_array(b)) if isinstance(b, np.ndarray)
                else float(b))
    return canonical(np.asfortranarray(result.astype(bool)))


def logical_and(a: Value, b: Value) -> Value:
    return _elementwise("&", a, b, lambda x, y: (x != 0) & (y != 0))


def logical_or(a: Value, b: Value) -> Value:
    return _elementwise("|", a, b, lambda x, y: (x != 0) | (y != 0))


def logical_not(a: Value) -> Value:
    if isinstance(a, np.ndarray):
        return np.asfortranarray(as_array(a) == 0)
    return float(float(a) == 0)


def is_truthy(value: Value) -> bool:
    """MATLAB condition semantics: nonempty and all elements nonzero."""
    if isinstance(value, np.ndarray):
        return value.size > 0 and bool(np.all(value != 0))
    if isinstance(value, str):
        return bool(value)
    return float(value) != 0


# ---------------------------------------------------------------------------
# Indexing
# ---------------------------------------------------------------------------


def _index_vector(sub: Value, extent: int, what: str) -> np.ndarray:
    """Convert a 1-based subscript value to 0-based indices.

    A *logical* (bool) subscript is a mask: selected positions are the
    true entries, in column-major order.
    """
    if sub is COLON:
        return np.arange(extent)
    if isinstance(sub, np.ndarray) and sub.dtype == np.bool_:
        mask = sub.reshape(-1, order="F")
        if mask.size > extent:
            raise MatlabRuntimeError(f"{what}: logical mask longer than "
                                     "the indexed extent")
        return np.flatnonzero(mask)
    if isinstance(sub, np.ndarray):
        flat = sub.reshape(-1, order="F")
        indices = flat.astype(np.int64)
        if not np.array_equal(indices, flat):
            raise MatlabRuntimeError(f"{what}: non-integer subscript")
        if indices.size and indices.min() < 1:
            raise MatlabRuntimeError(f"{what}: subscript must be >= 1")
        return indices - 1
    index = float(sub)
    if index != int(index):
        raise MatlabRuntimeError(f"{what}: non-integer subscript")
    if index < 1:
        raise MatlabRuntimeError(f"{what}: subscript must be >= 1")
    return np.array([int(index) - 1])


def index_read(value: Value, subs: list) -> Value:
    """``A(subs…)`` with full MATLAB semantics."""
    arr = as_array(value)
    if len(subs) == 0:
        return canonical(arr)
    if len(subs) == 1:
        sub = subs[0]
        if sub is COLON:
            return np.asfortranarray(
                arr.reshape((arr.size, 1), order="F").copy())
        idx = _index_vector(sub, arr.size, "index")
        if idx.size and idx.max() >= arr.size:
            raise MatlabRuntimeError(
                f"index ({idx.max() + 1}): out of bounds ({arr.size})")
        flat = arr.reshape(-1, order="F")
        picked = flat[idx]
        if not isinstance(sub, np.ndarray):
            return float(picked[0])
        if sub.dtype == np.bool_:
            # Mask selection: a column for column/matrix sources, a row
            # for row sources (MATLAB logical-indexing shapes).
            if arr.shape[0] == 1 and arr.shape[1] > 1:
                return np.asfortranarray(picked.reshape(1, -1))
            return np.asfortranarray(picked.reshape(-1, 1))
        sub_arr = as_array(sub)
        rows, cols = sub_arr.shape
        if min(arr.shape) > 1:
            # Matrix source: result has the subscript's shape.
            return np.asfortranarray(picked.reshape((rows, cols), order="F"))
        # Vector source: result follows the source's orientation unless
        # the subscript is a matrix.
        if min(rows, cols) > 1:
            return np.asfortranarray(picked.reshape((rows, cols), order="F"))
        if arr.shape[0] > 1:
            return np.asfortranarray(picked.reshape((picked.size, 1),
                                                    order="F"))
        return np.asfortranarray(picked.reshape((1, picked.size), order="F"))
    if len(subs) == 2:
        rows = _index_vector(subs[0], arr.shape[0], "row index")
        cols = _index_vector(subs[1], arr.shape[1], "column index")
        if rows.size and rows.max() >= arr.shape[0]:
            raise MatlabRuntimeError(
                f"row index ({rows.max() + 1}): out of bounds "
                f"({arr.shape[0]})")
        if cols.size and cols.max() >= arr.shape[1]:
            raise MatlabRuntimeError(
                f"column index ({cols.max() + 1}): out of bounds "
                f"({arr.shape[1]})")
        picked = arr[np.ix_(rows, cols)]
        return canonical(np.asfortranarray(picked))
    raise MatlabRuntimeError(">2 subscripts are not supported")


def index_write(value: Optional[Value], subs: list, rhs: Value) -> Value:
    """``A(subs…) = rhs`` with auto-growing; returns the updated array."""
    if value is None:
        base = matrix(0, 0)
    else:
        base = as_array(value).copy(order="F") \
            if isinstance(value, np.ndarray) else as_array(value)
    if len(subs) == 0:
        return rhs
    if len(subs) == 1:
        return _linear_write(base, subs[0], rhs,
                             was_undefined=value is None)
    if len(subs) == 2:
        rows_needed = _max_extent(subs[0], base.shape[0])
        cols_needed = _max_extent(subs[1], base.shape[1])
        if rows_needed > base.shape[0] or cols_needed > base.shape[1]:
            grown = matrix(max(rows_needed, base.shape[0]),
                           max(cols_needed, base.shape[1]))
            grown[: base.shape[0], : base.shape[1]] = base
            base = grown
        rows = _index_vector(subs[0], base.shape[0], "row index")
        cols = _index_vector(subs[1], base.shape[1], "column index")
        block = _conform_block(rhs, rows.size, cols.size)
        base[np.ix_(rows, cols)] = block
        return canonical(base)
    raise MatlabRuntimeError(">2 subscripts are not supported")


def _max_extent(sub: Value, current: int) -> int:
    if sub is COLON:
        return current
    if isinstance(sub, np.ndarray):
        return int(sub.max()) if sub.size else current
    return int(float(sub))


def _conform_block(rhs: Value, rows: int, cols: int) -> np.ndarray:
    if is_scalar(rhs):
        return np.full((rows, cols), as_scalar(rhs), order="F")
    block = as_array(rhs)
    if block.shape == (rows, cols):
        return block
    if block.size == rows * cols and (min(block.shape) == 1
                                      and (rows == 1 or cols == 1)):
        return block.reshape((rows, cols), order="F")
    raise MatlabRuntimeError(
        f"=: nonconformant arguments (op1 is {rows}x{cols}, op2 is "
        f"{block.shape[0]}x{block.shape[1]})")


def _linear_write(base: np.ndarray, sub: Value, rhs: Value,
                  was_undefined: bool) -> Value:
    if sub is COLON:
        block = as_array(rhs)
        if block.size != base.size and not is_scalar(rhs):
            raise MatlabRuntimeError("A(:) = B: size mismatch")
        if is_scalar(rhs):
            base[:] = as_scalar(rhs)
        else:
            base.reshape(-1, order="F")[:] = block.reshape(-1, order="F")
        return canonical(base)
    idx = _index_vector(sub, base.size, "index")
    needed = int(idx.max()) + 1 if idx.size else 0
    if base.size == 0:
        # Auto-created by this write: MATLAB makes a 1×n row vector.
        base = matrix(1, needed)
    elif needed > base.size:
        if base.shape[0] == 1:
            grown = matrix(1, needed)
            grown[0, : base.shape[1]] = base[0]
            base = grown
        elif base.shape[1] == 1:
            grown = matrix(needed, 1)
            grown[: base.shape[0], 0] = base[:, 0]
            base = grown
        else:
            raise MatlabRuntimeError(
                "linear index out of bounds for a matrix")
    flat = base.reshape(-1, order="F")
    if is_scalar(rhs):
        flat[idx] = as_scalar(rhs)
    else:
        block = as_array(rhs).reshape(-1, order="F")
        if block.size != idx.size:
            raise MatlabRuntimeError("=: subscripted assignment dimension "
                                     "mismatch")
        flat[idx] = block
    return canonical(base)


def build_matrix(rows: list) -> Value:
    """Build a matrix-literal value from rows of already-evaluated
    elements (MATLAB block concatenation semantics)."""
    row_blocks = []
    for row in rows:
        parts = [as_array(element) for element in row]
        parts = [p for p in parts if p.size or len(parts) == 1]
        if not parts:
            continue
        heights = {p.shape[0] for p in parts}
        if len(heights) != 1:
            raise MatlabRuntimeError(
                "matrix literal: inconsistent row heights")
        row_blocks.append(np.hstack(parts))
    if not row_blocks:
        return matrix(0, 0)
    widths = {b.shape[1] for b in row_blocks}
    if len(widths) != 1:
        raise MatlabRuntimeError(
            "matrix literal: inconsistent column widths")
    return canonical(np.asfortranarray(np.vstack(row_blocks)))


def values_equal(a: Value, b: Value, rtol: float = 1e-10,
                 atol: float = 1e-12) -> bool:
    """Numerical equality used by equivalence tests."""
    if isinstance(a, str) or isinstance(b, str):
        return a == b
    aa, bb = as_array(a), as_array(b)
    if aa.shape != bb.shape:
        return False
    return bool(np.allclose(aa, bb, rtol=rtol, atol=atol, equal_nan=True))
