"""A tree-walking MATLAB interpreter over NumPy.

This is the substitute for MATLAB 7.2 itself: loop-based code pays a
per-statement interpretive cost (Python-level dispatch), while
array-level operations run as single NumPy kernels — the same cost
structure that gives the paper its speedups, so the benchmark *shapes*
carry over.

Supported: scripts and function definitions, ``for``/``while``/``if``,
``break``/``continue``/``return``, the full expression grammar of
:mod:`repro.mlang`, 1-based/linear/colon indexing with auto-growing
assignment, ``end`` arithmetic in subscripts, and the builtin registry
of :mod:`repro.runtime.builtins`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import MatlabRuntimeError
from ..mlang.ast_nodes import (
    Annotation,
    Apply,
    Assign,
    BinOp,
    Break,
    Colon,
    Continue,
    End,
    Expr,
    ExprStmt,
    For,
    FunctionDef,
    Global,
    Ident,
    If,
    Matrix,
    MultiAssign,
    Num,
    Program,
    Range,
    Return,
    Stmt,
    Str,
    Transpose,
    UnOp,
    While,
)
from ..mlang.parser import parse
from . import values as V
from .builtins import CONSTANTS, call_multi, colon_range, make_builtins


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    pass


_BINOPS = {
    "+": V.add,
    "-": V.sub,
    "*": V.matmul,
    ".*": V.elmul,
    "/": V.rdivide,
    "./": V.eldiv,
    "\\": V.ldivide,
    ".\\": V.elleftdiv,
    "^": V.mpower,
    ".^": V.elpow,
    "&": V.logical_and,
    "|": V.logical_or,
}


class Interpreter:
    """Evaluate parsed MATLAB programs.

    ``seed`` makes ``rand``/``randn`` reproducible.  The workspace is a
    plain dict mapping variable names to runtime values.
    """

    def __init__(self, seed: Optional[int] = None):
        self.rng = np.random.default_rng(seed)
        self.builtins = make_builtins(self.rng)
        self.functions: dict[str, FunctionDef] = {}

    # -- program / statements -------------------------------------------

    def run(self, program: Program,
            env: Optional[dict] = None) -> dict:
        """Execute a program; returns the final workspace."""
        workspace = env if env is not None else {}
        for stmt in program.body:
            if isinstance(stmt, FunctionDef):
                self.functions[stmt.name] = stmt
        try:
            self.exec_block(
                [s for s in program.body if not isinstance(s, FunctionDef)],
                workspace)
        except _ReturnSignal:
            pass
        return workspace

    def exec_block(self, stmts: list[Stmt], env: dict) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: Stmt, env: dict) -> None:
        cls = type(stmt)
        if cls is Assign:
            self._assign(stmt, env)
        elif cls is For:
            self._for(stmt, env)
        elif cls is If:
            for cond, body in stmt.tests:
                if V.is_truthy(self.eval(cond, env)):
                    self.exec_block(body, env)
                    return
            self.exec_block(stmt.orelse, env)
        elif cls is While:
            while V.is_truthy(self.eval(stmt.cond, env)):
                try:
                    self.exec_block(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif cls is ExprStmt:
            value = self.eval(stmt.expr, env)
            if not stmt.suppress:
                env["ans"] = value
        elif cls is MultiAssign:
            self._multi_assign(stmt, env)
        elif cls is Break:
            raise _BreakSignal()
        elif cls is Continue:
            raise _ContinueSignal()
        elif cls is Return:
            raise _ReturnSignal()
        elif cls is Annotation:
            pass
        elif cls is Global:
            pass  # single-workspace scripts: globals are already visible
        elif cls is FunctionDef:
            self.functions[stmt.name] = stmt
        else:
            raise MatlabRuntimeError(
                f"cannot execute statement {cls.__name__}")

    # -- loops ----------------------------------------------------------

    def _for(self, stmt: For, env: dict) -> None:
        iter_value = self._loop_values(stmt.iter, env)
        body = stmt.body
        var = stmt.var
        for item in iter_value:
            env[var] = item
            try:
                self.exec_block(body, env)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue

    def _loop_values(self, iter_expr: Expr, env: dict):
        if isinstance(iter_expr, Range):
            lo = V.as_scalar(self.eval(iter_expr.start, env))
            hi = V.as_scalar(self.eval(iter_expr.stop, env))
            step = V.as_scalar(self.eval(iter_expr.step, env)) \
                if iter_expr.step is not None else 1.0
            if step == 0:
                raise MatlabRuntimeError("for: zero step")
            count = int(np.floor((hi - lo) / step + 1e-10)) + 1
            return (lo + step * k for k in range(max(count, 0)))
        value = self.eval(iter_expr, env)
        arr = V.as_array(value)
        if arr.shape[0] == 1:
            return (float(x) for x in arr[0])
        # MATLAB iterates over columns of a matrix.
        return (np.asfortranarray(arr[:, [k]]) for k in range(arr.shape[1]))

    # -- assignment -------------------------------------------------------

    def _assign(self, stmt: Assign, env: dict) -> None:
        rhs = self.eval(stmt.rhs, env)
        lhs = stmt.lhs
        if type(lhs) is Ident:
            env[lhs.name] = rhs
            return
        if type(lhs) is Apply and type(lhs.func) is Ident:
            name = lhs.func.name
            current = env.get(name)
            subs = self._eval_subscripts(lhs.args, current, env)
            env[name] = V.index_write(current, subs, rhs)
            return
        raise MatlabRuntimeError("unsupported assignment target")

    def _multi_assign(self, stmt: MultiAssign, env: dict) -> None:
        rhs = stmt.rhs
        outputs: list
        if isinstance(rhs, Apply) and isinstance(rhs.func, Ident) \
                and rhs.func.name in self.functions:
            outputs = self._call_function(
                self.functions[rhs.func.name],
                [self.eval(a, env) for a in rhs.args],
                nargout=len(stmt.targets))
        elif isinstance(rhs, Apply) and isinstance(rhs.func, Ident) \
                and rhs.func.name in self.builtins \
                and rhs.func.name not in env:
            args = [self.eval(a, env) for a in rhs.args]
            multi = call_multi(self.builtins, rhs.func.name, args,
                               nargout=len(stmt.targets))
            if multi is None:
                multi = [self.builtins[rhs.func.name](*args)]
            outputs = multi[: max(len(stmt.targets), 1)] \
                if len(multi) >= len(stmt.targets) else multi
        else:
            outputs = [self.eval(rhs, env)]
        if len(outputs) < len(stmt.targets):
            raise MatlabRuntimeError("too many output arguments")
        for target, value in zip(stmt.targets, outputs):
            self._assign(Assign(target, _Quoted(value)), env)

    # -- expressions --------------------------------------------------------

    def eval(self, expr: Expr, env: dict):
        cls = type(expr)
        if cls is Num:
            return expr.value
        if cls is Ident:
            name = expr.name
            if name in env:
                return env[name]
            if name in CONSTANTS:
                return CONSTANTS[name]
            if name in self.functions:
                return self._call_function(self.functions[name], [],
                                           nargout=1)[0]
            if name in self.builtins:
                return self.builtins[name]()
            raise MatlabRuntimeError(f"undefined variable {name!r}")
        if cls is BinOp:
            return self._binop(expr, env)
        if cls is Apply:
            return self._apply(expr, env)
        if cls is Range:
            lo = V.as_scalar(self.eval(expr.start, env))
            hi = V.as_scalar(self.eval(expr.stop, env))
            step = V.as_scalar(self.eval(expr.step, env)) \
                if expr.step is not None else 1.0
            return colon_range(lo, step, hi)
        if cls is Transpose:
            return V.transpose(self.eval(expr.operand, env))
        if cls is UnOp:
            value = self.eval(expr.operand, env)
            if expr.op == "-":
                return V.negate(value)
            if expr.op == "~":
                return V.logical_not(value)
            return value
        if cls is Str:
            return expr.value
        if cls is Matrix:
            return self._matrix(expr, env)
        if cls is _Quoted:
            return expr.value
        if cls is Colon or cls is End:
            raise MatlabRuntimeError("':'/'end' outside a subscript")
        raise MatlabRuntimeError(f"cannot evaluate {cls.__name__}")

    def _binop(self, expr: BinOp, env: dict):
        op = expr.op
        if op == "&&":
            left = self.eval(expr.left, env)
            if not V.is_truthy(left):
                return 0.0
            return 1.0 if V.is_truthy(self.eval(expr.right, env)) else 0.0
        if op == "||":
            left = self.eval(expr.left, env)
            if V.is_truthy(left):
                return 1.0
            return 1.0 if V.is_truthy(self.eval(expr.right, env)) else 0.0
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        fn = _BINOPS.get(op)
        if fn is not None:
            return fn(left, right)
        if op in V._COMPARISONS:
            return V.compare(op, left, right)
        raise MatlabRuntimeError(f"unsupported operator {op!r}")

    def _matrix(self, expr: Matrix, env: dict):
        return V.build_matrix(
            [[self.eval(e, env) for e in row] for row in expr.rows])

    # -- application: indexing or calls ---------------------------------------

    def _apply(self, expr: Apply, env: dict):
        func = expr.func
        if type(func) is Ident:
            name = func.name
            target = env.get(name)
            if target is not None:
                subs = self._eval_subscripts(expr.args, target, env)
                return V.index_read(target, subs)
            if name in self.functions:
                args = [self.eval(a, env) for a in expr.args]
                return self._call_function(self.functions[name], args,
                                           nargout=1)[0]
            builtin = self.builtins.get(name)
            if builtin is not None:
                args = [self.eval(a, env) for a in expr.args]
                return builtin(*args)
            raise MatlabRuntimeError(f"undefined variable or function "
                                     f"{name!r}")
        # Indexing the result of an arbitrary expression.
        target = self.eval(func, env)
        subs = self._eval_subscripts(expr.args, target, env)
        return V.index_read(target, subs)

    def _eval_subscripts(self, args: list[Expr], target, env: dict) -> list:
        subs = []
        total = len(args)
        for position, arg in enumerate(args):
            if type(arg) is Colon:
                subs.append(V.COLON)
                continue
            subs.append(self._eval_subscript_expr(arg, target, position,
                                                  total, env))
        return subs

    def _eval_subscript_expr(self, arg: Expr, target, position: int,
                             total: int, env: dict):
        if not _contains_end(arg):
            return self.eval(arg, env)
        if target is None:
            raise MatlabRuntimeError("'end' used on an undefined variable")
        rows, cols = V.shape_of(target)
        if total == 1:
            end_value = float(rows * cols)
        else:
            end_value = float(rows) if position == 0 else float(cols)
        return self.eval(_substitute_end(arg, end_value), env)

    # -- user-defined functions ----------------------------------------------

    def _call_function(self, fn: FunctionDef, args: list,
                       nargout: int = 1) -> list:
        if len(args) > len(fn.params):
            raise MatlabRuntimeError(
                f"{fn.name}: too many input arguments")
        scope = dict(zip(fn.params, args))
        try:
            self.exec_block(fn.body, scope)
        except _ReturnSignal:
            pass
        outputs = []
        for out in fn.outs[: max(nargout, 1)] or []:
            if out not in scope:
                raise MatlabRuntimeError(
                    f"{fn.name}: output argument {out!r} not assigned")
            outputs.append(scope[out])
        if not outputs:
            outputs = [0.0]
        return outputs


class _Quoted(Expr):
    """Internal wrapper letting pre-computed values flow through _assign."""

    def __init__(self, value):
        self.value = value


def _contains_end(expr: Expr) -> bool:
    return any(isinstance(node, End) for node in expr.walk())


def _substitute_end(expr: Expr, end_value: float):
    from ..mlang.visitor import Transformer

    class _EndSubst(Transformer):
        def visit_End(self, node: End):
            return Num(end_value)

    return _EndSubst().visit(expr)


def run_program(program: Program, env: Optional[dict] = None,
                seed: Optional[int] = None) -> dict:
    """Execute a parsed program; returns the final workspace."""
    return Interpreter(seed=seed).run(program, env=env)


def run_source(source: str, env: Optional[dict] = None,
               seed: Optional[int] = None) -> dict:
    """Parse and execute MATLAB source; returns the final workspace."""
    return run_program(parse(source), env=env, seed=seed)
