"""MATLAB runtime: a tree-walking interpreter over NumPy."""
