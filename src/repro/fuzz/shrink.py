"""Delta-debugging shrinker: minimize a mismatching program.

Given a program the oracle flags, repeatedly apply the smallest
semantics-shrinking edits that *keep the program mismatching*:

* delete any statement, at any nesting depth (loop bodies, ``if``
  branches) — deleting a whole loop is just deleting its statement;
* unwrap an ``if`` into one of its branches;
* flatten literal prelude values to ``1`` (noise reduction so the
  surviving arithmetic is readable).

Candidates whose *reference* run crashes are rejected (a shrink must
stay a well-formed program), as are candidates that stop mismatching.
The greedy loop restarts after every accepted edit and terminates at a
fixpoint, yielding a local minimum — in practice a handful of lines.

``write_reproducer`` persists the minimized program to
``tests/fuzz_corpus/`` with a ``%$ outputs:`` header line so the
regression suite can re-oracle it forever.
"""

from __future__ import annotations

import copy
from pathlib import Path
from typing import Callable, Iterator, Optional

from ..mlang.ast_nodes import (
    Annotation,
    Assign,
    For,
    Ident,
    If,
    Matrix,
    Num,
    Program,
    Stmt,
)
from ..mlang.parser import parse
from ..mlang.printer import to_source
from .oracle import ATOL, RTOL, OracleReport, run_oracle


def _still_failing(source: str, outputs, seed: int, rtol: float,
                   atol: float, vectorizer) -> bool:
    report = run_oracle(source, outputs=outputs, seed=seed, rtol=rtol,
                        atol=atol, vectorizer=vectorizer)
    if report.ok:
        return False
    # A reference crash means the candidate is no longer well-formed.
    return all(d.stage != "interp-original" for d in report.divergences)


def _statement_lists(program: Program) -> Iterator[list[Stmt]]:
    """Every mutable statement list in the tree, outermost first."""

    def visit(stmts: list[Stmt]) -> Iterator[list[Stmt]]:
        yield stmts
        for stmt in stmts:
            if isinstance(stmt, For):
                yield from visit(stmt.body)
            elif isinstance(stmt, If):
                for _, body in stmt.tests:
                    yield from visit(body)
                yield from visit(stmt.orelse)

    yield from visit(program.body)


def _variants(program: Program) -> Iterator[Program]:
    """Candidate one-edit reductions, most aggressive first."""
    # 1. Statement deletion at every nesting level.
    for list_index, stmts in enumerate(_statement_lists(program)):
        for position, stmt in enumerate(stmts):
            if isinstance(stmt, Annotation):
                continue
            clone = copy.deepcopy(program)
            target = _nth_list(clone, list_index)
            del target[position]
            yield clone
    # 2. If-unwrapping: replace the If with one branch's statements.
    for list_index, stmts in enumerate(_statement_lists(program)):
        for position, stmt in enumerate(stmts):
            if not isinstance(stmt, If):
                continue
            branches = [body for _, body in stmt.tests]
            if stmt.orelse:
                branches.append(stmt.orelse)
            for branch_no in range(len(branches)):
                clone = copy.deepcopy(program)
                target = _nth_list(clone, list_index)
                cloned_if = target[position]
                cloned_branches = [b for _, b in cloned_if.tests]
                if cloned_if.orelse:
                    cloned_branches.append(cloned_if.orelse)
                target[position: position + 1] = cloned_branches[branch_no]
                yield clone
    # 3. Literal flattening in the prelude (top-level assigns only).
    for position, stmt in enumerate(program.body):
        if not isinstance(stmt, Assign):
            continue
        if not isinstance(stmt.rhs, (Matrix, Num)):
            continue
        nums = [n for n in stmt.rhs.walk()
                if isinstance(n, Num) and n.value != 1.0]
        if not nums:
            continue
        clone = copy.deepcopy(program)
        for node in clone.body[position].rhs.walk():
            if isinstance(node, Num):
                node.value = 1.0
                node.raw = "1"
        yield clone


def _prune_annotations(program: Program) -> Program:
    """Drop ``%!`` shape declarations for variables no longer present.

    Statement deletion leaves the annotation line naming dead
    variables; this cleanup keeps the reproducer honest.  Annotations
    declare space-separated ``name(shape)`` entries.
    """
    live = {node.name for node in program.walk() if isinstance(node, Ident)}
    clone = copy.deepcopy(program)
    for stmts in _statement_lists(clone):
        for position in reversed(range(len(stmts))):
            stmt = stmts[position]
            if not isinstance(stmt, Annotation):
                continue
            kept = [entry for entry in stmt.text.split()
                    if entry.split("(", 1)[0] in live]
            if kept:
                stmt.text = " ".join(kept)
            else:
                del stmts[position]
    return clone


def _nth_list(program: Program, index: int) -> list[Stmt]:
    for k, stmts in enumerate(_statement_lists(program)):
        if k == index:
            return stmts
    raise IndexError(index)


def shrink_source(source: str, outputs=None, seed: int = 0,
                  rtol: float = RTOL, atol: float = ATOL,
                  vectorizer: Optional[Callable] = None,
                  max_steps: int = 2000) -> str:
    """Minimize ``source`` while the oracle keeps reporting a mismatch.

    Returns the minimized source (the input itself if no edit survives).
    The caller guarantees the input currently mismatches.
    """
    program = parse(source)
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for variant in _variants(program):
            steps += 1
            candidate = to_source(variant)
            if _still_failing(candidate, outputs, seed, rtol, atol,
                              vectorizer):
                program = variant
                improved = True
                break
            if steps >= max_steps:
                break
    pruned = _prune_annotations(program)
    candidate = to_source(pruned)
    if candidate != to_source(program) and _still_failing(
            candidate, outputs, seed, rtol, atol, vectorizer):
        program = pruned
    return to_source(program)


def write_reproducer(directory: Path, source: str, report: OracleReport,
                     label: str) -> Path:
    """Write a shrunken reproducer to ``directory`` for permanent
    regression coverage; returns the path written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stages = sorted({d.stage for d in report.divergences})
    lines = [
        f"% fuzz reproducer: {label}",
        f"% stages: {', '.join(stages)}",
    ]
    if report.outputs:
        lines.append("%$ outputs: " + " ".join(report.outputs))
    body = source if source.endswith("\n") else source + "\n"
    path = directory / f"{label}.m"
    path.write_text("\n".join(lines) + "\n" + body)
    return path


def read_reproducer_outputs(path: Path) -> Optional[tuple[str, ...]]:
    """Parse the ``%$ outputs:`` header of a reproducer file, if any."""
    for line in Path(path).read_text().splitlines():
        stripped = line.strip()
        if stripped.startswith("%$ outputs:"):
            return tuple(stripped.split(":", 1)[1].split())
        if stripped and not stripped.startswith("%"):
            break
    return None
