"""Campaign driver: generate → oracle → (optionally) shrink, at scale.

``run_campaign(n, seed)`` oracles ``n`` generated programs and returns
aggregate statistics, including throughput (programs/sec oracled) so
the bench harness can track fuzzing speed as a first-class metric.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from .generator import ProgramGenerator
from .oracle import ATOL, RTOL, OracleReport, run_oracle
from .shrink import shrink_source, write_reproducer


@dataclass
class Mismatch:
    """One failing program, with its (optional) shrunken reproducer."""

    index: int
    report: OracleReport
    shrunk_source: Optional[str] = None
    reproducer: Optional[Path] = None


@dataclass
class CampaignResult:
    """Aggregate outcome of one fuzzing campaign."""

    total: int
    seed: int
    elapsed: float
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def programs_per_sec(self) -> float:
        return self.total / self.elapsed if self.elapsed > 0 else float("inf")

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.mismatches)} MISMATCH(ES)"
        return (f"fuzz: {self.total} programs, seed {self.seed}, "
                f"{self.elapsed:.2f} s "
                f"({self.programs_per_sec:.1f} programs/sec) — {verdict}")


def run_campaign(n: int, seed: int = 0, shrink: bool = False,
                 corpus_dir: Optional[Path] = None,
                 rtol: float = RTOL, atol: float = ATOL,
                 vectorizer: Optional[Callable] = None,
                 progress: Optional[Callable[[int, int], None]] = None
                 ) -> CampaignResult:
    """Oracle ``n`` generated programs.

    ``shrink`` minimizes each mismatching program; ``corpus_dir``
    additionally writes the shrunken reproducer there (named
    ``fuzz_seed<seed>_<index>.m``).  ``vectorizer`` is injectable for
    tests.  ``progress(done, total)`` is called after each program.
    """
    generator = ProgramGenerator(seed)
    mismatches: list[Mismatch] = []
    start = time.perf_counter()
    for index in range(n):
        program = generator.generate(index)
        report = run_oracle(program.source, outputs=program.outputs,
                            rtol=rtol, atol=atol, vectorizer=vectorizer)
        if not report.ok:
            mismatch = Mismatch(index=index, report=report)
            if shrink:
                mismatch.shrunk_source = shrink_source(
                    program.source, outputs=program.outputs,
                    rtol=rtol, atol=atol, vectorizer=vectorizer)
                if corpus_dir is not None:
                    shrunk_report = run_oracle(
                        mismatch.shrunk_source, outputs=program.outputs,
                        rtol=rtol, atol=atol, vectorizer=vectorizer)
                    mismatch.reproducer = write_reproducer(
                        corpus_dir, mismatch.shrunk_source, shrunk_report,
                        f"fuzz_seed{seed}_{index}")
            mismatches.append(mismatch)
        if progress is not None:
            progress(index + 1, n)
    elapsed = time.perf_counter() - start
    return CampaignResult(total=n, seed=seed, elapsed=elapsed,
                          mismatches=mismatches)
