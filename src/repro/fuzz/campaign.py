"""Campaign driver: generate → oracle → (optionally) shrink, at scale.

``run_campaign(n, seed)`` oracles ``n`` generated programs and returns
aggregate statistics, including throughput (programs/sec oracled) so
the bench harness can track fuzzing speed as a first-class metric.

``workers > 1`` fans contiguous index ranges across the compilation
service's worker pool (:func:`repro.service.compiler.parallel_map`);
every program is regenerable from ``(seed, index)`` alone, so chunks
ship as index ranges, results are deterministic regardless of worker
scheduling, and shrinking still happens in the parent (mismatches are
rare; shrinks are serial and need the injectable vectorizer anyway).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from .generator import ProgramGenerator
from .oracle import ATOL, RTOL, OracleReport, run_oracle
from .shrink import shrink_source, write_reproducer


@dataclass
class Mismatch:
    """One failing program, with its (optional) shrunken reproducer."""

    index: int
    report: OracleReport
    shrunk_source: Optional[str] = None
    reproducer: Optional[Path] = None


@dataclass
class CampaignResult:
    """Aggregate outcome of one fuzzing campaign."""

    total: int
    seed: int
    elapsed: float
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def programs_per_sec(self) -> float:
        return self.total / self.elapsed if self.elapsed > 0 else float("inf")

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.mismatches)} MISMATCH(ES)"
        return (f"fuzz: {self.total} programs, seed {self.seed}, "
                f"{self.elapsed:.2f} s "
                f"({self.programs_per_sec:.1f} programs/sec) — {verdict}")


def _oracle_range(item) -> list[tuple[int, OracleReport]]:
    """Pool worker: oracle indices ``[start, stop)`` of one seed's
    program stream, returning only the failures (picklable reports)."""
    seed, start, stop, rtol, atol, lint, audit = item
    generator = ProgramGenerator(seed)
    failures: list[tuple[int, OracleReport]] = []
    for index in range(start, stop):
        program = generator.generate(index)
        report = run_oracle(program.source, outputs=program.outputs,
                            rtol=rtol, atol=atol, lint=lint, audit=audit)
        if not report.ok:
            failures.append((index, report))
    return failures


def _chunk_ranges(n: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ranges, ~4 chunks per worker for load balance."""
    chunks = min(n, max(1, workers * 4))
    size, remainder = divmod(n, chunks)
    ranges, start = [], 0
    for chunk in range(chunks):
        stop = start + size + (1 if chunk < remainder else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def _parallel_failures(n: int, seed: int, workers: int,
                       rtol: float, atol: float, lint: bool, audit: bool,
                       progress: Optional[Callable[[int, int], None]]
                       ) -> list[tuple[int, OracleReport]]:
    from ..service.compiler import WorkerFailure, parallel_map

    ranges = _chunk_ranges(n, workers)
    items = [(seed, start, stop, rtol, atol, lint, audit)
             for start, stop in ranges]
    outcomes = parallel_map(_oracle_range, items, workers=workers)
    failures: list[tuple[int, OracleReport]] = []
    done = 0
    for (start, stop), outcome in zip(ranges, outcomes):
        if isinstance(outcome, WorkerFailure):
            # Infrastructure failure, not a finding — don't let it
            # masquerade as a clean campaign.
            raise RuntimeError(
                f"fuzz worker died on indices [{start}, {stop}): "
                f"{outcome.type}: {outcome.message}")
        failures.extend(outcome)
        done += stop - start
        if progress is not None:
            progress(done, n)
    return sorted(failures)


def run_campaign(n: int, seed: int = 0, shrink: bool = False,
                 corpus_dir: Optional[Path] = None,
                 rtol: float = RTOL, atol: float = ATOL,
                 vectorizer: Optional[Callable] = None,
                 progress: Optional[Callable[[int, int], None]] = None,
                 workers: int = 1, lint: bool = True,
                 audit: bool = True) -> CampaignResult:
    """Oracle ``n`` generated programs.

    ``shrink`` minimizes each mismatching program; ``corpus_dir``
    additionally writes the shrunken reproducer there (named
    ``fuzz_seed<seed>_<index>.m``).  ``vectorizer`` is injectable for
    tests.  ``progress(done, total)`` is called after each program
    (after each chunk when parallel).  ``workers > 1`` parallelizes the
    oracle runs; an injected ``vectorizer`` forces the sequential path
    (closures don't cross process boundaries).

    ``lint``/``audit`` (both on by default) additionally require every
    generated program to be lint-clean and every vectorization to pass
    the independent legality audit — static findings count as campaign
    mismatches exactly like behavioral divergences.
    """
    start_time = time.perf_counter()
    failures: list[tuple[int, OracleReport]] = []
    if workers > 1 and n > 1 and vectorizer is None:
        failures = _parallel_failures(n, seed, workers, rtol, atol,
                                      lint, audit, progress)
    else:
        generator = ProgramGenerator(seed)
        for index in range(n):
            program = generator.generate(index)
            report = run_oracle(program.source, outputs=program.outputs,
                                rtol=rtol, atol=atol, vectorizer=vectorizer,
                                lint=lint, audit=audit)
            if not report.ok:
                failures.append((index, report))
            if progress is not None:
                progress(index + 1, n)

    generator = ProgramGenerator(seed)
    mismatches: list[Mismatch] = []
    for index, report in failures:
        mismatch = Mismatch(index=index, report=report)
        if shrink:
            program = generator.generate(index)
            mismatch.shrunk_source = shrink_source(
                program.source, outputs=program.outputs,
                rtol=rtol, atol=atol, vectorizer=vectorizer)
            if corpus_dir is not None:
                shrunk_report = run_oracle(
                    mismatch.shrunk_source, outputs=program.outputs,
                    rtol=rtol, atol=atol, vectorizer=vectorizer)
                mismatch.reproducer = write_reproducer(
                    corpus_dir, mismatch.shrunk_source, shrunk_report,
                    f"fuzz_seed{seed}_{index}")
        mismatches.append(mismatch)
    elapsed = time.perf_counter() - start_time
    return CampaignResult(total=n, seed=seed, elapsed=elapsed,
                          mismatches=mismatches)
