"""The equivalence oracle: one program, three execution routes.

Every candidate program is run

1. as written, under :class:`repro.runtime.interp.Interpreter`
   (the reference semantics);
2. after ``vectorize_source``, under the same interpreter;
3. through the :mod:`repro.translate.numpy_backend` compiler — both the
   original source (exercising the backend's loop emission) and the
   vectorized source (the paper-pipeline-to-NumPy route).

Final workspaces are compared variable by variable with
:func:`repro.runtime.values.values_equal` under the documented
tolerances :data:`RTOL`/:data:`ATOL`.  The tolerances are looser than
the test-suite default because vectorization legitimately reassociates
additive reductions (Γ of §3 turns a serial sum into ``sum``/``*``),
which perturbs floating-point results by a few ulps.

Any crash outside the reference run, and any workspace divergence, is
reported as a :class:`Divergence`; a crash in the reference run means
the *generator* emitted an invalid program and is reported under stage
``interp-original`` so campaigns surface it loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..errors import ReproError
from ..mlang.ast_nodes import Apply, Assign, For, Ident, Node, Program
from ..mlang.parser import parse
from ..runtime.interp import Interpreter
from ..runtime.values import values_equal
from ..translate.numpy_backend import translate_source
from ..vectorizer.driver import vectorize_source

#: Relative tolerance for workspace comparison (see module docstring).
RTOL = 1e-9
#: Absolute tolerance for workspace comparison.
ATOL = 1e-11


@dataclass
class Divergence:
    """One observed disagreement between two execution routes."""

    stage: str                    # which route disagreed (or crashed)
    variable: Optional[str]       # workspace variable, None for crashes
    detail: str

    def __str__(self) -> str:
        where = f" [{self.variable}]" if self.variable else ""
        return f"{self.stage}{where}: {self.detail}"


@dataclass
class OracleReport:
    """The oracle's verdict on one program."""

    source: str
    outputs: tuple[str, ...]
    vectorized_source: Optional[str] = None
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        lines = [f"oracle: {len(self.divergences)} divergence(s)"]
        lines += [f"  {d}" for d in self.divergences]
        lines.append("--- program ---")
        lines.append(self.source.rstrip())
        if self.vectorized_source is not None:
            lines.append("--- vectorized ---")
            lines.append(self.vectorized_source.rstrip())
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Workspace comparison helpers (shared with the CLI's --run verifier)
# ---------------------------------------------------------------------------


def loop_index_vars(program: Program) -> set[str]:
    """Names used as ``for`` index variables anywhere in the program.

    Vectorization deletes loops, so these names legitimately vanish from
    the vectorized workspace and must not be compared.
    """
    return {node.var for node in program.walk() if isinstance(node, For)}


def _in_loop_scalar_temps(program: Program) -> set[str]:
    """Names assigned as bare identifiers inside a loop body whose RHS
    does not reference themselves.

    These are exactly the per-iteration scalar temporaries the
    vectorizer may forward-substitute away (self-referencing names are
    reductions and stay observable).
    """
    temps: set[str] = set()
    keep: set[str] = set()

    def scan(node: Node, in_loop: bool) -> None:
        if isinstance(node, Assign) and in_loop \
                and isinstance(node.lhs, Ident):
            name = node.lhs.name
            refs = {n.name for n in node.rhs.walk() if isinstance(n, Ident)}
            (keep if name in refs else temps).add(name)
        for child in node.children():
            scan(child, in_loop or isinstance(node, For))

    scan(program, False)
    return temps - keep


def comparable_names(program: Program,
                     workspace: Optional[dict] = None) -> list[str]:
    """The workspace variables whose final values are observable program
    outputs: everything except loop indices and eliminable scalar temps.

    When ``workspace`` is given, restrict to names actually defined in it
    (a variable assigned only under a never-taken branch never exists).
    """
    excluded = loop_index_vars(program) | _in_loop_scalar_temps(program)
    names: set[str] = set()
    for node in program.walk():
        if isinstance(node, Assign):
            target = node.lhs
            if isinstance(target, Ident):
                names.add(target.name)
            elif isinstance(target, Apply) and isinstance(target.func, Ident):
                names.add(target.func.name)
    names -= excluded
    if workspace is not None:
        names &= set(workspace)
    return sorted(names)


def diff_workspaces(reference: dict, candidate: dict,
                    names: Iterable[str], stage: str,
                    rtol: float = RTOL, atol: float = ATOL
                    ) -> list[Divergence]:
    """Compare two final workspaces over ``names``.

    A variable missing from exactly one side is a divergence; missing
    from both sides is ignored (its defining statement never executed).
    """
    out: list[Divergence] = []
    for name in names:
        in_ref, in_cand = name in reference, name in candidate
        if not in_ref and not in_cand:
            continue
        if in_ref != in_cand:
            missing = "candidate" if in_ref else "reference"
            out.append(Divergence(stage, name,
                                  f"defined on one side only (missing in "
                                  f"{missing} run)"))
            continue
        if not values_equal(reference[name], candidate[name],
                            rtol=rtol, atol=atol):
            out.append(Divergence(
                stage, name,
                f"values differ: {_preview(reference[name])} vs "
                f"{_preview(candidate[name])}"))
    return out


def _preview(value, limit: int = 60) -> str:
    text = repr(value).replace("\n", " ")
    return text if len(text) <= limit else text[: limit - 3] + "..."


# ---------------------------------------------------------------------------
# The oracle proper
# ---------------------------------------------------------------------------


def _interp(source_or_program, seed: int) -> dict:
    program = (source_or_program if isinstance(source_or_program, Program)
               else parse(source_or_program))
    return Interpreter(seed=seed).run(program, env={})


def _numpy_run(source: str, seed: int) -> dict:
    fn = translate_source(source).compile()
    return fn(env={}, seed=seed)


def run_oracle(source: str, outputs: Optional[Iterable[str]] = None,
               seed: int = 0, rtol: float = RTOL, atol: float = ATOL,
               vectorizer: Optional[Callable[[str], object]] = None,
               lint: bool = False, audit: bool = False) -> OracleReport:
    """Run ``source`` through every route and compare final workspaces.

    ``outputs`` restricts the comparison to the given variables (the
    generator passes its declared outputs); when omitted the comparable
    set is derived from the program itself via :func:`comparable_names`.
    ``vectorizer`` can replace ``vectorize_source`` (tests inject broken
    vectorizers to exercise the oracle and shrinker).

    ``lint`` enforces the generator invariant that every generated
    program is lint-clean: any error-severity diagnostic on the original
    source is a ``lint-original`` divergence.  ``audit`` runs the
    vectorization-legality auditor over the (original, vectorized) pair;
    a failed audit is an ``audit`` divergence even when every execution
    route agrees — the transformation must be provably legal, not just
    observationally lucky on one input.
    """
    report = OracleReport(source=source, outputs=tuple(outputs or ()))
    vectorize = vectorizer if vectorizer is not None else vectorize_source

    if lint:
        from ..staticcheck import lint_source

        for diagnostic in lint_source(source):
            if diagnostic.is_error:
                report.divergences.append(Divergence(
                    "lint-original", None,
                    f"generated program is not lint-clean: "
                    f"{diagnostic.render()}"))
        if report.divergences:
            return report

    try:
        program = parse(source)
        reference = _interp(program, seed)
    except ReproError as error:
        report.divergences.append(Divergence(
            "interp-original", None, f"reference run failed: {error}"))
        return report

    if outputs is None:
        names = comparable_names(program)
    else:
        names = sorted(outputs)
    report.outputs = tuple(names)

    try:
        result = vectorize(source)
        vectorized_src = result.source
        report.vectorized_source = vectorized_src
    except ReproError as error:
        report.divergences.append(Divergence(
            "vectorize", None, f"vectorizer raised: {error}"))
        return report
    except Exception as error:  # noqa: BLE001 — a crash *is* a finding
        report.divergences.append(Divergence(
            "vectorize", None,
            f"vectorizer crashed: {type(error).__name__}: {error}"))
        return report

    if audit:
        from ..staticcheck import audit_source

        audit_result = audit_source(source, vectorized_src)
        if not audit_result.ok:
            for diagnostic in audit_result.diagnostics:
                if diagnostic.is_error:
                    report.divergences.append(Divergence(
                        "audit", None, diagnostic.render()))

    stages = [
        ("interp-vectorized", lambda: _interp(vectorized_src, seed)),
        ("numpy-original", lambda: _numpy_run(source, seed)),
        ("numpy-vectorized", lambda: _numpy_run(vectorized_src, seed)),
    ]
    for stage, runner in stages:
        try:
            workspace = runner()
        except ReproError as error:
            report.divergences.append(Divergence(
                stage, None, f"run failed: {error}"))
            continue
        except Exception as error:  # noqa: BLE001
            report.divergences.append(Divergence(
                stage, None,
                f"run crashed: {type(error).__name__}: {error}"))
            continue
        report.divergences.extend(diff_workspaces(
            reference, workspace, names, stage, rtol=rtol, atol=atol))
    return report
