"""Seeded, shape-aware random MATLAB program generator.

Programs are *well-formed by construction*: the builder tracks a
concrete shape for every variable it declares, emits a self-contained
literal prelude (so the oracle needs no external workspace), and —
usually — writes a ``%!`` annotation line declaring each variable's
abstract dimensionality, exactly the shape information the paper's
vectorizer consumes (§4).  A configurable fraction of programs is
generated *annotation-free* instead, forcing every shape through the
flow-sensitive inference engine.

Each program is assembled from 1–3 *templates* drawn from the grammar
the vectorizer targets:

* pointwise vector/matrix loops (with optional scalar temporaries,
  non-unit strides, and broadcast reads ``u(i)`` / ``v(j)``);
* per-row dot products and matrix-vector products (Table 2 pattern 1);
* diagonal accesses ``A(i,i)`` (Table 2 pattern 3);
* additive reductions, scalar and accumulating nests;
* loop-carried recurrences and ``if`` guards — programs the vectorizer
  must *safely decline*, which the oracle still checks end-to-end.

Numeric literals are multiples of 1/32 in [-2, 2] so every value is
exactly representable in binary floating point; divisors are drawn from
a nonzero pool.  All randomness comes from one ``random.Random`` seeded
from ``(seed, index)``, so a campaign is reproducible program by
program.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..mlang.ast_nodes import (
    Annotation,
    Apply,
    Assign,
    BinOp,
    Colon,
    Expr,
    For,
    Ident,
    If,
    Matrix,
    Num,
    Program,
    Range,
    Stmt,
    UnOp,
    While,
    call,
    num,
)
from ..mlang.printer import to_source


@dataclass(frozen=True)
class Shape:
    """A concrete (rows, cols) shape for a generated variable."""

    rows: int
    cols: int

    @property
    def is_scalar(self) -> bool:
        return self.rows == 1 and self.cols == 1

    @property
    def annotation(self) -> str:
        if self.is_scalar:
            return "(1)"
        row = "1" if self.rows == 1 else "*"
        col = "1" if self.cols == 1 else "*"
        return f"({row},{col})"


@dataclass
class GeneratedProgram:
    """One generated program plus the metadata the oracle needs."""

    index: int
    seed: int
    source: str
    outputs: tuple[str, ...]
    program: Program
    #: ``False`` for the annotation-free variants: no ``%!`` line is
    #: emitted and every shape must come from flow-sensitive inference.
    annotated: bool = True


#: Pool of exactly-representable literal magnitudes (multiples of 1/32).
_VALUE_GRID = [k / 32.0 for k in range(-64, 65)]
#: Nonzero divisors for ``./`` right-hand sides.
_DIVISORS = [-2.0, -1.5, -1.0, -0.5, 0.5, 1.0, 1.5, 2.0]
#: Elementwise builtins guaranteed total over our value range.
_UNARY_FUNCS = ["sin", "cos", "abs", "exp", "floor", "ceil", "sign"]


class _Builder:
    """Accumulates the prelude, loop statements, and symbol table."""

    def __init__(self, rng: random.Random, annotate: bool = True):
        self.rng = rng
        self.annotate = annotate
        self.prelude: list[Stmt] = []
        self.body: list[Stmt] = []
        self.shapes: dict[str, Shape] = {}
        self.outputs: set[str] = set()
        self.index_names: set[str] = set()
        self._counter = 0

    # -- names and values ------------------------------------------------

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def fresh_index(self) -> str:
        name = self.fresh("i")
        self.index_names.add(name)
        return name

    def value(self) -> float:
        return self.rng.choice(_VALUE_GRID)

    # -- declarations ----------------------------------------------------

    def input_var(self, prefix: str, shape: Shape) -> str:
        """Declare an input initialized from a literal matrix/scalar."""
        name = self.fresh(prefix)
        self.shapes[name] = shape
        if shape.is_scalar:
            rhs: Expr = Num(self.value())
        else:
            rows = [[Num(self.value()) for _ in range(shape.cols)]
                    for _ in range(shape.rows)]
            rhs = Matrix(rows)
        self.prelude.append(Assign(Ident(name), rhs))
        self.outputs.add(name)
        return name

    def output_var(self, prefix: str, shape: Shape) -> str:
        """Declare a zero-initialized result array."""
        name = self.fresh(prefix)
        self.shapes[name] = shape
        self.prelude.append(Assign(
            Ident(name), call("zeros", num(shape.rows), num(shape.cols))))
        self.outputs.add(name)
        return name

    def scalar_var(self, prefix: str, value: float) -> str:
        name = self.fresh(prefix)
        self.shapes[name] = Shape(1, 1)
        self.prelude.append(Assign(Ident(name), Num(value)))
        self.outputs.add(name)
        return name

    def bound_var(self, extent: int) -> str:
        """A scalar loop bound holding a concrete trip count."""
        return self.scalar_var("n", float(extent))

    # -- element expressions ---------------------------------------------

    def element_expr(self, leaves: list, depth: int) -> Expr:
        """A random elementwise expression over the given leaf factories."""
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            return rng.choice(leaves)()
        roll = rng.random()
        if roll < 0.55:
            op = rng.choice(["+", "-", ".*"])
            return BinOp(op, self.element_expr(leaves, depth - 1),
                         self.element_expr(leaves, depth - 1))
        if roll < 0.70:
            return BinOp("./", self.element_expr(leaves, depth - 1),
                         Num(rng.choice(_DIVISORS)))
        if roll < 0.80:
            return BinOp(".^", self.element_expr(leaves, depth - 1),
                         num(rng.choice([2, 3])))
        if roll < 0.90:
            inner = self.element_expr(leaves, depth - 1)
            if isinstance(inner, Num):
                # The parser folds unary minus into the literal, so a
                # synthesized UnOp over a negative Num would not
                # round-trip (it prints as ``--c``).  Fold it here too.
                return Num(-inner.value)
            return UnOp("-", inner)
        return call(rng.choice(_UNARY_FUNCS),
                    self.element_expr(leaves, depth - 1))

    def const_leaf(self):
        """A leaf factory producing a fresh literal each call."""
        return lambda: Num(self.value())

    # -- assembly ----------------------------------------------------------

    def finish(self, index: int, seed: int) -> GeneratedProgram:
        stmts: list[Stmt] = []
        if self.annotate:
            annotated = " ".join(
                f"{name}{shape.annotation}"
                for name, shape in sorted(self.shapes.items()))
            stmts.append(Annotation(annotated))
        stmts.extend(self.prelude)
        stmts.extend(self.body)
        program = Program(stmts)
        return GeneratedProgram(index=index, seed=seed,
                                source=to_source(program),
                                outputs=tuple(sorted(self.outputs)),
                                program=program,
                                annotated=self.annotate)


def _elem(name: str, *subs: Expr) -> Apply:
    return Apply(Ident(name), list(subs))


def _loop(var: str, bound: Expr, body: list[Stmt],
          start: int = 1, step: int | None = None) -> For:
    iterator = Range(num(start), bound, num(step) if step else None)
    return For(var, iterator, body)


# ---------------------------------------------------------------------------
# Templates
# ---------------------------------------------------------------------------


def t_pointwise_vector(b: _Builder) -> None:
    """``z(i) = f(x(i), y(i), c)`` over a row or column vector, with
    optional scalar temporaries and non-unit stride."""
    rng = b.rng
    n = rng.randint(3, 6)
    shape = Shape(n, 1) if rng.random() < 0.5 else Shape(1, n)
    x = b.input_var("x", shape)
    y = b.input_var("y", shape)
    z = b.output_var("z", shape)
    c = b.scalar_var("c", b.value())
    bound = b.bound_var(n)
    i = b.fresh_index()
    leaves = [lambda: _elem(x, Ident(i)), lambda: _elem(y, Ident(i)),
              lambda: Ident(c), b.const_leaf()]
    body: list[Stmt]
    if rng.random() < 0.3:
        temp = b.fresh("t")
        b.shapes[temp] = Shape(1, 1)
        body = [
            Assign(Ident(temp), b.element_expr(leaves, 2)),
            Assign(_elem(z, Ident(i)),
                   BinOp(rng.choice(["+", ".*"]), Ident(temp),
                         b.element_expr(leaves, 1))),
        ]
    else:
        body = [Assign(_elem(z, Ident(i)), b.element_expr(leaves, 2))]
    if rng.random() < 0.2:
        b.body.append(_loop(i, Ident(bound), body, start=2, step=2))
    else:
        b.body.append(_loop(i, Ident(bound), body))


def t_pointwise_matrix(b: _Builder) -> None:
    """2-nest pointwise update with optional broadcast reads."""
    rng = b.rng
    m, n = rng.randint(2, 5), rng.randint(2, 5)
    A = b.input_var("A", Shape(m, n))
    B = b.input_var("B", Shape(m, n))
    C = b.output_var("C", Shape(m, n))
    mb = b.bound_var(m)
    nb = b.bound_var(n)
    i, j = b.fresh_index(), b.fresh_index()
    leaves = [lambda: _elem(A, Ident(i), Ident(j)),
              lambda: _elem(B, Ident(i), Ident(j)), b.const_leaf()]
    if rng.random() < 0.5:
        u = b.input_var("u", Shape(m, 1))
        leaves.append(lambda: _elem(u, Ident(i)))
    if rng.random() < 0.5:
        v = b.input_var("v", Shape(1, n))
        leaves.append(lambda: _elem(v, Ident(j)))
    stmt = Assign(_elem(C, Ident(i), Ident(j)), b.element_expr(leaves, 2))
    b.body.append(_loop(i, Ident(mb), [_loop(j, Ident(nb), [stmt])]))


def t_dot_product(b: _Builder) -> None:
    """Table 2 pattern 1: ``a(i) = X(i,:)*Y(:,i)`` (± pointwise tail)."""
    rng = b.rng
    n, k = rng.randint(2, 5), rng.randint(2, 5)
    X = b.input_var("X", Shape(n, k))
    Y = b.input_var("Y", Shape(k, n))
    a = b.output_var("a", Shape(1, n))
    bound = b.bound_var(n)
    i = b.fresh_index()
    dot = BinOp("*", _elem(X, Ident(i), Colon()), _elem(Y, Colon(), Ident(i)))
    rhs: Expr = dot
    if rng.random() < 0.4:
        w = b.input_var("w", Shape(1, n))
        rhs = BinOp(rng.choice(["+", ".*"]), dot, _elem(w, Ident(i)))
    b.body.append(_loop(i, Ident(bound), [Assign(_elem(a, Ident(i)), rhs)]))


def t_matvec(b: _Builder) -> None:
    """``y(i) = A(i,:)*x`` — whole-row times column vector."""
    rng = b.rng
    n, m = rng.randint(2, 5), rng.randint(2, 5)
    A = b.input_var("A", Shape(n, m))
    x = b.input_var("x", Shape(m, 1))
    y = b.output_var("y", Shape(n, 1))
    bound = b.bound_var(n)
    i = b.fresh_index()
    rhs = BinOp("*", _elem(A, Ident(i), Colon()), Ident(x))
    b.body.append(_loop(i, Ident(bound), [Assign(_elem(y, Ident(i)), rhs)]))


def t_diagonal(b: _Builder) -> None:
    """Table 2 pattern 3: diagonal access ``A(i,i)``."""
    rng = b.rng
    n = rng.randint(2, 5)
    A = b.input_var("A", Shape(n, n))
    a = b.output_var("d", Shape(1, n))
    bound = b.bound_var(n)
    i = b.fresh_index()
    diag = _elem(A, Ident(i), Ident(i))
    rhs: Expr = diag
    if rng.random() < 0.6:
        v = b.input_var("b", Shape(1, n))
        rhs = BinOp(rng.choice([".*", "+"]), diag, _elem(v, Ident(i)))
    b.body.append(_loop(i, Ident(bound), [Assign(_elem(a, Ident(i)), rhs)]))


def t_outer_product(b: _Builder) -> None:
    """``P(i,j) = u(i)*v(j)`` — 2-nest outer product."""
    rng = b.rng
    m, n = rng.randint(2, 5), rng.randint(2, 5)
    u = b.input_var("u", Shape(m, 1))
    v = b.input_var("v", Shape(1, n))
    P = b.output_var("P", Shape(m, n))
    mb, nb = b.bound_var(m), b.bound_var(n)
    i, j = b.fresh_index(), b.fresh_index()
    rhs = BinOp(".*", _elem(u, Ident(i)), _elem(v, Ident(j)))
    stmt = Assign(_elem(P, Ident(i), Ident(j)), rhs)
    b.body.append(_loop(i, Ident(mb), [_loop(j, Ident(nb), [stmt])]))


def t_reduction(b: _Builder) -> None:
    """Scalar additive reduction ``s = s + f(x(i))``."""
    rng = b.rng
    n = rng.randint(3, 6)
    x = b.input_var("x", Shape(n, 1))
    s = b.scalar_var("s", 0.0)
    bound = b.bound_var(n)
    i = b.fresh_index()
    leaves = [lambda: _elem(x, Ident(i)), b.const_leaf()]
    if rng.random() < 0.5:
        y = b.input_var("y", Shape(n, 1))
        leaves.append(lambda: _elem(y, Ident(i)))
    rhs = BinOp("+", Ident(s), b.element_expr(leaves, 2))
    b.body.append(_loop(i, Ident(bound), [Assign(Ident(s), rhs)]))


def t_accumulating_nest(b: _Builder) -> None:
    """2-nest reduction ``y(i) = y(i) + A(i,j)*x(j)`` (implicit matvec)."""
    rng = b.rng
    n, m = rng.randint(2, 5), rng.randint(2, 5)
    A = b.input_var("A", Shape(n, m))
    x = b.input_var("x", Shape(m, 1))
    y = b.output_var("y", Shape(n, 1))
    nb, mb = b.bound_var(n), b.bound_var(m)
    i, j = b.fresh_index(), b.fresh_index()
    term = BinOp(".*", _elem(A, Ident(i), Ident(j)), _elem(x, Ident(j)))
    rhs = BinOp("+", _elem(y, Ident(i)), term)
    stmt = Assign(_elem(y, Ident(i)), rhs)
    b.body.append(_loop(i, Ident(nb), [_loop(j, Ident(mb), [stmt])]))


def t_if_guard(b: _Builder) -> None:
    """A guarded loop the vectorizer must *safely decline* (§4 screens
    out control flow), exercised end-to-end by the oracle anyway."""
    rng = b.rng
    n = rng.randint(3, 6)
    x = b.input_var("x", Shape(n, 1))
    y = b.output_var("y", Shape(n, 1))
    c = b.scalar_var("c", b.value())
    bound = b.bound_var(n)
    i = b.fresh_index()
    leaves = [lambda: _elem(x, Ident(i)), lambda: Ident(c), b.const_leaf()]
    cond = BinOp(rng.choice([">", "<", ">=", "<="]),
                 _elem(x, Ident(i)), Ident(c))
    then = [Assign(_elem(y, Ident(i)), b.element_expr(leaves, 1))]
    orelse = [Assign(_elem(y, Ident(i)), b.element_expr(leaves, 1))] \
        if rng.random() < 0.7 else []
    b.body.append(_loop(i, Ident(bound), [If([(cond, then)], orelse)]))


def t_recurrence(b: _Builder) -> None:
    """Loop-carried recurrence ``w(i) = w(i-1) + f(x(i))`` — must be
    left sequential; checks the dependence analysis end-to-end."""
    rng = b.rng
    n = rng.randint(3, 6)
    w = b.input_var("w", Shape(n, 1))
    x = b.input_var("x", Shape(n, 1))
    bound = b.bound_var(n)
    i = b.fresh_index()
    prev = _elem(w, BinOp("-", Ident(i), num(1)))
    leaves = [lambda: _elem(x, Ident(i)), b.const_leaf()]
    rhs = BinOp(rng.choice(["+", ".*"]), prev, b.element_expr(leaves, 1))
    b.body.append(_loop(i, Ident(bound),
                        [Assign(_elem(w, Ident(i)), rhs)], start=2))


def t_logical_mask(b: _Builder) -> None:
    """Masked arithmetic ``y(i) = f(x(i)).*(x(i) <op> c) [+ g.*(~mask)]``.

    Comparisons are pointwise operators (Table 1 row for relational
    ops), so these loops *do* vectorize — into MATLAB's idiomatic
    logical-mask style — and the oracle checks the mask semantics
    (logical temporaries multiplied back into doubles) across all
    routes.  The complementary branch uses the negated comparison, so
    both mask polarities are exercised in one statement.
    """
    rng = b.rng
    n = rng.randint(3, 6)
    shape = Shape(n, 1) if rng.random() < 0.5 else Shape(1, n)
    x = b.input_var("x", shape)
    y = b.output_var("y", shape)
    c = b.scalar_var("c", b.value())
    bound = b.bound_var(n)
    i = b.fresh_index()
    leaves = [lambda: _elem(x, Ident(i)), b.const_leaf()]
    op = rng.choice([">", "<", ">=", "<="])

    def mask(operator: str) -> Expr:
        guard: Expr = BinOp(operator, _elem(x, Ident(i)), Ident(c))
        if rng.random() < 0.3:
            w = b.input_var("w", shape)
            other = BinOp(rng.choice([">", "<"]), _elem(w, Ident(i)),
                          Num(b.value()))
            guard = BinOp(rng.choice(["&", "|"]), guard, other)
        return guard

    rhs: Expr = BinOp(".*", b.element_expr(leaves, 1), mask(op))
    if rng.random() < 0.5:
        complement = {">": "<=", "<": ">=", ">=": "<", "<=": ">"}[op]
        rhs = BinOp("+", rhs,
                    BinOp(".*", b.element_expr(leaves, 1),
                          BinOp(complement, _elem(x, Ident(i)), Ident(c))))
    b.body.append(_loop(i, Ident(bound), [Assign(_elem(y, Ident(i)), rhs)]))


def t_pattern_call(b: _Builder) -> None:
    """An elementwise builtin wrapped around a Table 2 pattern access:
    ``a(i) = abs(X(i,:)*Y(:,i))`` or ``d(i) = sin(A(i,i)) + b(i)``.

    Exercises the pattern database *through* a function call — the call
    itself is pointwise (Table 1), so the loop still vectorizes, but
    only if codegen threads the dimension abstraction through the call
    boundary correctly.
    """
    rng = b.rng
    n = rng.randint(2, 5)
    func = rng.choice(_UNARY_FUNCS)
    i = b.fresh_index()
    if rng.random() < 0.5:
        k = rng.randint(2, 5)
        X = b.input_var("X", Shape(n, k))
        Y = b.input_var("Y", Shape(k, n))
        out = b.output_var("a", Shape(1, n))
        inner: Expr = BinOp("*", _elem(X, Ident(i), Colon()),
                            _elem(Y, Colon(), Ident(i)))
    else:
        A = b.input_var("A", Shape(n, n))
        out = b.output_var("d", Shape(1, n))
        inner = _elem(A, Ident(i), Ident(i))
    rhs: Expr = call(func, inner)
    if rng.random() < 0.5:
        w = b.input_var("b", Shape(1, n))
        rhs = BinOp(rng.choice(["+", ".*"]), rhs, _elem(w, Ident(i)))
    bound = b.bound_var(n)
    b.body.append(_loop(i, Ident(bound), [Assign(_elem(out, Ident(i)),
                                                 rhs)]))


def t_repmat_broadcast(b: _Builder) -> None:
    """A ``repmat``-tiled input feeding a pointwise 2-nest: the prelude
    builds ``B = repmat(v, m, 1)`` (or the column variant) with literal
    replication counts, and the loop reads ``B(i,j)`` alongside another
    matrix — the explicit form of the broadcast the vectorizer's
    pattern 2 *emits*, here appearing on the *input* side."""
    rng = b.rng
    m, n = rng.randint(2, 4), rng.randint(2, 4)
    A = b.input_var("A", Shape(m, n))
    if rng.random() < 0.5:
        v = b.input_var("v", Shape(1, n))
        tiled = call("repmat", Ident(v), num(m), num(1))
    else:
        v = b.input_var("u", Shape(m, 1))
        tiled = call("repmat", Ident(v), num(1), num(n))
    B = b.fresh("B")
    b.shapes[B] = Shape(m, n)
    b.prelude.append(Assign(Ident(B), tiled))
    b.outputs.add(B)
    C = b.output_var("C", Shape(m, n))
    mb, nb = b.bound_var(m), b.bound_var(n)
    i, j = b.fresh_index(), b.fresh_index()
    leaves = [lambda: _elem(B, Ident(i), Ident(j)),
              lambda: _elem(A, Ident(i), Ident(j)), b.const_leaf()]
    stmt = Assign(_elem(C, Ident(i), Ident(j)), b.element_expr(leaves, 2))
    b.body.append(_loop(i, Ident(mb), [_loop(j, Ident(nb), [stmt])]))


def t_while_accumulate(b: _Builder) -> None:
    """Counter-driven ``while`` accumulation — inherently sequential
    control flow the vectorizer must leave intact (§4 screens loops,
    and ``while`` never enters codegen), checked end-to-end anyway."""
    rng = b.rng
    n = rng.randint(3, 6)
    x = b.input_var("x", Shape(n, 1))
    s = b.scalar_var("s", 0.0)
    bound = b.bound_var(n)
    k = b.scalar_var("k", 1.0)
    leaves = [lambda: _elem(x, Ident(k)), b.const_leaf()]
    body: list[Stmt] = [
        Assign(Ident(s),
               BinOp(rng.choice(["+", "-"]), Ident(s),
                     b.element_expr(leaves, 1))),
        Assign(Ident(k), BinOp("+", Ident(k), num(1))),
    ]
    b.body.append(While(BinOp("<=", Ident(k), Ident(bound)), body))


def t_while_inner_for(b: _Builder) -> None:
    """A vectorizable ``for`` nested in a sequential ``while`` — the
    driver must recurse through ``While`` bodies and vectorize the
    inner loop while leaving the outer control flow alone."""
    rng = b.rng
    n = rng.randint(3, 5)
    x = b.input_var("x", Shape(n, 1))
    z = b.output_var("z", Shape(n, 1))
    bound = b.bound_var(n)
    k = b.scalar_var("k", 1.0)
    passes = b.scalar_var("p", float(rng.randint(1, 3)))
    i = b.fresh_index()
    leaves = [lambda: _elem(x, Ident(i)), lambda: Ident(k), b.const_leaf()]
    update = Assign(_elem(z, Ident(i)),
                    BinOp("+", _elem(z, Ident(i)),
                          b.element_expr(leaves, 1)))
    body: list[Stmt] = [
        _loop(i, Ident(bound), [update]),
        Assign(Ident(k), BinOp("+", Ident(k), num(1))),
    ]
    b.body.append(While(BinOp("<=", Ident(k), Ident(passes)), body))


#: Template pool with weights (common shapes drawn more often).
TEMPLATES: list = [
    t_pointwise_vector, t_pointwise_vector,
    t_pointwise_matrix, t_pointwise_matrix,
    t_dot_product,
    t_matvec,
    t_diagonal,
    t_outer_product,
    t_reduction,
    t_accumulating_nest,
    t_if_guard,
    t_recurrence,
    t_logical_mask,
    t_pattern_call,
    t_repmat_broadcast,
    t_while_accumulate,
    t_while_inner_for,
]


class ProgramGenerator:
    """Deterministic program factory: ``generate(i)`` depends only on
    ``(seed, i)``, so any program from a campaign can be regenerated.

    A ``annotation_free_ratio`` fraction of programs is emitted with no
    ``%!`` line at all: the prelude's literal matrices and
    ``zeros(r, c)`` calls carry exactly the information the
    flow-sensitive inference engine needs, so these programs exercise
    the inference-only path end to end while keeping the campaign's
    lint-clean and audit-clean invariants.
    """

    def __init__(self, seed: int = 0, max_templates: int = 3,
                 annotation_free_ratio: float = 0.25):
        self.seed = seed
        self.max_templates = max_templates
        self.annotation_free_ratio = annotation_free_ratio

    def generate(self, index: int) -> GeneratedProgram:
        rng = random.Random(self.seed * 1_000_003 + index)
        # Drawn first so the template stream after it stays aligned
        # between the annotated and annotation-free variants.
        annotate = rng.random() >= self.annotation_free_ratio
        builder = _Builder(rng, annotate=annotate)
        for _ in range(rng.randint(1, self.max_templates)):
            rng.choice(TEMPLATES)(builder)
        return builder.finish(index, self.seed)

    def programs(self, count: int):
        """Yield ``count`` programs starting at index 0."""
        for index in range(count):
            yield self.generate(index)
