"""Differential-equivalence fuzzing for the vectorizer.

The subsystem has three parts, mirroring classic compiler fuzzers:

* :mod:`repro.fuzz.generator` — a seeded, shape-aware program generator
  that emits random-but-well-formed loop-based MATLAB over the grammar
  the vectorizer supports (pointwise ops, dot products, broadcasts,
  diagonal access, additive reductions, nested loops, ``if`` guards);
* :mod:`repro.fuzz.oracle` — runs each program through the interpreter,
  through ``vectorize_source`` + the interpreter, and through the
  NumPy backend, and compares final workspaces;
* :mod:`repro.fuzz.shrink` — a delta-debugging shrinker that minimizes
  any mismatching program to a small reproducer.

:mod:`repro.fuzz.campaign` drives the three together; the CLI exposes
it as ``mvec fuzz --n 500 --seed S [--shrink]``.
"""

from .campaign import CampaignResult, run_campaign
from .generator import GeneratedProgram, ProgramGenerator
from .oracle import (
    ATOL,
    RTOL,
    Divergence,
    OracleReport,
    comparable_names,
    diff_workspaces,
    loop_index_vars,
    run_oracle,
)
from .shrink import shrink_source, write_reproducer

__all__ = [
    "ATOL",
    "RTOL",
    "CampaignResult",
    "Divergence",
    "GeneratedProgram",
    "OracleReport",
    "ProgramGenerator",
    "comparable_names",
    "diff_workspaces",
    "loop_index_vars",
    "run_campaign",
    "run_oracle",
    "shrink_source",
    "write_reproducer",
]
