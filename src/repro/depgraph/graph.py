"""The data dependence graph (DDG) over a loop nest's statements.

Nodes are assignment statements; edges carry the dependence kind (flow,
anti, output) together with the set of direction vectors over the pair's
*common* loop prefix.  The graph offers exactly the operations Allen &
Kennedy's ``codegen`` needs: strongly connected components in
topological order (Tarjan), and "remove dependences carried by level k".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..mlang.ast_nodes import Assign
from .dependence import DirectionVector, dependence_between
from .references import StmtRefs, collect_refs

FLOW, ANTI, OUTPUT = "flow", "anti", "output"


@dataclass
class StmtNode:
    """One assignment statement inside the analyzed nest.

    ``loop_vars`` is the chain of index variables of the loops enclosing
    the statement, outermost first (the statement's private nest depth is
    ``len(loop_vars)``).  ``loop_counts`` optionally holds the matching
    trip-count expressions (loops are normalized to ``1:count``), used
    for range-based independence proofs.
    """

    index: int
    stmt: Assign
    loop_vars: tuple[str, ...]
    refs: StmtRefs = field(repr=False, default=None)
    loop_counts: tuple = ()

    @property
    def depth(self) -> int:
        return len(self.loop_vars)

    def bounds(self) -> dict:
        """Trip-count affine forms keyed by loop variable."""
        from .references import affine_form

        out = {}
        for k, var in enumerate(self.loop_vars):
            if k < len(self.loop_counts):
                out[var] = affine_form(self.loop_counts[k], self.loop_vars)
        return out


@dataclass(frozen=True)
class Edge:
    """A dependence from ``src`` to ``dst`` (statement indices).

    ``src_ref``/``dst_ref`` record the concrete references whose overlap
    produced the edge (used to recognize reduction self-dependences).
    """

    src: int
    dst: int
    kind: str
    var: str
    vectors: frozenset[DirectionVector]
    src_ref: object = field(default=None, compare=False)
    dst_ref: object = field(default=None, compare=False)

    def carried_levels(self) -> frozenset[int]:
        """0-based loop levels that carry this dependence."""
        levels = set()
        for vector in self.vectors:
            lead = vector.leading_level()
            if lead is not None:
                levels.add(lead)
        return frozenset(levels)

    @property
    def has_loop_independent(self) -> bool:
        return any(v.is_loop_independent for v in self.vectors)

    def filtered(self, min_level: int) -> Optional["Edge"]:
        """Drop direction vectors carried at levels below ``min_level``
        (the A&K "remove dependences carried by this loop" step).
        Returns None when no vectors remain."""
        kept = frozenset(
            v for v in self.vectors
            if (lead := v.leading_level()) is None or lead >= min_level
        )
        if not kept:
            return None
        return Edge(self.src, self.dst, self.kind, self.var, kept,
                    self.src_ref, self.dst_ref)


class DependenceGraph:
    """DDG over the statements of one loop nest."""

    def __init__(self, nodes: Sequence[StmtNode], edges: Iterable[Edge]):
        self.nodes = list(nodes)
        self.edges = list(edges)

    # -- construction -------------------------------------------------

    @staticmethod
    def build(nodes: Sequence[StmtNode],
              known_functions: frozenset[str] = frozenset()) -> "DependenceGraph":
        """Run pairwise dependence tests over all statements."""
        for node in nodes:
            if node.refs is None:
                node.refs = collect_refs(node.stmt, node.loop_vars,
                                         known_functions)
        edges: list[Edge] = []
        for a in nodes:
            for b in nodes:
                if a.index > b.index:
                    continue
                edges.extend(_edges_between(a, b))
        return DependenceGraph(nodes, edges)

    # -- queries --------------------------------------------------------

    def successors(self, index: int) -> set[int]:
        return {e.dst for e in self.edges if e.src == index and e.dst != index}

    def subgraph(self, indices: Iterable[int]) -> "DependenceGraph":
        keep = set(indices)
        nodes = [n for n in self.nodes if n.index in keep]
        edges = [e for e in self.edges if e.src in keep and e.dst in keep]
        return DependenceGraph(nodes, edges)

    def remove_carried_by(self, level: int) -> "DependenceGraph":
        """A copy without dependences carried at levels ``< level + 1``
        — i.e. keep only vectors carried strictly deeper than ``level``
        (or loop-independent ones)."""
        edges = []
        for edge in self.edges:
            filtered = edge.filtered(level + 1)
            if filtered is not None:
                edges.append(filtered)
        return DependenceGraph(list(self.nodes), edges)

    def self_edges(self, index: int) -> list[Edge]:
        return [e for e in self.edges if e.src == index and e.dst == index]

    # -- strongly connected components ------------------------------------

    def sccs_topological(self) -> list[list[StmtNode]]:
        """SCCs via Tarjan's algorithm, returned in topological order of
        the condensation (dependence sources first).

        Tarjan emits SCCs in reverse topological order; we reverse the
        result.  Ties (unrelated SCCs) preserve statement order because
        nodes are visited in index order.
        """
        index_of: dict[int, int] = {}
        lowlink: dict[int, int] = {}
        on_stack: set[int] = set()
        stack: list[int] = []
        counter = [0]
        components: list[list[int]] = []
        adjacency = {n.index: sorted(self.successors(n.index)) for n in self.nodes}

        def strongconnect(v: int) -> None:
            # Iterative Tarjan to survive deep statement chains.
            work = [(v, iter(adjacency[v]))]
            index_of[v] = lowlink[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index_of:
                        index_of[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(adjacency[succ])))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        component.append(w)
                        if w == node:
                            break
                    components.append(sorted(component))

        for node in self.nodes:
            if node.index not in index_of:
                strongconnect(node.index)

        components.reverse()
        by_index = {n.index: n for n in self.nodes}
        ordered = self._stable_topological(components)
        return [[by_index[i] for i in comp] for comp in ordered]

    def _stable_topological(self, components: list[list[int]]) -> list[list[int]]:
        """Re-sort the condensation topologically, breaking ties by the
        smallest statement index so output order tracks source order."""
        comp_of: dict[int, int] = {}
        for c, comp in enumerate(components):
            for i in comp:
                comp_of[i] = c
        succs: dict[int, set[int]] = {c: set() for c in range(len(components))}
        preds: dict[int, int] = {c: 0 for c in range(len(components))}
        for edge in self.edges:
            a, b = comp_of.get(edge.src), comp_of.get(edge.dst)
            if a is None or b is None or a == b:
                continue
            if b not in succs[a]:
                succs[a].add(b)
                preds[b] += 1
        import heapq

        ready = [(min(components[c]), c) for c in range(len(components))
                 if preds[c] == 0]
        heapq.heapify(ready)
        order: list[list[int]] = []
        while ready:
            _, c = heapq.heappop(ready)
            order.append(components[c])
            for b in succs[c]:
                preds[b] -= 1
                if preds[b] == 0:
                    heapq.heappush(ready, (min(components[b]), b))
        return order


def _edges_between(a: StmtNode, b: StmtNode) -> list[Edge]:
    """All dependence edges between two statements (``a.index <= b.index``)."""
    edges: list[Edge] = []
    common = 0
    for va, vb in zip(a.loop_vars, b.loop_vars):
        if va != vb:
            break
        common += 1
    loop_vars = list(a.loop_vars[:common])
    bounds = {**b.bounds(), **a.bounds()}

    pairs = (
        (FLOW, a.refs.writes, b.refs.reads),
        (ANTI, a.refs.reads, b.refs.writes),
        (OUTPUT, a.refs.writes, b.refs.writes),
    )
    for kind, sources, sinks in pairs:
        for src_ref in sources:
            for snk_ref in sinks:
                if src_ref.var != snk_ref.var:
                    continue
                forward = dependence_between(src_ref, snk_ref, loop_vars,
                                          bounds)
                vectors = set(forward.vectors)
                if a.index == b.index:
                    vectors = {v for v in vectors if not v.is_loop_independent}
                if vectors:
                    edges.append(Edge(a.index, b.index, kind, src_ref.var,
                                      frozenset(vectors), src_ref, snk_ref))
                if a.index != b.index:
                    backward = dependence_between(snk_ref, src_ref, loop_vars,
                                               bounds)
                    back_vectors = {
                        v for v in backward.vectors if not v.is_loop_independent
                    }
                    if back_vectors:
                        back_kind = {FLOW: ANTI, ANTI: FLOW,
                                     OUTPUT: OUTPUT}[kind]
                        edges.append(Edge(b.index, a.index, back_kind,
                                          src_ref.var, frozenset(back_vectors),
                                          snk_ref, src_ref))
    return edges
