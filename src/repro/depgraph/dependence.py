"""Pairwise dependence testing producing direction-vector sets.

Given two references to the same variable inside a common loop nest, we
compute a per-level set of possible *directions* (``<``, ``=``, ``>``)
between the source and sink iterations, using the classic hierarchy:

* **ZIV** — neither subscript mentions a loop variable: structurally
  unequal constants prove independence, equal forms add no constraint;
* **strong SIV** — a single shared variable with equal coefficients:
  the dependence distance is exact, giving a single direction at that
  level (non-integer distances prove independence);
* **weak/ MIV + GCD** — everything else: a GCD divisibility test may
  prove independence, otherwise all directions are assumed.

Scalar-style references (no subscripts) constrain nothing: all
directions at every level.

A *direction vector* assigns one direction per common loop level; the
set of vectors is the Cartesian product of the per-level sets minus
vectors ruled out by the subscript tests.  Dependences whose leading
non-``=`` direction is ``>`` are re-oriented (the dependence actually
flows from the textually later statement to the earlier one).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .references import AffineForm, Ref

LT, EQ, GT = "<", "=", ">"
ALL_DIRECTIONS = frozenset((LT, EQ, GT))


@dataclass(frozen=True)
class DirectionVector:
    """One direction per loop level, outermost first."""

    directions: tuple[str, ...]

    @property
    def is_loop_independent(self) -> bool:
        return all(d == EQ for d in self.directions)

    def leading_level(self) -> Optional[int]:
        """0-based outermost level whose direction is not ``=``, or None."""
        for level, direction in enumerate(self.directions):
            if direction != EQ:
                return level
        return None

    @property
    def is_plausible(self) -> bool:
        """True when the leading non-``=`` direction is ``<`` (a dependence
        from an earlier to a later iteration) or the vector is all ``=``."""
        lead = self.leading_level()
        return lead is None or self.directions[lead] == LT

    def reversed(self) -> "DirectionVector":
        flip = {LT: GT, GT: LT, EQ: EQ}
        return DirectionVector(tuple(flip[d] for d in self.directions))

    def __repr__(self) -> str:
        return "(" + ",".join(self.directions) + ")"


def _subscript_directions(source: AffineForm, sink: AffineForm,
                          loop_vars: Sequence[str],
                          bounds: Optional[dict] = None,
                          ) -> Optional[list[frozenset[str]]]:
    """Per-level direction sets allowed by one subscript pair.

    Returns None when the pair proves *independence* (no dependence at
    all through this subscript position).  ``bounds`` optionally maps a
    loop variable to the :class:`AffineForm` of its trip count (loops
    are normalized to run 1..count), enabling range-based independence
    proofs such as ``X(i,k)`` vs ``X(j,k)`` under ``j = 1:i-1``.
    """
    unconstrained = [ALL_DIRECTIONS] * len(loop_vars)
    if not source.exact or not sink.exact:
        return unconstrained

    involved = source.loop_vars() | sink.loop_vars()
    common = [v for v in loop_vars if v in involved]

    if len(common) == 1 and bounds:
        var = common[0]
        if _range_independent(source, sink, var, bounds.get(var)):
            return None

    if not common:
        # ZIV: same symbolic residue and equal constants ⇒ always equal
        # (no constraint); different constants ⇒ independent; different
        # residues ⇒ unknown, assume dependence in every direction.
        if source.same_symbolic(sink):
            if source.const == sink.const:
                return unconstrained
            return None
        return unconstrained

    if len(common) == 1:
        var = common[0]
        a_src = source.coeff(var)
        a_snk = sink.coeff(var)
        if not source.same_symbolic(sink):
            return unconstrained
        delta = source.const - sink.const
        if a_src == a_snk and a_src != 0.0:
            # Strong SIV: a·i_src + c1 = a·i_snk + c2  ⇒  i_snk − i_src = Δ/a.
            distance = delta / a_src
            if distance != int(distance):
                return None
            distance = int(distance)
            level = loop_vars.index(var)
            out = list(unconstrained)
            if distance > 0:
                out[level] = frozenset((LT,))
            elif distance < 0:
                out[level] = frozenset((GT,))
            else:
                out[level] = frozenset((EQ,))
            return out
        if a_src == 0.0 or a_snk == 0.0:
            # Weak-zero SIV: solvable for at most one iteration; integer
            # solvability check only (direction stays unconstrained).
            coeff = a_src or a_snk
            if coeff and (delta / coeff) != int(delta / coeff):
                return None
            return unconstrained
        # Weak SIV: fall through to the GCD test.
        return _gcd_test([a_src, -a_snk], delta, unconstrained)

    # MIV: GCD test over all involved coefficients.
    coeffs = [source.coeff(v) for v in common] + [-sink.coeff(v) for v in common]
    if not source.same_symbolic(sink):
        return unconstrained
    return _gcd_test(coeffs, source.const - sink.const, unconstrained)


def _range_independent(source: AffineForm, sink: AffineForm, var: str,
                       count: Optional[AffineForm]) -> bool:
    """Range test: one subscript is loop-invariant, the other is
    ``c·var + rest`` with ``var`` normalized to ``1..count``; prove the
    required iteration ``var* = (invariant − rest)/c`` falls outside the
    range.  Symbolic residues cancel through affine subtraction, which
    is what proves the triangular case ``i`` vs ``j = 1:(i-1)``.
    """
    a_src, a_snk = source.coeff(var), sink.coeff(var)
    if (a_src == 0.0) == (a_snk == 0.0):
        return False
    if a_src == 0.0:
        invariant, varying, coeff = source, sink, a_snk
    else:
        invariant, varying, coeff = sink, source, a_src
    numerator = invariant.minus(varying.without_var(var))
    if numerator.loop_vars():
        return False
    solution = numerator.scaled(1.0 / coeff)
    if solution.is_pure_const:
        if solution.const != int(solution.const):
            return True
        if solution.const < 1.0:
            return True
        if count is not None and count.is_pure_const \
                and solution.const > count.const:
            return True
        return False
    # Symbolic solution: independent when  solution − count ≥ 1  or
    # solution ≤ 0 can be decided after residue cancellation.
    if count is not None and count.exact:
        margin = solution.minus(count)
        if margin.is_pure_const and margin.const >= 1.0:
            return True
    return False


def _gcd_test(coeffs: Iterable[float], delta: float,
              unconstrained: list[frozenset[str]]) -> Optional[list[frozenset[str]]]:
    values = [c for c in coeffs if c != 0.0]
    if not values:
        return unconstrained if delta == 0.0 else None
    if any(v != int(v) for v in values) or delta != int(delta):
        return unconstrained
    gcd = 0
    for value in values:
        gcd = math.gcd(gcd, abs(int(value)))
    if gcd and int(delta) % gcd != 0:
        return None  # Independent: the Diophantine equation has no solution.
    return unconstrained


@dataclass(frozen=True)
class DependenceResult:
    """The outcome of testing one (source-ref, sink-ref) pair."""

    vectors: frozenset[DirectionVector]

    @property
    def exists(self) -> bool:
        return bool(self.vectors)


def dependence_between(source: Ref, sink: Ref, loop_vars: Sequence[str],
                    bounds: Optional[dict] = None) -> DependenceResult:
    """All plausible direction vectors for a dependence ``source → sink``.

    ``source`` is assumed to execute no later than ``sink`` within one
    iteration (the caller orients statement order); implausible vectors
    (leading ``>``) are excluded here and re-tested by the caller with
    the roles swapped.  ``bounds`` maps loop variables to trip-count
    affine forms for range-based independence proofs.
    """
    if not loop_vars:
        same = _same_location_possible(source, sink)
        return DependenceResult(frozenset([DirectionVector(())]) if same
                                else frozenset())
    per_level = [ALL_DIRECTIONS] * len(loop_vars)
    if source.subs and sink.subs and len(source.subs) == len(sink.subs):
        for sub_src, sub_snk in zip(source.subs, sink.subs):
            constraint = _subscript_directions(sub_src, sub_snk, loop_vars,
                                               bounds)
            if constraint is None:
                return DependenceResult(frozenset())
            per_level = [a & b for a, b in zip(per_level, constraint)]
            if any(not s for s in per_level):
                return DependenceResult(frozenset())
    # Scalar-style or rank-mismatched accesses keep every direction.
    vectors = {
        DirectionVector(combo)
        for combo in itertools.product(*per_level)
    }
    return DependenceResult(frozenset(v for v in vectors if v.is_plausible))


def _same_location_possible(source: Ref, sink: Ref) -> bool:
    if not source.subs or not sink.subs or len(source.subs) != len(sink.subs):
        return True
    for a, b in zip(source.subs, sink.subs):
        if a.exact and b.exact and not a.loop_vars() and not b.loop_vars():
            if a.same_symbolic(b) and a.const != b.const:
                return False
    return True
