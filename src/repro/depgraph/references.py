"""Array-reference collection and affine-subscript analysis.

Dependence testing needs, for every statement, the set of memory
references it makes: the written variable (with subscripts) and every
read.  Subscripts are summarized as affine forms over the loop index
variables — ``2*i - 1`` becomes coefficient 2 on ``i`` plus constant
−1 — with a *symbolic* residue for terms the analysis cannot fold (two
residues compare structurally via their printed source).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..mlang.ast_nodes import (
    Apply,
    Assign,
    BinOp,
    Colon,
    End,
    Expr,
    Ident,
    Num,
    Range,
    Stmt,
    Transpose,
    UnOp,
)
from ..mlang.printer import expr_to_source


@dataclass(frozen=True)
class AffineForm:
    """``Σ coeff_v · v  +  const  +  symbolic`` over loop variables.

    ``symbolic`` maps a canonical source string to its coefficient; the
    form is ``exact`` when the expression decomposed fully into these
    parts (no products of loop variables, no opaque calls *containing*
    loop variables).
    """

    coeffs: tuple[tuple[str, float], ...] = ()
    const: float = 0.0
    symbolic: tuple[tuple[str, float], ...] = ()
    exact: bool = True

    def coeff(self, var: str) -> float:
        for name, value in self.coeffs:
            if name == var:
                return value
        return 0.0

    def loop_vars(self) -> frozenset[str]:
        return frozenset(name for name, value in self.coeffs if value != 0.0)

    def same_symbolic(self, other: "AffineForm") -> bool:
        return dict(self.symbolic) == dict(other.symbolic)

    def minus(self, other: "AffineForm") -> "AffineForm":
        """``self − other`` (both must be exact)."""
        return AffineForm(
            coeffs=tuple(sorted(_combine(dict(self.coeffs),
                                         dict(other.coeffs), -1.0).items())),
            const=self.const - other.const,
            symbolic=tuple(sorted(_combine(dict(self.symbolic),
                                           dict(other.symbolic),
                                           -1.0).items())),
            exact=self.exact and other.exact,
        )

    def scaled(self, factor: float) -> "AffineForm":
        return AffineForm(
            coeffs=tuple((k, v * factor) for k, v in self.coeffs),
            const=self.const * factor,
            symbolic=tuple((k, v * factor) for k, v in self.symbolic),
            exact=self.exact,
        )

    def without_var(self, var: str) -> "AffineForm":
        return AffineForm(
            coeffs=tuple((k, v) for k, v in self.coeffs if k != var),
            const=self.const,
            symbolic=self.symbolic,
            exact=self.exact,
        )

    @property
    def is_pure_const(self) -> bool:
        """True when the form is a known number (no vars, no residues)."""
        return self.exact and not any(v for _, v in self.coeffs) and not any(
            v for _, v in self.symbolic)


_INEXACT = AffineForm(exact=False)


def _combine(left: dict, right: dict, sign: float) -> dict:
    out = dict(left)
    for key, value in right.items():
        out[key] = out.get(key, 0.0) + sign * value
        if out[key] == 0.0:
            del out[key]
    return out


def affine_form(expr: Expr, loop_vars: Sequence[str]) -> AffineForm:
    """Decompose ``expr`` into an :class:`AffineForm` over ``loop_vars``."""
    loop_set = frozenset(loop_vars)

    def walk(node: Expr) -> Optional[tuple[dict, float, dict]]:
        """Return (coeffs, const, symbolic) or None for inexact."""
        if isinstance(node, Num):
            return {}, node.value, {}
        if isinstance(node, Ident):
            if node.name in loop_set:
                return {node.name: 1.0}, 0.0, {}
            return {}, 0.0, {node.name: 1.0}
        if isinstance(node, UnOp) and node.op in "+-":
            inner = walk(node.operand)
            if inner is None:
                return None
            coeffs, const, symbolic = inner
            if node.op == "-":
                return ({k: -v for k, v in coeffs.items()}, -const,
                        {k: -v for k, v in symbolic.items()})
            return inner
        if isinstance(node, BinOp) and node.op in ("+", "-"):
            left = walk(node.left)
            right = walk(node.right)
            if left is None or right is None:
                return None
            sign = 1.0 if node.op == "+" else -1.0
            return (_combine(left[0], right[0], sign),
                    left[1] + sign * right[1],
                    _combine(left[2], right[2], sign))
        if isinstance(node, BinOp) and node.op in ("*", ".*"):
            left = walk(node.left)
            right = walk(node.right)
            if left is None or right is None:
                return None
            return _scale_product(left, right)
        if isinstance(node, BinOp) and node.op in ("/", "./"):
            left = walk(node.left)
            right = walk(node.right)
            if left is None or right is None:
                return None
            rc, rconst, rsym = right
            if not rc and not rsym and rconst not in (0.0,):
                lc, lconst, lsym = left
                inv = 1.0 / rconst
                return ({k: v * inv for k, v in lc.items()}, lconst * inv,
                        {k: v * inv for k, v in lsym.items()})
            return None if _mentions(node, loop_set) else _opaque(node)
        # Opaque construct: exact only when it avoids the loop variables.
        if _mentions(node, loop_set):
            return None
        return _opaque(node)

    def _opaque(node: Expr) -> tuple[dict, float, dict]:
        return {}, 0.0, {expr_to_source(node): 1.0}

    def _scale_product(left, right) -> Optional[tuple[dict, float, dict]]:
        lc, lconst, lsym = left
        rc, rconst, rsym = right
        left_pure = not lc and not lsym
        right_pure = not rc and not rsym
        if left_pure:
            scale, (coeffs, const, symbolic) = lconst, right
        elif right_pure:
            scale, (coeffs, const, symbolic) = rconst, left
        else:
            return None
        return ({k: v * scale for k, v in coeffs.items()}, const * scale,
                {k: v * scale for k, v in symbolic.items()})

    result = walk(expr)
    if result is None:
        return _INEXACT
    coeffs, const, symbolic = result
    return AffineForm(
        coeffs=tuple(sorted(coeffs.items())),
        const=const,
        symbolic=tuple(sorted(symbolic.items())),
        exact=True,
    )


def _mentions(node: Expr, names: frozenset[str]) -> bool:
    return any(isinstance(n, Ident) and n.name in names for n in node.walk())


# ---------------------------------------------------------------------------
# Reference records
# ---------------------------------------------------------------------------

#: Sentinel affine form for a bare ':' subscript — touches every index of
#: its dimension, so it constrains nothing.
COLON_SUB = AffineForm(exact=False)


@dataclass(frozen=True)
class Ref:
    """One read or write of a variable.

    ``subs`` holds one affine form per subscript; an empty tuple means a
    whole-variable (scalar-style) access.  ``is_write`` distinguishes the
    statement's definition from its uses.
    """

    var: str
    subs: tuple[AffineForm, ...]
    is_write: bool

    @property
    def is_scalar_style(self) -> bool:
        return not self.subs


@dataclass
class StmtRefs:
    """All references made by one assignment statement."""

    stmt: Stmt
    writes: list[Ref] = field(default_factory=list)
    reads: list[Ref] = field(default_factory=list)

    def refs_to(self, var: str, *, writes: bool) -> list[Ref]:
        pool = self.writes if writes else self.reads
        return [ref for ref in pool if ref.var == var]


def collect_refs(stmt: Assign, loop_vars: Sequence[str],
                 known_functions: frozenset[str] = frozenset()) -> StmtRefs:
    """Collect the write and all reads of an assignment statement.

    ``known_functions`` names identifiers that are function calls rather
    than array accesses (their "subscripts" are argument reads, but the
    callee itself is not a memory reference).
    """
    refs = StmtRefs(stmt)

    def sub_form(arg: Expr) -> AffineForm:
        if isinstance(arg, (Colon, End)):
            return COLON_SUB
        return affine_form(arg, loop_vars)

    def visit_read(node: Expr) -> None:
        if isinstance(node, Ident):
            if node.name not in known_functions:
                refs.reads.append(Ref(node.name, (), is_write=False))
            return
        if isinstance(node, Apply) and isinstance(node.func, Ident):
            name = node.func.name
            if name in known_functions:
                for arg in node.args:
                    visit_read(arg)
                return
            subs = tuple(sub_form(arg) for arg in node.args)
            refs.reads.append(Ref(name, subs, is_write=False))
            # Subscript expressions contain reads of their own
            # (e.g. v(i) in A(v(i)), or the loop variable i itself).
            for arg in node.args:
                visit_read(arg)
            return
        for child in node.children():
            visit_read(child)

    # The definition.
    lhs = stmt.lhs
    if isinstance(lhs, Ident):
        refs.writes.append(Ref(lhs.name, (), is_write=True))
    elif isinstance(lhs, Apply) and isinstance(lhs.func, Ident):
        subs = tuple(sub_form(arg) for arg in lhs.args)
        refs.writes.append(Ref(lhs.func.name, subs, is_write=True))
        for arg in lhs.args:
            visit_read(arg)
    else:  # pragma: no cover - parser prevents other targets
        raise ValueError(f"unsupported assignment target: {lhs!r}")

    visit_read(stmt.rhs)
    return refs
