"""Dependence analysis: references, direction vectors, the DDG."""

from .dependence import DirectionVector, dependence_between  # noqa: F401
from .graph import DependenceGraph, Edge, StmtNode  # noqa: F401
from .references import AffineForm, Ref, affine_form, collect_refs  # noqa: F401
