"""Result-shape signatures for MATLAB builtins.

Used by the dimension checker (for loop-invariant calls inside candidate
statements) and by the shape-inference pass (for straight-line preamble
code such as ``h = hist(im(:), 0:255)`` in the paper's Figure 3).

The rules are *abstract*: they map operand :class:`~repro.dims.abstract.Dim`
values (plus literal argument values where shape depends on them, e.g.
``zeros(1, n)`` vs ``zeros(n)``) to a result ``Dim``, returning None when
the shape cannot be determined.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..mlang.ast_nodes import Expr, literal_value
from .abstract import ONE, STAR, Dim, Sym

#: Named constants usable as scalar identifiers.
CONSTANT_NAMES = frozenset({"pi", "eps", "Inf", "inf", "NaN", "nan", "e"})


def _size_sym(arg: Optional[Expr]) -> Sym:
    """Abstract size of a literal dimension argument: 1 → ONE, else STAR."""
    if arg is not None:
        value = literal_value(arg)
        if value == 1.0:
            return ONE
    return STAR


def _collapse_all(dim: Dim) -> Dim:
    """Shape after summing a full reduction: vectors collapse to scalars,
    matrices collapse their first dimension."""
    reduced = dim.reduce()
    if reduced.is_scalar or reduced.is_vector:
        return Dim.scalar()
    return Dim((ONE,) + reduced.syms[1:])


def _reduce_along(dim: Dim, axis_arg: Optional[Expr]) -> Optional[Dim]:
    if axis_arg is None:
        return _collapse_all(dim)
    axis = literal_value(axis_arg)
    if axis is None:
        return None
    axis = int(axis)
    padded = dim.pad(max(axis, 2))
    if not 1 <= axis <= len(padded):
        return None
    return padded.replace_axis(axis - 1, ONE)


def builtin_result_dim(name: str, arg_dims: Sequence[Dim],
                       args: Sequence[Expr]) -> Optional[Dim]:
    """Abstract result shape of ``name(args…)``, or None when unknown."""
    n = len(arg_dims)

    if name in ("size",):
        return Dim.scalar() if n == 2 else Dim.row()
    if name in ("numel", "length", "ndims", "isempty", "norm", "dot",
                "nnz", "trace", "det", "rank"):
        return Dim.scalar()
    if name in ("zeros", "ones", "rand", "randn", "eye", "nan", "inf"):
        if n == 0:
            return Dim.scalar()
        if n == 1:
            sym = _size_sym(args[0])
            return Dim((sym, sym))
        return Dim(tuple(_size_sym(a) for a in args[:2]))
    if name == "linspace":
        return Dim.row()
    if name == "colon":
        return Dim.row()
    if name in ("sum", "prod", "mean", "any", "all"):
        if n == 0:
            return None
        return _reduce_along(arg_dims[0], args[1] if n >= 2 else None)
    if name in ("min", "max"):
        if n == 1:
            return _collapse_all(arg_dims[0])
        if n == 2:
            from .vectorized import pointwise_result

            return pointwise_result(arg_dims[0], arg_dims[1])
        return None
    if name in ("cumsum", "cumprod", "sort", "floor", "ceil", "round",
                "fix", "abs"):
        return arg_dims[0] if n >= 1 else None
    if name in ("transpose", "ctranspose"):
        return arg_dims[0].reverse() if n == 1 else None
    if name == "repmat":
        if n == 3 and arg_dims[0].reduce().pad(2) is not None:
            base = arg_dims[0].pad(2)
            rows = _merge_rep(base[0], args[1])
            cols = _merge_rep(base[1], args[2])
            return Dim((rows, cols))
        return Dim.matrix()
    if name == "reshape":
        if n >= 3:
            return Dim(tuple(_size_sym(a) for a in args[1:]))
        return None
    if name == "diag":
        if n >= 1 and arg_dims[0].is_matrix:
            return Dim.col()
        return Dim.matrix()
    if name in ("tril", "triu", "kron"):
        return Dim.matrix()
    if name in ("hist", "histc"):
        return Dim.row()
    if name == "find":
        return Dim.col()
    if name in ("disp", "fprintf", "error"):
        return Dim.scalar()
    return None


def _merge_rep(base: Sym, count: Optional[Expr]) -> Sym:
    value = literal_value(count) if count is not None else None
    if value == 1.0:
        return base
    return STAR
