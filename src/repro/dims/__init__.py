"""The paper's dimension abstraction: symbols, dims, Table-1 rules."""

from .abstract import ONE, STAR, Dim, RSym, compatible, fmax  # noqa: F401
from .context import DimContext, ShapeEnv  # noqa: F401
