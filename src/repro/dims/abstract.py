"""The dimension abstraction of §2.1.

A variable's size in one dimension is abstracted to one of:

* ``ONE``   — the size is exactly 1;
* ``STAR``  — the size is greater than 1;
* ``RSym(i)`` — *vectorized* dimensionality only: the size equals the
  trip count of loop index variable ``i`` (also greater than 1).

A dimensionality is an ordered tuple of such symbols wrapped in
:class:`Dim`, e.g. ``Dim.parse("(1,*)")`` for a row vector.  The paper's
``freduce``, ``freverse``, ``fmax`` and the compatibility relation ``≃``
are provided as methods/functions here.

Two facts from the paper are encoded as tests and honoured throughout:
``r_i`` is *not* compatible with ``*``, and ``r_i`` is not compatible
with ``r_j`` for ``i ≠ j`` even when both loops have the same bounds
(§2.2's transposition example depends on this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from ..errors import DimError


class _Atom:
    """A singleton abstract size: ``1`` or ``*``."""

    __slots__ = ("_label",)

    def __init__(self, label: str):
        self._label = label

    def __repr__(self) -> str:
        return self._label

    def __str__(self) -> str:
        return self._label


#: The abstract size "exactly one".
ONE = _Atom("1")
#: The abstract size "greater than one".
STAR = _Atom("*")


@dataclass(frozen=True, slots=True)
class RSym:
    """The special symbol ``r_i`` tying a size to loop variable ``i``.

    ``name`` is the loop index variable; ``serial`` disambiguates
    distinct loops that reuse the same index variable name.
    """

    name: str
    serial: int = 0

    def __repr__(self) -> str:
        return f"r_{self.name}" if not self.serial else f"r_{self.name}#{self.serial}"

    __str__ = __repr__


#: Any abstract size symbol.
Sym = Union[_Atom, RSym]


def is_r(sym: Sym) -> bool:
    """True when ``sym`` is an ``r_i`` loop symbol."""
    return isinstance(sym, RSym)


def fmax(*syms: Sym) -> Optional[Sym]:
    """The largest of the given symbols (Table 1's ``fmax``).

    Ordering: ``1 < r_i`` and ``1 < *``.  ``r_i`` and ``*`` (or two
    distinct ``r`` symbols) are unordered; combining them returns
    ``None``, which callers treat as "not vectorizable".
    """
    result: Sym = ONE
    for sym in syms:
        if sym is ONE:
            continue
        if result is ONE:
            result = sym
        elif result != sym:
            return None
    return result


class Dim:
    """An ordered, immutable tuple of abstract size symbols."""

    __slots__ = ("syms",)

    def __init__(self, syms: Iterable[Sym]):
        syms = tuple(syms)
        if not syms:
            syms = (ONE,)
        for sym in syms:
            if not (sym is ONE or sym is STAR or isinstance(sym, RSym)):
                raise DimError(f"invalid dimension symbol: {sym!r}")
        object.__setattr__(self, "syms", syms)

    # -- construction -------------------------------------------------

    @staticmethod
    def scalar() -> "Dim":
        """The dimensionality of a scalar: ``(1)``."""
        return Dim((ONE,))

    @staticmethod
    def row() -> "Dim":
        """A ``1×n`` row vector: ``(1,*)``."""
        return Dim((ONE, STAR))

    @staticmethod
    def col() -> "Dim":
        """An ``m×1`` column vector: ``(*,1)``."""
        return Dim((STAR, ONE))

    @staticmethod
    def matrix() -> "Dim":
        """A general ``k×l`` matrix: ``(*,*)``."""
        return Dim((STAR, STAR))

    @staticmethod
    def parse(text: str) -> "Dim":
        """Parse the annotation syntax: ``(1,*)``, ``(*,1)``, ``(1)``, ``(*)``.

        ``r`` symbols are not expressible in annotations — they only
        arise during vectorized-dimensionality computation.
        """
        inner = text.strip()
        if inner.startswith("(") and inner.endswith(")"):
            inner = inner[1:-1]
        if not inner:
            raise DimError(f"empty dimensionality in {text!r}")
        syms: list[Sym] = []
        for part in inner.split(","):
            part = part.strip()
            if part == "1":
                syms.append(ONE)
            elif part == "*":
                syms.append(STAR)
            else:
                raise DimError(f"invalid dimension symbol {part!r} in {text!r}")
        return Dim(syms)

    # -- basic protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Sym]:
        return iter(self.syms)

    def __len__(self) -> int:
        return len(self.syms)

    def __getitem__(self, index: int) -> Sym:
        return self.syms[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Dim) and self.syms == other.syms

    def __hash__(self) -> int:
        return hash(self.syms)

    def __repr__(self) -> str:
        return "(" + ",".join(str(s) for s in self.syms) + ")"

    __str__ = __repr__

    # -- the paper's operations ------------------------------------------

    def reduce(self) -> "Dim":
        """``freduce``: drop trailing ``1`` entries (a 5×5 matrix "is" a
        5×5×1 matrix).  A scalar reduces to ``(1)``."""
        syms = list(self.syms)
        while len(syms) > 1 and syms[-1] is ONE:
            syms.pop()
        return Dim(syms)

    def reverse(self) -> "Dim":
        """``freverse``: the reversed symbol tuple, padded to rank 2 first
        so that a reduced row/column still flips orientation."""
        syms = self.syms
        if len(syms) < 2:
            syms = syms + (ONE,) * (2 - len(syms))
        return Dim(tuple(reversed(syms)))

    def pad(self, rank: int) -> "Dim":
        """This dimensionality padded with trailing ``1`` up to ``rank``."""
        if len(self.syms) >= rank:
            return self
        return Dim(self.syms + (ONE,) * (rank - len(self.syms)))

    # -- predicates ---------------------------------------------------------

    @property
    def is_scalar(self) -> bool:
        """True when every entry is ``1``."""
        return all(sym is ONE for sym in self.syms)

    @property
    def is_matrix(self) -> bool:
        """Table 1's ``isMatrix``: at least two non-1 entries."""
        return sum(1 for sym in self.syms if sym is not ONE) >= 2

    @property
    def is_vector(self) -> bool:
        """Exactly one non-1 entry."""
        return sum(1 for sym in self.syms if sym is not ONE) == 1

    @property
    def is_row(self) -> bool:
        """A (possibly vectorized) ``1×n`` shape with n > 1."""
        reduced = self.reduce()
        return len(reduced) == 2 and reduced[0] is ONE and reduced[1] is not ONE

    @property
    def is_col(self) -> bool:
        """A (possibly vectorized) ``m×1`` shape with m > 1."""
        reduced = self.reduce()
        return len(reduced) == 1 and reduced[0] is not ONE or (
            len(reduced) == 2 and reduced[0] is not ONE and reduced[1] is ONE
        )

    # -- r-symbol bookkeeping -------------------------------------------

    def r_syms(self) -> frozenset[RSym]:
        """The set of loop symbols occurring in this dimensionality."""
        return frozenset(sym for sym in self.syms if isinstance(sym, RSym))

    def has_duplicate_r(self) -> bool:
        """True when some ``r_i`` occurs in more than one position (the
        §3 "matrix access" situation, e.g. ``A(i,i)``)."""
        seen: set[RSym] = set()
        for sym in self.syms:
            if isinstance(sym, RSym):
                if sym in seen:
                    return True
                seen.add(sym)
        return False

    def unvectorized(self) -> "Dim":
        """The dimensionality *before* vectorization: every ``r_i`` was a
        single iteration's scalar slot, so r symbols become ``1``."""
        return Dim(tuple(ONE if isinstance(s, RSym) else s for s in self.syms)).reduce()

    def axis_of(self, sym: RSym) -> Optional[int]:
        """0-based index of the unique position holding ``sym``, else None."""
        positions = [k for k, s in enumerate(self.syms) if s == sym]
        return positions[0] if len(positions) == 1 else None

    def replace_axis(self, axis: int, sym: Sym) -> "Dim":
        """A copy with position ``axis`` replaced by ``sym``."""
        syms = list(self.syms)
        syms[axis] = sym
        return Dim(syms)


def compatible(a: Dim, b: Dim) -> bool:
    """The paper's compatibility relation ``dimi(e1) ≃ dimi(e2)``:
    reduced dimensionalities are identical, symbol for symbol."""
    return a.reduce() == b.reduce()


def equal(a: Dim, b: Dim) -> bool:
    """Strict equality ``≡``: identical element-wise (no reduction)."""
    return a == b
