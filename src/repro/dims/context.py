"""Analysis context: variable shapes, active loop symbols, builtin tables.

The :class:`DimContext` bundles everything the Table-1 rules need:

* a shape environment mapping variable names to their *base* abstract
  dimensionality (from ``%!`` annotations and/or shape inference);
* the set of loop index variables currently being vectorized, each bound
  to its :class:`~repro.dims.abstract.RSym`;
* classification of known MATLAB builtins (pointwise vs. shape-level),
  used to decide whether ``f(x)`` propagates dimensionality pointwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ShapeError
from .abstract import Dim, RSym

#: Builtins applied elementwise to one argument — ``dimi(f(e)) = dimi(e)``.
POINTWISE_UNARY = frozenset(
    """
    cos sin tan acos asin atan cosh sinh tanh exp log log2 log10 sqrt
    abs sign floor ceil round fix real imag conj double single uint8
    int8 int16 int32 uint16 uint32 logical not isnan isinf isfinite
    """.split()
)

#: Builtins applied elementwise to two arguments (scalar extension applies).
POINTWISE_BINARY = frozenset("mod rem atan2 hypot power times plus minus".split())

#: Reduction builtins: one array argument collapses along a dimension.
REDUCTIONS = frozenset("sum prod cumsum cumprod mean min max any all".split())

#: Builtins whose *result* shape is known from their signature alone.
SHAPE_BUILTINS = frozenset(
    """
    size numel length ndims zeros ones eye rand randn linspace colon
    repmat reshape diag tril triu transpose ctranspose find sort hist
    histc isempty disp fprintf error cat horzcat vertcat dot norm kron
    """.split()
)

#: Functions whose value changes between calls or that have side
#: effects: hoisting them out of a loop (which vectorization does)
#: changes program behaviour, so they veto vectorization.
#:
#: Some names sit in *both* tables — ``rand``/``randn`` have
#: signature-determined shapes, ``disp``/``fprintf``/``error`` are
#: recognized statements — because the two classifications answer
#: different questions: SHAPE_BUILTINS is "can the lattice type this
#: call?" while IMPURE_FUNCTIONS is "may the vectorizer reorder or
#: hoist it?".  **Impurity always wins.**  Every consumer that decides
#: legality (the checker's call rule, scalar-temp substitution, the
#: dead-store purity test) consults IMPURE_FUNCTIONS first and vetoes
#: the transformation regardless of any SHAPE_BUILTINS entry; the
#: shape tables are only ever used to *type* expressions, never to
#: license moving them.  ``tests/dims/test_purity_precedence.py``
#: pins this contract.
IMPURE_FUNCTIONS = frozenset(
    "rand randn randi disp fprintf error input tic toc".split())

#: Every name the analyses recognize as a function rather than a variable.
KNOWN_FUNCTIONS = (
    POINTWISE_UNARY | POINTWISE_BINARY | REDUCTIONS | SHAPE_BUILTINS
)


@dataclass
class ShapeEnv:
    """Mapping from variable names to base abstract dimensionalities."""

    shapes: dict[str, Dim] = field(default_factory=dict)

    def get(self, name: str) -> Optional[Dim]:
        return self.shapes.get(name)

    def require(self, name: str) -> Dim:
        dim = self.shapes.get(name)
        if dim is None:
            raise ShapeError(f"no shape information for variable {name!r}")
        return dim

    def set(self, name: str, dim: Dim) -> None:
        self.shapes[name] = dim

    def __contains__(self, name: str) -> bool:
        return name in self.shapes

    def copy(self) -> "ShapeEnv":
        return ShapeEnv(dict(self.shapes))

    def merge(self, other: "ShapeEnv") -> None:
        """Overlay ``other``'s entries on top of this environment."""
        self.shapes.update(other.shapes)


@dataclass
class DimContext:
    """Everything needed to evaluate vectorized dimensionalities.

    ``loop_syms`` holds *only* the loops currently considered for
    vectorization — index variables of enclosing sequential loops are
    plain scalars and must appear in ``shapes`` (or default to scalar
    via :meth:`var_dim`'s ``sequential_vars``).
    """

    shapes: ShapeEnv = field(default_factory=ShapeEnv)
    loop_syms: dict[str, RSym] = field(default_factory=dict)
    sequential_vars: frozenset[str] = frozenset()

    def sym_for(self, name: str) -> Optional[RSym]:
        """The r symbol of an actively vectorized index variable, or None."""
        return self.loop_syms.get(name)

    def var_dim(self, name: str) -> Optional[Dim]:
        """The base dimensionality of variable ``name`` if known."""
        if name in self.loop_syms or name in self.sequential_vars:
            return Dim.scalar()
        return self.shapes.get(name)

    def is_function(self, name: str) -> bool:
        """True when ``name`` resolves to a function, not a variable."""
        if name in self.loop_syms or name in self.sequential_vars:
            return False
        if name in self.shapes:
            return False
        return name in KNOWN_FUNCTIONS

    def active_syms(self) -> frozenset[RSym]:
        return frozenset(self.loop_syms.values())
