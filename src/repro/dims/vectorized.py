"""Table 1: rules for computing vectorized dimensionalities.

These are the *leaf* rules of the paper's dimensionality analysis —
pure functions over :class:`~repro.dims.abstract.Dim` values.  The full
statement traversal (which also consults the pattern database, inserts
transposes, and tracks reduction sets) lives in
:mod:`repro.vectorizer.checker` and calls into this module.

Rule summary (Table 1 of the paper):

=====================================  =======================================
Expression                             ``dimi(e)``
=====================================  =======================================
scalar constant                        ``(1)``
identifier ``i`` (loop index)          ``(1, r_i)``
identifier ``v`` (other)               ``dim(v)``
colon expression ``a:b:c``             ``(1, *)``
``M(e1)``, M or e1 a matrix            ``dimi(e1)``
``M(e1)``, M a vector                  orientation of M, size ``fmax(dimi(e1))``
``M(e1, …, ek)``                       ``(fmax(dimi(e1)), …, fmax(dimi(ek)))``
``+e`` / ``-e``                        ``dimi(e)``
``e'``                                 ``freverse(dimi(e))``
=====================================  =======================================

A rule returning ``None`` means "the expression cannot be assigned a
vectorized dimensionality" and vetoes vectorization at this loop level.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .abstract import ONE, STAR, Dim, Sym, fmax
from .context import DimContext

#: Sentinel for a bare ``:`` subscript — it has no expression dims of its
#: own; its contribution depends on the indexed array.
COLON = object()

SubscriptDim = Union[Dim, object]  # Dim or the COLON sentinel


def collapse(dim: Dim) -> Optional[Sym]:
    """``fmax`` over every entry of a dimensionality (Table 1 uses this to
    turn a subscript expression's dims into a single extent symbol)."""
    return fmax(*dim.syms)


def dim_of_scalar() -> Dim:
    """A numeric literal or other provably-scalar expression: ``(1)``."""
    return Dim.scalar()


def dim_of_ident(name: str, ctx: DimContext) -> Optional[Dim]:
    """An identifier: ``(1, r_i)`` for an active loop index, else its
    declared/inferred base dimensionality (None when unknown)."""
    sym = ctx.sym_for(name)
    if sym is not None:
        return Dim((ONE, sym))
    return ctx.var_dim(name)


def dim_of_colon_expr() -> Dim:
    """A colon (range) expression ``a:b:c`` is a row vector: ``(1,*)``."""
    return Dim.row()


def dim_of_transpose(operand: Dim) -> Dim:
    """``e'`` — ``freverse``."""
    return operand.reverse()


def dim_of_signed(operand: Dim) -> Dim:
    """``+e`` / ``-e`` — unchanged."""
    return operand


def dim_of_subscript(base: Dim, args: Sequence[SubscriptDim]) -> Optional[Dim]:
    """Dimensionality of ``M(e1, …, ek)`` given ``dim(M)`` and each
    subscript's vectorized dims (or :data:`COLON`).

    Returns None when some subscript mixes incomparable extents (e.g. a
    subscript whose own dims are ``(r_i, r_j)``), which vetoes
    vectorization of the access.  Duplicate-``r`` results (``A(i,i)``)
    are *returned* here; the checker detects them and consults the
    pattern database (§3's ``(·)`` patterns).
    """
    if not args:
        return base
    if len(args) == 1:
        return _dim_of_linear_subscript(base, args[0])
    out: list[Sym] = []
    padded = base.pad(len(args))
    for position, arg in enumerate(args):
        if arg is COLON:
            out.append(padded[position])
            continue
        assert isinstance(arg, Dim)
        extent = collapse(arg)
        if extent is None:
            return None
        out.append(extent)
    return Dim(out)


def _dim_of_linear_subscript(base: Dim, arg: SubscriptDim) -> Optional[Dim]:
    if arg is COLON:
        # A(:) flattens to a column.
        return Dim.scalar() if base.is_scalar else Dim((STAR, ONE))
    assert isinstance(arg, Dim)
    if base.is_matrix or arg.is_matrix:
        # Table 1: the access takes the subscript's shape.
        return arg
    if arg.is_scalar:
        return Dim.scalar()
    extent = collapse(arg)
    if extent is None:
        return None
    if base.is_scalar:
        # Indexing a scalar with a vector replicates it (rare; MATLAB
        # allows e.g. s(ones(1,n))); result takes the subscript's shape.
        return arg
    # M is a vector: the result follows M's orientation (the paper's
    # example: dim(A) = (*,1)  ⇒  dimi(A(i)) = (r_i, 1)).
    if base.is_row:
        return Dim((ONE, extent))
    return Dim((extent, ONE))


def dim_of_matrix_literal(row_lengths: Sequence[int],
                          element_dims: Sequence[Dim]) -> Optional[Dim]:
    """Approximate dims of a matrix literal built from scalar elements.

    Only literals whose elements are all scalars are given a
    dimensionality (others return None and veto vectorization; the
    paper's subset never builds matrices from vector pieces inside
    candidate loops).
    """
    if not row_lengths:
        return Dim((ONE, ONE))  # `[]` — treated as degenerate scalar slot
    if any(not d.is_scalar for d in element_dims):
        if len(row_lengths) == 1 and len(element_dims) == 1:
            # `[expr]` — brackets around a single expression.
            return element_dims[0]
        return None
    rows = len(row_lengths)
    cols = row_lengths[0]
    if any(length != cols for length in row_lengths):
        return None
    return Dim((ONE if rows == 1 else STAR, ONE if cols == 1 else STAR))


def assignment_compatible(lhs: Dim, rhs: Dim) -> bool:
    """§2.1 assignment rule: compatible dims, or a scalar right-hand side."""
    return rhs.is_scalar or lhs.reduce() == rhs.reduce()


def pointwise_result(lhs: Dim, rhs: Dim) -> Optional[Dim]:
    """§2.1 pointwise rule: the result dims of ``e_l ∘ e_r`` for a
    pointwise operator, or None when the operands are incompatible.

    1. compatible dims → ``dimi(e_l)``;
    2. scalar left → ``dimi(e_r)``;
    3. scalar right → ``dimi(e_l)``.
    """
    if lhs.reduce() == rhs.reduce():
        return lhs
    if lhs.is_scalar:
        return rhs
    if rhs.is_scalar:
        return lhs
    return None
