"""Forward shape inference over the abstract dimension lattice.

The paper assumes array shapes are known — supplied by ``%!``
annotations produced by external tools [5, 18].  This pass is our
substitute for those tools: a single forward walk that evaluates the
abstract dimensionality of straight-line assignments (via the same
Table-1 rules the vectorizer uses, restricted to zero active loops) and
applies MATLAB's auto-creation behaviour to subscripted first writes
(``a(i)=…`` creates a row, ``A(i,j)=…`` a matrix).

Annotated names are *frozen*: inference never overrides them.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..dims.abstract import STAR, Dim
from ..dims.context import ShapeEnv
from ..mlang.ast_nodes import (
    Annotation,
    Apply,
    Assign,
    Expr,
    For,
    Ident,
    If,
    MultiAssign,
    Program,
    Stmt,
    While,
)
from ..mlang.annotations import parse_annotation
from ..patterns.database import PatternDatabase
from ..vectorizer.checker import CheckFailure, CheckOptions, DimChecker


class ShapeInference:
    """Single-pass forward shape inference for a whole program."""

    def __init__(self, env: Optional[ShapeEnv] = None,
                 frozen: Iterable[str] = ()):
        self.env = env if env is not None else ShapeEnv()
        self.frozen = set(frozen)

    # -- public API -----------------------------------------------------

    def run(self, program: Program) -> ShapeEnv:
        self._stmts(program.body, loop_vars=set())
        return self.env

    def expr_dim(self, expr: Expr, loop_vars: set[str]) -> Optional[Dim]:
        """The abstract dims of a straight-line expression, or None."""
        checker = DimChecker(
            self.env, headers=[], sequential_vars=tuple(loop_vars),
            db=PatternDatabase(), options=CheckOptions(patterns=False),
        )
        try:
            return checker.check_expr(expr).dim
        except CheckFailure:
            return None

    # -- traversal ----------------------------------------------------------

    def _stmts(self, stmts: list[Stmt], loop_vars: set[str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, Annotation):
                fresh = ShapeEnv()
                parse_annotation(stmt.text, fresh)
                for name, dim in fresh.shapes.items():
                    self.env.set(name, dim)
                    self.frozen.add(name)
            elif isinstance(stmt, Assign):
                self._assign(stmt, loop_vars)
            elif isinstance(stmt, MultiAssign):
                self._multi_assign(stmt, loop_vars)
            elif isinstance(stmt, For):
                self._stmts(stmt.body, loop_vars | {stmt.var})
            elif isinstance(stmt, While):
                self._stmts(stmt.body, loop_vars)
            elif isinstance(stmt, If):
                for _, body in stmt.tests:
                    self._stmts(body, loop_vars)
                self._stmts(stmt.orelse, loop_vars)
            # Other statements carry no shape information.

    def _assign(self, stmt: Assign, loop_vars: set[str]) -> None:
        lhs = stmt.lhs
        if isinstance(lhs, Ident):
            if lhs.name in self.frozen or lhs.name in loop_vars:
                return
            dim = self.expr_dim(stmt.rhs, loop_vars)
            if dim is not None:
                self.env.set(lhs.name, dim)
            return
        if isinstance(lhs, Apply) and isinstance(lhs.func, Ident):
            name = lhs.func.name
            if name in self.frozen or name in self.env:
                return
            # MATLAB auto-creation on a subscripted first write.
            if len(lhs.args) == 1:
                self.env.set(name, Dim.row())
            else:
                self.env.set(name, Dim(tuple(STAR for _ in lhs.args)))


    def _multi_assign(self, stmt: MultiAssign, loop_vars: set[str]) -> None:
        """Shapes from multi-output builtins: every output of
        ``[m,n] = size(A)`` and the index outputs of ``max``/``min``/
        ``sort`` are scalars (or keep the input's shape for sort)."""
        rhs = stmt.rhs
        if not (isinstance(rhs, Apply) and isinstance(rhs.func, Ident)):
            return
        name = rhs.func.name
        targets = [t.name for t in stmt.targets if isinstance(t, Ident)
                   and t.name not in self.frozen]
        if name == "size":
            for target in targets:
                self.env.set(target, Dim.scalar())
        elif name in ("max", "min") and len(rhs.args) == 1:
            for target in targets:
                self.env.set(target, Dim.scalar())
        elif name == "sort" and len(rhs.args) == 1:
            arg_dim = self.expr_dim(rhs.args[0], loop_vars)
            if arg_dim is not None:
                for target in targets:
                    self.env.set(target, arg_dim)


def infer_shapes(program: Program,
                 annotations_env: Optional[ShapeEnv] = None) -> ShapeEnv:
    """Convenience entry point: inference seeded with (frozen) annotations."""
    env = annotations_env.copy() if annotations_env is not None else ShapeEnv()
    frozen = set(env.shapes) if annotations_env is not None else set()
    return ShapeInference(env, frozen).run(program)
