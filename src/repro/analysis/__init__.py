"""Whole-program analyses: shape inference."""

from .shapes import ShapeInference, infer_shapes  # noqa: F401
