"""Generic AST traversal and rewriting utilities.

Two tools cover every pass in the library:

* :class:`Transformer` — a bottom-up rebuilding visitor.  Subclasses
  override ``visit_<NodeType>`` methods; the default behaviour rebuilds
  each node with transformed children (sharing untouched subtrees).
* :func:`substitute` — replace specific node *instances* (by identity)
  with replacement expressions; used by the vectorizer to apply planned
  pattern transformations recorded during dimension checking.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping, Optional

from .ast_nodes import Expr, Ident, Node


class Transformer:
    """Bottom-up AST rewriter.

    ``visit(node)`` dispatches to ``visit_<ClassName>`` when defined,
    otherwise to :meth:`generic_visit`, which reconstructs the node with
    visited children.  Returning the original node (by identity) from
    every child visit keeps the original node, so untouched subtrees are
    shared rather than copied.
    """

    def visit(self, node: Node) -> Node:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node) -> Node:
        changes: dict[str, object] = {}
        for f in dataclasses.fields(node):
            value = getattr(node, f.name)
            new_value, changed = self._visit_value(value)
            if changed:
                changes[f.name] = new_value
        if not changes:
            return node
        return dataclasses.replace(node, **changes)

    def _visit_value(self, value: object) -> tuple[object, bool]:
        if isinstance(value, Node):
            new = self.visit(value)
            return new, new is not value
        if isinstance(value, list):
            items = [self._visit_value(item) for item in value]
            if any(changed for _, changed in items):
                return [item for item, _ in items], True
            return value, False
        if isinstance(value, tuple):
            items = [self._visit_value(item) for item in value]
            if any(changed for _, changed in items):
                return tuple(item for item, _ in items), True
            return value, False
        return value, False


class _Substituter(Transformer):
    def __init__(self, mapping: Mapping[int, Node]):
        self.mapping = mapping

    def visit(self, node: Node) -> Node:
        replacement = self.mapping.get(id(node))
        if replacement is not None:
            return replacement
        return super().visit(node)


def substitute(root: Node, mapping: Mapping[int, Node]) -> Node:
    """Replace node instances (keyed by ``id``) with new subtrees.

    Replacement happens top-down and replaced subtrees are *not*
    re-visited, so a replacement may safely contain the original node.
    """
    return _Substituter(mapping).visit(root)


class _IdentRenamer(Transformer):
    def __init__(self, rename: Callable[[str], Optional[Expr]]):
        self.rename = rename

    def visit_Ident(self, node: Ident) -> Node:
        replacement = self.rename(node.name)
        return replacement if replacement is not None else node


def substitute_idents(root: Node, mapping: Mapping[str, Expr]) -> Node:
    """Replace every identifier occurrence named in ``mapping``.

    The replacement expressions are inserted as-is (shared); callers that
    mutate trees should pass fresh copies.
    """
    return _IdentRenamer(lambda name: mapping.get(name)).visit(root)


def copy_tree(root: Node) -> Node:
    """Deep-copy an AST (fresh node instances, same structure)."""

    class _Copier(Transformer):
        def generic_visit(self, node: Node) -> Node:
            changes: dict[str, object] = {}
            for f in dataclasses.fields(node):
                value = getattr(node, f.name)
                new_value, _ = self._visit_value(value)
                if isinstance(value, (Node, list, tuple)):
                    changes[f.name] = new_value
            return dataclasses.replace(node, **changes)

        def _visit_value(self, value: object) -> tuple[object, bool]:
            if isinstance(value, Node):
                return self.visit(value), True
            if isinstance(value, list):
                return [self._visit_value(v)[0] for v in value], True
            if isinstance(value, tuple):
                return tuple(self._visit_value(v)[0] for v in value), True
            return value, False

    return _Copier().visit(root)


def collect(root: Node, node_type: type) -> list[Node]:
    """All descendants of ``root`` (inclusive) that are ``node_type``."""
    return [n for n in root.walk() if isinstance(n, node_type)]
