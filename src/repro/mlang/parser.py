"""Recursive-descent parser for the MATLAB subset.

The grammar follows MATLAB's operator precedence table::

    ||  <  &&  <  |  <  &  <  comparisons  <  :  <  + -
       <  * / \\ .* ./ .\\  <  unary + - ~  <  ^ .^  <  postfix ' .' ( )

MATLAB-specific behaviours implemented here:

* ``a:b:c`` parses as ``Range(start=a, step=b, stop=c)``;
* bare ``:`` and ``end`` are only legal inside subscripts;
* matrix literals accept both comma- and space-separated elements, using
  whitespace around ``+``/``-`` to disambiguate ``[1 -2]`` (two elements)
  from ``[1 - 2]`` (one element);
* power binds tighter than unary minus (``-2^2 == -4``) and is
  left-associative;
* ``[a, b] = f(x)`` becomes a :class:`MultiAssign`.
"""

from __future__ import annotations

from ..errors import ParseError
from .ast_nodes import (
    Annotation,
    Apply,
    Assign,
    BinOp,
    Break,
    Colon,
    Continue,
    End,
    Expr,
    ExprStmt,
    For,
    FunctionDef,
    Global,
    Ident,
    If,
    Matrix,
    MultiAssign,
    Num,
    Pos,
    Program,
    Range,
    Return,
    Stmt,
    Str,
    Transpose,
    UnOp,
    While,
)
from .lexer import SpacedToken, tokenize
from .tokens import TokenKind

_COMPARISON_OPS = ("==", "~=", "<", "<=", ">", ">=")
_MULTIPLICATIVE_OPS = ("*", "/", "\\", ".*", "./", ".\\")
_POWER_OPS = ("^", ".^")
_BLOCK_TERMINATORS = ("end", "else", "elseif", "function")


class Parser:
    """Parse a token stream into a :class:`Program`."""

    def __init__(self, tokens: list[SpacedToken]):
        self.tokens = tokens
        self.index = 0
        self._subscript_depth = 0
        self._matrix_depth = 0

    # -- token stream helpers ------------------------------------------

    @property
    def current(self) -> SpacedToken:
        return self.tokens[self.index]

    def _advance(self) -> SpacedToken:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _error(self, message: str) -> ParseError:
        tok = self.current
        return ParseError(f"{message} (got {tok.kind.value} {tok.text!r})",
                          tok.line, tok.column)

    def _expect_op(self, op: str) -> SpacedToken:
        if not self.current.is_op(op):
            raise self._error(f"expected {op!r}")
        return self._advance()

    def _expect_ident(self) -> str:
        if self.current.kind is not TokenKind.IDENT:
            raise self._error("expected identifier")
        return self._advance().text

    def _accept_op(self, *ops: str) -> bool:
        if self.current.is_op(*ops):
            self._advance()
            return True
        return False

    def _pos(self) -> Pos:
        return Pos(self.current.line, self.current.column)

    def _skip_separators(self) -> None:
        while self.current.kind in (TokenKind.NEWLINE, TokenKind.SEMI,
                                    TokenKind.COMMA):
            self._advance()

    # -- program / statement lists ---------------------------------------

    def parse_program(self) -> Program:
        body = self._parse_stmt_list(top_level=True)
        if self.current.kind is not TokenKind.EOF:
            raise self._error("unexpected trailing input")
        pos = body[0].pos if body else Pos(1, 1)
        return Program(body, pos=pos)

    def _parse_stmt_list(self, top_level: bool = False) -> list[Stmt]:
        stmts: list[Stmt] = []
        self._skip_separators()
        while True:
            tok = self.current
            if tok.kind is TokenKind.EOF:
                if not top_level:
                    raise self._error("unexpected end of input inside block")
                return stmts
            if tok.is_keyword(*_BLOCK_TERMINATORS) and not top_level:
                return stmts
            if tok.is_keyword("function") and top_level:
                stmts.append(self._parse_function())
            else:
                stmts.append(self._parse_statement())
            self._skip_separators()

    def _finish_statement(self) -> bool:
        """Consume the statement separator; return True when it was ';'."""
        tok = self.current
        if tok.kind is TokenKind.SEMI:
            self._advance()
            return True
        if tok.kind in (TokenKind.NEWLINE, TokenKind.COMMA):
            self._advance()
            return False
        if tok.kind is TokenKind.EOF or tok.is_keyword(*_BLOCK_TERMINATORS):
            return False
        raise self._error("expected end of statement")

    def _parse_statement(self) -> Stmt:
        tok = self.current
        pos = self._pos()
        if tok.kind is TokenKind.ANNOTATION:
            self._advance()
            return Annotation(tok.text, pos=pos)
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("break"):
            self._advance()
            self._finish_statement()
            return Break(pos=pos)
        if tok.is_keyword("continue"):
            self._advance()
            self._finish_statement()
            return Continue(pos=pos)
        if tok.is_keyword("return"):
            self._advance()
            self._finish_statement()
            return Return(pos=pos)
        if tok.is_keyword("global"):
            self._advance()
            names = [self._expect_ident()]
            while self.current.kind is TokenKind.IDENT:
                names.append(self._advance().text)
            self._finish_statement()
            return Global(names, pos=pos)
        return self._parse_expression_statement()

    def _parse_expression_statement(self) -> Stmt:
        pos = self._pos()
        expr = self.parse_expr()
        if self.current.is_op("="):
            self._advance()
            rhs = self.parse_expr()
            suppress = self._finish_statement()
            return self._make_assignment(expr, rhs, suppress, pos)
        suppress = self._finish_statement()
        return ExprStmt(expr, suppress=suppress, pos=pos)

    def _make_assignment(self, lhs: Expr, rhs: Expr, suppress: bool,
                         pos: Pos) -> Stmt:
        if isinstance(lhs, Matrix):
            if len(lhs.rows) != 1:
                raise ParseError("invalid assignment target", pos.line, pos.column)
            targets = lhs.rows[0]
            for target in targets:
                if not isinstance(target, (Ident, Apply)):
                    raise ParseError("invalid assignment target",
                                     pos.line, pos.column)
            return MultiAssign(targets, rhs, suppress=suppress, pos=pos)
        if not isinstance(lhs, (Ident, Apply)):
            raise ParseError("invalid assignment target", pos.line, pos.column)
        return Assign(lhs, rhs, suppress=suppress, pos=pos)

    # -- compound statements ----------------------------------------------

    def _parse_for(self) -> For:
        pos = self._pos()
        self._advance()  # 'for'
        paren = self._accept_op("(")
        var = self._expect_ident()
        self._expect_op("=")
        iter_expr = self.parse_expr()
        if paren:
            self._expect_op(")")
        self._finish_statement()
        body = self._parse_stmt_list()
        self._expect_keyword("end")
        return For(var, iter_expr, body, pos=pos)

    def _parse_while(self) -> While:
        pos = self._pos()
        self._advance()  # 'while'
        cond = self.parse_expr()
        self._finish_statement()
        body = self._parse_stmt_list()
        self._expect_keyword("end")
        return While(cond, body, pos=pos)

    def _parse_if(self) -> If:
        pos = self._pos()
        self._advance()  # 'if'
        tests: list[tuple[Expr, list[Stmt]]] = []
        cond = self.parse_expr()
        self._finish_statement()
        tests.append((cond, self._parse_stmt_list()))
        orelse: list[Stmt] = []
        while True:
            if self.current.is_keyword("elseif"):
                self._advance()
                cond = self.parse_expr()
                self._finish_statement()
                tests.append((cond, self._parse_stmt_list()))
            elif self.current.is_keyword("else"):
                self._advance()
                self._finish_statement()
                orelse = self._parse_stmt_list()
            else:
                break
        self._expect_keyword("end")
        return If(tests, orelse, pos=pos)

    def _parse_function(self) -> FunctionDef:
        pos = self._pos()
        self._advance()  # 'function'
        outs: list[str] = []
        # Forms: function f(..) | function y = f(..) | function [a,b] = f(..)
        if self.current.is_op("["):
            self._advance()
            if not self.current.is_op("]"):
                outs.append(self._expect_ident())
                while self.current.kind is TokenKind.COMMA:
                    self._advance()
                    outs.append(self._expect_ident())
            self._expect_op("]")
            self._expect_op("=")
            name = self._expect_ident()
        else:
            name = self._expect_ident()
            if self.current.is_op("="):
                self._advance()
                outs = [name]
                name = self._expect_ident()
        params: list[str] = []
        if self._accept_op("("):
            if not self.current.is_op(")"):
                params.append(self._expect_ident())
                while self.current.kind is TokenKind.COMMA:
                    self._advance()
                    params.append(self._expect_ident())
            self._expect_op(")")
        self._finish_statement()
        body = self._parse_stmt_list()
        if self.current.is_keyword("end"):
            self._advance()
        return FunctionDef(name, params, outs, body, pos=pos)

    def _expect_keyword(self, word: str) -> None:
        if not self.current.is_keyword(word):
            raise self._error(f"expected {word!r}")
        self._advance()

    # -- expressions -------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_short_or()

    def _parse_short_or(self) -> Expr:
        left = self._parse_short_and()
        while self.current.is_op("||"):
            pos = self._pos()
            self._advance()
            left = BinOp("||", left, self._parse_short_and(), pos=pos)
        return left

    def _parse_short_and(self) -> Expr:
        left = self._parse_elem_or()
        while self.current.is_op("&&"):
            pos = self._pos()
            self._advance()
            left = BinOp("&&", left, self._parse_elem_or(), pos=pos)
        return left

    def _parse_elem_or(self) -> Expr:
        left = self._parse_elem_and()
        while self.current.is_op("|") and not self._breaks_matrix_element():
            pos = self._pos()
            self._advance()
            left = BinOp("|", left, self._parse_elem_and(), pos=pos)
        return left

    def _parse_elem_and(self) -> Expr:
        left = self._parse_comparison()
        while self.current.is_op("&") and not self._breaks_matrix_element():
            pos = self._pos()
            self._advance()
            left = BinOp("&", left, self._parse_comparison(), pos=pos)
        return left

    def _parse_comparison(self) -> Expr:
        left = self._parse_colon()
        while self.current.is_op(*_COMPARISON_OPS):
            pos = self._pos()
            op = self._advance().text
            left = BinOp(op, left, self._parse_colon(), pos=pos)
        return left

    def _parse_colon(self) -> Expr:
        start = self._parse_additive()
        if not self.current.is_op(":"):
            return start
        pos = self._pos()
        self._advance()
        second = self._parse_additive()
        if self.current.is_op(":"):
            self._advance()
            third = self._parse_additive()
            return Range(start, third, step=second, pos=pos)
        return Range(start, second, pos=pos)

    def _breaks_matrix_element(self) -> bool:
        """True when the current binary-looking token actually starts a new
        matrix element (``[1 -2]`` style)."""
        if self._matrix_depth == 0 or self._subscript_depth > 0:
            return False
        tok = self.current
        if not tok.space_before:
            return False
        if tok.is_op("+", "-"):
            # '[1 - 2]' is subtraction; '[1 -2]' is two elements.
            return not tok.space_after
        return False

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self.current.is_op("+", "-") and not self._breaks_matrix_element():
            pos = self._pos()
            op = self._advance().text
            left = BinOp(op, left, self._parse_multiplicative(), pos=pos)
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self.current.is_op(*_MULTIPLICATIVE_OPS):
            pos = self._pos()
            op = self._advance().text
            left = BinOp(op, left, self._parse_unary(), pos=pos)
        return left

    def _parse_unary(self) -> Expr:
        tok = self.current
        if tok.is_op("+", "-", "~"):
            pos = self._pos()
            self._advance()
            operand = self._parse_unary()
            # Fold a sign applied directly to a numeric literal so that
            # printing a negative Num round-trips through the parser.
            if tok.text in "+-" and isinstance(operand, Num):
                value = operand.value if tok.text == "+" else -operand.value
                return Num(value, pos=pos)
            return UnOp(tok.text, operand, pos=pos)
        return self._parse_power()

    def _parse_power(self) -> Expr:
        left = self._parse_postfix()
        while self.current.is_op(*_POWER_OPS):
            pos = self._pos()
            op = self._advance().text
            # MATLAB allows a unary sign directly after ^ (2^-3).
            if self.current.is_op("+", "-", "~"):
                sign = self._advance()
                operand = self._parse_postfix()
                if sign.text in "+-" and isinstance(operand, Num):
                    value = operand.value if sign.text == "+" \
                        else -operand.value
                    right: Expr = Num(value, pos=Pos(sign.line, sign.column))
                else:
                    right = UnOp(sign.text, operand,
                                 pos=Pos(sign.line, sign.column))
            else:
                right = self._parse_postfix()
            left = BinOp(op, left, right, pos=pos)
        return left

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            tok = self.current
            if tok.is_op("'"):
                self._advance()
                expr = Transpose(expr, conjugate=True,
                                 pos=Pos(tok.line, tok.column))
            elif tok.is_op(".'"):
                self._advance()
                expr = Transpose(expr, conjugate=False,
                                 pos=Pos(tok.line, tok.column))
            elif tok.is_op("(") and not (tok.space_before and self._matrix_depth
                                         and not self._subscript_depth):
                expr = self._parse_apply(expr)
            else:
                return expr

    def _parse_apply(self, func: Expr) -> Apply:
        # Anchor the application at the callee, not the '(' — diagnostics
        # should point at `a` in `a(i)`, matching how users read the code.
        pos = func.pos if func.pos.line else self._pos()
        self._expect_op("(")
        self._subscript_depth += 1
        args: list[Expr] = []
        if not self.current.is_op(")"):
            args.append(self._parse_subscript_arg())
            while self.current.kind is TokenKind.COMMA:
                self._advance()
                args.append(self._parse_subscript_arg())
        self._subscript_depth -= 1
        self._expect_op(")")
        return Apply(func, args, pos=pos)

    def _parse_subscript_arg(self) -> Expr:
        tok = self.current
        if tok.is_op(":") and self._next_meaningful_is(")", ","):
            self._advance()
            return Colon(pos=Pos(tok.line, tok.column))
        return self.parse_expr()

    def _next_meaningful_is(self, *texts: str) -> bool:
        nxt = self.tokens[self.index + 1]
        return (nxt.kind is TokenKind.COMMA and "," in texts) or nxt.is_op(*texts)

    def _parse_primary(self) -> Expr:
        tok = self.current
        pos = Pos(tok.line, tok.column)
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            return Num(float(tok.text), raw=tok.text, pos=pos)
        if tok.kind is TokenKind.STRING:
            self._advance()
            return Str(tok.text, pos=pos)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            return Ident(tok.text, pos=pos)
        if tok.is_keyword("end"):
            if self._subscript_depth == 0:
                raise self._error("'end' is only valid inside a subscript")
            self._advance()
            return End(pos=pos)
        if tok.is_op("("):
            self._advance()
            saved_matrix = self._matrix_depth
            self._matrix_depth = 0
            expr = self.parse_expr()
            self._matrix_depth = saved_matrix
            self._expect_op(")")
            return expr
        if tok.is_op("["):
            return self._parse_matrix()
        raise self._error("expected an expression")

    def _parse_matrix(self) -> Matrix:
        pos = self._pos()
        self._expect_op("[")
        self._matrix_depth += 1
        saved_subscript = self._subscript_depth
        self._subscript_depth = 0
        rows: list[list[Expr]] = []
        current_row: list[Expr] = []
        while True:
            while self.current.kind is TokenKind.NEWLINE:
                if current_row:
                    rows.append(current_row)
                    current_row = []
                self._advance()
            if self.current.is_op("]"):
                break
            current_row.append(self.parse_expr())
            tok = self.current
            if tok.kind is TokenKind.COMMA:
                self._advance()
            elif tok.kind is TokenKind.SEMI:
                self._advance()
                rows.append(current_row)
                current_row = []
            elif tok.kind is TokenKind.NEWLINE:
                continue
            elif tok.is_op("]"):
                break
            elif tok.space_before or tok.is_op("'") is False and (
                tok.kind in (TokenKind.NUMBER, TokenKind.STRING,
                             TokenKind.IDENT)
                or tok.is_op("(", "[")
            ):
                # Space-separated element: loop to parse the next element.
                continue
            else:
                raise self._error("expected ',', ';', or ']' in matrix literal")
        if current_row:
            rows.append(current_row)
        self._matrix_depth -= 1
        self._subscript_depth = saved_subscript
        self._expect_op("]")
        return Matrix(rows, pos=pos)


def parse(source: str) -> Program:
    """Parse MATLAB ``source`` into a :class:`Program`."""
    return Parser(tokenize(source)).parse_program()


def parse_expr(source: str) -> Expr:
    """Parse a single MATLAB expression (helper used widely in tests)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expr()
    parser._skip_separators()
    if parser.current.kind is not TokenKind.EOF:
        raise parser._error("unexpected trailing input after expression")
    return expr


def parse_stmt(source: str) -> Stmt:
    """Parse a single MATLAB statement."""
    program = parse(source)
    stmts = [s for s in program.body if not isinstance(s, Annotation)]
    if len(stmts) != 1:
        raise ParseError(f"expected exactly one statement, got {len(stmts)}")
    return stmts[0]
