"""Lexer for the MATLAB subset understood by the vectorizer.

The lexer handles the classic MATLAB tokenization subtleties:

* ``'`` is either the transpose operator or a string delimiter, decided
  by the preceding token (transpose after identifiers, numbers, closing
  brackets, ``end``, or another transpose; string otherwise);
* ``''`` inside a string is an escaped quote;
* ``...`` continues a logical line (the rest of the physical line,
  including any trailing comment, is discarded);
* ``%`` starts a comment; ``%!`` starts a *shape annotation* which is
  preserved as an :class:`~repro.mlang.tokens.TokenKind.ANNOTATION`
  token for the annotation parser;
* tokens record whether whitespace preceded them, which the parser uses
  to split space-separated matrix-literal elements (``[1 -2]`` vs
  ``[1 - 2]``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LexError
from .tokens import KEYWORDS, MULTI_CHAR_OPS, SINGLE_CHAR_OPS, Token, TokenKind


@dataclass(frozen=True)
class SpacedToken(Token):
    """A token annotated with surrounding-whitespace facts.

    ``space_before``/``space_after`` let the parser reproduce MATLAB's
    whitespace-sensitive treatment of ``+``/``-`` inside matrix literals.
    """

    space_before: bool = False
    space_after: bool = False


#: Tokens after which a quote means transpose rather than a string start.
_TRANSPOSE_PREDECESSORS = {")", "]", "}", "'", ".'"}


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


class Lexer:
    """Convert MATLAB source text into a list of tokens."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1
        self.tokens: list[SpacedToken] = []
        self._pending_space = False

    # -- low-level cursor helpers ------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _error(self, message: str) -> LexError:
        return LexError(message, self.line, self.column)

    # -- token emission ----------------------------------------------

    def _emit(self, kind: TokenKind, text: str, line: int, column: int) -> None:
        if self.tokens:
            prev = self.tokens[-1]
            if self._pending_space and prev.line == line:
                object.__setattr__(prev, "space_after", True)
        self.tokens.append(
            SpacedToken(kind, text, line, column, space_before=self._pending_space)
        )
        self._pending_space = False

    # -- main loop ----------------------------------------------------

    def tokenize(self) -> list[SpacedToken]:
        """Tokenize the whole source; always ends with an EOF token."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r":
                self._advance()
                self._pending_space = True
            elif ch == "\n":
                self._lex_newline()
            elif ch == "%":
                self._lex_comment()
            elif ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                self._lex_number()
            elif _is_ident_start(ch):
                self._lex_ident()
            elif ch == "'":
                self._lex_quote()
            elif ch == '"':
                self._lex_dquote_string()
            else:
                self._lex_operator()
        self._emit(TokenKind.EOF, "", self.line, self.column)
        return self.tokens

    # -- individual token lexers ---------------------------------------

    def _lex_newline(self) -> None:
        line, column = self.line, self.column
        self._advance()
        # Collapse runs of blank lines into one separator.
        if self.tokens and self.tokens[-1].kind is not TokenKind.NEWLINE:
            self._emit(TokenKind.NEWLINE, "\n", line, column)
        self._pending_space = False

    def _lex_comment(self) -> None:
        line, column = self.line, self.column
        start = self.pos
        while self.pos < len(self.source) and self._peek() != "\n":
            self._advance()
        text = self.source[start : self.pos]
        if text.startswith("%!"):
            self._emit(TokenKind.ANNOTATION, text[2:].strip(), line, column)

    def _lex_number(self) -> None:
        line, column = self.line, self.column
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        nxt = self._peek(1)
        # A '.' is part of the number unless it begins an elementwise
        # operator ('.*', './', '.\\', '.^', ".'") or a field access.
        if self._peek() == "." and (
            nxt.isdigit()
            or nxt == ""
            or (not _is_ident_char(nxt) and nxt not in "*/^\\'")
        ):
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        self._emit(TokenKind.NUMBER, self.source[start : self.pos], line, column)

    def _lex_ident(self) -> None:
        line, column = self.line, self.column
        start = self.pos
        while _is_ident_char(self._peek()):
            self._advance()
        text = self.source[start : self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        self._emit(kind, text, line, column)

    def _prev_allows_transpose(self) -> bool:
        if not self.tokens:
            return False
        prev = self.tokens[-1]
        if self._pending_space:
            # "a '" starts a string in MATLAB command contexts; within the
            # expression grammar we support, whitespace before a quote
            # means a string (e.g. disp('x')  vs  A').
            return False
        if prev.kind in (TokenKind.IDENT, TokenKind.NUMBER):
            return True
        if prev.kind is TokenKind.KEYWORD and prev.text == "end":
            return True
        return prev.kind is TokenKind.OP and prev.text in _TRANSPOSE_PREDECESSORS

    def _lex_quote(self) -> None:
        line, column = self.line, self.column
        if self._prev_allows_transpose():
            self._advance()
            self._emit(TokenKind.OP, "'", line, column)
            return
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source) or self._peek() == "\n":
                raise LexError("unterminated string literal", line, column)
            ch = self._advance()
            if ch == "'":
                if self._peek() == "'":
                    self._advance()
                    chars.append("'")
                else:
                    break
            else:
                chars.append(ch)
        self._emit(TokenKind.STRING, "".join(chars), line, column)

    def _lex_dquote_string(self) -> None:
        line, column = self.line, self.column
        self._advance()
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source) or self._peek() == "\n":
                raise LexError("unterminated string literal", line, column)
            ch = self._advance()
            if ch == '"':
                if self._peek() == '"':
                    self._advance()
                    chars.append('"')
                else:
                    break
            else:
                chars.append(ch)
        self._emit(TokenKind.STRING, "".join(chars), line, column)

    def _lex_operator(self) -> None:
        line, column = self.line, self.column
        for op in MULTI_CHAR_OPS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                if op == "...":
                    # Line continuation: discard the rest of the line.
                    while self.pos < len(self.source) and self._peek() != "\n":
                        self._advance()
                    if self.pos < len(self.source):
                        self._advance()  # the newline itself
                    self._pending_space = True
                    return
                self._emit(TokenKind.OP, op, line, column)
                return
        ch = self._peek()
        if ch in SINGLE_CHAR_OPS:
            self._advance()
            if ch == ";":
                self._emit(TokenKind.SEMI, ";", line, column)
            elif ch == ",":
                self._emit(TokenKind.COMMA, ",", line, column)
            else:
                self._emit(TokenKind.OP, ch, line, column)
            return
        raise self._error(f"unexpected character {ch!r}")


def tokenize(source: str) -> list[SpacedToken]:
    """Tokenize MATLAB ``source`` and return the token list (EOF-terminated)."""
    return Lexer(source).tokenize()
