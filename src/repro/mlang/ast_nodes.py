"""AST node definitions for the MATLAB subset.

All nodes are plain dataclasses.  Structural equality ignores source
positions (``pos`` fields use ``compare=False``) so that golden tests can
compare freshly built trees against parsed ones.

The expression grammar distinguishes *application* (``Apply``) which in
MATLAB ambiguously means either array indexing or a function call; the
distinction is resolved later using shape/symbol information.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterator, Optional, Union


@dataclass(frozen=True, slots=True)
class Pos:
    """A 1-based source position."""

    line: int = 0
    column: int = 0


@dataclass(eq=True)
class Node:
    """Base class for every AST node."""

    def children(self) -> Iterator["Node"]:
        """Yield all direct child nodes (recursing through arbitrarily
        nested lists/tuples, e.g. ``If.tests``'s (cond, body) pairs)."""

        def emit(value):
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    yield from emit(item)

        for f in fields(self):
            yield from emit(getattr(self, f.name))

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


class Expr(Node):
    """Base class for expressions."""


class Stmt(Node):
    """Base class for statements."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(eq=True)
class Num(Expr):
    """A numeric literal.  ``raw`` preserves the source spelling."""

    value: float
    raw: str = ""
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.raw:
            self.raw = _format_number(self.value)

    @property
    def is_integer(self) -> bool:
        return float(self.value) == int(self.value)


def _format_number(value: float) -> str:
    if float(value) == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(float(value))


@dataclass(eq=True)
class Str(Expr):
    """A character-array literal (single-quoted string)."""

    value: str
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class Ident(Expr):
    """An identifier reference (variable or function name)."""

    name: str
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class Colon(Expr):
    """The bare ``:`` subscript meaning "all elements along a dimension"."""

    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class End(Expr):
    """The ``end`` keyword used inside a subscript."""

    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class Range(Expr):
    """A colon expression ``start:stop`` or ``start:step:stop``."""

    start: Expr
    stop: Expr
    step: Optional[Expr] = None
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class BinOp(Expr):
    """A binary operation.  ``op`` is the MATLAB spelling (``+``, ``.*`` …)."""

    op: str
    left: Expr
    right: Expr
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class UnOp(Expr):
    """A unary operation: ``+``, ``-``, or logical ``~``."""

    op: str
    operand: Expr
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class Transpose(Expr):
    """A postfix transpose: ``'`` (ctranspose) or ``.'`` (transpose)."""

    operand: Expr
    conjugate: bool = True
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class Apply(Expr):
    """``f(a, b, …)`` — array indexing or a function call.

    MATLAB syntax does not distinguish the two; analyses resolve the
    ambiguity with a symbol table.  ``func`` is usually an :class:`Ident`
    but may be any expression (e.g. a chained index).
    """

    func: Expr
    args: list[Expr]
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class Matrix(Expr):
    """A matrix literal ``[r1e1, r1e2; r2e1, r2e2]`` (rows of expressions)."""

    rows: list[list[Expr]]
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(eq=True)
class Assign(Stmt):
    """``lhs = rhs`` where ``lhs`` is an :class:`Ident` or indexed :class:`Apply`."""

    lhs: Expr
    rhs: Expr
    suppress: bool = True
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class MultiAssign(Stmt):
    """``[a, b, …] = f(…)`` — multiple-output assignment."""

    targets: list[Expr]
    rhs: Expr
    suppress: bool = True
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class ExprStmt(Stmt):
    """A bare expression evaluated for effect/display."""

    expr: Expr
    suppress: bool = True
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class For(Stmt):
    """``for var = iter, body, end``."""

    var: str
    iter: Expr
    body: list[Stmt]
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class While(Stmt):
    """``while cond, body, end``."""

    cond: Expr
    body: list[Stmt]
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class If(Stmt):
    """``if``/``elseif``/``else`` chain.

    ``tests`` holds (condition, body) pairs for the ``if`` and each
    ``elseif``; ``orelse`` is the ``else`` body (possibly empty).
    """

    tests: list[tuple[Expr, list[Stmt]]]
    orelse: list[Stmt] = field(default_factory=list)
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class Break(Stmt):
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class Continue(Stmt):
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class Return(Stmt):
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class Global(Stmt):
    """``global a b c``."""

    names: list[str]
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class FunctionDef(Stmt):
    """``function [outs] = name(params) body end``."""

    name: str
    params: list[str]
    outs: list[str]
    body: list[Stmt]
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class Annotation(Stmt):
    """A ``%!`` shape-annotation comment, preserved in statement position."""

    text: str
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)


@dataclass(eq=True)
class Program(Node):
    """A whole script: a statement list plus any shape annotations seen."""

    body: list[Stmt]
    pos: Pos = field(default_factory=Pos, compare=False, repr=False)

    @property
    def annotations(self) -> list[str]:
        """All ``%!`` annotation texts, in source order, anywhere in the tree."""
        return [n.text for n in self.walk() if isinstance(n, Annotation)]


# ---------------------------------------------------------------------------
# Convenience constructors used heavily by rewriting passes
# ---------------------------------------------------------------------------


def num(value: Union[int, float]) -> Num:
    """Build a numeric literal node."""
    return Num(float(value))


def ident(name: str) -> Ident:
    """Build an identifier node."""
    return Ident(name)


def call(name: str, *args: Expr) -> Apply:
    """Build ``name(args…)``."""
    return Apply(Ident(name), list(args))


def binop(op: str, left: Expr, right: Expr) -> BinOp:
    return BinOp(op, left, right)


def add(left: Expr, right: Expr) -> BinOp:
    return BinOp("+", left, right)


def sub(left: Expr, right: Expr) -> BinOp:
    return BinOp("-", left, right)


def mul(left: Expr, right: Expr) -> BinOp:
    return BinOp("*", left, right)


def emul(left: Expr, right: Expr) -> BinOp:
    return BinOp(".*", left, right)


def transpose(operand: Expr) -> Transpose:
    return Transpose(operand, conjugate=True)


def colon_range(start: Union[int, Expr], stop: Union[int, Expr],
                step: Union[int, Expr, None] = None) -> Range:
    """Build ``start:stop`` / ``start:step:stop`` accepting ints or exprs."""
    def lift(v: Union[int, Expr, None]) -> Optional[Expr]:
        if v is None or isinstance(v, Expr):
            return v
        return num(v)

    return Range(lift(start), lift(stop), lift(step))


def is_scalar_literal(node: Node) -> bool:
    """True for numeric literals and signed numeric literals."""
    if isinstance(node, Num):
        return True
    return isinstance(node, UnOp) and node.op in "+-" and is_scalar_literal(node.operand)


def literal_value(node: Node) -> Optional[float]:
    """The numeric value of a (possibly signed) literal, else None."""
    if isinstance(node, Num):
        return node.value
    if isinstance(node, UnOp) and node.op in "+-" and (
        (inner := literal_value(node.operand)) is not None
    ):
        return inner if node.op == "+" else -inner
    return None
