"""Pretty-printer: AST → MATLAB source.

The printer emits the *minimal* parenthesization that preserves the tree
structure, so ``parse(print(ast)) == ast`` holds for every printable tree
(this round-trip is enforced by property-based tests).
"""

from __future__ import annotations

from ..errors import ReproError
from .ast_nodes import (
    Annotation,
    Apply,
    Assign,
    BinOp,
    Break,
    Colon,
    Continue,
    End,
    Expr,
    ExprStmt,
    For,
    FunctionDef,
    Global,
    Ident,
    If,
    Matrix,
    MultiAssign,
    Node,
    Num,
    Program,
    Range,
    Return,
    Stmt,
    Str,
    Transpose,
    UnOp,
    While,
)

# Precedence levels; larger binds tighter.  Mirrors the parser.
_PREC_OR_OR = 1
_PREC_AND_AND = 2
_PREC_OR = 3
_PREC_AND = 4
_PREC_CMP = 5
_PREC_RANGE = 6
_PREC_ADD = 7
_PREC_MUL = 8
_PREC_UNARY = 9
_PREC_POW = 10
_PREC_POSTFIX = 11
_PREC_PRIMARY = 12

_BINOP_PREC = {
    "||": _PREC_OR_OR,
    "&&": _PREC_AND_AND,
    "|": _PREC_OR,
    "&": _PREC_AND,
    "==": _PREC_CMP,
    "~=": _PREC_CMP,
    "<": _PREC_CMP,
    "<=": _PREC_CMP,
    ">": _PREC_CMP,
    ">=": _PREC_CMP,
    "+": _PREC_ADD,
    "-": _PREC_ADD,
    "*": _PREC_MUL,
    "/": _PREC_MUL,
    "\\": _PREC_MUL,
    ".*": _PREC_MUL,
    "./": _PREC_MUL,
    ".\\": _PREC_MUL,
    "^": _PREC_POW,
    ".^": _PREC_POW,
}


def _precedence(node: Expr) -> int:
    if isinstance(node, BinOp):
        return _BINOP_PREC[node.op]
    if isinstance(node, Range):
        return _PREC_RANGE
    if isinstance(node, UnOp):
        return _PREC_UNARY
    if isinstance(node, (Transpose, Apply)):
        return _PREC_POSTFIX
    if isinstance(node, Num) and node.value < 0:
        # Prints with a leading '-', so it binds like a unary expression.
        return _PREC_UNARY
    return _PREC_PRIMARY


def expr_to_source(node: Expr) -> str:
    """Render a single expression as MATLAB source."""
    return _Emitter().expr(node)


def to_source(node: Node) -> str:
    """Render any AST node (program, statement, or expression) as source."""
    emitter = _Emitter()
    if isinstance(node, Program):
        return emitter.program(node)
    if isinstance(node, Stmt):
        emitter.stmt(node, 0)
        return "".join(emitter.lines)
    if isinstance(node, Expr):
        return emitter.expr(node)
    raise ReproError(f"cannot print node of type {type(node).__name__}")


class _Emitter:
    """Stateful source emitter (statement indentation lives here)."""

    def __init__(self, indent: str = "  "):
        self.lines: list[str] = []
        self.indent = indent

    # -- expressions -----------------------------------------------------

    def expr(self, node: Expr) -> str:
        if isinstance(node, Num):
            return self._num(node)
        if isinstance(node, Str):
            return "'" + node.value.replace("'", "''") + "'"
        if isinstance(node, Ident):
            return node.name
        if isinstance(node, Colon):
            return ":"
        if isinstance(node, End):
            return "end"
        if isinstance(node, Range):
            return self._range(node)
        if isinstance(node, BinOp):
            return self._binop(node)
        if isinstance(node, UnOp):
            return self._unop(node)
        if isinstance(node, Transpose):
            op = "'" if node.conjugate else ".'"
            return self._child(node.operand, _PREC_POSTFIX) + op
        if isinstance(node, Apply):
            func = self._child(node.func, _PREC_POSTFIX)
            args = ", ".join(self.expr(a) for a in node.args)
            return f"{func}({args})"
        if isinstance(node, Matrix):
            rows = ["".join(
                (", " if i else "") + self.expr(e) for i, e in enumerate(row)
            ) for row in node.rows]
            return "[" + "; ".join(rows) + "]"
        raise ReproError(f"cannot print expression {type(node).__name__}")

    def _num(self, node: Num) -> str:
        raw = node.raw
        try:
            if raw and float(raw) == node.value:
                return raw
        except ValueError:
            pass
        if float(node.value) == int(node.value) and abs(node.value) < 1e16:
            return str(int(node.value))
        return repr(node.value)

    def _child(self, node: Expr, minimum: int, strict: bool = False) -> str:
        prec = _precedence(node)
        text = self.expr(node)
        if prec < minimum or (strict and prec == minimum):
            return f"({text})"
        return text

    def _range(self, node: Range) -> str:
        parts = [self._child(node.start, _PREC_ADD)]
        if node.step is not None:
            parts.append(self._child(node.step, _PREC_ADD))
        parts.append(self._child(node.stop, _PREC_ADD))
        return ":".join(parts)

    def _binop(self, node: BinOp) -> str:
        prec = _BINOP_PREC[node.op]
        left = self._child(node.left, prec)
        right = self._child(node.right, prec, strict=True)
        return f"{left}{node.op}{right}"

    def _unop(self, node: UnOp) -> str:
        return node.op + self._child(node.operand, _PREC_UNARY)

    # -- statements --------------------------------------------------------

    def program(self, node: Program) -> str:
        for stmt in node.body:
            self.stmt(stmt, 0)
        return "".join(self.lines)

    def _line(self, depth: int, text: str) -> None:
        self.lines.append(self.indent * depth + text + "\n")

    def stmt(self, node: Stmt, depth: int) -> None:
        if isinstance(node, Assign):
            terminator = ";" if node.suppress else ""
            self._line(depth,
                       f"{self.expr(node.lhs)} = {self.expr(node.rhs)}{terminator}")
        elif isinstance(node, MultiAssign):
            targets = ", ".join(self.expr(t) for t in node.targets)
            terminator = ";" if node.suppress else ""
            self._line(depth, f"[{targets}] = {self.expr(node.rhs)}{terminator}")
        elif isinstance(node, ExprStmt):
            terminator = ";" if node.suppress else ""
            self._line(depth, f"{self.expr(node.expr)}{terminator}")
        elif isinstance(node, For):
            self._line(depth, f"for {node.var} = {self.expr(node.iter)}")
            for child in node.body:
                self.stmt(child, depth + 1)
            self._line(depth, "end")
        elif isinstance(node, While):
            self._line(depth, f"while {self.expr(node.cond)}")
            for child in node.body:
                self.stmt(child, depth + 1)
            self._line(depth, "end")
        elif isinstance(node, If):
            for index, (cond, body) in enumerate(node.tests):
                word = "if" if index == 0 else "elseif"
                self._line(depth, f"{word} {self.expr(cond)}")
                for child in body:
                    self.stmt(child, depth + 1)
            if node.orelse:
                self._line(depth, "else")
                for child in node.orelse:
                    self.stmt(child, depth + 1)
            self._line(depth, "end")
        elif isinstance(node, Break):
            self._line(depth, "break;")
        elif isinstance(node, Continue):
            self._line(depth, "continue;")
        elif isinstance(node, Return):
            self._line(depth, "return;")
        elif isinstance(node, Global):
            self._line(depth, "global " + " ".join(node.names) + ";")
        elif isinstance(node, Annotation):
            self._line(depth, "%! " + node.text)
        elif isinstance(node, FunctionDef):
            header = "function "
            if len(node.outs) == 1:
                header += f"{node.outs[0]} = "
            elif node.outs:
                header += "[" + ", ".join(node.outs) + "] = "
            header += node.name + "(" + ", ".join(node.params) + ")"
            self._line(depth, header)
            for child in node.body:
                self.stmt(child, depth + 1)
            self._line(depth, "end")
        else:
            raise ReproError(f"cannot print statement {type(node).__name__}")
