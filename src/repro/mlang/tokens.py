"""Token kinds and the :class:`Token` record produced by the MATLAB lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Classification of lexical tokens in the supported MATLAB subset."""

    NUMBER = "number"
    STRING = "string"
    IDENT = "ident"
    KEYWORD = "keyword"
    OP = "op"
    NEWLINE = "newline"      # statement separators: '\n', ',', ';'
    SEMI = "semi"            # ';' retains output-suppression information
    COMMA = "comma"
    ANNOTATION = "annotation"  # a '%!' shape annotation comment
    EOF = "eof"


#: Reserved words recognized by the parser.
KEYWORDS = frozenset(
    {
        "for",
        "end",
        "if",
        "elseif",
        "else",
        "while",
        "function",
        "return",
        "break",
        "continue",
        "global",
    }
)

#: Multi-character operators, longest first so the lexer can greedily match.
MULTI_CHAR_OPS = (
    "...",
    "==",
    "~=",
    "<=",
    ">=",
    "&&",
    "||",
    ".*",
    "./",
    ".\\",
    ".^",
    ".'",
)

#: Single-character operators / punctuation.
SINGLE_CHAR_OPS = "+-*/\\^'()[]{}<>=&|~:@.,;"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes
    ----------
    kind:
        The token classification.
    text:
        The literal source text (for strings, the unquoted contents).
    line, column:
        1-based position of the first character of the token.
    """

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_op(self, *ops: str) -> bool:
        """Return True when this token is an operator with text in ``ops``."""
        return self.kind is TokenKind.OP and self.text in ops

    def is_keyword(self, *words: str) -> bool:
        """Return True when this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.text in words

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
