"""MATLAB language front-end: lexer, parser, AST, printer, annotations."""

from .ast_nodes import *  # noqa: F401,F403
from .lexer import tokenize  # noqa: F401
from .parser import parse, parse_expr, parse_stmt  # noqa: F401
from .printer import expr_to_source, to_source  # noqa: F401
