"""Parsing of ``%!`` shape annotations (§4 of the paper).

The paper assumes shape information is produced by external inference
tools and supplied as comment annotations::

    %! i(1) a(1,*) b(*,1) A(*,*)

declares ``i`` scalar, ``a`` a row vector, ``b`` a column vector, and
``A`` a matrix.  This module turns annotation strings into a
:class:`~repro.dims.context.ShapeEnv`.
"""

from __future__ import annotations

import re

from ..dims.abstract import Dim
from ..dims.context import ShapeEnv
from ..errors import AnnotationError, DimError

_ENTRY = re.compile(r"([A-Za-z_]\w*)\s*\(([^()]*)\)")


def parse_annotation(text: str, env: ShapeEnv) -> ShapeEnv:
    """Parse one annotation string into ``env`` (returned for chaining)."""
    stripped = text.strip()
    consumed = 0
    for match in _ENTRY.finditer(stripped):
        name, dims = match.group(1), match.group(2)
        try:
            env.set(name, Dim.parse(f"({dims})"))
        except DimError as error:
            raise AnnotationError(
                f"bad annotation for {name!r}: {error}") from error
        consumed += len(match.group(0))
    leftovers = _ENTRY.sub("", stripped).strip()
    if leftovers:
        raise AnnotationError(
            f"unrecognized annotation text: {leftovers!r}")
    return env


def parse_annotations(texts: list[str]) -> ShapeEnv:
    """Parse a list of annotation strings into a fresh environment."""
    env = ShapeEnv()
    for text in texts:
        parse_annotation(text, env)
    return env
