"""Parsing of ``%!`` shape annotations (§4 of the paper).

The paper assumes shape information is produced by external inference
tools and supplied as comment annotations::

    %! i(1) a(1,*) b(*,1) A(*,*)

declares ``i`` scalar, ``a`` a row vector, ``b`` a column vector, and
``A`` a matrix.  This module turns annotation strings into a
:class:`~repro.dims.context.ShapeEnv`.
"""

from __future__ import annotations

import re

from ..dims.abstract import Dim
from ..dims.context import ShapeEnv
from ..errors import AnnotationError, DimError

_ENTRY = re.compile(r"([A-Za-z_]\w*)\s*\(([^()]*)\)")


def parse_annotation(text: str, env: ShapeEnv) -> ShapeEnv:
    """Parse one annotation string into ``env`` (returned for chaining)."""
    stripped = text.strip()
    consumed = 0
    for match in _ENTRY.finditer(stripped):
        name, dims = match.group(1), match.group(2)
        try:
            env.set(name, Dim.parse(f"({dims})"))
        except DimError as error:
            raise AnnotationError(
                f"bad annotation for {name!r}: {error}") from error
        consumed += len(match.group(0))
    leftovers = _ENTRY.sub("", stripped).strip()
    if leftovers:
        raise AnnotationError(
            f"unrecognized annotation text: {leftovers!r}")
    return env


def parse_annotations(texts: list[str]) -> ShapeEnv:
    """Parse a list of annotation strings into a fresh environment."""
    env = ShapeEnv()
    for text in texts:
        parse_annotation(text, env)
    return env


def collect_annotations(stmts) -> list:
    """Every :class:`~repro.mlang.ast_nodes.Annotation` node in a
    statement list, in source order (nested statements included)."""
    from .ast_nodes import Annotation

    out = []
    for stmt in stmts:
        for node in stmt.walk():
            if isinstance(node, Annotation):
                out.append(node)
    return out


def annotations_env(stmts) -> ShapeEnv:
    """The shape environment declared by the ``%!`` annotations of a
    statement list.  Malformed annotations are skipped — the linter
    reports them separately as E003."""
    env = ShapeEnv()
    for node in collect_annotations(stmts):
        try:
            parse_annotation(node.text, env)
        except AnnotationError:
            continue
    return env


def strip_annotation_names(text: str, names: set[str]) -> str | None:
    """Remove the entries for ``names`` from one annotation string.

    Returns the rewritten annotation text, or ``None`` when no entry
    survives (the whole annotation line should be dropped).  Text the
    entry grammar does not recognize is preserved untouched.
    """
    stripped = text.strip()
    kept = [match.group(0) for match in _ENTRY.finditer(stripped)
            if match.group(1) not in names]
    leftovers = _ENTRY.sub("", stripped).strip()
    if leftovers:
        kept.append(leftovers)
    if not kept:
        return None
    return " ".join(kept)
