"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still being able to distinguish front-end, analysis, and runtime
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SourceError(ReproError):
    """An error tied to a location in MATLAB source code."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        self.message = message
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class LexError(SourceError):
    """Raised by the lexer on malformed input (bad characters, unterminated strings)."""


class ParseError(SourceError):
    """Raised by the parser on syntactically invalid MATLAB."""


class AnnotationError(SourceError):
    """Raised when a ``%!`` shape annotation cannot be parsed."""


class ShapeError(ReproError):
    """Raised when shape information is missing or inconsistent."""


class DimError(ReproError):
    """Raised on invalid operations over abstract dimensionalities."""


class PatternError(ReproError):
    """Raised on invalid pattern definitions or registrations."""


class DependenceError(ReproError):
    """Raised when dependence analysis cannot handle a construct."""


class VectorizeError(ReproError):
    """Raised when the vectorizer is asked to do something unsupported.

    Note that *failure to vectorize* a loop is not an error — the driver
    simply leaves such loops untouched.  This exception marks internal
    misuse or malformed input to vectorizer entry points.
    """


class VerifyError(ReproError):
    """Raised by the pipeline IR verifier when a stage emits a malformed
    AST (missing spans, bad operand arity, inconsistent annotations).

    A verifier failure always indicates a compiler bug, never bad user
    input — user-facing front ends should report it as internal.
    """

    def __init__(self, stage: str, message: str):
        self.stage = stage
        super().__init__(f"[verify:{stage}] {message}")


class MatlabRuntimeError(ReproError):
    """Raised by the MATLAB interpreter for errors MATLAB itself would raise."""


class TranslateError(ReproError):
    """Raised when the NumPy transpiler meets an untranslatable construct."""
