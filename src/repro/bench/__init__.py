"""Benchmark harness: workloads, timing, paper-style reports."""

from .fuzzbench import (  # noqa: F401
    FuzzThroughput,
    format_fuzz_row,
    measure_fuzz_throughput,
)
from .servicebench import (  # noqa: F401
    format_service_rows,
    measure_batch_throughput,
    measure_cache_speedup,
    run_service_bench,
)
from .harness import (  # noqa: F401
    ABLATIONS,
    AblationRow,
    Measurement,
    ablation_sweep,
    format_table,
    measure,
    time_program,
)
from .workloads import WORKLOADS, Workload, all_workloads, workload  # noqa: F401
