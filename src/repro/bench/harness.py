"""Benchmark harness: run loop vs. vectorized code, print paper-style tables.

The harness reproduces the *structure* of the paper's evaluation (§5):
for each workload it runs the original loop-based program and the
automatically vectorized program on identical inputs under the same
MATLAB runtime, verifies the outputs agree, and reports wall-clock
times and the speedup — the same rows Table 3 and the Figure 3/4 prose
report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..mlang.parser import parse
from ..runtime.interp import Interpreter
from ..runtime.values import values_equal
from ..vectorizer.checker import CheckOptions
from ..vectorizer.driver import Vectorizer
from .workloads import Workload


def _copy_env(env: dict) -> dict:
    return {
        key: value.copy(order="F") if isinstance(value, np.ndarray)
        else value
        for key, value in env.items()
    }


@dataclass
class Measurement:
    """One row of a results table."""

    name: str
    scale: dict
    input_time: float
    vect_time: float
    outputs_equal: bool
    fully_vectorized: bool
    experiment: Optional[str] = None

    @property
    def speedup(self) -> float:
        if self.vect_time <= 0:
            return float("inf")
        return self.input_time / self.vect_time


def time_program(program, env: dict, repeats: int = 3,
                 seed: int = 0) -> float:
    """Best-of-N wall time of interpreting ``program`` over ``env``."""
    best = float("inf")
    for _ in range(repeats):
        workspace = _copy_env(env)
        interp = Interpreter(seed=seed)
        start = time.perf_counter()
        interp.run(program, env=workspace)
        best = min(best, time.perf_counter() - start)
    return best


def measure(workload: Workload, scale: str = "default", repeats: int = 3,
            seed: int = 12345,
            options: Optional[CheckOptions] = None) -> Measurement:
    """Benchmark one workload: loop version vs. vectorized version."""
    source = workload.source()
    result = Vectorizer(options=options).vectorize_source(source)
    env = workload.env(scale=scale, seed=seed)

    original = parse(source)
    vectorized = result.program

    base_out = Interpreter(seed=0).run(original, env=_copy_env(env))
    vect_out = Interpreter(seed=0).run(vectorized, env=_copy_env(env))
    equal = all(
        values_equal(base_out[name], vect_out[name])
        for name in workload.outputs
    )

    input_time = time_program(original, env, repeats=repeats)
    vect_time = time_program(vectorized, env, repeats=repeats)
    params = workload.scales.get(scale, workload.scales.get("default", {}))
    return Measurement(
        name=workload.name,
        scale=params,
        input_time=input_time,
        vect_time=vect_time,
        outputs_equal=equal,
        fully_vectorized="for " not in result.source
        and "while" not in result.source,
        experiment=workload.experiment,
    )


def format_table(measurements: list[Measurement],
                 title: str = "") -> str:
    """Render measurements in the paper's Table 3 layout."""
    lines = []
    if title:
        lines.append(title)
    header = (f"{'workload':<20} {'settings':<26} {'input time (s)':>14} "
              f"{'vect. time (s)':>14} {'speedup':>9}  ok")
    lines.append(header)
    lines.append("-" * len(header))
    for m in measurements:
        settings = " ".join(f"{k}={v}" for k, v in m.scale.items())
        speedup = f"~{m.speedup:.1f}" if m.vect_time > 0 else "inf"
        lines.append(
            f"{m.name:<20} {settings:<26} {m.input_time:>14.4f} "
            f"{m.vect_time:>14.4f} {speedup:>9}  "
            f"{'yes' if m.outputs_equal else 'NO'}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------

#: The design choices DESIGN.md calls out, as checker option overrides.
ABLATIONS: dict[str, CheckOptions] = {
    "full": CheckOptions(),
    "no-patterns": CheckOptions(patterns=False),
    "no-transposes": CheckOptions(transposes=False),
    "no-reductions": CheckOptions(reductions=False),
    "no-regroup": CheckOptions(product_regroup=False),
    "no-promotion": CheckOptions(promotion=False),
}


@dataclass
class AblationRow:
    workload: str
    variant: str
    vectorized: bool
    speedup: float


def ablation_sweep(workloads: list[Workload], scale: str = "tiny",
                   repeats: int = 1) -> list[AblationRow]:
    """Vectorize each workload under each ablation and measure."""
    rows: list[AblationRow] = []
    for workload in workloads:
        for variant, options in ABLATIONS.items():
            m = measure(workload, scale=scale, repeats=repeats,
                        options=options)
            rows.append(AblationRow(workload.name, variant,
                                    m.fully_vectorized, m.speedup))
    return rows
